"""Tests for the extended RDD operators: sample, keys, sortByKey,
aggregateByKey, cogroup, subtractByKey."""

import pytest

from repro.errors import SparkError
from tests.conftest import small_context


@pytest.fixture
def ctx():
    return small_context()


def parallelize(ctx, records, partitions=3, total_bytes=2 * 2**20, name="x"):
    return ctx.parallelize(list(records), partitions, total_bytes, name=name)


def run(ctx, rdd):
    return sorted(ctx.scheduler.run_action(rdd, "collect"))


class TestSample:
    def test_fraction_zero_and_one(self, ctx):
        base = parallelize(ctx, [(i, i) for i in range(20)])
        assert run(ctx, base.sample(0.0)) == []
        assert run(ctx, base.sample(1.0)) == [(i, i) for i in range(20)]

    def test_deterministic(self, ctx):
        base = parallelize(ctx, [(i, i) for i in range(50)])
        a = run(ctx, base.sample(0.5, seed=3))
        b = run(ctx, base.sample(0.5, seed=3))
        assert a == b

    def test_rough_fraction(self, ctx):
        base = parallelize(ctx, [(i, i) for i in range(200)])
        sampled = run(ctx, base.sample(0.3, seed=9))
        assert 30 <= len(sampled) <= 90

    def test_bad_fraction_rejected(self, ctx):
        base = parallelize(ctx, [(1, 1)])
        with pytest.raises(SparkError):
            base.sample(1.5)

    def test_sample_shrinks_byte_weight(self, ctx):
        base = parallelize(ctx, [(i, i) for i in range(10)])
        assert base.sample(0.25).bytes_per_record == pytest.approx(
            base.bytes_per_record * 0.25
        )


class TestKeysAndSort:
    def test_keys(self, ctx):
        base = parallelize(ctx, [(1, "a"), (2, "b")])
        assert run(ctx, base.keys()) == [(1, 1), (2, 2)]

    def test_sort_by_key_within_partitions(self, ctx):
        base = parallelize(ctx, [(i, i) for i in (5, 3, 9, 1, 7)])
        result = ctx.scheduler.run_action(base.sort_by_key(num_partitions=1), "collect")
        assert result == sorted(result)

    def test_sort_descending(self, ctx):
        base = parallelize(ctx, [(i, i) for i in (2, 8, 5)])
        result = ctx.scheduler.run_action(
            base.sort_by_key(ascending=False, num_partitions=1), "collect"
        )
        assert result == sorted(result, reverse=True)


class TestAggregateByKey:
    def test_sum_and_count(self, ctx):
        base = parallelize(ctx, [(i % 2, i) for i in range(10)])
        agg = base.aggregate_by_key(
            (0, 0),
            seq_fn=lambda acc, v: (acc[0] + v, acc[1] + 1),
            comb_fn=lambda a, b: (a[0] + b[0], a[1] + b[1]),
        )
        result = dict(run(ctx, agg))
        assert result[0] == (0 + 2 + 4 + 6 + 8, 5)
        assert result[1] == (1 + 3 + 5 + 7 + 9, 5)

    def test_mean_via_aggregate(self, ctx):
        base = parallelize(ctx, [(i % 3, float(i)) for i in range(12)])
        agg = base.aggregate_by_key(
            (0.0, 0),
            seq_fn=lambda acc, v: (acc[0] + v, acc[1] + 1),
            comb_fn=lambda a, b: (a[0] + b[0], a[1] + b[1]),
        )
        means = {k: s / n for k, (s, n) in run(ctx, agg)}
        expected = {}
        for i in range(12):
            expected.setdefault(i % 3, []).append(float(i))
        for key, values in expected.items():
            assert means[key] == pytest.approx(sum(values) / len(values))


class TestCogroupAndSubtract:
    def test_cogroup_keeps_outer_keys(self, ctx):
        a = parallelize(ctx, [(1, "a"), (2, "b")], name="a")
        b = parallelize(ctx, [(2, 20), (3, 30)], name="b")
        result = dict(run(ctx, a.cogroup(b)))
        assert set(result) == {1, 2, 3}
        assert result[1] == (["a"], [])
        assert result[2] == (["b"], [20])
        assert result[3] == ([], [30])

    def test_join_is_inner(self, ctx):
        a = parallelize(ctx, [(1, "a"), (2, "b")], name="a")
        b = parallelize(ctx, [(2, 20), (3, 30)], name="b")
        assert run(ctx, a.join(b)) == [(2, ("b", 20))]

    def test_subtract_by_key(self, ctx):
        a = parallelize(ctx, [(1, "a"), (2, "b"), (3, "c")], name="a")
        b = parallelize(ctx, [(2, None)], name="b")
        assert run(ctx, a.subtract_by_key(b)) == [(1, "a"), (3, "c")]

    def test_subtract_all(self, ctx):
        a = parallelize(ctx, [(1, "a")], name="a")
        assert run(ctx, a.subtract_by_key(a)) == []
