"""Tests for the tag-wait allocation state (§4.2.1) and the managed heap."""

import pytest

from repro.config import DeviceKind, MiB, PolicyName
from repro.core.tags import MEMORY_BITS_DRAM, MEMORY_BITS_NVM, MemoryTag
from repro.errors import HeapError
from repro.heap.allocator import TagWaitState
from repro.heap.object_model import ObjKind
from tests.conftest import make_stack


class TestTagWaitState:
    def test_initially_disarmed(self):
        state = TagWaitState(1024)
        assert not state.armed
        assert state.consume_for_array(4096) is None

    def test_arm_then_large_array_consumes(self):
        state = TagWaitState(1024)
        state.arm(MemoryTag.NVM)
        assert state.armed
        assert state.consume_for_array(2048) is MemoryTag.NVM
        assert not state.armed  # reset after recognition (§4.2.1)

    def test_small_allocations_do_not_consume(self):
        state = TagWaitState(1024)
        state.arm(MemoryTag.DRAM)
        assert state.consume_for_array(100) is None
        assert state.armed  # still waiting for the RDD array

    def test_threshold_boundary(self):
        state = TagWaitState(1024)
        state.arm(MemoryTag.DRAM)
        assert state.consume_for_array(1024) is MemoryTag.DRAM

    def test_none_tag_still_arms_and_resets(self):
        state = TagWaitState(1024)
        state.arm(None)
        assert state.armed
        assert state.consume_for_array(4096) is None
        assert not state.armed

    def test_rearm_overwrites(self):
        state = TagWaitState(1024)
        state.arm(MemoryTag.NVM)
        state.arm(MemoryTag.DRAM)
        assert state.consume_for_array(4096) is MemoryTag.DRAM

    def test_bad_threshold_rejected(self):
        with pytest.raises(ValueError):
            TagWaitState(0)


class TestManagedHeapAllocation:
    def test_new_object_lands_in_eden(self, panthera_stack):
        heap = panthera_stack.heap
        obj = heap.new_object(ObjKind.DATA, 1024)
        assert obj.space is heap.eden
        assert heap.in_young(obj)

    def test_eden_full_triggers_minor_gc(self, panthera_stack):
        heap = panthera_stack.heap
        stats = panthera_stack.collector.stats
        total = 0
        while total <= heap.eden.size:
            heap.allocate_ephemeral(MiB)
            total += MiB
        assert stats.minor_count >= 1

    def test_oversized_ephemeral_rejected(self, panthera_stack):
        with pytest.raises(HeapError):
            panthera_stack.heap.allocate_ephemeral(
                panthera_stack.heap.eden.size + 1
            )

    def test_tagged_array_pretenured_to_nvm(self, panthera_stack):
        heap = panthera_stack.heap
        panthera_stack.runtime.rdd_alloc(
            heap.new_object(ObjKind.RDD_TOP, 64), MemoryTag.NVM
        )
        array = heap.allocate_rdd_array(2 * MiB, rdd_id=1)
        assert array.space.name == "old-nvm"
        assert array.memory_bits == MEMORY_BITS_NVM

    def test_dram_tagged_array_goes_to_old_dram(self, panthera_stack):
        heap = panthera_stack.heap
        panthera_stack.runtime.rdd_alloc(
            heap.new_object(ObjKind.RDD_TOP, 64), MemoryTag.DRAM
        )
        array = heap.allocate_rdd_array(2 * MiB, rdd_id=1)
        assert array.space.name == "old-dram"
        assert array.memory_bits == MEMORY_BITS_DRAM

    def test_dram_full_falls_back_to_nvm(self, panthera_stack):
        heap = panthera_stack.heap
        old_dram = heap.old_space_named("old-dram")
        filler_size = old_dram.free - MiB
        heap.tag_wait.arm(MemoryTag.DRAM)
        heap.allocate_rdd_array(filler_size, rdd_id=1)
        heap.tag_wait.arm(MemoryTag.DRAM)
        overflow = heap.allocate_rdd_array(4 * MiB, rdd_id=2)
        assert overflow.space.name == "old-nvm"

    def test_untagged_array_goes_to_nvm_under_panthera(self, panthera_stack):
        array = panthera_stack.heap.allocate_rdd_array(2 * MiB, rdd_id=3)
        assert array.space.name == "old-nvm"

    def test_small_untagged_array_starts_young(self, panthera_stack):
        # Table 1's NONE row: untagged objects start in the young gen;
        # only arrays above the recognition threshold pretenure.
        threshold = panthera_stack.config.large_array_threshold
        array = panthera_stack.heap.allocate_rdd_array(threshold // 2, rdd_id=3)
        assert panthera_stack.heap.in_young(array)

    def test_arrays_are_card_registered(self, panthera_stack):
        heap = panthera_stack.heap
        array = heap.allocate_rdd_array(2 * MiB, rdd_id=4)
        assert heap.card_table.is_registered(array)

    def test_panthera_arrays_are_padded(self, panthera_stack):
        array = panthera_stack.heap.allocate_rdd_array(MiB + 7, rdd_id=5)
        assert array.padded

    def test_stock_arrays_are_not_padded(self, dram_stack):
        array = dram_stack.heap.allocate_rdd_array(MiB + 7, rdd_id=5)
        assert not array.padded

    def test_unmanaged_array_lands_in_chunked_old(self, unmanaged_stack):
        array = unmanaged_stack.heap.allocate_rdd_array(2 * MiB, rdd_id=6)
        assert array.space.name == "old"
        pieces = array.space.object_traffic(array)
        assert sum(n for _, n in pieces) == array.size


class TestWriteBarrier:
    def test_old_to_young_store_dirties_cards(self, panthera_stack):
        heap = panthera_stack.heap
        array = heap.allocate_rdd_array(2 * MiB, rdd_id=1)
        slab = heap.new_object(ObjKind.DATA, 1024)
        heap.write_ref(array, slab)
        fresh, _ = heap.card_table.scan_plan()
        assert array in fresh

    def test_young_to_young_store_does_not_dirty(self, panthera_stack):
        heap = panthera_stack.heap
        a = heap.new_object(ObjKind.DATA, 64)
        b = heap.new_object(ObjKind.DATA, 64)
        heap.write_ref(a, b)
        fresh, stuck = heap.card_table.scan_plan()
        assert not fresh and not stuck

    def test_write_counts_accumulate(self, panthera_stack):
        heap = panthera_stack.heap
        obj = heap.new_object(ObjKind.DATA, 64)
        heap.write_data(obj, writes=3)
        assert obj.write_count == 3

    def test_barrier_hook_invoked(self, panthera_stack):
        heap = panthera_stack.heap
        seen = []
        heap.write_barrier_hook = seen.append
        a = heap.new_object(ObjKind.DATA, 64)
        b = heap.new_object(ObjKind.DATA, 64)
        heap.write_ref(a, b)
        assert seen == [a]


class TestHeapQueries:
    def test_old_space_lookup(self, panthera_stack):
        heap = panthera_stack.heap
        assert heap.old_space_named("old-nvm").device is DeviceKind.NVM
        with pytest.raises(HeapError):
            heap.old_space_named("missing")

    def test_roots_registry(self, panthera_stack):
        heap = panthera_stack.heap
        obj = heap.new_object(ObjKind.CONTROL, 64)
        heap.add_root(obj)
        assert heap.is_root(obj)
        assert obj in list(heap.iter_roots())
        heap.remove_root(obj)
        assert not heap.is_root(obj)

    def test_describe_mentions_spaces(self, panthera_stack):
        text = panthera_stack.heap.describe()
        assert "eden" in text and "old-nvm" in text

    def test_policy_layouts(self):
        for policy, names in [
            (PolicyName.DRAM_ONLY, {"old"}),
            (PolicyName.UNMANAGED, {"old"}),
            (PolicyName.PANTHERA, {"old-dram", "old-nvm"}),
            (PolicyName.KINGSGUARD_NURSERY, {"old"}),
            (PolicyName.KINGSGUARD_WRITES, {"old-dram", "old"}),
        ]:
            stack = make_stack(policy)
            assert {s.name for s in stack.heap.old_spaces} == names
