"""Harness tests: experiment runner, configurations and reports."""

import pytest

from repro.config import PolicyName
from repro.harness.configs import (
    fig2c_configs,
    fig4_configs,
    grid_configs,
    paper_config,
    write_rationing_configs,
)
from repro.harness.experiment import run_experiment
from repro.harness.report import (
    format_markdown_table,
    gc_breakdown,
    normalize_results,
    summarize,
)

SCALE = 0.03


def quick_run(workload="PR", policy=PolicyName.PANTHERA, **kwargs):
    config = paper_config(64, 1 / 3, policy, SCALE)
    return run_experiment(
        workload,
        config,
        scale=SCALE,
        workload_kwargs=kwargs or {"iterations": 3},
    )


class TestRunExperiment:
    def test_result_fields_populated(self):
        result = quick_run()
        assert result.workload == "PR"
        assert result.policy is PolicyName.PANTHERA
        assert result.elapsed_s > 0
        assert result.energy_j > 0
        assert result.gc_s >= 0
        assert result.mutator_s == pytest.approx(result.elapsed_s - result.gc_s)
        assert result.minor_gcs > 0

    def test_panthera_carries_analysis(self):
        result = quick_run()
        assert result.analysis is not None
        assert result.analysis.tags

    def test_non_panthera_has_no_analysis(self):
        result = quick_run(policy=PolicyName.DRAM_ONLY)
        assert result.analysis is None
        assert result.monitored_calls == 0

    def test_keep_context(self):
        config = paper_config(64, 1 / 3, PolicyName.PANTHERA, SCALE)
        result = run_experiment(
            "PR",
            config,
            scale=SCALE,
            workload_kwargs={"iterations": 2},
            keep_context=True,
        )
        assert result.context is not None
        assert result.context.machine.elapsed_s == pytest.approx(result.elapsed_s)

    def test_energy_by_device_structure(self):
        result = quick_run()
        assert "dram" in result.energy_by_device
        assert "nvm" in result.energy_by_device
        assert result.energy_by_device["dram"]["static_j"] > 0

    def test_deterministic(self):
        a = quick_run()
        b = quick_run()
        assert a.elapsed_s == pytest.approx(b.elapsed_s)
        assert a.energy_j == pytest.approx(b.energy_j)
        assert a.minor_gcs == b.minor_gcs


class TestConfigs:
    def test_fig4_has_three_policies(self):
        configs = fig4_configs(SCALE)
        assert set(configs) == {"dram-only", "unmanaged", "panthera"}

    def test_fig2c_has_four_points(self):
        assert len(fig2c_configs(SCALE)) == 4

    def test_grid_covers_heaps_and_ratios(self):
        configs = grid_configs(SCALE)
        assert len(configs) == 2 + 2 * 2 * 2  # 2 baselines + 2x2x2 grid
        assert "64gb-third-panthera" in configs
        assert "120gb-quarter-unmanaged" in configs

    def test_write_rationing_set(self):
        configs = write_rationing_configs(SCALE)
        assert "kingsguard-nursery" in configs
        assert "kingsguard-writes" in configs

    def test_scale_shrinks_heap(self):
        big = paper_config(64, 1 / 3, PolicyName.PANTHERA, 1.0)
        small = paper_config(64, 1 / 3, PolicyName.PANTHERA, 0.1)
        assert small.heap_bytes == pytest.approx(big.heap_bytes * 0.1, rel=0.01)

    def test_scale_sets_static_energy_factor(self):
        cfg = paper_config(64, 1 / 3, PolicyName.PANTHERA, 0.1)
        assert cfg.static_energy_factor == pytest.approx(10.0)


class TestReports:
    def make_results(self):
        return {
            "dram-only": quick_run(policy=PolicyName.DRAM_ONLY),
            "panthera": quick_run(policy=PolicyName.PANTHERA),
        }

    def test_normalize_baseline_is_one(self):
        results = self.make_results()
        normalized = normalize_results(results, "dram-only")
        assert normalized["dram-only"]["time"] == pytest.approx(1.0)
        assert normalized["dram-only"]["energy"] == pytest.approx(1.0)

    def test_normalize_missing_baseline_rejected(self):
        with pytest.raises(KeyError):
            normalize_results({}, "nope")

    def test_gc_breakdown_fields(self):
        results = self.make_results()
        breakdown = gc_breakdown(results)
        for row in breakdown.values():
            assert row["computation_s"] > 0
            assert row["gc_s"] >= 0

    def test_markdown_table_renders(self):
        table = format_markdown_table(
            ["a", "b"], [["x", 1.23456], ["y", 2]]
        )
        assert "| a | b |" in table
        assert "1.235" in table

    def test_summarize_mentions_workload(self):
        line = summarize(quick_run())
        assert "PR" in line and "panthera" in line
