"""Property-based stress tests: heap/GC invariants under random
operation sequences.

A random interleaving of allocations, reference writes, root changes and
collections must never violate the structural invariants the collector
relies on: objects live in exactly one space, addresses stay in bounds
and non-overlapping per space, roots survive, cards track only old
objects, and the clock/energy accounting stays monotonic.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.config import MiB, PolicyName
from repro.core.tags import MemoryTag
from repro.heap.object_model import ObjKind
from tests.conftest import make_stack

POLICIES = [
    PolicyName.DRAM_ONLY,
    PolicyName.UNMANAGED,
    PolicyName.PANTHERA,
    PolicyName.KINGSGUARD_NURSERY,
    PolicyName.KINGSGUARD_WRITES,
]

# One operation = (kind, size-ish, flag)
OPERATIONS = st.lists(
    st.tuples(
        st.sampled_from(
            ["ephemeral", "object", "array", "root", "unroot", "ref",
             "minor", "major", "tag"]
        ),
        st.integers(min_value=1, max_value=64),
        st.booleans(),
    ),
    min_size=1,
    max_size=60,
)


def apply_ops(stack, ops):
    """Drive the heap with a random operation sequence."""
    heap = stack.heap
    tracked = []
    rooted = []
    for kind, magnitude, flag in ops:
        if kind == "ephemeral":
            heap.allocate_ephemeral(magnitude * 16 * 1024)
        elif kind == "object":
            obj = heap.new_object(ObjKind.DATA, magnitude * 1024)
            tracked.append(obj)
        elif kind == "array":
            if flag:
                heap.tag_wait.arm(MemoryTag.DRAM if magnitude % 2 else MemoryTag.NVM)
            array = heap.allocate_rdd_array(
                magnitude * 32 * 1024, rdd_id=magnitude
            )
            tracked.append(array)
        elif kind == "root" and tracked:
            obj = tracked[magnitude % len(tracked)]
            heap.add_root(obj)
            if obj not in rooted:
                rooted.append(obj)
        elif kind == "unroot" and rooted:
            obj = rooted.pop(magnitude % len(rooted))
            heap.remove_root(obj)
        elif kind == "ref" and len(tracked) >= 2:
            holder = tracked[magnitude % len(tracked)]
            target = tracked[(magnitude + 1) % len(tracked)]
            if holder.space is not None and target.space is not None:
                heap.write_ref(holder, target)
        elif kind == "minor":
            stack.collector.collect_minor()
        elif kind == "major":
            stack.collector.collect_major()
        elif kind == "tag" and tracked:
            obj = tracked[magnitude % len(tracked)]
            obj.set_tag(MemoryTag.DRAM if flag else MemoryTag.NVM)
        # Drop references to objects that died (space cleared) so the
        # operation stream keeps using live objects mostly.
        tracked = [o for o in tracked if o.space is not None or o in rooted]
    return rooted


def check_invariants(stack, rooted):
    heap = stack.heap
    all_spaces = heap.young_spaces + heap.old_spaces
    for space in all_spaces:
        # Bump pointer in bounds.
        assert space.base <= space.top <= space.end
        spans = []
        for obj in space.objects:
            # Residency is consistent.
            assert obj.space is space
            assert obj.addr is not None
            assert space.contains(obj.addr)
            assert obj.addr + obj.size <= space.top
            spans.append((obj.addr, obj.addr + obj.size))
        # No two objects overlap.
        spans.sort()
        for (s1, e1), (s2, e2) in zip(spans, spans[1:]):
            assert e1 <= s2
    # Every object lives in at most one space.
    seen = {}
    for space in all_spaces:
        for obj in space.objects:
            assert obj.oid not in seen, "object resident in two spaces"
            seen[obj.oid] = space
    # Roots survive collections.
    for obj in rooted:
        assert obj.space is not None, "a rooted object was collected"
    # Card table only tracks placed objects.
    for obj in heap.card_table.tracked():
        assert obj.addr is not None


@pytest.mark.parametrize("policy", POLICIES)
@settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(ops=OPERATIONS)
def test_heap_invariants_under_random_ops(policy, ops):
    stack = make_stack(policy)
    rooted = apply_ops(stack, ops)
    check_invariants(stack, rooted)
    # And after a final full GC everything still holds.
    stack.collector.collect_major()
    check_invariants(stack, rooted)


@settings(max_examples=30, deadline=None)
@given(ops=OPERATIONS)
def test_clock_and_energy_monotone(ops):
    stack = make_stack(PolicyName.PANTHERA)
    last_time = 0.0
    last_energy = 0.0
    for i in range(0, len(ops), 5):
        apply_ops(stack, ops[i : i + 5])
        now = stack.machine.elapsed_s
        energy = stack.machine.energy_j()
        assert now >= last_time
        assert energy >= last_energy - 1e-9
        last_time, last_energy = now, energy


@settings(max_examples=25, deadline=None)
@given(ops=OPERATIONS)
def test_rooted_objects_never_lost_and_bits_preserved(ops):
    stack = make_stack(PolicyName.PANTHERA)
    heap = stack.heap
    anchor = heap.new_object(ObjKind.RDD_TOP, 4096)
    anchor.set_tag(MemoryTag.DRAM)
    heap.add_root(anchor)
    apply_ops(stack, ops)
    assert anchor.space is not None
    assert anchor.tag is MemoryTag.DRAM  # DRAM can never be downgraded


@settings(max_examples=25, deadline=None)
@given(ops=OPERATIONS)
def test_panthera_padded_arrays_never_stuck(ops):
    stack = make_stack(PolicyName.PANTHERA)
    apply_ops(stack, ops)
    assert stack.collector.stats.stuck_rescans == 0


@settings(max_examples=25, deadline=None)
@given(
    sizes=st.lists(st.integers(min_value=1, max_value=2 * MiB), min_size=1, max_size=30)
)
def test_compaction_preserves_live_bytes(sizes):
    stack = make_stack(PolicyName.PANTHERA)
    heap = stack.heap
    live = []
    for i, size in enumerate(sizes):
        array = heap.allocate_rdd_array(size, rdd_id=i)
        if i % 2 == 0:
            heap.add_root(array)
            live.append(array)
    before = sorted((o.oid, o.size) for o in live)
    stack.collector.collect_major()
    after = sorted(
        (o.oid, o.size)
        for space in heap.old_spaces
        for o in space.objects
        if o.is_array
    )
    # Every live array survived with its size intact.
    for item in before:
        assert item in after
