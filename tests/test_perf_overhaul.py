"""Regression tests for the hot-path performance overhaul.

Covers the two bug fixes that rode along with the optimisation work (the
card-padding promotion guarantee and the sparse bandwidth series), the
incremental Space counters (a hypothesis property against the recomputed
oracle plus ``verify_heap`` drift detection), the sweep-time card-table
hygiene, the batched-deposit byte-identity A/B check, and the ``repro
bench`` comparison gate.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.cli import main as cli_main
from repro.config import DeviceKind, PolicyName
from repro.core.tags import MemoryTag
from repro.errors import GCError
from repro.gc import charging
from repro.gc.collector import Collector
from repro.gc.gclog import render_log
from repro.heap.object_model import HeapObject, ObjKind
from repro.heap.spaces import Space, recompute_live_bytes
from repro.heap.verify import verify_heap
from repro.memory.bandwidth import BandwidthTracker
from tests.conftest import make_stack


# -- promotion guarantee under card padding (§4.2.3) -----------------------


def _old_unpadded_bound(self) -> int:
    """The pre-fix formula: raw survivable bytes, no padding term."""
    return self.heap.eden.live_bytes() + self.heap.survivor_from.live_bytes()


def _squeeze_old_gen(stack, slack: int) -> int:
    """Fill the old generation with dead filler so that exactly
    ``raw survivable + slack`` bytes stay free, then stage eight
    card-misaligned arrays in eden (all of which the next scavenge must
    promote, ``tenuring_threshold=1``).  Returns the raw survivable sum.
    """
    heap = stack.heap
    card = stack.config.card_size
    size = card * 3 + 100  # deliberately not a multiple of the card size
    arrays = []
    for _ in range(8):
        obj = heap.new_object(ObjKind.RDD_ARRAY, size)
        heap.add_root(obj)
        arrays.append(obj)
    raw = sum(o.size for o in arrays)
    spaces = heap.old_spaces
    for space in spaces[1:]:
        filler = HeapObject(ObjKind.CONTROL, space.free)
        assert space.place(filler)
    first = spaces[0]
    filler = HeapObject(ObjKind.CONTROL, first.free - (raw + slack))
    assert first.place(filler)
    assert stack.collector.old_free_bytes() == raw + slack
    return raw


class TestPromotionGuaranteePadding:
    def test_bound_includes_card_padding_per_array(self):
        stack = make_stack(PolicyName.PANTHERA, tenuring_threshold=1)
        heap = stack.heap
        card = stack.config.card_size
        sizes = [card * 2 + 17, card + 1, 3000]
        for size in sizes:
            heap.new_object(ObjKind.RDD_ARRAY, size)
        heap.new_object(ObjKind.DATA, 4096)
        assert heap.card_padding
        bound = stack.collector._promotion_upper_bound()
        assert bound == sum(sizes) + 4096 + len(sizes) * (card - 1)

    def test_unpadded_bound_overflows_mid_promotion(self, monkeypatch):
        """The pre-fix bound admits a scavenge the old gen cannot absorb:
        per-array card padding makes the real footprint exceed the raw
        sum, and promotion fails with the heap half-evacuated."""
        stack = make_stack(PolicyName.PANTHERA, tenuring_threshold=1)
        _squeeze_old_gen(stack, slack=4)
        monkeypatch.setattr(
            Collector, "_promotion_upper_bound", _old_unpadded_bound
        )
        with pytest.raises(GCError, match="promotion failed"):
            stack.collector.collect_minor()

    def test_padded_bound_runs_major_first_and_succeeds(self):
        """The fixed bound counts the worst-case padding, sees the old
        generation cannot guarantee the scavenge, and runs a full GC
        (reclaiming the dead filler) before promoting."""
        stack = make_stack(PolicyName.PANTHERA, tenuring_threshold=1)
        _squeeze_old_gen(stack, slack=4)
        stack.collector.collect_minor()  # must not raise
        assert stack.collector.stats.major_count == 1
        heap = stack.heap
        rooted = list(heap.iter_roots())
        assert len(rooted) == 8
        assert all(heap.in_old(obj) for obj in rooted)
        assert verify_heap(heap) == []


# -- sparse bandwidth series across long idle gaps -------------------------


class TestBandwidthGapSeries:
    def test_multi_hour_gap_yields_sparse_series(self):
        tracker = BandwidthTracker(window_ns=1e9)
        tracker.record(DeviceKind.DRAM, False, 4e9, 0.0, 1e8)
        two_hours_ns = 7200 * 1e9
        tracker.record(DeviceKind.DRAM, False, 2e9, two_hours_ns, 1e8)
        series = tracker.series(DeviceKind.DRAM, False)
        # Two active windows bracketing a 2-hour idle stretch: the gap
        # contributes exactly two zero samples (its edges), not 7198.
        assert [s.time_s for s in series] == [0.0, 1.0, 7199.0, 7200.0]
        assert series[1].gbps == 0.0 and series[2].gbps == 0.0
        assert series[0].gbps == pytest.approx(4.0)
        assert series[3].gbps == pytest.approx(2.0)

    def test_single_window_gap_gets_one_zero(self):
        tracker = BandwidthTracker(window_ns=1e9)
        tracker.record(DeviceKind.NVM, True, 1e9, 0.0, 1e8)
        tracker.record(DeviceKind.NVM, True, 1e9, 2e9, 1e8)
        series = tracker.series(DeviceKind.NVM, True)
        assert [s.time_s for s in series] == [0.0, 1.0, 2.0]
        assert series[1].gbps == 0.0

    def test_adjacent_windows_have_no_zeros(self):
        tracker = BandwidthTracker(window_ns=1e9)
        tracker.record(DeviceKind.DRAM, False, 1e9, 0.0, 1e8)
        tracker.record(DeviceKind.DRAM, False, 1e9, 1e9, 1e8)
        series = tracker.series(DeviceKind.DRAM, False)
        assert [s.time_s for s in series] == [0.0, 1.0]
        assert all(s.gbps > 0 for s in series)

    def test_peak_and_total_ignore_gap_windows(self):
        tracker = BandwidthTracker(window_ns=1e9)
        tracker.record(DeviceKind.DRAM, False, 4e9, 0.0, 1e8)
        tracker.record(DeviceKind.DRAM, False, 2e9, 3600 * 1e9, 1e8)
        assert tracker.peak_gbps(DeviceKind.DRAM, False) == pytest.approx(4.0)
        assert tracker.total_bytes(DeviceKind.DRAM, False) == pytest.approx(6e9)

    def test_empty_tracker(self):
        tracker = BandwidthTracker(window_ns=1e9)
        assert tracker.series(DeviceKind.DRAM, False) == []
        assert tracker.peak_gbps(DeviceKind.DRAM, False) == 0.0


# -- incremental Space counters vs the recomputed oracle -------------------


_COUNTER_OPS = st.lists(
    st.tuples(
        st.sampled_from(["place", "discard", "adopt", "compact", "reset"]),
        st.integers(min_value=0, max_value=40),
        st.booleans(),
    ),
    max_size=60,
)


class TestSpaceCounterProperty:
    @settings(max_examples=60, deadline=None)
    @given(ops=_COUNTER_OPS)
    def test_counters_equal_recomputed_sums(self, ops):
        space = Space(
            "prop", base=0, size=1 << 24, generation="old",
            device=DeviceKind.DRAM,
        )
        resident = []
        for op, magnitude, arrayish in ops:
            kind = ObjKind.RDD_ARRAY if arrayish else ObjKind.DATA
            if op == "place":
                obj = HeapObject(kind, magnitude * 128)
                if space.place(obj):
                    resident.append(obj)
            elif op == "discard" and resident:
                obj = resident.pop(magnitude % len(resident))
                space.discard(obj)
                obj.space = None
                obj.addr = None
            elif op == "adopt":
                obj = HeapObject(kind, magnitude * 128)
                obj.addr = space.top
                obj.space = space
                space.top += obj.size
                space.adopt(obj)
                resident.append(obj)
            elif op == "compact":
                for obj in space.begin_compaction():
                    assert space.place(obj)
            elif op == "reset":
                space.reset()
                resident.clear()
            expected = recompute_live_bytes(space)
            assert (space.live_bytes(), space.array_count) == expected

    def test_verify_heap_detects_live_byte_drift(self):
        stack = make_stack(PolicyName.PANTHERA)
        stack.heap.new_object(ObjKind.DATA, 4096)
        assert verify_heap(stack.heap) == []
        stack.heap.eden._live_bytes += 1
        problems = verify_heap(stack.heap)
        assert any("live-byte counter" in p for p in problems)

    def test_verify_heap_detects_array_count_drift(self):
        stack = make_stack(PolicyName.PANTHERA)
        stack.heap.new_object(ObjKind.RDD_ARRAY, 4096)
        stack.heap.eden._array_count += 1
        problems = verify_heap(stack.heap)
        assert any("array counter" in p for p in problems)


# -- sweep-time card-table hygiene -----------------------------------------


class TestSweepCardHygiene:
    def test_major_gc_unregisters_dead_arrays(self):
        stack = make_stack(PolicyName.PANTHERA)
        heap = stack.heap
        live, dead = [], []
        for i in range(30):
            heap.tag_wait.arm(MemoryTag.NVM)
            array = heap.allocate_rdd_array(96 * 1024, rdd_id=i)
            if i % 3 == 0:
                heap.add_root(array)
                live.append(array)
            else:
                dead.append(array)
        assert all(heap.card_table.is_registered(a) for a in live + dead)
        stack.collector.collect_major()
        tracked = set(heap.card_table.tracked())
        assert not tracked.intersection(dead)
        assert all(a in tracked for a in live)
        assert all(a.space is None and a.addr is None for a in dead)
        assert verify_heap(heap) == []

    def test_unregister_reports_tracked_state(self):
        stack = make_stack(PolicyName.PANTHERA)
        heap = stack.heap
        heap.tag_wait.arm(MemoryTag.NVM)
        array = heap.allocate_rdd_array(96 * 1024, rdd_id=0)
        table = heap.card_table
        assert table.unregister(array) is True
        assert table.unregister(array) is False  # already gone

    def test_pending_scan_tracks_dirty_state(self):
        stack = make_stack(PolicyName.PANTHERA)
        heap = stack.heap
        heap.tag_wait.arm(MemoryTag.NVM)
        array = heap.allocate_rdd_array(96 * 1024, rdd_id=0)
        heap.add_root(array)
        table = heap.card_table
        assert not table.pending_scan()
        young = heap.new_object(ObjKind.DATA, 1024)
        heap.write_ref(array, young)  # old-to-young store dirties a card
        assert table.pending_scan()
        stack.collector.collect_minor()
        assert not table.pending_scan()  # padded array: never stuck


# -- batched deposits are byte-identical to per-charge deposits ------------


class TestBatchedDepositIdentity:
    def _run_cell(self):
        from repro.faults import FaultPlan, KillSpec, action_checksums
        from repro.harness.configs import paper_config
        from repro.harness.experiment import run_experiment

        config = paper_config(64, 1 / 3, PolicyName.PANTHERA, 0.01)
        plan = FaultPlan(kills=[KillSpec("shuffle", 1, 0)], seed=7)
        result = run_experiment(
            "PR",
            config,
            scale=0.01,
            workload_kwargs={"iterations": 2},
            keep_context=True,
            trace=True,
            faults=plan,
        )
        stats = result.context.collector.stats
        return {
            "elapsed": repr(result.elapsed_s),
            "gclog": render_log(stats, result.elapsed_s, tail=50),
            "checksums": action_checksums(result.action_results),
            "events": [repr(e) for e in result.trace_events],
        }

    def test_traced_faulted_run_identical_either_way(self):
        saved = charging.BATCHED_DEPOSITS
        try:
            charging.BATCHED_DEPOSITS = True
            batched = self._run_cell()
            charging.BATCHED_DEPOSITS = False
            legacy = self._run_cell()
        finally:
            charging.BATCHED_DEPOSITS = saved
        assert batched["elapsed"] == legacy["elapsed"]
        assert batched["gclog"] == legacy["gclog"]
        assert batched["checksums"] == legacy["checksums"]
        assert batched["events"] == legacy["events"]


# -- bench comparison gate --------------------------------------------------


def _doc(*benchmarks):
    return {"schema": 1, "benchmarks": list(benchmarks)}


def _micro(name, per_iter_us):
    return {"name": name, "kind": "micro", "per_iter_us": per_iter_us}


def _experiment(name, wall_s):
    return {"name": name, "kind": "experiment", "wall_s": wall_s}


class TestBenchCompare:
    def test_regression_beyond_tolerance_flagged(self):
        from repro.bench import compare_documents

        report = compare_documents(
            _doc(_micro("micro.x", 10.0)), _doc(_micro("micro.x", 13.0))
        )
        assert report.regressions == ["micro.x"]

    def test_within_tolerance_is_ok(self):
        from repro.bench import compare_documents

        report = compare_documents(
            _doc(_micro("micro.x", 10.0)), _doc(_micro("micro.x", 11.5))
        )
        assert report.regressions == []
        assert report.improvements == []

    def test_improvement_reported(self):
        from repro.bench import compare_documents

        report = compare_documents(
            _doc(_micro("micro.x", 10.0)), _doc(_micro("micro.x", 7.0))
        )
        assert report.improvements == ["micro.x"]

    def test_experiments_compare_wall_time(self):
        from repro.bench import compare_documents

        report = compare_documents(
            _doc(_experiment("experiment.PR", 10.0)),
            _doc(_experiment("experiment.PR", 30.0)),
        )
        assert report.regressions == ["experiment.PR"]

    def test_missing_benchmarks_reported_not_fatal(self):
        from repro.bench import compare_documents

        report = compare_documents(
            _doc(_micro("micro.gone", 10.0)), _doc(_micro("micro.new", 10.0))
        )
        assert report.regressions == []
        assert any("no baseline" in line for line in report.lines)
        assert any("missing from current" in line for line in report.lines)

    def test_custom_tolerance(self):
        from repro.bench import compare_documents

        report = compare_documents(
            _doc(_micro("micro.x", 10.0)),
            _doc(_micro("micro.x", 11.0)),
            tolerance=0.05,
        )
        assert report.regressions == ["micro.x"]


class TestBenchCli:
    def _stub_suite(self, monkeypatch, per_iter_us):
        import repro.bench as bench

        document = {
            "schema": 1,
            "quick": True,
            "peak_rss_kb": 12345,
            "benchmarks": [_micro("micro.x", per_iter_us)],
        }
        monkeypatch.setattr(
            bench,
            "run_bench_suite",
            lambda quick=False, rounds=None, log=None, scale_sweep=False,
            profile=False: document,
        )
        return document

    def test_bench_writes_report(self, tmp_path, monkeypatch, capsys):
        self._stub_suite(monkeypatch, 10.0)
        out = tmp_path / "bench.json"
        rc = cli_main(["bench", "--quick", "--out", str(out)])
        assert rc == 0
        data = json.loads(out.read_text())
        assert data["benchmarks"][0]["name"] == "micro.x"
        assert "peak RSS" in capsys.readouterr().out

    def test_compare_gate_fails_on_regression(self, tmp_path, monkeypatch):
        self._stub_suite(monkeypatch, 20.0)
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps(_doc(_micro("micro.x", 10.0))))
        out = tmp_path / "bench.json"
        rc = cli_main(
            ["bench", "--quick", "--out", str(out), "--compare", str(baseline)]
        )
        assert rc == 1

    def test_advisory_mode_never_fails(self, tmp_path, monkeypatch):
        self._stub_suite(monkeypatch, 20.0)
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps(_doc(_micro("micro.x", 10.0))))
        out = tmp_path / "bench.json"
        rc = cli_main(
            [
                "bench",
                "--quick",
                "--out",
                str(out),
                "--compare",
                str(baseline),
                "--advisory",
            ]
        )
        assert rc == 0
