"""Minor-collection tests: aging, promotion, eager promotion, tag
propagation and card hygiene (§4.2.2)."""


from repro.config import MiB, PolicyName
from repro.core.tags import MEMORY_BITS_NVM, MemoryTag
from repro.heap.object_model import ObjKind
from tests.conftest import make_stack


def alloc_rooted(stack, size=1024, kind=ObjKind.DATA):
    obj = stack.heap.new_object(kind, size)
    stack.heap.add_root(obj)
    return obj


class TestSurvivorAging:
    def test_live_young_object_survives(self, dram_stack):
        obj = alloc_rooted(dram_stack)
        dram_stack.collector.collect_minor()
        assert obj.space is not None
        assert dram_stack.heap.in_young(obj)
        assert obj.age == 1

    def test_unreferenced_object_dies(self, dram_stack):
        heap = dram_stack.heap
        obj = heap.new_object(ObjKind.DATA, 1024)  # never rooted
        dram_stack.collector.collect_minor()
        assert obj not in heap.survivor_from.objects
        assert obj not in heap.survivor_to.objects

    def test_eden_reset_after_scavenge(self, dram_stack):
        dram_stack.heap.allocate_ephemeral(MiB)
        dram_stack.collector.collect_minor()
        assert dram_stack.heap.eden.used == 0

    def test_survivor_spaces_flip(self, dram_stack):
        heap = dram_stack.heap
        before_from = heap.survivor_from
        dram_stack.collector.collect_minor()
        assert heap.survivor_from is not before_from

    def test_promotion_after_tenuring_threshold(self, dram_stack):
        threshold = dram_stack.config.tenuring_threshold
        obj = alloc_rooted(dram_stack)
        for _ in range(threshold):
            dram_stack.collector.collect_minor()
        assert dram_stack.heap.in_old(obj)

    def test_minor_count_recorded(self, dram_stack):
        dram_stack.collector.collect_minor()
        stats = dram_stack.collector.stats
        assert stats.minor_count == 1
        assert stats.minor_ns > 0
        assert stats.pauses[0][0] == "minor"


class TestEagerPromotion:
    def test_tagged_object_promoted_immediately(self, panthera_stack):
        obj = alloc_rooted(panthera_stack)
        obj.set_tag(MemoryTag.NVM)
        panthera_stack.collector.collect_minor()
        assert obj.space.name == "old-nvm"
        assert panthera_stack.collector.stats.eager_promoted_objects == 1

    def test_dram_tagged_object_goes_to_old_dram(self, panthera_stack):
        obj = alloc_rooted(panthera_stack)
        obj.set_tag(MemoryTag.DRAM)
        panthera_stack.collector.collect_minor()
        assert obj.space.name == "old-dram"

    def test_eager_promotion_disabled_by_config(self):
        stack = make_stack(PolicyName.PANTHERA, eager_promotion=False)
        obj = alloc_rooted(stack)
        obj.set_tag(MemoryTag.NVM)
        stack.collector.collect_minor()
        assert stack.heap.in_young(obj)

    def test_untagged_object_not_eager(self, panthera_stack):
        obj = alloc_rooted(panthera_stack)
        panthera_stack.collector.collect_minor()
        assert panthera_stack.heap.in_young(obj)


class TestTagPropagation:
    def test_array_tag_propagates_to_young_slabs(self, panthera_stack):
        heap = panthera_stack.heap
        panthera_stack.runtime.rdd_alloc(
            heap.new_object(ObjKind.RDD_TOP, 64), MemoryTag.NVM
        )
        array = heap.allocate_rdd_array(2 * MiB, rdd_id=1)
        slab = heap.new_object(ObjKind.DATA, 64 * 1024)
        heap.write_ref(array, slab)
        panthera_stack.collector.collect_minor()
        assert slab.memory_bits == MEMORY_BITS_NVM
        assert slab.space.name == "old-nvm"

    def test_dram_wins_conflicts_during_tracing(self, panthera_stack):
        heap = panthera_stack.heap
        heap.tag_wait.arm(MemoryTag.NVM)
        nvm_array = heap.allocate_rdd_array(2 * MiB, rdd_id=1)
        heap.tag_wait.arm(MemoryTag.DRAM)
        dram_array = heap.allocate_rdd_array(2 * MiB, rdd_id=2)
        shared = heap.new_object(ObjKind.DATA, 64 * 1024)
        heap.write_ref(nvm_array, shared)
        heap.write_ref(dram_array, shared)
        panthera_stack.collector.collect_minor()
        assert shared.tag is MemoryTag.DRAM
        assert shared.space.name == "old-dram"

    def test_root_with_memory_bits_moved_by_root_task(self, panthera_stack):
        # §4.2.2: tops whose bits were set by rdd_alloc are recognised in
        # the root task and moved to the old generation.
        top = alloc_rooted(panthera_stack, kind=ObjKind.RDD_TOP)
        panthera_stack.runtime.rdd_alloc(top, MemoryTag.NVM)
        panthera_stack.collector.collect_minor()
        assert top.space.name == "old-nvm"


class TestCardHygiene:
    def test_scanned_array_cleaned_once_children_promoted(self, panthera_stack):
        heap = panthera_stack.heap
        heap.tag_wait.arm(MemoryTag.NVM)
        array = heap.allocate_rdd_array(2 * MiB, rdd_id=1)
        slab = heap.new_object(ObjKind.DATA, 1024)
        heap.write_ref(array, slab)
        panthera_stack.collector.collect_minor()
        fresh, stuck = heap.card_table.scan_plan()
        assert array not in fresh and array not in stuck

    def test_stock_array_stays_stuck(self, dram_stack):
        heap = dram_stack.heap
        array = heap.allocate_rdd_array(2 * MiB + 7, rdd_id=1)
        slab = heap.new_object(ObjKind.DATA, 1024)
        heap.write_ref(array, slab)
        heap.add_root(array)
        dram_stack.collector.collect_minor()
        _, stuck = heap.card_table.scan_plan()
        assert array in stuck
        assert dram_stack.collector.stats.stuck_rescans >= 1

    def test_array_with_remaining_young_refs_stays_dirty(self, dram_stack):
        heap = dram_stack.heap
        array = heap.allocate_rdd_array(2 * MiB, rdd_id=1)
        heap.add_root(array)
        slab = heap.new_object(ObjKind.DATA, 1024)
        heap.write_ref(array, slab)
        dram_stack.collector.collect_minor()
        # The slab survived into a survivor space (age 1 < threshold), so
        # the array still holds an old-to-young reference.
        assert heap.in_young(slab)
        fresh, stuck = heap.card_table.scan_plan()
        assert array in fresh or array in stuck

    def test_card_scan_bytes_accounted(self, dram_stack):
        heap = dram_stack.heap
        array = heap.allocate_rdd_array(2 * MiB, rdd_id=1)
        slab = heap.new_object(ObjKind.DATA, 1024)
        heap.write_ref(array, slab)
        dram_stack.collector.collect_minor()
        assert dram_stack.collector.stats.card_scanned_bytes >= array.size
