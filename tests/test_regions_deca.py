"""Lifetime-based region allocation (Deca, arXiv 1602.01959).

Covers the rival policy end to end: the lifetime classifier, the region
arenas (ephemeral / stage / per-RDD job regions), the wholesale-reset
accounting property (region resets free exactly the bytes the
incremental space counters attribute to the arenas — no drift vs
``verify_heap``), strict trace replay tolerating the informational
``region_alloc``/``region_reset`` kinds, the ``--jobs 1`` vs ``--jobs 4``
byte-identity of a Deca run, the zero-GC acceptance criterion, and the
``repro analyze`` inactive-tier regression (``MEMORY_ONLY_SER`` /
``OFF_HEAP`` persists must not be reported as ``serialized-nvm`` when
``SERIALIZED_TIER`` is off).
"""

import itertools
import os
import subprocess
import sys

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.config import PolicyName
from repro.core.static_analysis import analyze_program, classify_lifetimes
from repro.core.tags import Placement
from repro.harness.configs import paper_config
from repro.harness.engine import ExperimentEngine, ExperimentPoint
from repro.harness.experiment import run_experiment
from repro.heap.object_model import ObjKind
from repro.heap.regions import LifetimeClass, _ExtentAllocator
from repro.heap.verify import verify_heap
from repro.spark import storage as _storage
from repro.spark.storage import StorageLevel
from repro.trace import events_to_jsonl, oracle_check
from repro.trace.events import REGION_ALLOC, REGION_RESET
from repro.trace.replay import replay_events
from repro.workloads.registry import build_workload
from tests.conftest import small_context

SCALE = 0.02


def _deca_config():
    return paper_config(64, 1 / 3, PolicyName.DECA, SCALE)


def _under_tier(enabled, fn):
    """Call ``fn()`` with the serialized-tier flag forced to ``enabled``."""
    saved = _storage.SERIALIZED_TIER
    _storage.SERIALIZED_TIER = enabled
    try:
        return fn()
    finally:
        _storage.SERIALIZED_TIER = saved


# -- the lifetime classifier -------------------------------------------------


class TestLifetimeClassifier:
    def test_pagerank_classes(self):
        spec = build_workload("PR", scale=0.01, iterations=2)
        analysis = classify_lifetimes(spec.program)
        # Persisted across iterations: job-long.
        assert analysis.class_of("links") is LifetimeClass.JOB
        assert analysis.class_of("contribs") is LifetimeClass.JOB
        # Materialised by an action only: stage-local.
        assert analysis.class_of("ranks") is LifetimeClass.STAGE

    def test_never_materialised_is_ephemeral(self):
        spec = build_workload("KM", scale=0.01, iterations=2)
        analysis = classify_lifetimes(spec.program)
        ephemeral = {
            var
            for var, cls in analysis.classes.items()
            if cls is LifetimeClass.EPHEMERAL
        }
        for var in ephemeral:
            assert "never materialised" in analysis.rationale[var]

    def test_every_variable_has_a_rationale(self):
        spec = build_workload("LR", scale=0.01, iterations=2)
        analysis = classify_lifetimes(spec.program)
        assert set(analysis.classes) == set(analysis.rationale)
        assert analysis.classes, "classifier produced no classes"


# -- the extent allocator ----------------------------------------------------


class TestExtentAllocator:
    def test_first_fit_and_coalescing(self):
        alloc = _ExtentAllocator(0, 100)
        a = alloc.take(40)
        b = alloc.take(40)
        assert (a, b) == (0, 40)
        assert alloc.free_bytes == 20
        alloc.give(0, 40)
        alloc.give(40, 80)
        # Adjacent extents coalesce back into one hole spanning it all.
        assert alloc.free_bytes == 100
        assert alloc.largest_extent == 100

    def test_exhaustion_returns_none(self):
        alloc = _ExtentAllocator(0, 10)
        assert alloc.take(10) == 0
        assert alloc.take(1) is None
        alloc.give(0, 10)
        assert alloc.take(1) == 0


# -- satellite: wholesale-reset accounting property --------------------------

_REGION_OPS = st.lists(
    st.tuples(
        st.sampled_from(["job", "stage", "ephemeral", "boundary", "plain"]),
        st.integers(min_value=1, max_value=48),
    ),
    min_size=1,
    max_size=24,
)


class TestResetAccounting:
    @settings(
        max_examples=40,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(ops=_REGION_OPS)
    def test_stage_boundary_frees_exactly_the_counted_bytes(self, ops):
        """A wholesale reset at a stage boundary releases exactly the
        bytes the incremental space counters attribute to the stage and
        ephemeral arenas, with no drift against ``verify_heap``'s
        recomputed ledger at any step."""
        ctx = small_context(PolicyName.DECA)
        heap = ctx.heap
        rm = heap.regions
        rids = itertools.count(1000)
        for kind, magnitude in ops:
            nbytes = magnitude * 1024
            if kind == "job":
                rid = next(rids)
                rm.note_rdd(rid, LifetimeClass.JOB)
                heap.new_object(ObjKind.DATA, nbytes, rdd_id=rid)
            elif kind == "stage":
                rid = next(rids)
                rm.note_rdd(rid, LifetimeClass.STAGE)
                heap.new_object(ObjKind.DATA, nbytes, rdd_id=rid)
            elif kind == "ephemeral":
                heap.allocate_ephemeral(nbytes)
            elif kind == "plain":
                heap.new_object(ObjKind.DATA, nbytes)
            else:  # boundary
                expected = rm.stage.used + rm.ephemeral.used
                before = rm.reset_bytes
                rm.stage_boundary()
                assert rm.stage.used == 0
                assert rm.stage.live_bytes() == 0
                assert rm.ephemeral.used == 0
                assert rm.reset_bytes - before == expected
            assert verify_heap(heap) == []
        expected = rm.stage.used + rm.ephemeral.used + rm.job.live_bytes()
        before = rm.reset_bytes
        rm.job_end()
        assert rm.reset_bytes - before == expected
        assert rm.job.live_bytes() == 0
        assert verify_heap(heap) == []

    def test_job_regions_recycle_freed_extents(self):
        """Freeing a job region returns its extent for reuse — the
        arena's free bytes plus its live bytes always cover the span."""
        ctx = small_context(PolicyName.DECA)
        heap = ctx.heap
        rm = heap.regions
        rm.note_rdd(7, LifetimeClass.JOB)
        objs = [
            heap.new_object(ObjKind.DATA, 64 * 1024, rdd_id=7)
            for _ in range(4)
        ]
        assert all(o.space is rm.job for o in objs)
        live = rm.job.live_bytes()
        assert rm._job_alloc.free_bytes == rm.job.size - live


# -- satellite: strict replay + oracle over a Deca run -----------------------


class TestDecaTraceReplay:
    @pytest.fixture(scope="class")
    def pr_result(self):
        return run_experiment(
            "PR",
            _deca_config(),
            scale=SCALE,
            workload_kwargs={"iterations": 2},
            keep_context=True,
            trace=True,
        )

    def test_region_kinds_are_emitted(self, pr_result):
        kinds = {e.kind for e in pr_result.trace_events}
        assert REGION_ALLOC in kinds
        assert REGION_RESET in kinds

    def test_strict_replay_skips_region_kinds(self, pr_result):
        # Strict replay must tolerate the informational region kinds
        # exactly like throttle/recompute — no ReplayError, and the
        # region bytes never enter the per-space ledger.
        state = replay_events(pr_result.trace_events, strict=True)
        for space in pr_result.context.heap.regions.spaces:
            assert space.name not in state.live_bytes

    def test_oracle_passes_on_a_deca_run(self, pr_result):
        ctx = pr_result.context
        assert (
            oracle_check(ctx.heap, ctx.collector.stats, pr_result.trace_events)
            == []
        )

    def test_region_classes_see_zero_gc_pauses(self, pr_result):
        # The acceptance criterion: region-managed classes are never
        # traced, so a Deca PR run completes without a single pause.
        assert pr_result.minor_gcs == 0
        assert pr_result.major_gcs == 0
        assert pr_result.gc_s == 0.0


# -- satellite: --jobs 1 vs --jobs 4 byte-identity ---------------------------


def _deca_points():
    return [
        ExperimentPoint(
            "PR",
            _deca_config(),
            SCALE,
            workload_kwargs={"iterations": 2},
            trace=True,
        ),
        ExperimentPoint(
            "KM",
            _deca_config(),
            SCALE,
            workload_kwargs={"iterations": 2},
            trace=True,
        ),
    ]


def test_deca_trace_byte_identical_serial_vs_parallel():
    serial = ExperimentEngine(jobs=1).run(_deca_points())
    parallel = ExperimentEngine(jobs=4).run(_deca_points())
    assert len(serial) == len(parallel) == 2
    for lhs, rhs in zip(serial, parallel):
        assert lhs.trace_events, "tracing recorded nothing"
        assert events_to_jsonl(lhs.trace_events) == events_to_jsonl(
            rhs.trace_events
        )


# -- satellite: analyze must not report serialized-nvm when the tier is off --


class TestAnalyzeInactiveTier:
    def test_ser_persist_reports_legacy_placement_when_tier_off(self):
        spec = build_workload(
            "KM",
            scale=0.01,
            iterations=2,
            persist_level=StorageLevel.MEMORY_ONLY_SER,
        )
        analysis = _under_tier(False, lambda: analyze_program(spec.program))
        placement = analysis.placement_of("points")
        assert placement is not Placement.SERIALIZED_NVM
        assert placement is Placement.DRAM_HEAP
        assert "points" in analysis.tier_inactive
        assert "SERIALIZED_TIER is off" in analysis.rationale["points"]

    def test_off_heap_persist_is_flagged_too(self):
        spec = build_workload(
            "KM",
            scale=0.01,
            iterations=2,
            persist_level=StorageLevel.OFF_HEAP,
        )
        analysis = _under_tier(False, lambda: analyze_program(spec.program))
        assert analysis.placement_of("points") is not Placement.SERIALIZED_NVM
        assert "points" in analysis.tier_inactive

    def test_active_tier_keeps_the_serialized_placement(self):
        spec = build_workload(
            "KM",
            scale=0.01,
            iterations=2,
            persist_level=StorageLevel.MEMORY_ONLY_SER,
        )
        analysis = _under_tier(True, lambda: analyze_program(spec.program))
        assert analysis.placement_of("points") is Placement.SERIALIZED_NVM
        assert analysis.tier_inactive == set()

    def test_cli_analyze_prints_the_inactive_note(self):
        env = dict(os.environ, REPRO_SERIALIZED_TIER="0")
        env["PYTHONPATH"] = "src"
        proc = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro.cli",
                "analyze",
                "KM",
                "--persist",
                "MEMORY_ONLY_SER",
            ],
            capture_output=True,
            text=True,
            env=env,
            cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        )
        assert proc.returncode == 0, proc.stderr
        assert "SERIALIZED_TIER is off" in proc.stdout
        assert "serialized-nvm" not in proc.stdout
