"""Backward tag propagation to ShuffledRDDs (§3, 'Dealing with ShuffledRDD')."""

import pytest

from repro.core.lineage_propagation import propagate_tags
from repro.core.tags import MemoryTag
from repro.spark.storage import StorageLevel
from tests.conftest import small_context


@pytest.fixture
def ctx():
    return small_context()


def base(ctx, n=8):
    return ctx.parallelize([(i % 4, i) for i in range(n)], 2, 2**20, name="base")


class TestPropagation:
    def test_tag_reaches_shuffled_stage_input(self, ctx):
        shuffled = base(ctx).reduce_by_key(lambda a, b: a + b)
        terminal = shuffled.map_values(lambda v: v).flat_map(lambda r: [r])
        assignments = {}
        propagate_tags(terminal, MemoryTag.NVM, assignments)
        assert assignments[shuffled.id] is MemoryTag.NVM
        assert assignments[terminal.id] is MemoryTag.NVM

    def test_walk_stops_at_shuffle_boundary(self, ctx):
        upstream = base(ctx).map(lambda r: r)
        shuffled = upstream.group_by_key()
        terminal = shuffled.map_values(len)
        assignments = {}
        propagate_tags(terminal, MemoryTag.DRAM, assignments)
        # The RDD behind the shuffle belongs to the previous stage.
        assert upstream.id not in assignments

    def test_walk_stops_at_persisted_parents(self, ctx):
        cached = base(ctx).map(lambda r: r)
        cached.persist(StorageLevel.MEMORY_ONLY)
        terminal = cached.map(lambda r: r)
        assignments = {}
        propagate_tags(terminal, MemoryTag.NVM, assignments)
        assert cached.id not in assignments  # keeps its own static tag

    def test_conflicts_resolve_dram_first(self, ctx):
        shuffled = base(ctx).reduce_by_key(lambda a, b: a + b)
        downstream = shuffled.map_values(lambda v: v)
        assignments = {}
        propagate_tags(downstream, MemoryTag.NVM, assignments)
        propagate_tags(downstream, MemoryTag.DRAM, assignments)
        assert assignments[shuffled.id] is MemoryTag.DRAM
        # And NVM never downgrades an existing DRAM assignment.
        propagate_tags(downstream, MemoryTag.NVM, assignments)
        assert assignments[shuffled.id] is MemoryTag.DRAM

    def test_intermediate_narrow_rdds_tagged(self, ctx):
        shuffled = base(ctx).group_by_key()
        mid = shuffled.map_values(len)
        terminal = mid.map(lambda r: r)
        assignments = {}
        propagate_tags(terminal, MemoryTag.NVM, assignments)
        assert assignments[mid.id] is MemoryTag.NVM

    def test_pagerank_shape(self, ctx):
        """Figure 2(b): contribs' NVM tag reaches ShuffledRDD[8] but not
        the persisted links."""
        links = base(ctx).group_by_key()
        links.persist(StorageLevel.MEMORY_ONLY)
        ranks_shuffled = base(ctx).reduce_by_key(lambda a, b: a + b)
        ranks = ranks_shuffled.map_values(lambda v: v)
        contribs = links.join(ranks).values().flat_map(lambda r: [r])
        assignments = {}
        propagate_tags(contribs, MemoryTag.NVM, assignments)
        assert assignments[ranks_shuffled.id] is MemoryTag.NVM
        assert links.id not in assignments

    def test_runtime_uses_propagated_tag_for_transients(self, ctx):
        """End-to-end: a materialised ShuffledRDD transient lands in the
        space its propagated tag names."""
        from repro.spark.program import Program, execute_program

        from repro.workloads.datasets import powerlaw_graph

        ds = powerlaw_graph("prop-e2e", 20, 60, total_bytes=6 * 2**20, seed=2)
        p = Program()
        edges = p.let("edges", p.source(ds))
        anchor = p.let(
            "anchor", edges.map(lambda r: r).persist(StorageLevel.MEMORY_ONLY)
        )
        agg = p.let(
            "agg",
            edges.map(lambda r: r)
            .reduce_by_key(lambda a, b: a)
            .map(lambda r: r)
            .persist(StorageLevel.MEMORY_ONLY),
        )
        with p.loop(2):
            p.let("use", anchor.join(agg))
        p.action(p.let("n", anchor.map(lambda r: r)), "count")
        from repro.core.static_analysis import analyze_program

        analysis = analyze_program(p)
        execute_program(p, ctx, analysis.tags)
        assert ctx.scheduler.runtime_tags  # propagation happened
