"""Tests for ``scripts/bench_compare.py`` and ``scripts/bench_trend.py``.

The compare script gates main; until now nothing pinned its tolerance
arithmetic, ``--advisory`` exit behaviour, missing-key handling or the
``sweep_summary`` linearity ratios.  Fixtures are small synthetic
``BENCH_*.json`` documents, so these tests are immune to machine speed.
"""

import importlib.util
import json
import sys
from pathlib import Path

import pytest

from repro.bench import compare_documents

_SCRIPTS = Path(__file__).resolve().parent.parent / "scripts"


def _load_script(name):
    spec = importlib.util.spec_from_file_location(name, _SCRIPTS / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    sys.modules[name] = module
    spec.loader.exec_module(module)
    return module


bench_compare = _load_script("bench_compare")
bench_trend = _load_script("bench_trend")


def _doc(records, created="2026-01-01T00:00:00"):
    return {"schema": 1, "created": created, "benchmarks": records}


def _micro(name, per_iter_us):
    return {"name": name, "kind": "micro", "per_iter_us": per_iter_us}


def _experiment(name, wall_s):
    return {"name": name, "kind": "experiment", "wall_s": wall_s}


def _summary(name, ratio):
    return {"name": name, "kind": "sweep_summary", "per_record_ratio": ratio}


def _write(tmp_path, name, document):
    path = tmp_path / name
    path.write_text(json.dumps(document))
    return str(path)


class TestCompareDocuments:
    def test_within_tolerance_is_ok(self):
        report = compare_documents(
            _doc([_micro("micro.a", 10.0)]),
            _doc([_micro("micro.a", 11.5)]),
            tolerance=0.20,
        )
        assert report.regressions == []
        assert report.improvements == []
        assert any("micro.a" in line and "ok" in line for line in report.lines)

    def test_beyond_tolerance_regresses(self):
        report = compare_documents(
            _doc([_micro("micro.a", 10.0)]),
            _doc([_micro("micro.a", 12.5)]),
            tolerance=0.20,
        )
        assert report.regressions == ["micro.a"]

    def test_tolerance_boundary_is_inclusive(self):
        # ratio == 1 + tolerance exactly: not a regression (strict >).
        report = compare_documents(
            _doc([_micro("micro.a", 10.0)]),
            _doc([_micro("micro.a", 12.0)]),
            tolerance=0.20,
        )
        assert report.regressions == []

    def test_speedup_beyond_tolerance_reports_improvement(self):
        report = compare_documents(
            _doc([_micro("micro.a", 10.0)]),
            _doc([_micro("micro.a", 5.0)]),
            tolerance=0.20,
        )
        assert report.improvements == ["micro.a"]
        assert report.regressions == []

    def test_missing_baseline_entry_is_skipped_not_failed(self):
        report = compare_documents(
            _doc([]), _doc([_micro("micro.new", 10.0)]), tolerance=0.20
        )
        assert report.regressions == []
        assert any(
            "micro.new" in line and "no baseline" in line
            for line in report.lines
        )

    def test_new_deca_cells_are_advisory_not_regressions(self):
        # A candidate adding whole new suites (the deca.* cells) must
        # not hard-fail against the older committed baseline: the new
        # keys land on ``new_keys`` and never on ``regressions``.
        report = compare_documents(
            _doc([_experiment("experiment.PR.panthera", 1.0)]),
            _doc(
                [
                    _experiment("experiment.PR.panthera", 1.0),
                    _experiment("experiment.PR.deca", 0.9),
                    _experiment("experiment.KM.deca", 0.8),
                ]
            ),
            tolerance=0.20,
        )
        assert report.regressions == []
        assert report.new_keys == [
            "experiment.PR.deca",
            "experiment.KM.deca",
        ]
        assert any(
            "experiment.PR.deca" in line and "new key" in line
            for line in report.lines
        )

    def test_current_record_missing_metric_key_does_not_crash(self):
        # The baseline has the metric but the current record lost it
        # (e.g. a schema change): advisory skip, not a KeyError.
        baseline = _doc([_micro("micro.a", 10.0)])
        current = _doc([{"name": "micro.a", "kind": "micro"}])
        report = compare_documents(baseline, current, tolerance=0.20)
        assert report.regressions == []
        assert any(
            "micro.a" in line and "skipped" in line for line in report.lines
        )

    def test_missing_current_entry_is_reported(self):
        report = compare_documents(
            _doc([_micro("micro.gone", 10.0)]), _doc([]), tolerance=0.20
        )
        assert report.regressions == []
        assert any(
            "micro.gone" in line and "missing from current run" in line
            for line in report.lines
        )

    def test_unknown_kind_and_missing_metric_key_are_skipped(self):
        baseline = _doc([{"name": "odd", "kind": "mystery", "wall_s": 1.0}])
        current = _doc(
            [
                {"name": "odd", "kind": "mystery", "wall_s": 9.0},
                {"name": "micro.nokey", "kind": "micro"},
            ]
        )
        report = compare_documents(baseline, current, tolerance=0.20)
        assert report.regressions == []

    def test_zero_baseline_metric_is_unusable_not_a_crash(self):
        report = compare_documents(
            _doc([_micro("micro.a", 0.0)]),
            _doc([_micro("micro.a", 5.0)]),
            tolerance=0.20,
        )
        assert report.regressions == []
        assert any("unusable baseline" in line for line in report.lines)

    def test_sweep_summary_gates_on_the_linearity_ratio(self):
        baseline = _doc([_summary("sweep.PR.panthera.linearity", 1.1)])
        worse = _doc([_summary("sweep.PR.panthera.linearity", 1.7)])
        report = compare_documents(baseline, worse, tolerance=0.20)
        assert report.regressions == ["sweep.PR.panthera.linearity"]
        same = _doc([_summary("sweep.PR.panthera.linearity", 1.15)])
        assert compare_documents(baseline, same, tolerance=0.20).regressions == []

    def test_experiments_gate_on_wall_seconds(self):
        report = compare_documents(
            _doc([_experiment("experiment.PR.panthera", 1.0)]),
            _doc([_experiment("experiment.PR.panthera", 2.5)]),
            tolerance=1.0,
        )
        assert report.regressions == ["experiment.PR.panthera"]


class TestBenchCompareCli:
    def test_regression_exits_nonzero(self, tmp_path, capsys):
        baseline = _write(tmp_path, "base.json", _doc([_micro("micro.a", 10.0)]))
        current = _write(tmp_path, "cur.json", _doc([_micro("micro.a", 20.0)]))
        assert bench_compare.main([baseline, current]) == 1
        out = capsys.readouterr().out
        assert "REGRESSION" in out

    def test_advisory_reports_but_exits_zero(self, tmp_path, capsys):
        baseline = _write(tmp_path, "base.json", _doc([_micro("micro.a", 10.0)]))
        current = _write(tmp_path, "cur.json", _doc([_micro("micro.a", 20.0)]))
        assert bench_compare.main([baseline, current, "--advisory"]) == 0
        assert "REGRESSION" in capsys.readouterr().out

    def test_custom_tolerance_waves_the_regression_through(self, tmp_path):
        baseline = _write(tmp_path, "base.json", _doc([_micro("micro.a", 10.0)]))
        current = _write(tmp_path, "cur.json", _doc([_micro("micro.a", 20.0)]))
        assert bench_compare.main([baseline, current, "--tolerance", "1.5"]) == 0

    def test_new_suites_in_candidate_exit_zero(self, tmp_path, capsys):
        baseline = _write(
            tmp_path, "base.json", _doc([_micro("micro.a", 10.0)])
        )
        current = _write(
            tmp_path,
            "cur.json",
            _doc(
                [
                    _micro("micro.a", 10.0),
                    _experiment("experiment.PR.deca", 1.0),
                ]
            ),
        )
        assert bench_compare.main([baseline, current]) == 0
        assert "new key" in capsys.readouterr().out

    def test_clean_run_exits_zero(self, tmp_path, capsys):
        baseline = _write(tmp_path, "base.json", _doc([_micro("micro.a", 10.0)]))
        current = _write(tmp_path, "cur.json", _doc([_micro("micro.a", 10.1)]))
        assert bench_compare.main([baseline, current]) == 0
        assert "no regressions" in capsys.readouterr().out


class TestBenchTrend:
    def test_renders_one_table_per_kind_with_delta(self, tmp_path):
        old = _doc(
            [
                _micro("micro.a", 10.0),
                _experiment("experiment.PR.panthera", 1.0),
                _summary("sweep.PR.panthera.linearity", 1.2),
            ],
            created="2026-01-01T00:00:00",
        )
        new = _doc(
            [
                _micro("micro.a", 5.0),
                _experiment("experiment.PR.panthera", 1.5),
                _summary("sweep.PR.panthera.linearity", 1.2),
            ],
            created="2026-02-01T00:00:00",
        )
        rendered = bench_trend.render_trend([old, new], ["2026-01-01", "2026-02-01"])
        assert "## Microbenchmarks (us/iter)" in rendered
        assert "## Experiment cells (wall s)" in rendered
        assert "## Scale-sweep linearity (x growth)" in rendered
        assert "| micro.a | 10 | 5 | -50.0% |" in rendered
        assert "| experiment.PR.panthera | 1 | 1.5 | +50.0% |" in rendered

    def test_benchmark_missing_from_one_run_renders_dash(self, tmp_path):
        old = _doc([_micro("micro.a", 10.0)])
        new = _doc([_micro("micro.a", 10.0), _micro("micro.b", 3.0)])
        rendered = bench_trend.render_trend([old, new], ["old", "new"])
        assert "| micro.b | - | 3 | - |" in rendered

    def test_cli_writes_the_output_file(self, tmp_path, capsys):
        base = _write(tmp_path, "base.json", _doc([_micro("micro.a", 10.0)]))
        out = tmp_path / "TREND.md"
        assert bench_trend.main([base, "--out", str(out)]) == 0
        assert out.read_text().startswith("# Benchmark trend")

    def test_cli_defaults_to_stdout(self, tmp_path, capsys):
        base = _write(tmp_path, "base.json", _doc([_micro("micro.a", 10.0)]))
        assert bench_trend.main([base]) == 0
        assert capsys.readouterr().out.startswith("# Benchmark trend")
