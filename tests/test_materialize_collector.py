"""Direct unit tests for the materialiser and the collector driver."""

import pytest

from repro.config import MiB
from repro.core.tags import MemoryTag
from repro.spark.materialize import Materializer
from tests.conftest import make_stack


class FakeRDD:
    """Just enough RDD surface for the materialiser."""

    def __init__(self, rdd_id=1, bytes_per_record=MiB):
        self.id = rdd_id
        self.bytes_per_record = bytes_per_record


def make_materializer(stack):
    from repro.spark.costmodel import MutatorCosts

    return Materializer(stack.heap, stack.machine, MutatorCosts(), stack.runtime)


class TestMaterializer:
    def test_block_shape(self, panthera_stack):
        materializer = make_materializer(panthera_stack)
        parts = [[(i, i)] * 3 for i in range(2)]
        block = materializer.materialize(FakeRDD(), parts, MemoryTag.NVM)
        assert len(block.arrays) == 2
        assert len(block.slabs) == 2
        assert block.data_bytes == pytest.approx(6 * MiB)
        assert panthera_stack.heap.is_root(block.top)

    def test_array_plus_slabs_cover_partition_bytes(self, panthera_stack):
        materializer = make_materializer(panthera_stack)
        block = materializer.materialize(FakeRDD(), [[(0, 0)] * 4], MemoryTag.NVM)
        covered = block.arrays[0].size + sum(s.size for s in block.slabs[0])
        assert covered == pytest.approx(4 * MiB, rel=0.01)

    def test_tagged_arrays_land_in_tagged_space(self, panthera_stack):
        materializer = make_materializer(panthera_stack)
        block = materializer.materialize(FakeRDD(), [[(0, 0)] * 2], MemoryTag.DRAM)
        assert block.arrays[0].space.name == "old-dram"

    def test_serialized_shrinks_footprint(self, panthera_stack):
        materializer = make_materializer(panthera_stack)
        plain = materializer.materialize(FakeRDD(1), [[(0, 0)] * 4], None)
        ser = materializer.materialize(
            FakeRDD(2), [[(0, 0)] * 4], None, serialized=True
        )
        assert ser.data_bytes < plain.data_bytes

    def test_release_unroots(self, panthera_stack):
        materializer = make_materializer(panthera_stack)
        block = materializer.materialize(FakeRDD(), [[(0, 0)]], None)
        materializer.release(block)
        assert not panthera_stack.heap.is_root(block.top)

    def test_partition_traffic_covers_all_bytes(self, panthera_stack):
        materializer = make_materializer(panthera_stack)
        block = materializer.materialize(FakeRDD(), [[(0, 0)] * 3], MemoryTag.NVM)
        pieces = block.partition_traffic(0)
        assert sum(n for _, n in pieces) == pytest.approx(3 * MiB, rel=0.01)

    def test_device_histogram_sums_to_block(self, panthera_stack):
        materializer = make_materializer(panthera_stack)
        block = materializer.materialize(FakeRDD(), [[(0, 0)] * 3], MemoryTag.DRAM)
        panthera_stack.collector.collect_minor()  # slabs promoted
        hist = block.device_histogram()
        total = sum(hist.values())
        # top + array + slabs
        assert total >= block.data_bytes * 0.9

    def test_no_runtime_means_untagged(self):
        stack = make_stack()
        from repro.spark.costmodel import MutatorCosts

        materializer = Materializer(stack.heap, stack.machine, MutatorCosts(), None)
        block = materializer.materialize(FakeRDD(), [[(0, 0)] * 2], MemoryTag.DRAM)
        # Without the Panthera runtime, the tag has no channel to travel.
        assert block.arrays[0].memory_bits == 0


class TestCollectorDriver:
    def test_minors_since_major_counter(self, panthera_stack):
        collector = panthera_stack.collector
        collector.collect_minor()
        collector.collect_minor()
        assert collector.minors_since_major == 2
        collector.collect_major()
        assert collector.minors_since_major == 0

    def test_old_free_bytes(self, panthera_stack):
        free_before = panthera_stack.collector.old_free_bytes()
        panthera_stack.heap.allocate_rdd_array(2 * MiB, rdd_id=1)
        assert panthera_stack.collector.old_free_bytes() < free_before

    def test_stats_shared_with_heap_collector(self, panthera_stack):
        assert panthera_stack.heap.collector is panthera_stack.collector
