"""Deep-dive tests on scheduler and collector internals."""

import pytest

from repro.config import DeviceKind, MiB, PolicyName
from repro.core.tags import MemoryTag
from repro.heap.object_model import ObjKind
from repro.spark.rdd import ShuffledRDD
from repro.spark.storage import StorageLevel
from tests.conftest import make_stack, small_context


@pytest.fixture
def ctx():
    return small_context()


def parallelize(ctx, n=12, partitions=3, name="src"):
    return ctx.parallelize([(i % 4, i) for i in range(n)], partitions, 2 * MiB, name=name)


class TestSchedulerInternals:
    def test_lazy_shuffle_map_runs_on_demand(self, ctx):
        reduced = parallelize(ctx).reduce_by_key(lambda a, b: a + b)
        dep = reduced.shuffle_dep
        assert not ctx.shuffles.has(dep.shuffle_id)
        ctx.scheduler._push_scope()
        try:
            records = ctx.scheduler.fetch_shuffle(dep, 0)
        finally:
            ctx.scheduler._pop_scope()
        assert ctx.shuffles.has(dep.shuffle_id)
        assert isinstance(records, list)

    def test_ensure_upstream_skips_cached_subgraphs(self, ctx):
        base = parallelize(ctx)
        cached = base.group_by_key().map_values(len)
        cached.persist(StorageLevel.MEMORY_ONLY)
        cached.count()
        upstream_id = cached.deps[0].parent.shuffle_dep.shuffle_id \
            if isinstance(cached.deps[0].parent, ShuffledRDD) else None
        # Build a NEW downstream over the cached RDD with a fresh shuffle.
        downstream = cached.group_by_key()
        downstream.count()
        # The upstream shuffle was not re-run (it was written exactly once).
        assert upstream_id is None or ctx.shuffles.has(upstream_id)

    def test_scope_nesting_balances(self, ctx):
        scheduler = ctx.scheduler
        depth_before = len(scheduler._scopes)
        nested = (
            parallelize(ctx)
            .reduce_by_key(lambda a, b: a + b)
            .map_values(lambda v: v)
            .group_by_key()
        )
        nested.count()
        assert len(scheduler._scopes) == depth_before
        assert not scheduler._transients

    def test_runtime_tags_populated_only_under_panthera(self):
        for policy, expect in (
            (PolicyName.PANTHERA, True),
            (PolicyName.UNMANAGED, False),
        ):
            ctx = small_context(policy)
            cached = parallelize(ctx).map(lambda r: r)
            cached.persist(StorageLevel.MEMORY_ONLY)
            cached.memory_tag = MemoryTag.DRAM
            cached.count()
            assert bool(ctx.scheduler.runtime_tags) == expect, policy

    def test_active_transient_bytes_tracked(self, ctx):
        scheduler = ctx.scheduler
        reduced = parallelize(ctx).reduce_by_key(lambda a, b: a + b)
        seen = []

        original = scheduler._materialize_shuffled

        def spy(rdd):
            block = original(rdd)
            seen.append(scheduler._active_transient_bytes())
            return block

        scheduler._materialize_shuffled = spy
        reduced.map_values(lambda v: v).count()
        assert seen and seen[0] > 0


class TestMinorGCInternals:
    def test_survivor_flip_is_clean(self, panthera_stack):
        heap = panthera_stack.heap
        obj = heap.new_object(ObjKind.DATA, 1024)
        heap.add_root(obj)
        panthera_stack.collector.collect_minor()
        live_space = obj.space
        assert live_space is heap.survivor_from  # post-flip naming
        assert heap.survivor_to.used == 0

    def test_young_device_is_always_dram(self, panthera_stack):
        for space in panthera_stack.heap.young_spaces:
            assert space.device is DeviceKind.DRAM

    def test_minor_gc_charges_the_machine(self, panthera_stack):
        heap = panthera_stack.heap
        obj = heap.new_object(ObjKind.DATA, 2 * MiB)
        heap.add_root(obj)
        before = panthera_stack.machine.clock.now_ns
        panthera_stack.collector.collect_minor()
        assert panthera_stack.machine.clock.now_ns > before

    def test_eager_promotion_skips_survivor_copies(self):
        stock = make_stack(PolicyName.PANTHERA, eager_promotion=False)
        eager = make_stack(PolicyName.PANTHERA, eager_promotion=True)
        for stack in (stock, eager):
            obj = stack.heap.new_object(ObjKind.DATA, MiB)
            obj.set_tag(MemoryTag.NVM)
            stack.heap.add_root(obj)
            for _ in range(4):
                stack.collector.collect_minor()
        assert eager.collector.stats.copied_bytes < stock.collector.stats.copied_bytes

    def test_promoted_object_keeps_identity_and_refs(self, panthera_stack):
        heap = panthera_stack.heap
        holder = heap.new_object(ObjKind.DATA, 1024)
        target = heap.new_object(ObjKind.DATA, 512)
        heap.write_ref(holder, target)
        holder.set_tag(MemoryTag.NVM)
        target.set_tag(MemoryTag.NVM)
        heap.add_root(holder)
        panthera_stack.collector.collect_minor()
        assert heap.in_old(holder)
        assert holder.refs == [target]
        assert heap.in_old(target)


class TestMajorGCInternals:
    def test_sweep_keeps_indirectly_reachable(self, panthera_stack):
        heap = panthera_stack.heap
        top = heap.new_object(ObjKind.RDD_TOP, 64)
        heap.add_root(top)
        heap.tag_wait.arm(MemoryTag.NVM)
        array = heap.allocate_rdd_array(2 * MiB, rdd_id=1)
        heap.write_ref(top, array)  # array reachable only through top
        panthera_stack.collector.collect_major()
        assert array in array.space.objects

    def test_compaction_reclaims_bump_space(self, panthera_stack):
        heap = panthera_stack.heap
        space = heap.old_space_named("old-nvm")
        garbage = [heap.allocate_rdd_array(MiB, rdd_id=i) for i in range(4)]
        keeper = heap.allocate_rdd_array(MiB, rdd_id=9)
        heap.add_root(keeper)
        used_before = space.used
        panthera_stack.collector.collect_major()
        assert space.used < used_before

    def test_gc_log_ordering_matches_pause_records(self, panthera_stack):
        collector = panthera_stack.collector
        collector.collect_minor()
        collector.collect_major()
        collector.collect_minor()
        kinds = [k for k, _, _ in collector.stats.pauses]
        assert kinds == ["minor", "major", "minor"]
        starts = [s for _, s, _ in collector.stats.pauses]
        assert starts == sorted(starts)
