"""The tutorial's code (docs/TUTORIAL.md) must actually run."""

import pytest

from repro.config import PolicyName
from repro.core.static_analysis import analyze_program
from repro.core.tags import MemoryTag
from repro.gc.gclog import render_log
from repro.heap.verify import verify_heap
from repro.spark.context import SparkContext
from repro.spark.lineage import lineage_string
from repro.spark.program import Program, execute_program
from repro.spark.storage import StorageLevel
from repro.workloads.datasets import powerlaw_graph
from tests.conftest import small_config


def build_cooccurrence(iterations=3, scale=0.02):
    """The tutorial's §2 workload, verbatim in structure."""
    ds = powerlaw_graph(
        "cooc-test",
        max(20, int(800 * scale)),
        max(60, int(3200 * scale)),
        total_bytes=4 * 2**30 * scale,
    )
    p = Program()
    edges = p.let("edges", p.source(ds))
    dictionary = p.let(
        "dictionary",
        edges.keys().distinct().persist(StorageLevel.MEMORY_ONLY),
    )
    pairs = p.let("pairs", edges.map(lambda r: r))
    with p.loop(iterations):
        pairs = p.let(
            "pairs",
            pairs.join(dictionary)
            .map(lambda r: (r[0], 1))
            .reduce_by_key(lambda a, b: a + b)
            .persist(StorageLevel.MEMORY_AND_DISK_SER),
        )
    p.action(pairs, "collect", result_key="counts")
    return p, ds


class TestTutorialFlow:
    @pytest.fixture(scope="class")
    def run(self):
        program, ds = build_cooccurrence()
        analysis = analyze_program(program)
        ctx = SparkContext.create(small_config(PolicyName.PANTHERA))
        results = execute_program(program, ctx, analysis.tags)
        return analysis, ctx, results

    def test_tags_match_tutorial_claims(self, run):
        analysis, _, _ = run
        assert analysis.tag_of("dictionary") is MemoryTag.DRAM
        assert analysis.tag_of("pairs") is MemoryTag.NVM

    def test_results_produced(self, run):
        _, _, results = run
        assert len(results["counts"]) > 0
        assert all(count >= 1 for _, count in results["counts"])

    def test_inspection_apis_work(self, run):
        _, ctx, _ = run
        blocks = ctx.block_manager.blocks()
        assert blocks
        hist = blocks[0].device_histogram()
        assert hist or blocks[0].on_disk
        lines = render_log(ctx.collector.stats, ctx.machine.elapsed_s, tail=5)
        assert lines[-1].startswith("GC summary:")
        assert verify_heap(ctx.heap) == []
        text = lineage_string(ctx.rdd_by_id(blocks[-1].rdd_id))
        assert "RDD" in text

    def test_machine_metrics(self, run):
        _, ctx, _ = run
        assert ctx.machine.elapsed_s > 0
        assert ctx.machine.energy_j() > 0
        assert ctx.machine.energy_breakdown()
