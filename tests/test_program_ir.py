"""Program IR tests: structure, execution and driver statements."""

import pytest

from repro.core.tags import MemoryTag
from repro.errors import AnalysisError, SparkError
from repro.spark.program import (
    AssignStmt,
    LoopStmt,
    Program,
    UnpersistStmt,
    VarRef,
    execute_program,
)
from repro.spark.storage import StorageLevel
from repro.workloads.datasets import powerlaw_graph
from tests.conftest import small_context


def graph_ds(n=30, e=80):
    return powerlaw_graph("ir-test", n, e, total_bytes=4 * 2**20, seed=5)


class TestBuilder:
    def test_let_appends_assign(self):
        p = Program()
        ref = p.let("x", p.source(graph_ds()))
        assert isinstance(ref, VarRef)
        assert isinstance(p.statements()[0], AssignStmt)

    def test_loop_nests_statements(self):
        p = Program()
        with p.loop(3):
            p.let("x", p.source(graph_ds()))
        (loop,) = p.statements()
        assert isinstance(loop, LoopStmt)
        assert loop.iterations == 3
        assert len(loop.body) == 1

    def test_zero_iteration_loop_rejected(self):
        p = Program()
        with pytest.raises(SparkError):
            with p.loop(0):
                pass

    def test_let_requires_expression(self):
        p = Program()
        with pytest.raises(SparkError):
            p.let("x", 42)

    def test_unpersist_prior_records_lag(self):
        p = Program()
        ref = p.let("x", p.source(graph_ds()))
        p.unpersist_prior(ref, lag=2)
        stmt = p.statements()[-1]
        assert isinstance(stmt, UnpersistStmt)
        assert stmt.prior and stmt.lag == 2

    def test_walk_covers_subexpressions(self):
        p = Program()
        expr = p.source(graph_ds()).map(lambda r: r).filter(lambda r: True)
        assert len(expr.walk()) == 3

    def test_persist_marks_expression(self):
        expr = Program().source(graph_ds()).map(lambda r: r)
        expr.persist(StorageLevel.MEMORY_ONLY)
        assert expr.persist_level is StorageLevel.MEMORY_ONLY


class TestExecution:
    def test_count_action(self):
        ds = graph_ds()
        p = Program()
        edges = p.let("edges", p.source(ds))
        p.action(edges, "count", result_key="n")
        ctx = small_context()
        results = execute_program(p, ctx, {})
        assert results["n"] == len(ds.records)

    def test_collect_action(self):
        ds = graph_ds()
        p = Program()
        edges = p.let("edges", p.source(ds))
        p.action(edges, "collect", result_key="all")
        results = execute_program(p, small_context(), {})
        assert sorted(results["all"]) == sorted(ds.records)

    def test_loop_executes_n_times(self):
        ds = graph_ds()
        p = Program()
        edges = p.let("edges", p.source(ds))
        grown = p.let("grown", edges.map(lambda r: r))
        with p.loop(3):
            grown = p.let("grown", grown.union(edges))
        p.action(grown, "count", result_key="n")
        results = execute_program(p, small_context(), {})
        assert results["n"] == len(ds.records) * 4

    def test_driver_stmt_sees_results(self):
        ds = graph_ds()
        p = Program()
        edges = p.let("edges", p.source(ds))
        p.action(edges, "count", result_key="n")
        seen = {}
        p.driver(lambda results: seen.update(results))
        execute_program(p, small_context(), {})
        assert seen["n"] == len(ds.records)

    def test_tags_attached_to_persisted_rdds(self):
        ds = graph_ds()
        p = Program()
        edges = p.let(
            "edges", p.source(ds).map(lambda r: r).persist(StorageLevel.MEMORY_ONLY)
        )
        p.action(edges, "count", result_key="n")
        ctx = small_context()
        execute_program(p, ctx, {"edges": MemoryTag.DRAM})
        tagged = [
            rdd for rdd in ctx._rdds.values() if rdd.memory_tag is MemoryTag.DRAM
        ]
        assert tagged, "the persisted edges RDD should carry the DRAM tag"

    def test_undefined_variable_rejected(self):
        p = Program()
        p.action(VarRef("ghost"), "count")
        with pytest.raises(AnalysisError):
            execute_program(p, small_context(), {})

    def test_unpersist_prior_releases_old_generation(self):
        ds = graph_ds()
        p = Program()
        v = p.let(
            "v", p.source(ds).map(lambda r: r).persist(StorageLevel.MEMORY_ONLY)
        )
        with p.loop(3):
            v = p.let("v", v.map(lambda r: r).persist(StorageLevel.MEMORY_ONLY))
            p.unpersist_prior(v, lag=1)
        p.action(v, "count", result_key="n")
        ctx = small_context()
        execute_program(p, ctx, {})
        # Only the last generation (plus at most the in-flight one) should
        # remain registered.
        assert len(ctx.block_manager.blocks()) <= 2

    def test_unknown_action_rejected(self):
        ds = graph_ds()
        p = Program()
        edges = p.let("edges", p.source(ds))
        p.action(edges, "frobnicate")
        with pytest.raises(SparkError):
            execute_program(p, small_context(), {})
