"""Workload correctness: the seven benchmarks compute real answers.

Graph results are validated against networkx; ML results against
straightforward NumPy-free reference computations.
"""

import math

import networkx as nx
import pytest

from repro.config import PolicyName
from repro.core.static_analysis import analyze_program
from repro.core.tags import MemoryTag
from repro.spark.program import execute_program
from repro.workloads.datasets import (
    labeled_points,
    powerlaw_graph,
)
from repro.workloads.graphx import build_connected_components, build_sssp
from repro.workloads.kmeans import build_kmeans, closest_center
from repro.workloads.logistic_regression import build_logistic_regression
from repro.workloads.naive_bayes import build_naive_bayes, train_model
from repro.workloads.pagerank import build_pagerank
from repro.workloads.registry import WORKLOADS, build_workload
from repro.workloads.transitive_closure import build_transitive_closure
from tests.conftest import small_context


def tiny_graph(n=24, e=60, seed=5):
    return powerlaw_graph("tiny-graph", n, e, total_bytes=6 * 2**20, seed=seed)


def run_spec(spec, policy=PolicyName.PANTHERA):
    ctx = small_context(policy)
    tags = {}
    if policy is PolicyName.PANTHERA:
        tags = analyze_program(spec.program).tags
    return execute_program(spec.program, ctx, tags), ctx


class TestRegistry:
    def test_all_seven_programs_present(self):
        assert set(WORKLOADS) == {"PR", "KM", "LR", "TC", "CC", "SSSP", "BC"}

    def test_unknown_workload_rejected(self):
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            build_workload("nope")

    def test_case_insensitive(self):
        spec = build_workload("pr", dataset=tiny_graph(), iterations=2)
        assert spec.name == "PR"


class TestPageRank:
    def test_ranks_match_networkx_ordering(self):
        ds = tiny_graph()
        spec = build_pagerank(dataset=ds, iterations=20)
        results, _ = run_spec(spec)
        ours = dict(results["ranks"])
        graph = nx.DiGraph()
        graph.add_edges_from(set(ds.records))
        reference = nx.pagerank(graph, alpha=0.85)
        # Compare the top-5 sets (our variant un-normalises dangling mass).
        top_ours = sorted(ours, key=ours.get, reverse=True)[:5]
        top_ref = sorted(reference, key=reference.get, reverse=True)[:5]
        assert len(set(top_ours) & set(top_ref)) >= 3

    def test_ranks_positive(self):
        spec = build_pagerank(dataset=tiny_graph(), iterations=5)
        results, _ = run_spec(spec)
        assert all(rank > 0 for _, rank in results["ranks"])

    def test_static_tags_match_paper(self):
        spec = build_pagerank(dataset=tiny_graph(), iterations=3)
        analysis = analyze_program(spec.program)
        assert analysis.tag_of("links") is MemoryTag.DRAM
        assert analysis.tag_of("contribs") is MemoryTag.NVM


class TestConnectedComponents:
    def test_labels_match_networkx(self):
        ds = tiny_graph(seed=11)
        spec = build_connected_components(dataset=ds, iterations=12)
        results, _ = run_spec(spec)
        ours = {vid: label for vid, (label, _) in results["components"]}
        graph = nx.Graph()
        graph.add_edges_from(ds.records)
        for component in nx.connected_components(graph):
            expected = min(component)
            for vid in component:
                if vid in ours:
                    assert ours[vid] == expected

    def test_flip_rule_gives_dram(self):
        spec = build_connected_components(dataset=tiny_graph(), iterations=2)
        analysis = analyze_program(spec.program)
        assert analysis.flipped
        assert analysis.tag_of("g") is MemoryTag.DRAM


class TestSSSP:
    def test_distances_match_bfs(self):
        ds = tiny_graph(seed=13)
        spec = build_sssp(dataset=ds, iterations=12, source_vertex=0)
        results, _ = run_spec(spec)
        ours = {vid: dist for vid, (dist, _) in results["distances"]}
        graph = nx.DiGraph()
        graph.add_edges_from(ds.records)
        reference = nx.single_source_shortest_path_length(graph, 0)
        for vid, dist in reference.items():
            if dist <= 12 and vid in ours:
                assert ours[vid] == pytest.approx(float(dist))

    def test_unreachable_vertices_stay_infinite(self):
        ds = tiny_graph(seed=13)
        spec = build_sssp(dataset=ds, iterations=8, source_vertex=0)
        results, _ = run_spec(spec)
        graph = nx.DiGraph()
        graph.add_edges_from(ds.records)
        reachable = set(nx.single_source_shortest_path_length(graph, 0))
        for vid, (dist, _) in results["distances"]:
            if vid not in reachable:
                assert math.isinf(dist)


class TestTransitiveClosure:
    def reference_closure(self, edges, rounds):
        paths = set(edges)
        for _ in range(rounds):
            new = {(s, d2) for (s, d) in paths for (d1, d2) in edges if d == d1}
            paths |= new
        return paths

    def test_closure_matches_reference(self):
        ds = powerlaw_graph("tc-test", 12, 25, total_bytes=2**20, seed=3)
        spec = build_transitive_closure(dataset=ds, iterations=4)
        results, _ = run_spec(spec)
        expected = self.reference_closure(set(ds.records), rounds=4)
        # Our closure adds length<=2^k paths per iteration via self-join,
        # so it must cover at least the 4-round reference.
        assert results["closure_size"] >= len(expected)

    def test_closure_grows_monotonically(self):
        ds = powerlaw_graph("tc-test2", 12, 25, total_bytes=2**20, seed=4)
        small = build_transitive_closure(dataset=ds, iterations=1)
        large = build_transitive_closure(dataset=ds, iterations=3)
        small_n = run_spec(small)[0]["closure_size"]
        large_n = run_spec(large)[0]["closure_size"]
        assert large_n >= small_n

    def test_mixed_tags(self):
        spec = build_transitive_closure(
            dataset=powerlaw_graph("tc-tags", 12, 25, total_bytes=2**20), iterations=2
        )
        analysis = analyze_program(spec.program)
        assert analysis.tag_of("edges") is MemoryTag.DRAM
        assert analysis.tag_of("paths") is MemoryTag.NVM


class TestKMeans:
    def test_centers_separate_clusters(self):
        ds = labeled_points("km-test", 80, dim=4, n_classes=2,
                            total_bytes=4 * 2**20, seed=21)
        spec = build_kmeans(dataset=ds, iterations=8, k=2, seed=21)
        results, _ = run_spec(spec)
        assert results["n_points"] == 80
        stats = dict(results["stats"])
        # Both clusters should have claimed points.
        assert len(stats) == 2
        assert sum(count for _, count in stats.values()) == 80

    def test_closest_center_helper(self):
        centers = [(0.0, 0.0), (10.0, 10.0)]
        assert closest_center((1.0, 1.0), centers) == 0
        assert closest_center((9.0, 9.0), centers) == 1

    def test_points_tagged_dram(self):
        ds = labeled_points("km-tags", 30, 4, 2, total_bytes=2**20)
        spec = build_kmeans(dataset=ds, iterations=2)
        analysis = analyze_program(spec.program)
        assert analysis.tag_of("points") is MemoryTag.DRAM


class TestLogisticRegression:
    def test_training_reduces_loss_direction(self):
        ds = labeled_points("lr-test", 100, dim=4, n_classes=2,
                            total_bytes=4 * 2**20, seed=31)
        spec = build_logistic_regression(
            dataset=ds, iterations=10, learning_rate=0.5, seed=31
        )
        results, _ = run_spec(spec)
        assert results["n_points"] == 100
        (_, (grad_sum, count)), = results["gradient"]
        assert count == 100

    def test_points_tagged_dram(self):
        ds = labeled_points("lr-tags", 30, 4, 2, total_bytes=2**20)
        spec = build_logistic_regression(dataset=ds, iterations=2)
        analysis = analyze_program(spec.program)
        assert analysis.tag_of("points") is MemoryTag.DRAM


class TestNaiveBayes:
    def test_class_stats_cover_training_set(self):
        ds = labeled_points("bc-test", 60, dim=4, n_classes=2,
                            total_bytes=4 * 2**20, seed=41)
        spec = build_naive_bayes(dataset=ds)
        results, _ = run_spec(spec)
        stats = results["class_stats"]
        model = train_model(stats, total=results["n_points"])
        assert set(model) == {0, 1}
        assert model[0]["count"] + model[1]["count"] == 60

    def test_class_means_near_true_centers(self):
        ds = labeled_points("bc-means", 200, dim=3, n_classes=2,
                            total_bytes=4 * 2**20, seed=42)
        spec = build_naive_bayes(dataset=ds)
        results, _ = run_spec(spec)
        model = train_model(results["class_stats"], results["n_points"])
        true_means = {}
        counts = {}
        for label, vec in ds.records:
            acc = true_means.setdefault(label, [0.0] * len(vec))
            for i, x in enumerate(vec):
                acc[i] += x
            counts[label] = counts.get(label, 0) + 1
        for label, info in model.items():
            for got, want_sum in zip(info["means"], true_means[label]):
                assert got == pytest.approx(want_sum / counts[label], abs=1e-6)

    def test_no_loop_flip_gives_dram(self):
        ds = labeled_points("bc-tags", 30, 4, 2, total_bytes=2**20)
        spec = build_naive_bayes(dataset=ds)
        analysis = analyze_program(spec.program)
        assert analysis.flipped
        assert analysis.tag_of("training") is MemoryTag.DRAM


class TestResultsPolicyInvariance:
    """The placement policy must never change computed answers."""

    @pytest.mark.parametrize(
        "policy",
        [PolicyName.DRAM_ONLY, PolicyName.UNMANAGED, PolicyName.PANTHERA],
    )
    def test_pagerank_results_identical(self, policy):
        ds = tiny_graph(seed=17)
        spec = build_pagerank(dataset=ds, iterations=4)
        results, _ = run_spec(spec, policy)
        baseline_spec = build_pagerank(dataset=ds, iterations=4)
        baseline, _ = run_spec(baseline_spec, PolicyName.DRAM_ONLY)
        assert sorted(results["ranks"]) == sorted(baseline["ranks"])
