"""Stage-DAG construction tests: Figure 2(b)'s structure made explicit."""

import pytest

from repro.spark.lineage import build_stages, lineage_string, stage_summary
from repro.spark.storage import StorageLevel
from tests.conftest import small_context


@pytest.fixture
def ctx():
    return small_context()


def base(ctx, n=8, name="src"):
    return ctx.parallelize([(i % 4, i) for i in range(n)], 2, 2**20, name=name)


class TestBuildStages:
    def test_narrow_only_is_single_stage(self, ctx):
        rdd = base(ctx).map(lambda r: r).filter(lambda r: True)
        stages = build_stages(rdd)
        assert len(stages) == 1
        assert stages[0].shuffle_inputs == []

    def test_one_shuffle_makes_two_stages(self, ctx):
        rdd = base(ctx).group_by_key().map_values(len)
        stages = build_stages(rdd)
        assert len(stages) == 2
        result_stage = stages[-1]
        assert result_stage.parent_stages == [0]
        assert len(result_stage.shuffle_inputs) == 1

    def test_chained_shuffles_are_chained_stages(self, ctx):
        rdd = (
            base(ctx)
            .reduce_by_key(lambda a, b: a + b)
            .map(lambda r: r)
            .group_by_key()
        )
        stages = build_stages(rdd)
        assert len(stages) == 3
        assert stages[2].parent_stages == [1]
        assert stages[1].parent_stages == [0]

    def test_pagerank_stage_shape(self, ctx):
        """Figure 2(b): the persisted, pre-partitioned links joins
        narrowly — only the ranks side shuffles into the stage."""
        links = base(ctx, name="links").group_by_key()
        links.persist(StorageLevel.MEMORY_ONLY)
        ranks = links.map_values(lambda v: 1.0)
        contribs = links.join(ranks).values().flat_map(lambda r: [r])
        new_ranks = contribs.reduce_by_key(lambda a, b: a + b)
        stages = build_stages(new_ranks)
        result = stages[-1]
        # links (a ShuffledRDD) is a stage input of the contribs stage;
        # the join's ranks side is narrow (co-partitioned).
        contribs_stage = stages[-2]
        shuffled_ids = {r.id for r in contribs_stage.shuffle_inputs}
        assert links.id in shuffled_ids
        assert result.parent_stages == [contribs_stage.stage_id]

    def test_shared_shuffle_visited_once(self, ctx):
        grouped = base(ctx).group_by_key()
        left = grouped.map_values(len)
        right = grouped.map_values(sum)
        joined = left.join(right)
        stages = build_stages(joined)
        map_stages = [s for s in stages if s.output is grouped.deps[0].parent]
        assert len(map_stages) == 1


class TestRendering:
    def test_lineage_string_marks_persisted_and_shuffles(self, ctx):
        cached = base(ctx).map(lambda r: r)
        cached.persist(StorageLevel.MEMORY_ONLY)
        rdd = cached.group_by_key()
        text = lineage_string(rdd)
        assert "[persisted]" in text
        assert "+-(shuffle" in text
        assert "ShuffledRDD" in text

    def test_lineage_string_handles_diamonds(self, ctx):
        shared = base(ctx).map(lambda r: r)
        joined = shared.join(shared.map_values(lambda v: v))
        text = lineage_string(joined)
        assert "(...)" in text  # the shared subtree printed once

    def test_stage_summary_lists_all_stages(self, ctx):
        rdd = base(ctx).group_by_key().map_values(len).group_by_key()
        stages = build_stages(rdd)
        text = stage_summary(stages)
        for stage in stages:
            assert f"Stage {stage.stage_id}:" in text
