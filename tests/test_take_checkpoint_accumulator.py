"""Tests for take/first, checkpointing and accumulators."""

import pytest

from repro.config import DeviceKind, MiB
from repro.errors import SparkError
from repro.spark.accumulator import make_accumulator
from tests.conftest import small_context


@pytest.fixture
def ctx():
    return small_context()


def parallelize(ctx, n=12, partitions=4):
    return ctx.parallelize([(i, i) for i in range(n)], partitions, 2 * MiB, name="t")


class TestTake:
    def test_take_returns_n(self, ctx):
        rdd = parallelize(ctx)
        assert len(rdd.take(5)) == 5

    def test_take_more_than_available(self, ctx):
        rdd = parallelize(ctx, n=3)
        assert len(rdd.take(100)) == 3

    def test_take_zero(self, ctx):
        assert parallelize(ctx).take(0) == []

    def test_take_negative_rejected(self, ctx):
        with pytest.raises(SparkError):
            parallelize(ctx).take(-1)

    def test_take_skips_late_partitions(self, ctx):
        # A one-record take must not compute every partition.
        rdd = parallelize(ctx, n=100, partitions=10).map(lambda r: r)
        before = ctx.machine.clock.now_ns
        rdd.take(1)
        cost_take = ctx.machine.clock.now_ns - before
        before = ctx.machine.clock.now_ns
        rdd.collect()
        cost_collect = ctx.machine.clock.now_ns - before
        assert cost_take < cost_collect

    def test_first(self, ctx):
        rdd = parallelize(ctx)
        key, value = rdd.first()
        assert key == value

    def test_first_on_empty_rejected(self, ctx):
        empty = parallelize(ctx).filter(lambda r: False)
        with pytest.raises(SparkError):
            empty.first()


class TestCheckpoint:
    def test_checkpoint_serves_from_disk(self, ctx):
        rdd = parallelize(ctx).map(lambda r: (r[0], r[1] * 2))
        rdd.checkpoint()
        assert rdd.count() == 12
        block = ctx.block_manager.get(rdd.id)
        assert block is not None and block.on_disk

    def test_checkpoint_truncates_lineage(self, ctx):
        base = parallelize(ctx)
        mid = base.group_by_key()
        mid.checkpoint()
        tail = mid.map_values(len)
        tail.count()
        shuffle_reads_before = ctx.machine.devices[DeviceKind.DISK].counters.read_bytes
        tail.count()  # second action: served from the checkpoint
        # The upstream shuffle stage is skipped — the ensure pass finds
        # the checkpointed block and never traverses past it.
        stages_after = ctx.scheduler.transient_materializations
        tail.count()
        assert ctx.scheduler.transient_materializations == stages_after

    def test_checkpoint_results_unchanged(self, ctx):
        plain = parallelize(ctx, n=9).map(lambda r: r)
        boxed = parallelize(ctx, n=9).map(lambda r: r)
        boxed.checkpoint()
        assert sorted(plain.collect()) == sorted(boxed.collect())


class TestAccumulator:
    def test_sum_accumulator(self):
        acc = make_accumulator(0, name="records")
        for i in range(5):
            acc.add(i)
        assert acc.value == 10
        assert acc.update_count == 5

    def test_iadd(self):
        acc = make_accumulator(0)
        acc += 7
        assert acc.value == 7

    def test_custom_add_fn(self):
        acc = make_accumulator((0, 0), lambda a, b: (a[0] + b[0], a[1] + b[1]))
        acc.add((1, 2))
        acc.add((3, 4))
        assert acc.value == (4, 6)

    def test_reset(self):
        acc = make_accumulator(0)
        acc.add(5)
        acc.reset()
        assert acc.value == 0
        assert acc.update_count == 0

    def test_used_inside_pipeline(self, ctx):
        seen = make_accumulator(0, name="seen")

        def counting(record):
            seen.add(1)
            return record

        rdd = parallelize(ctx).map(counting)
        rdd.count()
        assert seen.value == 12
