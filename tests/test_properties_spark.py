"""Property-based Spark-layer tests.

The central soundness property of the whole reproduction: *the placement
policy can never change computed answers*.  Random transformation
pipelines over a random dataset must produce identical results under
DRAM-only, unmanaged and Panthera — only time/energy may differ.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.config import PolicyName
from repro.spark.storage import StorageLevel
from tests.conftest import small_context

POLICIES = [PolicyName.DRAM_ONLY, PolicyName.UNMANAGED, PolicyName.PANTHERA]

#: One pipeline step: (op name, parameter)
STEP = st.sampled_from(
    [
        ("map_inc", None),
        ("filter_even", None),
        ("flat_dup", None),
        ("group", None),
        ("reduce_sum", None),
        ("distinct", None),
        ("sort", None),
        ("sample", None),
        ("persist", StorageLevel.MEMORY_ONLY),
        ("persist_ser", StorageLevel.MEMORY_ONLY_SER),
    ]
)

DATASET = st.lists(
    st.tuples(st.integers(min_value=0, max_value=9), st.integers(0, 100)),
    min_size=1,
    max_size=40,
)


def build_pipeline(ctx, records, steps):
    """Apply a step sequence to a fresh source RDD."""
    rdd = ctx.parallelize(list(records), 3, 2 * 2**20, name="prop-src")
    grouped = False
    for op, param in steps:
        if op == "map_inc":
            rdd = rdd.map(lambda r: (r[0], _bump(r[1])))
        elif op == "filter_even":
            rdd = rdd.filter(lambda r: _key_even(r[0]))
        elif op == "flat_dup":
            rdd = rdd.flat_map(lambda r: [r, (r[0], r[1])])
        elif op == "group":
            rdd = rdd.group_by_key().map_values(_sorted_group)
            grouped = True
        elif op == "reduce_sum" and not grouped:
            rdd = rdd.reduce_by_key(_add)
        elif op == "distinct" and not grouped:
            rdd = rdd.distinct()
        elif op == "sort":
            rdd = rdd.sort_by_key(num_partitions=1)
        elif op == "sample":
            rdd = rdd.sample(0.7, seed=5)
        elif op.startswith("persist"):
            rdd.persist(param)
    return rdd


def _bump(v):
    return (v + 1) if isinstance(v, int) else v


def _key_even(k):
    return k % 2 == 0


def _sorted_group(vs):
    return tuple(sorted(vs, key=repr))


def _add(a, b):
    if isinstance(a, int) and isinstance(b, int):
        return a + b
    return a


def run_pipeline(policy, records, steps):
    ctx = small_context(policy)
    rdd = build_pipeline(ctx, records, steps)
    return sorted(ctx.scheduler.run_action(rdd, "collect"), key=repr), ctx


class TestPolicyInvariance:
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(records=DATASET, steps=st.lists(STEP, min_size=1, max_size=6))
    def test_results_identical_across_policies(self, records, steps):
        baseline, _ = run_pipeline(PolicyName.DRAM_ONLY, records, steps)
        for policy in (PolicyName.UNMANAGED, PolicyName.PANTHERA):
            result, _ = run_pipeline(policy, records, steps)
            assert result == baseline, policy

    @settings(max_examples=15, deadline=None)
    @given(records=DATASET, steps=st.lists(STEP, min_size=1, max_size=5))
    def test_reexecution_is_deterministic(self, records, steps):
        a, _ = run_pipeline(PolicyName.PANTHERA, records, steps)
        b, _ = run_pipeline(PolicyName.PANTHERA, records, steps)
        assert a == b

    @settings(max_examples=15, deadline=None)
    @given(records=DATASET, steps=st.lists(STEP, min_size=1, max_size=5))
    def test_heap_consistent_after_random_pipeline(self, records, steps):
        from repro.heap.verify import verify_heap

        _, ctx = run_pipeline(PolicyName.PANTHERA, records, steps)
        assert verify_heap(ctx.heap) == []

    @settings(max_examples=15, deadline=None)
    @given(records=DATASET, steps=st.lists(STEP, min_size=1, max_size=5))
    def test_time_and_energy_always_positive(self, records, steps):
        _, ctx = run_pipeline(PolicyName.PANTHERA, records, steps)
        assert ctx.machine.elapsed_s > 0
        assert ctx.machine.energy_j() > 0
