"""Card table tests: dirtying, shared-card sticking, padding immunity."""

import pytest

from repro.config import DeviceKind, MiB
from repro.errors import HeapError
from repro.heap.card_table import CardTable
from repro.heap.object_model import HeapObject, ObjKind
from repro.heap.spaces import Space


def placed_array(space, size, padded=False):
    obj = HeapObject(ObjKind.RDD_ARRAY, size)
    assert space.place(obj, align_end_to=512 if padded else None)
    obj.padded = padded
    return obj


@pytest.fixture
def space():
    return Space("old", base=0, size=64 * MiB, generation="old", device=DeviceKind.DRAM)


@pytest.fixture
def table():
    return CardTable(card_size=512)


class TestRegistration:
    def test_register_and_query(self, table, space):
        obj = placed_array(space, 4096)
        table.register(obj)
        assert table.is_registered(obj)

    def test_unregister(self, table, space):
        obj = placed_array(space, 4096)
        table.register(obj)
        table.unregister(obj)
        assert not table.is_registered(obj)
        assert obj not in table.dirty_objects

    def test_unregister_unknown_is_noop(self, table, space):
        table.unregister(placed_array(space, 64))

    def test_register_unplaced_rejected(self, table):
        with pytest.raises(HeapError):
            table.register(HeapObject(ObjKind.RDD_ARRAY, 100))

    def test_reregister_updates_span(self, table, space):
        obj = placed_array(space, 4096)
        table.register(obj)
        # Move it (compaction) and re-register.
        obj.addr += 8192
        table.register(obj)
        assert table.is_registered(obj)


class TestDirtying:
    def test_mark_dirty_appears_in_plan(self, table, space):
        obj = placed_array(space, 4096, padded=True)
        table.register(obj)
        table.mark_dirty(obj)
        fresh, stuck = table.scan_plan()
        assert obj in fresh

    def test_dirty_unregistered_rejected(self, table, space):
        with pytest.raises(HeapError):
            table.mark_dirty(placed_array(space, 64))

    def test_after_minor_scan_cleans_fresh(self, table, space):
        obj = placed_array(space, 4096, padded=True)
        table.register(obj)
        table.mark_dirty(obj)
        table.after_minor_scan()
        fresh, stuck = table.scan_plan()
        assert obj not in fresh
        assert obj not in stuck


class TestSharedCardSticking:
    """§4.2.3: unpadded large arrays end mid-card; the shared card can
    never be cleaned and both arrays are rescanned every minor GC."""

    def test_misaligned_dirty_array_becomes_stuck(self, table, space):
        obj = placed_array(space, 1000)  # 1000 % 512 != 0
        table.register(obj)
        table.mark_dirty(obj)
        _, stuck = table.scan_plan()
        assert obj in stuck

    def test_stuck_survives_minor_scans(self, table, space):
        obj = placed_array(space, 1000)
        table.register(obj)
        table.mark_dirty(obj)
        table.after_minor_scan()
        _, stuck = table.scan_plan()
        assert obj in stuck

    def test_padded_array_never_stuck(self, table, space):
        obj = placed_array(space, 1000, padded=True)
        table.register(obj)
        table.mark_dirty(obj)
        _, stuck = table.scan_plan()
        assert obj not in stuck

    def test_neighbor_sharing_boundary_card_dragged_in(self, table, space):
        a = placed_array(space, 1000)
        b = placed_array(space, 1000)  # starts in a's last card
        table.register(a)
        table.register(b)
        assert b in table.neighbors_sharing_card(a)
        table.mark_dirty(a)
        _, stuck = table.scan_plan()
        assert a in stuck and b in stuck

    def test_padded_arrays_are_not_neighbors(self, table, space):
        a = placed_array(space, 1000, padded=True)
        b = placed_array(space, 1000, padded=True)
        table.register(a)
        table.register(b)
        assert table.neighbors_sharing_card(a) == set()

    def test_major_gc_clears_everything(self, table, space):
        obj = placed_array(space, 1000)
        table.register(obj)
        table.mark_dirty(obj)
        table.clear_all()
        fresh, stuck = table.scan_plan()
        assert not fresh and not stuck

    def test_unregister_removes_from_stuck(self, table, space):
        obj = placed_array(space, 1000)
        table.register(obj)
        table.mark_dirty(obj)
        table.unregister(obj)
        _, stuck = table.scan_plan()
        assert obj not in stuck

    def test_aligned_unpadded_array_not_stuck_alone(self, table, space):
        obj = placed_array(space, 1024)  # multiple of 512, base-aligned
        table.register(obj)
        table.mark_dirty(obj)
        _, stuck = table.scan_plan()
        assert obj not in stuck

    def test_bad_card_size_rejected(self):
        with pytest.raises(HeapError):
            CardTable(card_size=0)
