"""Tests for the Quartz-style emulation methodology module (§5.1)."""

import pytest
from hypothesis import given, strategies as st

from repro.config import DRAM_SPEC, NVM_SPEC
from repro.errors import ConfigError
from repro.memory.emulator import (
    EmulationPlan,
    HostProfile,
    emulated_epoch_times,
    emulation_error,
    inject_delays,
    plan_emulation,
)


class TestPlanEmulation:
    def test_paper_configuration_uses_remote_memory_directly(self):
        # §5.1: remote latency is 2.6x local, NVM target is 2.5x — remote
        # memory alone suffices, no extra delay injection.
        plan = plan_emulation()
        assert plan.use_remote_memory
        assert plan.residual_delay_factor == pytest.approx(0.0)
        assert plan.effective_latency_ns >= NVM_SPEC.read_latency_ns

    def test_latency_scale_matches_table2(self):
        plan = plan_emulation()
        assert plan.latency_scale == pytest.approx(300.0 / 120.0)

    def test_throttle_register_hits_10gbps(self):
        plan = plan_emulation()
        assert plan.throttle_register_gbps == pytest.approx(10.0)
        assert plan.effective_bandwidth_gbps <= DRAM_SPEC.read_bandwidth_gbps

    def test_slow_target_needs_residual_delay(self):
        host = HostProfile(remote_latency_ns=150.0)  # only 1.25x remote
        plan = plan_emulation(host)
        assert plan.residual_delay_factor > 0
        assert plan.effective_latency_ns == pytest.approx(
            NVM_SPEC.read_latency_ns, rel=1e-6
        )

    def test_throttle_respects_step_granularity(self):
        host = HostProfile(throttle_step_gbps=3.0)
        plan = plan_emulation(host)
        assert plan.throttle_register_gbps % 3.0 == pytest.approx(0.0)
        assert plan.throttle_register_gbps <= NVM_SPEC.read_bandwidth_gbps

    def test_invalid_host_rejected(self):
        with pytest.raises(ConfigError):
            HostProfile(local_latency_ns=300.0, remote_latency_ns=120.0)
        with pytest.raises(ConfigError):
            HostProfile(local_bandwidth_gbps=0)


class TestDelayInjection:
    def plan_with_residual(self) -> EmulationPlan:
        return plan_emulation(HostProfile(remote_latency_ns=150.0))

    def test_no_injection_when_remote_suffices(self):
        plan = plan_emulation()
        assert inject_delays([1000.0, 2000.0], plan) == [0.0, 0.0]

    def test_injection_proportional_to_stall(self):
        plan = self.plan_with_residual()
        delays = inject_delays([1000.0, 2000.0], plan)
        assert delays[1] == pytest.approx(2 * delays[0])
        assert delays[0] > 0

    def test_negative_stall_clamped(self):
        plan = self.plan_with_residual()
        assert inject_delays([-5.0], plan) == [0.0]

    def test_epoch_times_stretch(self):
        plan = self.plan_with_residual()
        times = emulated_epoch_times(100_000.0, [0.0, 50_000.0], plan)
        assert times[0] == pytest.approx(100_000.0)
        assert times[1] > 100_000.0

    @given(stalls=st.lists(st.floats(min_value=0, max_value=1e9), max_size=50))
    def test_scaled_stall_matches_quartz_formula(self, stalls):
        # Quartz: total observed stall = S x NVM/DRAM.  With the remote
        # baseline at remote_scale, stall_on_remote x (1 + residual)
        # equals S_local x latency_scale.
        host = HostProfile(remote_latency_ns=150.0)
        plan = plan_emulation(host)
        for stall in stalls:
            injected = stall * plan.residual_delay_factor
            remote_scale = host.remote_latency_ns / host.local_latency_ns
            assert stall + injected == pytest.approx(
                stall * plan.latency_scale / remote_scale, rel=1e-9
            )


class TestEmulationError:
    def test_paper_config_bandwidth_exact(self):
        errors = emulation_error(plan_emulation())
        assert errors["bandwidth_error"] == pytest.approx(0.0)

    def test_paper_config_latency_within_10_percent(self):
        # 2.6x remote vs 2.5x target: within the accuracy Quartz reports.
        errors = emulation_error(plan_emulation())
        assert errors["latency_error"] <= 0.10
