"""Placement-policy tests: Table 1's allocation rules per configuration."""

import pytest

from repro.config import DeviceKind, MiB, PolicyName
from repro.core.tags import MemoryTag
from repro.errors import ConfigError
from repro.gc.policies import HOT_CALL_THRESHOLD, make_policy
from repro.heap.object_model import HeapObject, ObjKind
from tests.conftest import make_stack, small_config


class TestFactory:
    @pytest.mark.parametrize("policy", list(PolicyName))
    def test_make_policy_covers_all(self, policy):
        built = make_policy(small_config(policy))
        assert built.name is policy

    def test_only_panthera_pads(self):
        for policy in PolicyName:
            built = make_policy(small_config(policy))
            assert built.card_padding == (policy is PolicyName.PANTHERA)


class TestDramOnly:
    def test_old_space_is_dram(self, dram_stack):
        space = dram_stack.heap.old_space_named("old")
        assert space.device is DeviceKind.DRAM
        assert space.size == dram_stack.config.old_gen_bytes


class TestUnmanaged:
    def test_chunk_probability_conserves_dram(self, unmanaged_stack):
        config = unmanaged_stack.config
        space = unmanaged_stack.heap.old_space_named("old")
        expected = config.old_dram_bytes / config.old_gen_bytes
        assert abs(space.chunk_map.dram_fraction() - expected) < 0.25

    def test_same_seed_same_layout(self):
        a = make_stack(PolicyName.UNMANAGED)
        b = make_stack(PolicyName.UNMANAGED)
        ca = a.heap.old_space_named("old").chunk_map
        cb = b.heap.old_space_named("old").chunk_map
        base = ca.base
        for offset in range(0, ca.size, ca.chunk_bytes):
            assert ca.device_of(base + offset) == cb.device_of(base + offset)


class TestPantheraPlacement:
    """Table 1's Initial Space column."""

    def test_nvm_tagged_array_to_nvm(self, panthera_stack):
        space = panthera_stack.policy.array_allocation_space(
            panthera_stack.heap, MemoryTag.NVM, MiB
        )
        assert space.name == "old-nvm"

    def test_dram_tagged_array_to_dram_component(self, panthera_stack):
        space = panthera_stack.policy.array_allocation_space(
            panthera_stack.heap, MemoryTag.DRAM, MiB
        )
        assert space.name == "old-dram"

    def test_dram_tag_with_full_dram_goes_nvm(self, panthera_stack):
        heap = panthera_stack.heap
        old_dram = heap.old_space_named("old-dram")
        old_dram.top = old_dram.end  # exhaust it
        space = panthera_stack.policy.array_allocation_space(
            heap, MemoryTag.DRAM, MiB
        )
        assert space.name == "old-nvm"

    def test_untagged_array_to_nvm(self, panthera_stack):
        space = panthera_stack.policy.array_allocation_space(
            panthera_stack.heap, None, MiB
        )
        assert space.name == "old-nvm"

    def test_untagged_promotion_to_nvm(self, panthera_stack):
        obj = HeapObject(ObjKind.DATA, 64)
        space = panthera_stack.policy.promotion_space(panthera_stack.heap, obj)
        assert space.name == "old-nvm"

    def test_dram_bits_promotion_to_dram(self, panthera_stack):
        obj = HeapObject(ObjKind.DATA, 64)
        obj.set_tag(MemoryTag.DRAM)
        space = panthera_stack.policy.promotion_space(panthera_stack.heap, obj)
        assert space.name == "old-dram"

    def test_eager_space_none_for_untagged(self, panthera_stack):
        obj = HeapObject(ObjKind.DATA, 64)
        assert (
            panthera_stack.policy.eager_promotion_space(panthera_stack.heap, obj)
            is None
        )


class TestKingsguard:
    def test_kn_everything_to_nvm(self):
        stack = make_stack(PolicyName.KINGSGUARD_NURSERY)
        space = stack.policy.array_allocation_space(stack.heap, None, MiB)
        assert space.device is DeviceKind.NVM

    def test_kw_has_write_barrier_cost(self):
        stack = make_stack(PolicyName.KINGSGUARD_WRITES)
        assert stack.policy.mutator_write_barrier_ns() > 0

    def test_others_have_no_barrier_cost(self, panthera_stack, dram_stack):
        assert panthera_stack.policy.mutator_write_barrier_ns() == 0
        assert dram_stack.policy.mutator_write_barrier_ns() == 0

    def test_kw_migration_respects_dram_budget(self):
        stack = make_stack(PolicyName.KINGSGUARD_WRITES)
        heap = stack.heap
        old_dram = heap.old_space_named("old-dram")
        arrays = []
        for i in range(4):
            array = heap.allocate_rdd_array(old_dram.size, rdd_id=i)
            array.write_count = 100
            heap.add_root(array)
            arrays.append(array)
        moves = stack.policy.plan_migrations(heap, None)
        moved_bytes = sum(obj.size for obj, _ in moves)
        assert moved_bytes <= old_dram.free


class TestMigrationPlanning:
    def test_hot_threshold_exported(self):
        assert HOT_CALL_THRESHOLD >= 2

    def test_plan_empty_without_monitor(self, panthera_stack):
        assert panthera_stack.policy.plan_migrations(panthera_stack.heap, None) == []

    def test_hot_nvm_migration_respects_dram_space(self, panthera_stack):
        heap = panthera_stack.heap
        old_dram = heap.old_space_named("old-dram")
        heap.tag_wait.arm(MemoryTag.NVM)
        big = heap.allocate_rdd_array(old_dram.size * 2, rdd_id=5)
        heap.add_root(big)
        for _ in range(HOT_CALL_THRESHOLD + 1):
            panthera_stack.monitor.record_call(5)
        moves = panthera_stack.policy.plan_migrations(
            heap, panthera_stack.monitor
        )
        # Too big for the DRAM component: must not be planned.
        assert all(obj is not big for obj, _ in moves)

    def test_unknown_policy_rejected(self):
        config = small_config()
        object.__setattr__(config, "policy", "bogus")
        with pytest.raises((ConfigError, KeyError, TypeError)):
            make_policy(config)
