"""The generated API reference stays fresh and complete."""

import pathlib
import sys

ROOT = pathlib.Path(__file__).resolve().parents[1]
sys.path.insert(0, str(ROOT / "scripts"))

import gen_api_docs  # noqa: E402


class TestApiDocs:
    def test_generator_produces_content(self):
        text = gen_api_docs.generate()
        assert text.startswith("# API reference")
        assert "## `repro.core.static_analysis`" in text
        assert "## `repro.gc.policies`" in text

    def test_no_undocumented_markers(self):
        # The doc-coverage test guarantees docstrings; the reference must
        # therefore contain no placeholder entries.
        assert "*(undocumented)*" not in gen_api_docs.generate()

    def test_checked_in_reference_is_current(self):
        current = (ROOT / "docs" / "API.md").read_text()
        assert current == gen_api_docs.generate(), (
            "docs/API.md is stale: run `python scripts/gen_api_docs.py`"
        )

    def test_first_paragraph_helper(self):
        assert gen_api_docs.first_paragraph("line one\nline two\n\nrest") == (
            "line one line two"
        )
        assert gen_api_docs.first_paragraph("") == ""

    def test_signature_helper_handles_builtins(self):
        assert gen_api_docs.signature_of(len) in ("(obj, /)", "(...)")
