"""Tests for the device cost model and the machine's batch semantics."""

import pytest
from hypothesis import given, strategies as st

from repro.config import (
    CACHE_LINE_BYTES,
    DRAM_SPEC,
    NVM_SPEC,
    DeviceKind,
    GiB,
)
from repro.memory.device import MemoryDevice
from repro.memory.machine import Machine, Traffic, TrafficSet
from tests.conftest import small_config


class TestDeviceCostModel:
    def make(self, spec=DRAM_SPEC):
        return MemoryDevice(spec, capacity_bytes=GiB)

    def test_pure_streaming_is_bandwidth_bound(self):
        device = self.make()
        ns = device.batch_ns(read_bytes=30 * GiB)
        # 30 GiB at 30 GB/s is just over one second (GiB vs GB).
        assert ns == pytest.approx(30 * GiB / 30.0, rel=1e-9)

    def test_pure_random_is_latency_bound(self):
        device = self.make()
        ns = device.batch_ns(random_reads=1000, threads=1, mlp=1)
        assert ns == pytest.approx(1000 * 120.0)

    def test_threads_and_mlp_divide_latency(self):
        device = self.make()
        serial = device.batch_ns(random_reads=1000, threads=1, mlp=1)
        parallel = device.batch_ns(random_reads=1000, threads=4, mlp=2)
        assert parallel == pytest.approx(serial / 8)

    def test_threads_do_not_help_bandwidth(self):
        device = self.make()
        one = device.batch_ns(read_bytes=GiB, threads=1)
        many = device.batch_ns(read_bytes=GiB, threads=16)
        assert one == many

    def test_nvm_streaming_three_times_slower_than_dram(self):
        dram = self.make(DRAM_SPEC)
        nvm = self.make(NVM_SPEC)
        ratio = nvm.batch_ns(read_bytes=GiB) / dram.batch_ns(read_bytes=GiB)
        assert ratio == pytest.approx(3.0)

    def test_mixed_batch_takes_max_of_components(self):
        device = self.make()
        lat = device.batch_ns(random_reads=10**6, threads=1, mlp=1)
        combo = device.batch_ns(read_bytes=1024, random_reads=10**6, threads=1, mlp=1)
        assert combo == lat

    def test_record_accumulates_bytes(self):
        device = self.make()
        device.record(read_bytes=100, write_bytes=50)
        device.record(random_reads=2)
        assert device.counters.read_bytes == 100 + 2 * CACHE_LINE_BYTES
        assert device.counters.write_bytes == 50
        assert device.counters.random_reads == 2

    def test_static_power_scales_with_capacity(self):
        small = MemoryDevice(DRAM_SPEC, GiB)
        large = MemoryDevice(DRAM_SPEC, 4 * GiB)
        assert large.static_power_w() == pytest.approx(4 * small.static_power_w())

    def test_dynamic_energy_from_lines(self):
        device = self.make()
        device.record(read_bytes=CACHE_LINE_BYTES * 10)
        assert device.dynamic_energy_pj() == pytest.approx(
            10 * DRAM_SPEC.read_energy_pj
        )

    @given(
        read=st.floats(min_value=0, max_value=1e12),
        write=st.floats(min_value=0, max_value=1e12),
        rr=st.integers(min_value=0, max_value=10**7),
    )
    def test_batch_time_nonnegative_and_monotone(self, read, write, rr):
        device = self.make()
        base = device.batch_ns(read_bytes=read, write_bytes=write, random_reads=rr)
        more = device.batch_ns(
            read_bytes=read * 2, write_bytes=write, random_reads=rr
        )
        assert base >= 0
        assert more >= base


class TestMachine:
    def make(self):
        return Machine(small_config())

    def test_access_advances_clock(self):
        machine = self.make()
        machine.access(DeviceKind.DRAM, read_bytes=30 * GiB)
        assert machine.clock.now_ns > 0

    def test_devices_run_concurrently(self):
        machine = self.make()
        traffic = TrafficSet()
        traffic.add(DeviceKind.DRAM, read_bytes=3 * GiB)
        traffic.add(DeviceKind.NVM, read_bytes=GiB)
        duration = machine.run_batch(traffic.per_device)
        # DRAM: 3 GiB / 30 GB/s; NVM: 1 GiB / 10 GB/s — equal; the batch
        # takes the max, not the sum.
        assert duration == pytest.approx(GiB / 10.0, rel=1e-9)

    def test_cpu_component_can_dominate(self):
        machine = self.make()
        duration = machine.run_batch({}, cpu_ns=12345.0)
        assert duration == pytest.approx(12345.0)

    def test_transfer_is_pipelined(self):
        machine = self.make()
        duration = machine.transfer(DeviceKind.DRAM, DeviceKind.NVM, GiB)
        # Bound by the slower side (NVM write at 10 GB/s).
        assert duration == pytest.approx(GiB / 10.0, rel=1e-9)

    def test_energy_counts_traffic(self):
        machine = self.make()
        machine.access(DeviceKind.NVM, write_bytes=GiB)
        breakdown = machine.energy_breakdown()
        assert breakdown[DeviceKind.NVM].dynamic_j > 0

    def test_bandwidth_traces_recorded(self):
        machine = self.make()
        machine.access(DeviceKind.DRAM, read_bytes=GiB)
        assert machine.bandwidth.total_bytes(DeviceKind.DRAM, False) == pytest.approx(
            GiB
        )

    def test_empty_traffic_is_skipped(self):
        machine = self.make()
        machine.run_batch({DeviceKind.DRAM: Traffic()})
        assert machine.clock.now_ns == 0
        assert machine.bandwidth.series(DeviceKind.DRAM, False) == []

    def test_traffic_merged(self):
        a = Traffic(read_bytes=10, random_writes=1)
        b = Traffic(write_bytes=5, random_reads=2)
        merged = a.merged(b)
        assert merged.read_bytes == 10
        assert merged.write_bytes == 5
        assert merged.random_reads == 2
        assert merged.random_writes == 1
