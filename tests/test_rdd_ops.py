"""RDD transformation correctness: the dataflow really computes."""

import pytest

from repro.spark.rdd import CoGroupedRDD, NarrowDependency, ShuffleDependency
from repro.spark.partition import HashPartitioner
from tests.conftest import small_context


@pytest.fixture
def ctx():
    return small_context()


def parallelize(ctx, records, partitions=3, total_bytes=2 * 2**20):
    return ctx.parallelize(list(records), partitions, total_bytes, name="t")


def run(ctx, rdd):
    return sorted(ctx.scheduler.run_action(rdd, "collect"))


class TestNarrowOps:
    def test_map(self, ctx):
        rdd = parallelize(ctx, [(i, i) for i in range(10)]).map(
            lambda r: (r[0], r[1] * 2)
        )
        assert run(ctx, rdd) == [(i, 2 * i) for i in range(10)]

    def test_filter(self, ctx):
        rdd = parallelize(ctx, [(i, i) for i in range(10)]).filter(
            lambda r: r[0] % 2 == 0
        )
        assert run(ctx, rdd) == [(i, i) for i in range(0, 10, 2)]

    def test_flat_map(self, ctx):
        rdd = parallelize(ctx, [(i, 2) for i in range(3)]).flat_map(
            lambda r: [(r[0], j) for j in range(r[1])]
        )
        assert run(ctx, rdd) == sorted((i, j) for i in range(3) for j in range(2))

    def test_map_values_preserves_partitioner(self, ctx):
        grouped = parallelize(ctx, [(i % 3, i) for i in range(9)]).group_by_key()
        mapped = grouped.map_values(len)
        assert mapped.partitioner == grouped.partitioner
        assert run(ctx, mapped) == [(0, 3), (1, 3), (2, 3)]

    def test_union(self, ctx):
        a = parallelize(ctx, [(1, "a")])
        b = parallelize(ctx, [(2, "b")])
        assert run(ctx, a.union(b)) == [(1, "a"), (2, "b")]

    def test_map_preserving_partitioning_flag(self, ctx):
        grouped = parallelize(ctx, [(i % 3, i) for i in range(9)]).group_by_key()
        preserved = grouped.map(lambda r: r, preserves_partitioning=True)
        dropped = grouped.map(lambda r: r)
        assert preserved.partitioner == grouped.partitioner
        assert dropped.partitioner is None


class TestWideOps:
    def test_group_by_key(self, ctx):
        rdd = parallelize(ctx, [(i % 2, i) for i in range(6)]).group_by_key()
        result = dict(run(ctx, rdd))
        assert sorted(result[0]) == [0, 2, 4]
        assert sorted(result[1]) == [1, 3, 5]

    def test_reduce_by_key(self, ctx):
        rdd = parallelize(ctx, [(i % 3, 1) for i in range(9)]).reduce_by_key(
            lambda a, b: a + b
        )
        assert run(ctx, rdd) == [(0, 3), (1, 3), (2, 3)]

    def test_distinct(self, ctx):
        rdd = parallelize(ctx, [(1, "x")] * 5 + [(2, "y")] * 3).distinct()
        assert run(ctx, rdd) == [(1, "x"), (2, "y")]

    def test_join(self, ctx):
        a = parallelize(ctx, [(1, "a"), (2, "b"), (3, "c")])
        b = parallelize(ctx, [(1, 10), (2, 20), (4, 40)])
        assert run(ctx, a.join(b)) == [(1, ("a", 10)), (2, ("b", 20))]

    def test_join_with_duplicate_keys_is_cartesian_per_key(self, ctx):
        a = parallelize(ctx, [(1, "x"), (1, "y")])
        b = parallelize(ctx, [(1, 10), (1, 20)])
        result = run(ctx, a.join(b))
        assert len(result) == 4

    def test_count_action(self, ctx):
        rdd = parallelize(ctx, [(i, i) for i in range(7)])
        assert rdd.count() == 7

    def test_reduce_action(self, ctx):
        rdd = parallelize(ctx, [(i, i) for i in range(5)])
        total = rdd.reduce(lambda a, b: (0, a[1] + b[1]))
        assert total[1] == 10

    def test_reduce_by_key_shrinks_bytes_per_record(self, ctx):
        base = parallelize(ctx, [(i % 3, 1) for i in range(9)])
        reduced = base.reduce_by_key(lambda a, b: a + b)
        assert reduced.bytes_per_record < base.bytes_per_record


class TestDependencies:
    def test_narrow_and_shuffle_classified(self, ctx):
        base = parallelize(ctx, [(i, i) for i in range(6)])
        mapped = base.map(lambda r: r)
        shuffled = base.group_by_key()
        assert isinstance(mapped.deps[0], NarrowDependency)
        assert isinstance(shuffled.deps[0], ShuffleDependency)

    def test_copartitioned_join_is_narrow(self, ctx):
        # §2: pre-partitioned parents need no shuffle — PageRank's links.
        grouped = parallelize(ctx, [(i % 3, i) for i in range(9)]).group_by_key()
        other = parallelize(ctx, [(i, i) for i in range(3)])
        joined = grouped.join(other)
        cogroup = joined.deps[0].parent
        assert isinstance(cogroup, CoGroupedRDD)
        kinds = [type(dep) for dep in cogroup.deps]
        assert NarrowDependency in kinds  # the grouped side
        assert ShuffleDependency in kinds  # the unpartitioned side

    def test_shuffle_ids_unique(self, ctx):
        base = parallelize(ctx, [(i, i) for i in range(4)])
        a = base.group_by_key()
        b = base.group_by_key()
        assert a.shuffle_dep.shuffle_id != b.shuffle_dep.shuffle_id

    def test_shuffled_rdd_partitioner_matches(self, ctx):
        shuffled = parallelize(ctx, [(i, i) for i in range(4)]).group_by_key(5)
        assert shuffled.partitioner == HashPartitioner(5)
        assert shuffled.num_partitions == 5


class TestLineageMemoization:
    def test_shuffle_files_written_once(self, ctx):
        base = parallelize(ctx, [(i % 2, i) for i in range(8)])
        reduced = base.reduce_by_key(lambda a, b: a + b)
        reduced.count()
        shuffle_id = reduced.shuffle_dep.shuffle_id
        assert ctx.shuffles.has(shuffle_id)
        reduced.count()  # second action reuses the files

    def test_iterative_lineage_executes_linear(self, ctx):
        rdd = parallelize(ctx, [(i % 4, 1) for i in range(16)])
        for _ in range(5):
            rdd = rdd.reduce_by_key(lambda a, b: a + b).flat_map(
                lambda r: [(r[0], r[1]), ((r[0] + 1) % 4, 0)]
            )
        result = dict(run(ctx, rdd.reduce_by_key(lambda a, b: a + b)))
        assert sum(result.values()) == 16
