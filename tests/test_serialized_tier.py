"""The serialized off-heap tier (``SERIALIZED_TIER``).

Covers the third placement target beyond the DRAM/NVM object heaps:
packed-column-batch placement in the native region, serialize-on-persist
and deserialize-on-access charging, the legacy fallthrough bugfix (the
pre-tier silent object-heap degradation of ``MEMORY_ONLY_SER`` /
``OFF_HEAP`` is gone), kill + lineage recovery of native blocks, strict
trace-replay of tier runs, ``TaggedStorageLevel`` edge cases, the
bit-exact pack/unpack round-trip property over every workload's record
batches, and A/B byte-identity — flag off must reproduce the pre-tier
system exactly on traced + faulted experiment cells.
"""

import os
import subprocess
import sys

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.config import MiB, PolicyName
from repro.core.tags import MemoryTag, Placement
from repro.core.static_analysis import analyze_program
from repro.errors import ConfigError
from repro.faults import FaultPlan, KillSpec, action_checksums
from repro.gc.gclog import render_log
from repro.harness.configs import paper_config
from repro.harness.experiment import run_experiment
from repro.spark import storage as _storage
from repro.spark.serialized import SerializedColumnBatch, pack_partitions
from repro.spark.storage import (
    StorageLevel,
    StorageTier,
    TaggedStorageLevel,
    expand_level,
    routes_to_serialized_tier,
)
from repro.trace import TraceSession
from repro.trace.replay import replay_events
from repro.workloads.registry import WORKLOADS, build_workload
from tests.conftest import small_context
from tests.test_costplane import _bandwidth_fingerprint


def _under_tier(enabled, fn):
    """Call ``fn()`` with the serialized-tier flag forced to ``enabled``."""
    saved = _storage.SERIALIZED_TIER
    _storage.SERIALIZED_TIER = enabled
    try:
        return fn()
    finally:
        _storage.SERIALIZED_TIER = saved


def cached_rdd(ctx, level, n=12, total_bytes=6 * MiB, name="tier-src"):
    rdd = ctx.parallelize(
        [(i, i) for i in range(n)], 3, total_bytes, name=name
    ).map(lambda r: r)
    rdd.persist(level)
    rdd.count()
    return rdd


# -- tier placement ---------------------------------------------------------


class TestTierPlacement:
    def test_ser_block_lands_in_native_region(self):
        def run():
            ctx = small_context()
            rdd = cached_rdd(ctx, StorageLevel.MEMORY_ONLY_SER)
            block = ctx.block_manager.get(rdd.id)
            assert block.in_serialized_tier
            assert block.serialized
            assert block.ser_batches is not None
            for array in block.arrays:
                assert array.space is ctx.heap.native
            return block, ctx

        block, ctx = _under_tier(True, run)
        # No object-heap payload structure at all: nothing for a GC to
        # trace (the old silent fallthrough built slabs in the heap).
        assert all(not slabs for slabs in block.slabs)
        assert all(not recs for recs in block.records)

    def test_off_heap_block_packs_batches_too(self):
        def run():
            ctx = small_context()
            rdd = cached_rdd(ctx, StorageLevel.OFF_HEAP)
            return ctx.block_manager.get(rdd.id), ctx

        block, ctx = _under_tier(True, run)
        assert block.in_serialized_tier
        assert all(a.space is ctx.heap.native for a in block.arrays)

    def test_packed_bytes_shrink_by_ser_factor(self):
        def run():
            ctx = small_context()
            plain = cached_rdd(ctx, StorageLevel.MEMORY_ONLY, name="obj")
            ser = cached_rdd(ctx, StorageLevel.MEMORY_ONLY_SER, name="ser")
            return (
                ctx.block_manager.get(ser.id).data_bytes
                / ctx.block_manager.get(plain.id).data_bytes,
                ctx.costs.ser_factor,
            )

        ratio, ser_factor = _under_tier(True, run)
        assert ratio == pytest.approx(ser_factor, rel=0.05)

    def test_results_identical_to_object_mode(self):
        def collect(level):
            ctx = small_context()
            rdd = cached_rdd(ctx, level)
            return sorted(ctx.scheduler.run_action(rdd, "collect"))

        tier = _under_tier(True, lambda: collect(StorageLevel.MEMORY_ONLY_SER))
        plain = _under_tier(True, lambda: collect(StorageLevel.MEMORY_ONLY))
        assert tier == plain

    def test_tier_bytes_invisible_to_block_manager_pressure(self):
        def run():
            ctx = small_context()
            cached_rdd(ctx, StorageLevel.MEMORY_ONLY_SER)
            return (
                ctx.block_manager.in_memory_bytes(),
                ctx.block_manager.serialized_tier_bytes(),
            )

        in_mem, tier = _under_tier(True, run)
        assert in_mem == 0.0
        assert tier > 0.0

    def test_regression_silent_object_heap_fallthrough_is_gone(self):
        """The pre-tier system placed MEMORY_ONLY_SER as object-heap
        slabs with no warning.  With the flag on, the slabs are gone;
        with it off, the old placement still happens but warns."""

        def tier_run():
            ctx = small_context()
            rdd = cached_rdd(ctx, StorageLevel.MEMORY_ONLY_SER)
            return ctx.block_manager.get(rdd.id)

        block = _under_tier(True, tier_run)
        assert block.in_serialized_tier
        assert not any(block.slabs[p] for p in range(len(block.slabs)))

        def legacy_run():
            ctx = small_context()
            with pytest.warns(UserWarning, match="SERIALIZED_TIER is off"):
                rdd = cached_rdd(ctx, StorageLevel.MEMORY_ONLY_SER)
            return ctx.block_manager.get(rdd.id)

        legacy = _under_tier(False, legacy_run)
        assert not legacy.in_serialized_tier
        assert any(legacy.slabs[p] for p in range(len(legacy.slabs)))

    def test_persist_serialized_raises_config_error_when_off(self):
        def run():
            ctx = small_context()
            rdd = ctx.parallelize([(1, 1)], 1, MiB).map(lambda r: r)
            with pytest.raises(ConfigError, match="SERIALIZED_TIER"):
                rdd.persist_serialized()

        _under_tier(False, run)

    def test_persist_serialized_routes_when_on(self):
        def run():
            ctx = small_context()
            rdd = ctx.parallelize(
                [(i, i) for i in range(6)], 2, 2 * MiB
            ).map(lambda r: r)
            rdd.persist_serialized()
            rdd.count()
            return ctx.block_manager.get(rdd.id)

        assert _under_tier(True, run).in_serialized_tier


# -- kill + recovery --------------------------------------------------------


class TestTierKillRecovery:
    def test_killed_tier_block_frees_native_and_recovers(self):
        def run():
            ctx = small_context()
            rdd = cached_rdd(ctx, StorageLevel.MEMORY_ONLY_SER)
            live_before = ctx.heap.native.live_bytes()
            assert live_before > 0
            killed = ctx.block_manager.kill(rdd.id)
            assert killed is not None
            assert ctx.heap.native.live_bytes() == 0
            assert ctx.block_manager.get(rdd.id) is None
            # Lineage recomputes and re-packs on next access.
            assert rdd.count() == 12
            block = ctx.block_manager.get(rdd.id)
            assert block is not None and block.in_serialized_tier
            assert ctx.heap.native.live_bytes() == live_before
            assert ctx.block_manager.killed_count == 1

        _under_tier(True, run)

    def test_unpersist_frees_native_bytes(self):
        def run():
            ctx = small_context()
            rdd = cached_rdd(ctx, StorageLevel.MEMORY_ONLY_SER)
            assert ctx.heap.native.live_bytes() > 0
            rdd.unpersist()
            assert ctx.heap.native.live_bytes() == 0

        _under_tier(True, run)

    def test_injected_block_kill_converges(self):
        def run(plan):
            config = paper_config(64, 1 / 3, PolicyName.PANTHERA, 0.01)
            result = run_experiment(
                "KM",
                config,
                scale=0.01,
                workload_kwargs={
                    "iterations": 2,
                    "persist_level": StorageLevel.MEMORY_ONLY_SER,
                },
                keep_context=True,
                faults=plan,
            )
            return result

        plan = FaultPlan(kills=[KillSpec("block", 1, 0)], seed=7)
        faulted = _under_tier(True, lambda: run(plan))
        clean = _under_tier(True, lambda: run(None))
        assert action_checksums(faulted.action_results) == action_checksums(
            clean.action_results
        )


# -- trace stream -----------------------------------------------------------


class TestTierTracing:
    def test_strict_replay_reconstructs_native_bytes(self):
        def run():
            ctx = small_context()
            session = TraceSession.attach_to_context(ctx)
            rdd = cached_rdd(ctx, StorageLevel.MEMORY_ONLY_SER)
            rdd.count()
            # Mid-run: the replayed native live bytes match the heap.
            replayed = replay_events(session.events, strict=True)
            assert replayed.live_bytes.get("native", 0) == (
                ctx.heap.native.live_bytes()
            )
            assert ctx.heap.native.live_bytes() > 0
            rdd.unpersist()
            replayed = replay_events(session.events, strict=True)
            assert replayed.live_bytes.get("native", 0) == 0
            assert ctx.heap.native.live_bytes() == 0
            # And the full oracle (every space + pause list) closes.
            assert session.check() == []
            kinds = {e.kind for e in session.events}
            assert "serialize" in kinds
            assert "deserialize" in kinds

        _under_tier(True, run)

    def test_deserialize_charged_on_every_access(self):
        def run():
            ctx = small_context()
            session = TraceSession.attach_to_context(ctx)
            rdd = cached_rdd(ctx, StorageLevel.MEMORY_ONLY_SER)
            before = len(
                [e for e in session.events if e.kind == "deserialize"]
            )
            rdd.count()
            after = len(
                [e for e in session.events if e.kind == "deserialize"]
            )
            assert after - before == rdd.num_partitions
            return ctx

        _under_tier(True, run)


# -- TaggedStorageLevel edge cases -----------------------------------------


class TestTaggedStorageLevelEdges:
    def test_is_off_heap_and_replicated_flags(self):
        off = TaggedStorageLevel(StorageLevel.OFF_HEAP, MemoryTag.NVM)
        assert off.is_off_heap and not off.replicated
        rep = TaggedStorageLevel(StorageLevel.MEMORY_AND_DISK_SER_2, None)
        assert rep.replicated and rep.serialized and not rep.is_off_heap
        plain2 = TaggedStorageLevel(StorageLevel.MEMORY_ONLY_2, MemoryTag.DRAM)
        assert plain2.replicated and not plain2.serialized

    def test_tier_follows_live_flag(self):
        tagged = TaggedStorageLevel(StorageLevel.MEMORY_ONLY_SER, MemoryTag.NVM)
        assert _under_tier(True, lambda: tagged.tier) is StorageTier.SERIALIZED
        assert (
            _under_tier(False, lambda: tagged.tier) is StorageTier.OBJECT_HEAP
        )
        off = TaggedStorageLevel(StorageLevel.OFF_HEAP, MemoryTag.NVM)
        assert _under_tier(True, lambda: off.tier) is StorageTier.SERIALIZED
        assert _under_tier(False, lambda: off.tier) is StorageTier.NATIVE
        disk = TaggedStorageLevel(StorageLevel.DISK_ONLY, None)
        assert _under_tier(True, lambda: disk.tier) is StorageTier.DISK

    def test_routing_predicate(self):
        assert routes_to_serialized_tier(StorageLevel.MEMORY_ONLY_SER)
        assert routes_to_serialized_tier(StorageLevel.OFF_HEAP)
        # Disk-capable serialised levels keep the spillable object form.
        assert not routes_to_serialized_tier(StorageLevel.MEMORY_AND_DISK_SER)
        assert not routes_to_serialized_tier(
            StorageLevel.MEMORY_AND_DISK_SER_2
        )
        assert not routes_to_serialized_tier(StorageLevel.MEMORY_ONLY)
        assert not routes_to_serialized_tier(StorageLevel.DISK_ONLY)

    def test_expand_forces_nvm_for_tier_levels(self):
        expanded = _under_tier(
            True, lambda: expand_level(StorageLevel.MEMORY_ONLY_SER, MemoryTag.DRAM)
        )
        assert expanded.tag is MemoryTag.NVM
        assert expanded.name == "MEMORY_ONLY_SER_NVM"
        legacy = _under_tier(
            False,
            lambda: expand_level(StorageLevel.MEMORY_ONLY_SER, MemoryTag.DRAM),
        )
        assert legacy.tag is MemoryTag.DRAM
        assert legacy.name == "MEMORY_ONLY_SER_DRAM"

    def test_untagged_name_is_bare_level(self):
        assert TaggedStorageLevel(StorageLevel.DISK_ONLY, None).name == (
            "DISK_ONLY"
        )


# -- static analysis placements --------------------------------------------


class TestPlacements:
    def test_three_way_placement_per_workload_variable(self):
        spec = build_workload("PR", scale=0.01, iterations=2)

        analysis = _under_tier(True, lambda: analyze_program(spec.program))
        assert analysis.placement_of("links") is Placement.DRAM_HEAP
        # contribs persists MEMORY_AND_DISK_SER: stays object-heap NVM.
        assert analysis.placement_of("contribs") is Placement.NVM_HEAP
        assert "contribs" in analysis.ser_candidates

    def test_ser_level_becomes_serialized_nvm_placement(self):
        spec = build_workload(
            "KM",
            scale=0.01,
            iterations=2,
            persist_level=StorageLevel.MEMORY_ONLY_SER,
        )
        analysis = _under_tier(True, lambda: analyze_program(spec.program))
        assert analysis.placement_of("points") is Placement.SERIALIZED_NVM
        legacy = _under_tier(False, lambda: analyze_program(spec.program))
        assert legacy.placement_of("points") is Placement.DRAM_HEAP


# -- pack/unpack round-trip -------------------------------------------------

_SCALAR = st.one_of(
    st.integers(min_value=-(2**70), max_value=2**70),
    st.floats(allow_nan=False),
    st.text(max_size=8),
    st.booleans(),
)
_VALUE = st.one_of(
    _SCALAR,
    st.tuples(_SCALAR, _SCALAR),
    st.lists(_SCALAR, max_size=4),
)


class TestRoundTrip:
    @settings(
        max_examples=60,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(records=st.lists(st.tuples(_SCALAR, _VALUE), max_size=32))
    def test_random_records_roundtrip_exactly(self, records):
        batch = SerializedColumnBatch.pack(records)
        out = batch.unpack()
        assert out == records
        assert [
            (type(k), type(v)) for k, v in out
        ] == [(type(k), type(v)) for k, v in records]

    @pytest.mark.parametrize("workload", sorted(WORKLOADS))
    def test_every_workload_batch_roundtrips_bit_exactly(self, workload):
        spec = build_workload(workload, scale=0.01)
        records = spec.dataset.records
        n_parts = 4
        parts = [records[i::n_parts] for i in range(n_parts)]
        for part, batch in zip(parts, pack_partitions(parts)):
            out = batch.unpack()
            assert out == list(part)
            assert [type(r) for r in out] == [type(r) for r in part]

    def test_numeric_batches_pack_columnar(self):
        batch = SerializedColumnBatch.pack([(1, 2.5), (3, 4.5)])
        assert batch.columnar
        assert batch.unpack() == [(1, 2.5), (3, 4.5)]

    def test_bools_and_big_ints_fall_back_to_byte_packing(self):
        for records in ([(True, 1)], [(2**80, 1)], [("a", 1)]):
            batch = SerializedColumnBatch.pack(records)
            assert not batch.columnar
            out = batch.unpack()
            assert out == records
            assert type(out[0][0]) is type(records[0][0])


# -- A/B byte-identity ------------------------------------------------------


class TestSerializedTierIdentity:
    """``SERIALIZED_TIER=0`` must reproduce the pre-tier system exactly.

    The committed experiment cells (PR / CC) persist MEMORY_ONLY and
    MEMORY_AND_DISK_SER — levels that never route to the tier — so the
    flag must not move a single byte of their gclogs, traces, bandwidth
    series or fault checksums in either position.
    """

    def _run_cell(self, workload):
        config = paper_config(64, 1 / 3, PolicyName.PANTHERA, 0.01)
        plan = FaultPlan(kills=[KillSpec("shuffle", 1, 0)], seed=7)
        result = run_experiment(
            workload,
            config,
            scale=0.01,
            workload_kwargs={"iterations": 2},
            keep_context=True,
            trace=True,
            faults=plan,
        )
        stats = result.context.collector.stats
        return {
            "elapsed": repr(result.elapsed_s),
            "gclog": render_log(stats, result.elapsed_s, tail=50),
            "checksums": action_checksums(result.action_results),
            "events": [repr(e) for e in result.trace_events],
            "bandwidth": _bandwidth_fingerprint(result.context.machine),
        }

    @pytest.mark.parametrize("workload", ["PR", "CC"])
    def test_traced_faulted_cell_identical_either_flag(self, workload):
        tier = _under_tier(True, lambda: self._run_cell(workload))
        legacy = _under_tier(False, lambda: self._run_cell(workload))
        assert tier["elapsed"] == legacy["elapsed"]
        assert tier["gclog"] == legacy["gclog"]
        assert tier["checksums"] == legacy["checksums"]
        assert tier["events"] == legacy["events"]
        assert tier["bandwidth"] == legacy["bandwidth"]

    @pytest.mark.parametrize(
        "value,expected", [("0", False), ("1", True), ("off", False)]
    )
    def test_env_override_is_read_at_import(self, value, expected):
        env = dict(os.environ, REPRO_SERIALIZED_TIER=value)
        env["PYTHONPATH"] = "src"
        out = subprocess.run(
            [
                sys.executable,
                "-c",
                "from repro.spark import storage; "
                "print(storage.SERIALIZED_TIER)",
            ],
            capture_output=True,
            text=True,
            env=env,
            check=True,
        )
        assert out.stdout.strip() == str(expected)
