"""Tests for the MEMORY_BITS encoding and DRAM > NVM conflict rule."""

import pytest
from hypothesis import given, strategies as st

from repro.core.tags import (
    MEMORY_BITS_DRAM,
    MEMORY_BITS_NONE,
    MEMORY_BITS_NVM,
    MemoryTag,
    merge_tags,
)


class TestMemoryBits:
    def test_encodings_match_paper(self):
        # §4.1: 01 = DRAM, 10 = NVM, 00 = untagged.
        assert MEMORY_BITS_DRAM == 0b01
        assert MEMORY_BITS_NVM == 0b10
        assert MEMORY_BITS_NONE == 0b00

    def test_tag_to_bits(self):
        assert MemoryTag.DRAM.bits == MEMORY_BITS_DRAM
        assert MemoryTag.NVM.bits == MEMORY_BITS_NVM

    def test_bits_roundtrip(self):
        for tag in MemoryTag:
            assert MemoryTag.from_bits(tag.bits) is tag

    def test_none_bits_decode_to_none(self):
        assert MemoryTag.from_bits(MEMORY_BITS_NONE) is None

    def test_invalid_bits_rejected(self):
        with pytest.raises(ValueError):
            MemoryTag.from_bits(0b11)


class TestMergeTags:
    """§4.2.2: 'we resolve conflicts by giving DRAM higher priority'."""

    def test_dram_beats_nvm(self):
        assert merge_tags(MemoryTag.DRAM, MemoryTag.NVM) is MemoryTag.DRAM
        assert merge_tags(MemoryTag.NVM, MemoryTag.DRAM) is MemoryTag.DRAM

    def test_same_tags_idempotent(self):
        assert merge_tags(MemoryTag.NVM, MemoryTag.NVM) is MemoryTag.NVM
        assert merge_tags(MemoryTag.DRAM, MemoryTag.DRAM) is MemoryTag.DRAM

    def test_none_never_overrides(self):
        assert merge_tags(None, MemoryTag.NVM) is MemoryTag.NVM
        assert merge_tags(MemoryTag.DRAM, None) is MemoryTag.DRAM

    def test_both_none(self):
        assert merge_tags(None, None) is None

    @given(
        a=st.sampled_from([None, MemoryTag.DRAM, MemoryTag.NVM]),
        b=st.sampled_from([None, MemoryTag.DRAM, MemoryTag.NVM]),
    )
    def test_commutative(self, a, b):
        assert merge_tags(a, b) is merge_tags(b, a)

    @given(
        a=st.sampled_from([None, MemoryTag.DRAM, MemoryTag.NVM]),
        b=st.sampled_from([None, MemoryTag.DRAM, MemoryTag.NVM]),
        c=st.sampled_from([None, MemoryTag.DRAM, MemoryTag.NVM]),
    )
    def test_associative(self, a, b, c):
        assert merge_tags(merge_tags(a, b), c) is merge_tags(a, merge_tags(b, c))

    @given(
        a=st.sampled_from([None, MemoryTag.DRAM, MemoryTag.NVM]),
        b=st.sampled_from([None, MemoryTag.DRAM, MemoryTag.NVM]),
    )
    def test_merge_never_loses_dram(self, a, b):
        if MemoryTag.DRAM in (a, b):
            assert merge_tags(a, b) is MemoryTag.DRAM
