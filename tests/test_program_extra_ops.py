"""IR coverage for the extended operators (sample, sortByKey,
aggregateByKey, cogroup, subtractByKey, keys)."""


from repro.core.static_analysis import analyze_program
from repro.core.tags import MemoryTag
from repro.spark.program import Program, execute_program
from repro.spark.storage import StorageLevel
from repro.workloads.datasets import powerlaw_graph
from tests.conftest import small_context


def graph_ds(name="ir-extra", n=30, e=80):
    return powerlaw_graph(name, n, e, total_bytes=4 * 2**20, seed=5)


def run_program(p):
    return execute_program(p, small_context(), {})


class TestExtraOpsInIR:
    def test_sample_in_program(self):
        ds = graph_ds("s1")
        p = Program()
        edges = p.let("edges", p.source(ds))
        p.action(p.let("some", edges.sample(0.5, seed=3)), "count", result_key="n")
        results = run_program(p)
        assert 0 < results["n"] < len(ds.records)

    def test_keys_in_program(self):
        ds = graph_ds("s2")
        p = Program()
        edges = p.let("edges", p.source(ds))
        p.action(
            p.let("srcs", edges.keys().distinct()), "count", result_key="n"
        )
        results = run_program(p)
        assert results["n"] == len({src for src, _ in ds.records})

    def test_sort_by_key_in_program(self):
        ds = graph_ds("s3")
        p = Program()
        edges = p.let("edges", p.source(ds))
        p.action(
            p.let("sorted", edges.sort_by_key(num_partitions=1)),
            "collect",
            result_key="rows",
        )
        rows = run_program(p)["rows"]
        keys = [k for k, _ in rows]
        assert keys == sorted(keys)

    def test_aggregate_by_key_in_program(self):
        ds = graph_ds("s4")
        p = Program()
        edges = p.let("edges", p.source(ds))
        p.action(
            p.let(
                "degree",
                edges.aggregate_by_key(
                    0, lambda acc, _v: acc + 1, lambda a, b: a + b
                ),
            ),
            "collect",
            result_key="deg",
        )
        degrees = dict(run_program(p)["deg"])
        assert sum(degrees.values()) == len(ds.records)

    def test_cogroup_and_subtract_in_program(self):
        ds = graph_ds("s5")
        p = Program()
        edges = p.let("edges", p.source(ds))
        sampled = p.let("sampled", edges.sample(0.4, seed=11))
        p.action(
            p.let("rest", edges.subtract_by_key(sampled)),
            "count",
            result_key="rest",
        )
        p.action(
            p.let("both", edges.cogroup(sampled)), "count", result_key="both"
        )
        results = run_program(p)
        # cogroup yields one record per distinct key; subtract yields the
        # edge records whose source never appears in the sample.
        n_keys = len({src for src, _ in ds.records})
        assert results["both"] == n_keys
        assert 0 < results["rest"] < len(ds.records)

    def test_extra_ops_visible_to_analysis(self):
        ds = graph_ds("s6")
        p = Program()
        edges = p.let("edges", p.source(ds).sample(0.9).persist())
        anchor = p.let(
            "anchor", p.source(ds).map(lambda r: r).persist(StorageLevel.MEMORY_ONLY)
        )
        with p.loop(3):
            p.let("probe", anchor.cogroup(edges))
        analysis = analyze_program(p)
        # Both variables are used-only in the loop: DRAM.
        assert analysis.tag_of("edges") is MemoryTag.DRAM
        assert analysis.tag_of("anchor") is MemoryTag.DRAM
