"""Scheduler + block manager integration: materialisation, transients,
spilling, dropping, recomputation."""

import pytest

from repro.config import MiB, PolicyName
from repro.spark.storage import StorageLevel
from tests.conftest import small_context


@pytest.fixture
def ctx():
    return small_context()


def parallelize(ctx, n=12, partitions=3, total_bytes=3 * MiB):
    return ctx.parallelize(
        [(i % 4, i) for i in range(n)], partitions, total_bytes, name="src"
    )


class TestPersistence:
    def test_persisted_rdd_materialized_once(self, ctx):
        cached = parallelize(ctx).map(lambda r: r)
        cached.persist(StorageLevel.MEMORY_ONLY)
        cached.count()
        block = ctx.block_manager.get(cached.id)
        assert block is not None
        top_before = block.top
        cached.count()
        assert ctx.block_manager.get(cached.id).top is top_before

    def test_block_structure_matches_figure1(self, ctx):
        cached = parallelize(ctx, partitions=3).map(lambda r: r)
        cached.persist(StorageLevel.MEMORY_ONLY)
        cached.count()
        block = ctx.block_manager.get(cached.id)
        assert len(block.arrays) == 3
        assert len(block.slabs) == 3
        assert block.top in list(ctx.heap.iter_roots())

    def test_block_bytes_match_records(self, ctx):
        cached = parallelize(ctx, n=12, total_bytes=3 * MiB).map(lambda r: r)
        cached.persist(StorageLevel.MEMORY_ONLY)
        cached.count()
        block = ctx.block_manager.get(cached.id)
        assert block.data_bytes == pytest.approx(3 * MiB, rel=0.01)

    def test_disk_only_block_served_from_disk(self, ctx):
        cached = parallelize(ctx).map(lambda r: r)
        cached.persist(StorageLevel.DISK_ONLY)
        assert cached.count() == 12
        block = ctx.block_manager.get(cached.id)
        assert block.on_disk
        assert cached.count() == 12  # reads back from disk

    def test_off_heap_block_lives_in_native_nvm(self, ctx):
        cached = parallelize(ctx).map(lambda r: r)
        cached.persist(StorageLevel.OFF_HEAP)
        cached.count()
        block = ctx.block_manager.get(cached.id)
        assert block.arrays
        for array in block.arrays:
            assert array.space is ctx.heap.native

    def test_unpersist_releases_root(self, ctx):
        cached = parallelize(ctx).map(lambda r: r)
        cached.persist(StorageLevel.MEMORY_ONLY)
        cached.count()
        top = ctx.block_manager.get(cached.id).top
        cached.unpersist()
        assert not ctx.heap.is_root(top)
        assert ctx.block_manager.get(cached.id) is None


class TestTransients:
    def test_shuffled_rdd_materialized_transiently(self, ctx):
        reduced = parallelize(ctx).reduce_by_key(lambda a, b: a + b)
        consumer = reduced.map_values(lambda v: v)
        consumer.count()
        assert ctx.scheduler.transient_materializations >= 1
        # After the action the transient scope closed: nothing lingers.
        assert not ctx.scheduler._transients

    def test_transient_objects_die_at_next_major(self, ctx):
        reduced = parallelize(ctx).reduce_by_key(lambda a, b: a + b)
        reduced.map_values(lambda v: v).count()
        live_before = sum(len(s.objects) for s in ctx.heap.old_spaces)
        ctx.collector.collect_major()
        live_after = sum(len(s.objects) for s in ctx.heap.old_spaces)
        assert live_after < live_before


class TestPressure:
    def small_heap_ctx(self):
        return small_context(heap_bytes=24 * MiB)

    def test_spill_under_pressure(self):
        ctx = self.small_heap_ctx()
        blocks = []
        for i in range(6):
            cached = ctx.parallelize(
                [(j, j) for j in range(8)], 2, 4 * MiB, name=f"b{i}"
            ).map(lambda r: r)
            cached.persist(StorageLevel.MEMORY_AND_DISK)
            cached.count()
            blocks.append(cached)
        assert ctx.block_manager.spilled_count >= 1
        # Spilled blocks still serve reads (from disk).
        assert blocks[0].count() == 8

    def test_drop_and_recompute_memory_only(self):
        ctx = self.small_heap_ctx()
        blocks = []
        for i in range(6):
            cached = ctx.parallelize(
                [(j, j) for j in range(8)], 2, 4 * MiB, name=f"b{i}"
            ).map(lambda r: r)
            cached.persist(StorageLevel.MEMORY_ONLY)
            cached.count()
            blocks.append(cached)
        assert ctx.block_manager.dropped_count >= 1
        for cached in blocks:
            assert cached.count() == 8  # recomputed through lineage

    def test_eviction_prefers_lru(self):
        ctx = self.small_heap_ctx()
        first = ctx.parallelize([(1, 1)], 1, 4 * MiB, name="old").map(lambda r: r)
        first.persist(StorageLevel.MEMORY_AND_DISK)
        first.count()
        hot = ctx.parallelize([(2, 2)], 1, 4 * MiB, name="hot").map(lambda r: r)
        hot.persist(StorageLevel.MEMORY_AND_DISK)
        for _ in range(3):
            hot.count()
        for i in range(4):
            filler = ctx.parallelize(
                [(j, j) for j in range(4)], 1, 4 * MiB, name=f"f{i}"
            ).map(lambda r: r)
            filler.persist(StorageLevel.MEMORY_AND_DISK)
            filler.count()
        first_block = ctx.block_manager.get(first.id)
        assert first_block is None or first_block.on_disk


class TestActionMaterialization:
    def test_action_target_with_tag_materializes_transiently(self):
        from repro.core.tags import MemoryTag

        ctx = small_context()
        rdd = parallelize(ctx).map(lambda r: r)
        rdd.memory_tag = MemoryTag.NVM
        before = ctx.scheduler.transient_materializations
        rdd.count()
        # The paper's action materialisation point built a structure.
        # (It is released at the end of the action scope.)
        assert not ctx.scheduler._transients

    def test_non_panthera_policy_never_tags(self):
        ctx = small_context(PolicyName.UNMANAGED)
        cached = parallelize(ctx).map(lambda r: r)
        cached.persist(StorageLevel.MEMORY_ONLY)
        cached.count()
        block = ctx.block_manager.get(cached.id)
        for array in block.arrays:
            assert array.memory_bits == 0
