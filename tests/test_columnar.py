"""Tests for the columnar execution plane (``COLUMNAR_DATA_PLANE``).

Covers A/B byte-identity on traced + fault-injected numeric cells (the
house rule: simulated time, GC logs, trace streams, bandwidth series,
fault checksums and computed answers identical with the flag on and
off), composition with the four existing A/B flags, the kernel
machinery (grouped ordered folds, first-occurrence key order, the
``np.add.at`` in-order accumulation the folds rely on), vectorised
shuffle bucketing, pack/unpack round-trips over every workload's real
record shapes, the ``_stable_hash`` non-finite float fix, and the env
override.
"""

import math
import os
import subprocess
import sys

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.config import PolicyName
from repro.faults import FaultInjector, FaultPlan, KillSpec, action_checksums
from repro.gc import charging as _charging
from repro.gc.gclog import render_log
from repro.harness.configs import paper_config
from repro.harness.experiment import run_experiment
from repro.spark import columnar as _columnar
from repro.spark import partition as _partition
from repro.spark import storage as _storage
from repro.spark.columnar import (
    ColumnBatch,
    ConstColumn,
    PairColumn,
    ScalarColumn,
    VecColumn,
    bucket_into_segments,
    concat_segments,
    make_scalar_add_reduce_kernel,
    make_vec_count_merge_kernel,
    split_batch,
)
from repro.spark.partition import HashPartitioner, _stable_hash
from repro.trace import TraceSession
from tests.conftest import small_context
from tests.test_costplane import _bandwidth_fingerprint
from tests.test_properties_spark import DATASET, STEP, build_pipeline

np = pytest.importorskip("numpy")


def _under_columnar(enabled, fn):
    """Call ``fn()`` with the columnar flag forced to ``enabled``."""
    saved = _columnar.COLUMNAR_DATA_PLANE
    _columnar.COLUMNAR_DATA_PLANE = enabled
    try:
        return fn()
    finally:
        _columnar.COLUMNAR_DATA_PLANE = saved


def _flip(module, attr, value, fn):
    """Call ``fn()`` with one module flag temporarily forced."""
    saved = getattr(module, attr)
    setattr(module, attr, value)
    try:
        return fn()
    finally:
        setattr(module, attr, saved)


# -- the flag itself --------------------------------------------------------


class TestFlag:
    def test_default_is_on(self):
        """With no env override the flag defaults to on (checked in a
        fresh process so a CI matrix forcing the env can't skew it)."""
        env = {
            k: v
            for k, v in os.environ.items()
            if k != "REPRO_COLUMNAR_DATA_PLANE"
        }
        env["PYTHONPATH"] = "src"
        out = subprocess.run(
            [
                sys.executable,
                "-c",
                "from repro.spark import columnar; "
                "print(columnar.COLUMNAR_DATA_PLANE)",
            ],
            capture_output=True,
            text=True,
            env=env,
            check=True,
        )
        assert out.stdout.strip() == "True"

    def test_active_requires_optimised_data_plane(self):
        """Under LEGACY_DATA_PLANE the columnar plane stands down, so
        the legacy oracle replays the original per-record code only."""
        assert _under_columnar(True, _columnar.columnar_active) is True
        assert _under_columnar(False, _columnar.columnar_active) is False
        assert _flip(
            _partition, "LEGACY_DATA_PLANE", True, _columnar.columnar_active
        ) is False

    @pytest.mark.parametrize(
        "value,expected", [("0", False), ("1", True), ("off", False)]
    )
    def test_flag_follows_the_environment(self, value, expected):
        env = dict(os.environ, REPRO_COLUMNAR_DATA_PLANE=value)
        env["PYTHONPATH"] = "src"
        out = subprocess.run(
            [
                sys.executable,
                "-c",
                "from repro.spark import columnar; "
                "print(columnar.COLUMNAR_DATA_PLANE)",
            ],
            capture_output=True,
            text=True,
            env=env,
            check=True,
        )
        assert out.stdout.strip() == str(expected)


# -- pack / unpack round-trips ----------------------------------------------


class TestPackRoundtrip:
    def _assert_roundtrip(self, records):
        batch = ColumnBatch.from_records(list(records))
        assert batch is not None
        out = batch.to_records()
        assert out == list(records)
        for (k, v), (ko, vo) in zip(records, out):
            assert type(ko) is type(k)
            assert type(vo) is type(v)
        # A re-pack of a freshly unpacked copy is bit-exact too.
        copied = [tuple(r) for r in records]
        rebuilt = ColumnBatch.from_records(copied)
        assert rebuilt.keys.tolist() == batch.keys.tolist()

    def test_every_workload_source_packs(self):
        from repro.workloads.datasets import (
            kdd_points,
            ml_points,
            pagerank_graph,
        )

        for ds in (
            ml_points(scale=0.02),
            kdd_points(scale=0.02),
            pagerank_graph(scale=0.02),
        ):
            self._assert_roundtrip(list(ds.records)[:80])

    def test_vec_count_shape_packs(self):
        records = [(i % 3, ((1.5 * i, -0.25 * i), 1)) for i in range(20)]
        self._assert_roundtrip(records)

    def test_scalar_float_values_pack(self):
        records = [(i % 5, 0.15 + 0.85 * i) for i in range(30)]
        self._assert_roundtrip(records)

    @pytest.mark.parametrize(
        "records",
        [
            [],
            [(1, 2), (True, 3)],  # bool key: exact-type check rejects
            [(1, 2), (2, 2.0)],  # mixed value types
            [("a", 1)],  # non-int key
            [(1, None)],
            [(1, (1.0, 2.0)), (2, (1.0,))],  # ragged vectors
            [(2**63, 1)],  # beyond int64
            [(1, (1.0, 2)), (2, (1.0, 3))],  # non-float tuple element
        ],
    )
    def test_unpackable_shapes_return_none(self, records):
        assert ColumnBatch.from_records(records) is None

    def test_packed_batch_shares_the_input_list(self):
        """from_records installs the input list as the unpack cache, so
        per-record fallbacks never pay a reconstruction."""
        records = [(i, float(i)) for i in range(10)]
        batch = ColumnBatch.from_records(records)
        assert batch.to_records() is records

    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=-(2**62), max_value=2**62),
                st.one_of(
                    st.integers(min_value=-(2**62), max_value=2**62),
                    st.floats(allow_nan=False),
                    st.tuples(
                        st.floats(allow_nan=False), st.floats(allow_nan=False)
                    ),
                ),
            ),
            min_size=1,
            max_size=30,
        )
    )
    def test_uniform_numeric_records_roundtrip(self, records):
        """Any uniformly-shaped numeric record list round-trips
        type-exactly (or is declined outright — never mangled)."""
        head_type = type(records[0][1])
        uniform = all(type(v) is head_type for _, v in records) and (
            head_type is not tuple
            or len({len(v) for _, v in records}) == 1
        )
        batch = ColumnBatch.from_records(list(records))
        if not uniform:
            if batch is None:
                return
        assert batch is not None
        out = batch.to_records()
        assert out == records
        assert all(
            type(vo) is type(v) for (_, v), (_, vo) in zip(records, out)
        )


# -- kernel machinery -------------------------------------------------------


class TestGroupedFolds:
    def test_np_add_at_accumulates_in_index_order(self):
        """The grouped folds' bit-identity rests on np.add.at applying
        repeated-index contributions unbuffered, in order.  Pin it with
        additions whose result depends on order: (big + tiny) + -big
        differs from (big + -big) + tiny in the last bit."""
        vals = [1.0, 1e16, -1e16, 1.0]
        acc = np.zeros(1)
        np.add.at(acc, [0, 0, 0, 0], np.array(vals))
        sequential = 0.0
        for v in vals:
            sequential += v
        assert sequential == 1.0  # pairwise would give 0.0
        assert float(acc[0]) == sequential

    def test_scalar_add_matches_dict_fold(self):
        records = [(7, 0.1), (3, 0.2), (7, 0.3), (3, 0.4), (7, 1e-17)]
        batch = ColumnBatch.from_records(records)
        folded = make_scalar_add_reduce_kernel()(batch)
        acc = {}
        for k, v in records:
            acc[k] = acc[k] + v if k in acc else v
        assert folded.to_records() == list(acc.items())

    def test_first_occurrence_key_order(self):
        records = [(9, 1.0), (2, 1.0), (9, 1.0), (5, 1.0), (2, 1.0)]
        folded = make_scalar_add_reduce_kernel()(
            ColumnBatch.from_records(records)
        )
        assert [k for k, _ in folded.to_records()] == [9, 2, 5]

    def test_first_value_seeds_the_accumulator(self):
        """The dict fold starts with ``acc[k] = v`` (no leading zero);
        -0.0 first values expose any zeros-init shortcut, because
        0.0 + -0.0 is +0.0 while the fold keeps -0.0."""
        records = [(1, -0.0), (2, -0.0), (2, -0.0)]
        folded = make_scalar_add_reduce_kernel()(
            ColumnBatch.from_records(records)
        )
        out = folded.to_records()
        assert [repr(v) for _, v in out] == ["-0.0", "-0.0"]

    def test_vec_count_merge_matches_dict_fold(self):
        records = [
            (i % 3, ((0.1 * i, 1e16 if i % 2 else 1.0), 1)) for i in range(12)
        ]
        folded = make_vec_count_merge_kernel()(
            ColumnBatch.from_records(records)
        )
        acc = {}
        for k, (vec, c) in records:
            if k in acc:
                pv, pc = acc[k]
                acc[k] = (tuple(x + y for x, y in zip(pv, vec)), pc + c)
            else:
                acc[k] = (vec, c)
        assert repr(folded.to_records()) == repr(list(acc.items()))

    def test_const_keys_fold_to_one_group(self):
        batch = ColumnBatch(
            ConstColumn("grad", 3),
            PairColumn(
                VecColumn(np.asarray([[1.0], [2.0], [4.0]])),
                ScalarColumn(np.ones(3, dtype=np.int64)),
            ),
        )
        folded = make_vec_count_merge_kernel()(batch)
        assert folded.to_records() == [("grad", ((7.0,), 3))]

    def test_kernels_decline_foreign_schemas(self):
        ints = ColumnBatch.from_records([(1, 2), (3, 4)])
        assert make_scalar_add_reduce_kernel()(ints) is None
        assert make_vec_count_merge_kernel()(ints) is None


class TestVectorisedBucketing:
    @pytest.mark.parametrize("n", [1, 3, 7])
    def test_split_batch_matches_bucket_into(self, n):
        records = [((i * 37) % 23 - 11, float(i)) for i in range(200)]
        part = HashPartitioner(n)
        expected = part.split(records)
        pieces = split_batch(ColumnBatch.from_records(records), part)
        got = [[] for _ in range(n)]
        for bidx, sub in pieces:
            got[bidx].extend(sub.to_records())
        assert got == expected

    def test_split_batch_handles_const_keys(self):
        batch = ColumnBatch(
            ConstColumn("grad", 4),
            ScalarColumn(np.arange(4, dtype=np.int64)),
        )
        part = HashPartitioner(5)
        [(bidx, sub)] = split_batch(batch, part)
        assert bidx == part.partition_of("grad")
        assert len(sub) == 4

    def test_segments_preserve_map_partition_order(self):
        """Batch and plain-record pieces interleave per map partition;
        the fused bucket replays bucket_into's append order exactly."""
        part = HashPartitioner(2)
        p0 = ColumnBatch.from_records([(0, 1.0), (1, 2.0), (2, 3.0)])
        p1 = [(0, 4.0), (1, 5.0)]  # a per-record map partition
        p2 = ColumnBatch.from_records([(2, 6.0), (3, 7.0)])
        segments = [[] for _ in range(2)]
        for records in (p0, p1, p2):
            bucket_into_segments(part, records, segments)
        fused = [concat_segments(segs) for segs in segments]
        expected = [[] for _ in range(2)]
        for records in (p0.to_records(), p1, p2.to_records()):
            part.bucket_into(records, expected)
        assert [list(b) for b in fused] == expected

    def test_all_batch_segments_fuse_to_one_batch(self):
        part = HashPartitioner(1)
        segments = [[]]
        for lo in (0, 10):
            bucket_into_segments(
                part,
                ColumnBatch.from_records(
                    [(i, float(i)) for i in range(lo, lo + 5)]
                ),
                segments,
            )
        fused = concat_segments(segments[0])
        assert isinstance(fused, ColumnBatch)
        assert len(fused) == 10


# -- _stable_hash: non-finite floats (satellite fix) ------------------------


class TestStableHashFloats:
    @pytest.mark.parametrize(
        "key", [math.inf, -math.inf, math.nan, 1e308, -1e308, 2**53 / 1e6]
    )
    def test_extreme_floats_hash_without_raising(self, key):
        h = _stable_hash(key)
        assert 0 <= h <= 0x7FFFFFFF
        assert _stable_hash(key) == h  # deterministic

    def test_non_finite_values_stay_distinct(self):
        hashes = {_stable_hash(k) for k in (math.inf, -math.inf, math.nan)}
        assert len(hashes) == 3

    def test_finite_floats_keep_their_legacy_hash(self):
        for key in (0.0, -0.0, 1.0, 2.5, -3.75, 1234.5678):
            assert _stable_hash(key) == _stable_hash(int(key * 1e6))

    @pytest.mark.parametrize("key", [math.inf, -math.inf, math.nan, 1e308])
    def test_bucketing_agrees_across_planes(self, key):
        part = HashPartitioner(7)
        legacy = _flip(
            _partition, "LEGACY_DATA_PLANE", True,
            lambda: part.partition_of(key),
        )
        optimised = _flip(
            _partition, "LEGACY_DATA_PLANE", False,
            lambda: part.partition_of(key),
        )
        assert legacy == optimised
        buckets = part.split([(key, "v")])
        assert buckets[legacy] == [(key, "v")]


# -- A/B byte-identity on traced + faulted cells ----------------------------


class TestColumnarIdentity:
    def _run_cell(self, workload, workload_kwargs=None):
        config = paper_config(64, 1 / 3, PolicyName.PANTHERA, 0.01)
        plan = FaultPlan(kills=[KillSpec("shuffle", 1, 0)], seed=7)
        result = run_experiment(
            workload,
            config,
            scale=0.01,
            workload_kwargs=(
                {"iterations": 2} if workload_kwargs is None else workload_kwargs
            ),
            keep_context=True,
            trace=True,
            faults=plan,
        )
        stats = result.context.collector.stats
        return {
            "elapsed": repr(result.elapsed_s),
            "gclog": render_log(stats, result.elapsed_s, tail=50),
            "checksums": action_checksums(result.action_results),
            "events": [repr(e) for e in result.trace_events],
            "bandwidth": _bandwidth_fingerprint(result.context.machine),
        }

    @pytest.mark.parametrize("workload", ["KM", "LR", "PR"])
    def test_traced_faulted_cell_identical_either_plane(self, workload):
        columnar = _under_columnar(True, lambda: self._run_cell(workload))
        record = _under_columnar(False, lambda: self._run_cell(workload))
        assert columnar["elapsed"] == record["elapsed"]
        assert columnar["gclog"] == record["gclog"]
        assert columnar["checksums"] == record["checksums"]
        assert columnar["events"] == record["events"]
        assert columnar["bandwidth"] == record["bandwidth"]

    def test_naive_bayes_cell_identical_either_plane(self):
        columnar = _under_columnar(True, lambda: self._run_cell("BC", {}))
        record = _under_columnar(False, lambda: self._run_cell("BC", {}))
        assert columnar == record

    def test_composes_with_every_existing_flag(self):
        """Columnar on/off identity must hold under each of the other
        four A/B flags forced to its non-default setting."""

        def km():
            return self._run_cell("KM")

        for module, attr, forced in (
            (_charging, "BATCHED_DEPOSITS", False),
            (_charging, "VECTORISED_COST_PLANE", False),
            (_storage, "SERIALIZED_TIER", False),
            (_partition, "LEGACY_DATA_PLANE", True),
        ):
            pair = _flip(
                module,
                attr,
                forced,
                lambda: (
                    _under_columnar(True, km),
                    _under_columnar(False, km),
                ),
            )
            assert pair[0] == pair[1], f"mismatch under {attr}={forced}"

    def test_serialized_persist_identical_either_plane(self):
        """The columnar plane feeding the serialized tier (batches
        packed into SerializedColumnBatch at persist) changes nothing."""

        def cell():
            config = paper_config(64, 1 / 3, PolicyName.PANTHERA, 0.01)
            result = run_experiment(
                "KM",
                config,
                scale=0.01,
                workload_kwargs={
                    "iterations": 2,
                    "persist_level": _storage.StorageLevel.MEMORY_ONLY_SER,
                },
                keep_context=True,
            )
            return {
                "elapsed": repr(result.elapsed_s),
                "checksums": action_checksums(result.action_results),
            }

        assert _under_columnar(True, cell) == _under_columnar(False, cell)


class TestColumnarPropertyAB:
    """Random traced (and sometimes faulted) pipelines are byte-identical
    with the columnar plane on and off."""

    @settings(
        max_examples=12,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        records=DATASET,
        steps=st.lists(STEP, min_size=1, max_size=5),
        kill=st.booleans(),
    )
    def test_random_pipelines_identical_across_planes(
        self, records, steps, kill
    ):
        def run():
            ctx = small_context(PolicyName.PANTHERA)
            session = TraceSession.attach_to_context(ctx)
            if kill:
                plan = FaultPlan(kills=[KillSpec("shuffle", 1, 0)], seed=3)
                FaultInjector.attach(plan, ctx)
            rdd = build_pipeline(ctx, records, steps)
            result = ctx.scheduler.run_action(rdd, "collect")
            return {
                "result": sorted(result, key=repr),
                "checksums": action_checksums({"collect": result}),
                "elapsed": repr(ctx.machine.elapsed_s),
                "events": [repr(e) for e in session.events],
                "bandwidth": _bandwidth_fingerprint(ctx.machine),
            }

        assert _under_columnar(True, run) == _under_columnar(False, run)


# -- fallbacks --------------------------------------------------------------


class TestFallbacks:
    def test_unregistered_udf_falls_back_per_record(self):
        """A batch reaching a kernel-less map unpacks and maps per
        record — same answer as the record plane."""

        def run():
            ctx = small_context(PolicyName.PANTHERA)
            rdd = ctx.parallelize(
                [(i, float(i)) for i in range(40)], 3, 2**20, name="fb-src"
            ).map(lambda r: (r[0] % 4, r[1] * 2.0))
            return sorted(ctx.scheduler.run_action(rdd, "collect"))

        assert _under_columnar(True, run) == _under_columnar(False, run)

    def test_kernel_registry_is_weak(self):
        import gc as _gc

        def fn(r):
            return r

        _columnar.register_map_kernel(fn, _columnar.identity_kernel)
        assert _columnar.map_kernel_for(fn) is not None
        del fn
        _gc.collect()
        # No strong reference retained by the registry itself.
        assert len(_columnar._MAP_KERNELS) >= 0
