"""Tests for the heap verifier, the GC log renderer and result export."""

import csv
import io
import json

import pytest

from repro.config import MiB, PolicyName
from repro.errors import HeapError
from repro.gc.gclog import format_pause, render_log, summary_line
from repro.harness.configs import paper_config
from repro.harness.experiment import run_experiment
from repro.harness.export import (
    bandwidth_series_to_csv,
    gc_pauses_to_csv,
    result_to_dict,
    results_to_csv,
    results_to_json,
)
from repro.heap.object_model import ObjKind
from repro.heap.verify import verify_heap

SCALE = 0.03


@pytest.fixture(scope="module")
def pr_result():
    cfg = paper_config(64, 1 / 3, PolicyName.PANTHERA, SCALE)
    return run_experiment(
        "PR", cfg, scale=SCALE, workload_kwargs={"iterations": 3},
        keep_context=True,
    )


class TestHeapVerifier:
    def test_fresh_heap_is_consistent(self, panthera_stack):
        assert verify_heap(panthera_stack.heap) == []

    def test_consistent_after_workout(self, panthera_stack):
        heap = panthera_stack.heap
        for i in range(6):
            array = heap.allocate_rdd_array(MiB, rdd_id=i)
            if i % 2 == 0:
                heap.add_root(array)
        panthera_stack.collector.collect_minor()
        panthera_stack.collector.collect_major()
        assert verify_heap(heap, raise_on_error=True) == []

    def test_detects_collected_root(self, panthera_stack):
        heap = panthera_stack.heap
        ghost = heap.new_object(ObjKind.DATA, 64)
        heap.add_root(ghost)
        ghost.space = None  # simulate corruption
        ghost.addr = None
        problems = verify_heap(heap)
        assert any("root" in p for p in problems)
        with pytest.raises(HeapError):
            verify_heap(heap, raise_on_error=True)

    def test_detects_overlap(self, panthera_stack):
        heap = panthera_stack.heap
        a = heap.new_object(ObjKind.DATA, 256)
        b = heap.new_object(ObjKind.DATA, 256)
        b.addr = a.addr  # simulate corruption
        problems = verify_heap(heap)
        assert any("overlap" in p for p in problems)

    def test_detects_missing_dirty_card(self, panthera_stack):
        heap = panthera_stack.heap
        array = heap.allocate_rdd_array(MiB, rdd_id=1)
        heap.add_root(array)  # the barrier check only covers live objects
        young = heap.new_object(ObjKind.DATA, 64)
        array.refs.append(young)  # bypass the write barrier
        problems = verify_heap(heap)
        assert any("dirty card" in p for p in problems)

    def test_experiment_heap_ends_consistent(self, pr_result):
        assert verify_heap(pr_result.context.heap) == []


class TestGCLog:
    def test_minor_line_format(self):
        line = format_pause("minor", 412_000_000, 12_300_000)
        assert line == "[0.412s][GC (Allocation Failure) minor pause 12.3ms]"

    def test_major_line_format(self):
        line = format_pause("major", 3_870_000_000, 181_000_000)
        assert "Full GC" in line and "181.0ms" in line

    def test_render_log_from_experiment(self, pr_result):
        stats = pr_result.context.collector.stats
        lines = render_log(stats, pr_result.elapsed_s)
        assert len(lines) == len(stats.pauses) + 1
        assert lines[-1].startswith("GC summary:")

    def test_render_log_tail_elides(self, pr_result):
        stats = pr_result.context.collector.stats
        lines = render_log(stats, pr_result.elapsed_s, tail=5)
        assert "elided" in lines[0]
        assert len(lines) == 7  # marker + 5 pauses + summary

    def test_summary_share(self):
        from repro.gc.stats import GCStats

        stats = GCStats()
        stats.record_minor(0, 1e9)
        line = summary_line(stats, elapsed_s=10.0)
        assert "(10.0%)" in line

    def test_summary_clamps_zero_elapsed(self):
        from repro.gc.stats import GCStats

        stats = GCStats()
        stats.record_minor(0, 1e9)
        assert summary_line(stats, elapsed_s=0.0) == (
            "GC summary: 1 minor (1.00s), 0 major (0.00s), "
            "total 1.00s (0.0%)"
        )

    def test_summary_clamps_negative_elapsed(self):
        from repro.gc.stats import GCStats

        stats = GCStats()
        stats.record_minor(0, 2e9)
        stats.record_major(2e9, 5e8)
        assert summary_line(stats, elapsed_s=-3.5) == (
            "GC summary: 1 minor (2.00s), 1 major (0.50s), "
            "total 2.50s (0.0%)"
        )


class TestExport:
    def test_result_to_dict_fields(self, pr_result):
        row = result_to_dict(pr_result)
        assert row["workload"] == "PR"
        assert row["policy"] == "panthera"
        assert row["elapsed_s"] > 0
        assert "dram_static_j" in row
        assert row["tags"]["links"] == "dram"

    def test_json_roundtrip(self, pr_result):
        text = results_to_json({"run": pr_result})
        data = json.loads(text)
        assert data["run"]["workload"] == "PR"

    def test_csv_has_header_and_row(self, pr_result):
        text = results_to_csv({"a": pr_result, "b": pr_result})
        rows = list(csv.DictReader(io.StringIO(text)))
        assert len(rows) == 2
        assert rows[0]["workload"] == "PR"
        assert float(rows[0]["elapsed_s"]) > 0

    def test_bandwidth_csv(self, pr_result):
        text = bandwidth_series_to_csv(pr_result)
        rows = list(csv.reader(io.StringIO(text)))
        assert rows[0] == ["time_s", "device", "direction", "gbps"]
        assert len(rows) > 2

    def test_gc_pause_csv(self, pr_result):
        text = gc_pauses_to_csv(pr_result)
        rows = list(csv.DictReader(io.StringIO(text)))
        assert len(rows) == (
            pr_result.context.collector.stats.minor_count
            + pr_result.context.collector.stats.major_count
        )

    def test_export_requires_context(self):
        cfg = paper_config(64, 1 / 3, PolicyName.PANTHERA, SCALE)
        result = run_experiment(
            "PR", cfg, scale=SCALE, workload_kwargs={"iterations": 2}
        )
        with pytest.raises(ValueError):
            bandwidth_series_to_csv(result)
