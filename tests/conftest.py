"""Shared fixtures: miniature configurations and pre-wired stacks."""

from __future__ import annotations

import pytest

from repro.config import MiB, PolicyName, SystemConfig
from repro.core.monitor import AccessMonitor
from repro.core.runtime_api import PantheraRuntime
from repro.gc.collector import Collector
from repro.gc.policies import make_policy
from repro.heap.layout import HEAP_BASE, young_span_bytes
from repro.heap.managed_heap import ManagedHeap
from repro.memory.machine import Machine
from repro.spark.context import SparkContext


def small_config(policy: PolicyName = PolicyName.PANTHERA, **kwargs) -> SystemConfig:
    """A 48 MiB heap with a 1/3 DRAM hybrid split — big enough for real
    collections, small enough for fast tests."""
    heap = kwargs.pop("heap_bytes", 48 * MiB)
    if policy is PolicyName.DRAM_ONLY:
        dram, nvm = heap, 0
    else:
        dram = kwargs.pop("dram_bytes", heap // 3)
        nvm = kwargs.pop("nvm_bytes", heap - dram)
    kwargs.setdefault("interleave_chunk_bytes", 1 * MiB)
    kwargs.setdefault("large_array_threshold", 64 * 1024)
    return SystemConfig(
        heap_bytes=heap, dram_bytes=dram, nvm_bytes=nvm, policy=policy, **kwargs
    )


class Stack:
    """A wired machine + heap + collector (+ Panthera runtime) bundle."""

    def __init__(self, config: SystemConfig) -> None:
        self.config = config
        self.machine = Machine(config)
        self.policy = make_policy(config)
        old_spaces = self.policy.build_old_spaces(
            HEAP_BASE + young_span_bytes(config)
        )
        self.heap = ManagedHeap(
            config, self.machine, old_spaces, card_padding=self.policy.card_padding
        )
        self.monitor = AccessMonitor(self.machine)
        self.collector = Collector(
            self.heap, self.machine, self.policy, monitor=self.monitor
        )
        self.runtime = PantheraRuntime(self.heap, self.monitor)


def make_stack(policy: PolicyName = PolicyName.PANTHERA, **kwargs) -> Stack:
    """Build a full stack over a small configuration."""
    return Stack(small_config(policy, **kwargs))


@pytest.fixture
def panthera_stack() -> Stack:
    """A Panthera-policy stack."""
    return make_stack(PolicyName.PANTHERA)

@pytest.fixture
def dram_stack() -> Stack:
    """A DRAM-only stack."""
    return make_stack(PolicyName.DRAM_ONLY)


@pytest.fixture
def unmanaged_stack() -> Stack:
    """An unmanaged (chunk-interleaved) stack."""
    return make_stack(PolicyName.UNMANAGED)


def small_context(
    policy: PolicyName = PolicyName.PANTHERA, **kwargs
) -> SparkContext:
    """A full SparkContext over the small configuration."""
    return SparkContext.create(small_config(policy, **kwargs))


@pytest.fixture
def ctx() -> SparkContext:
    """A Panthera SparkContext."""
    return small_context()
