"""Tests for storage levels (+Panthera sub-levels) and partitioning."""

import pytest
from hypothesis import given, strategies as st

from repro.core.tags import MemoryTag
from repro.spark.partition import HashPartitioner, split_evenly, _stable_hash
from repro.spark.storage import StorageLevel, expand_level


class TestStorageLevels:
    def test_ten_levels_exist(self):
        assert len(StorageLevel) == 10  # §3: "ten existing storage levels"

    def test_memory_only_flags(self):
        level = StorageLevel.MEMORY_ONLY
        assert level.use_memory and not level.use_disk and not level.serialized

    def test_memory_and_disk_ser_flags(self):
        level = StorageLevel.MEMORY_AND_DISK_SER
        assert level.use_memory and level.use_disk and level.serialized

    def test_disk_only_flags(self):
        level = StorageLevel.DISK_ONLY
        assert not level.use_memory and level.use_disk

    def test_off_heap(self):
        assert StorageLevel.OFF_HEAP.off_heap

    def test_taggable_excludes_off_heap_and_disk_only(self):
        # §3: every level except OFF_HEAP and DISK_ONLY expands into
        # _DRAM/_NVM sub-levels.
        untaggable = {
            level for level in StorageLevel if not level.taggable
        }
        assert untaggable == {
            StorageLevel.OFF_HEAP,
            StorageLevel.DISK_ONLY,
            StorageLevel.DISK_ONLY_2,
        }


class TestExpansion:
    def test_memory_only_expands_with_tag(self):
        tagged = expand_level(StorageLevel.MEMORY_ONLY, MemoryTag.DRAM)
        assert tagged.name == "MEMORY_ONLY_DRAM"
        assert tagged.tag is MemoryTag.DRAM

    def test_off_heap_forced_to_nvm(self):
        tagged = expand_level(StorageLevel.OFF_HEAP, MemoryTag.DRAM)
        assert tagged.tag is MemoryTag.NVM
        assert tagged.name == "OFF_HEAP_NVM"

    def test_disk_only_carries_no_tag(self):
        tagged = expand_level(StorageLevel.DISK_ONLY, MemoryTag.DRAM)
        assert tagged.tag is None
        assert tagged.name == "DISK_ONLY"

    def test_no_inferred_tag(self):
        tagged = expand_level(StorageLevel.MEMORY_AND_DISK_SER, None)
        assert tagged.tag is None
        assert tagged.name == "MEMORY_AND_DISK_SER"


class TestHashPartitioner:
    def test_in_range(self):
        partitioner = HashPartitioner(4)
        for key in ["a", "bb", 17, (1, "x"), None, 3.5, b"zz"]:
            assert 0 <= partitioner.partition_of(key) < 4

    def test_deterministic(self):
        a, b = HashPartitioner(8), HashPartitioner(8)
        for key in range(100):
            assert a.partition_of(key) == b.partition_of(key)

    def test_equality_by_partition_count(self):
        assert HashPartitioner(4) == HashPartitioner(4)
        assert HashPartitioner(4) != HashPartitioner(5)
        assert hash(HashPartitioner(4)) == hash(HashPartitioner(4))

    def test_split_preserves_records(self):
        partitioner = HashPartitioner(3)
        records = [(k, k * 2) for k in range(50)]
        buckets = partitioner.split(records)
        assert sorted(r for b in buckets for r in b) == sorted(records)

    def test_split_respects_partition_of(self):
        partitioner = HashPartitioner(3)
        buckets = partitioner.split([(k, None) for k in range(30)])
        for idx, bucket in enumerate(buckets):
            for key, _ in bucket:
                assert partitioner.partition_of(key) == idx

    def test_bad_partition_count(self):
        with pytest.raises(ValueError):
            HashPartitioner(0)

    @given(st.integers())
    def test_stable_hash_nonnegative(self, key):
        assert _stable_hash(key) >= 0

    @given(st.text(max_size=30))
    def test_stable_hash_strings_deterministic(self, s):
        assert _stable_hash(s) == _stable_hash(s)


class TestSplitEvenly:
    def test_round_robin(self):
        buckets = split_evenly([(i, i) for i in range(10)], 3)
        assert [len(b) for b in buckets] == [4, 3, 3]

    def test_preserves_all_records(self):
        records = [(i, str(i)) for i in range(25)]
        buckets = split_evenly(records, 4)
        assert sorted(r for b in buckets for r in b) == sorted(records)
