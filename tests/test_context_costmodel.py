"""Tests for SparkContext wiring and the mutator cost-model helpers."""

import pytest

from repro.config import MiB, PolicyName
from repro.spark.costmodel import MutatorCosts
from repro.workloads.datasets import powerlaw_graph
from tests.conftest import small_config, small_context


class TestMutatorCosts:
    def test_array_bytes_share(self):
        costs = MutatorCosts()
        assert costs.array_bytes_for(10 * MiB) == pytest.approx(
            10 * MiB * costs.array_share
        )

    def test_array_bytes_floor(self):
        assert MutatorCosts().array_bytes_for(10) == 512

    def test_hash_probes(self):
        costs = MutatorCosts()
        assert costs.hash_probes_for(costs.hash_grain_bytes * 10) == 10
        assert costs.hash_probes_for(0) == 0

    def test_frozen(self):
        with pytest.raises(Exception):
            MutatorCosts().cpu_ns_per_byte = 99


class TestSparkContextWiring:
    def test_sources_cached_by_dataset_name(self):
        ctx = small_context()
        ds = powerlaw_graph("cache-me", 20, 60, total_bytes=MiB)
        a = ctx.source_rdd(ds)
        b = ctx.source_rdd(ds)
        assert a is b

    def test_different_datasets_not_conflated(self):
        ctx = small_context()
        a = ctx.source_rdd(powerlaw_graph("x", 20, 60, total_bytes=MiB))
        b = ctx.source_rdd(powerlaw_graph("y", 20, 60, total_bytes=MiB))
        assert a is not b

    def test_rdd_ids_unique_and_registered(self):
        ctx = small_context()
        rdds = [
            ctx.parallelize([(1, 1)], 1, MiB, name=f"r{i}") for i in range(5)
        ]
        ids = {r.id for r in rdds}
        assert len(ids) == 5
        for rdd in rdds:
            assert ctx.rdd_by_id(rdd.id) is rdd

    def test_panthera_enabled_flag(self):
        assert small_context(PolicyName.PANTHERA).panthera_enabled
        assert not small_context(PolicyName.UNMANAGED).panthera_enabled

    def test_monitor_only_under_panthera(self):
        assert small_context(PolicyName.PANTHERA).monitor is not None
        assert small_context(PolicyName.DRAM_ONLY).monitor is None

    def test_on_rdd_call_gated_by_persistence(self):
        ctx = small_context(PolicyName.PANTHERA)
        plain = ctx.parallelize([(1, 1)], 1, MiB, name="plain")
        before = ctx.monitor.total_calls
        ctx.on_rdd_call(plain)  # not persisted, not cached: ignored
        assert ctx.monitor.total_calls == before
        plain.persist()
        assert ctx.monitor.total_calls == before + 1  # persist() itself counts
        ctx.on_rdd_call(plain)
        assert ctx.monitor.total_calls == before + 2

    def test_custom_policy_injection(self):
        from repro.gc.policies import DramOnlyPolicy
        from repro.spark.context import SparkContext

        config = small_config(PolicyName.DRAM_ONLY)
        custom = DramOnlyPolicy(config)
        ctx = SparkContext.create(config, policy=custom)
        assert ctx.policy is custom
