"""Integration tests asserting the paper's qualitative result shapes.

These use a small scale (fast) and assert *orderings and directions*, not
absolute numbers — exactly what the reproduction claims to preserve.
"""

import pytest

from repro.config import DeviceKind, PolicyName
from repro.harness.configs import fig4_configs, paper_config, write_rationing_configs
from repro.harness.experiment import run_experiment

SCALE = 0.05


@pytest.fixture(scope="module")
def pr_results():
    return {
        key: run_experiment("PR", cfg, scale=SCALE)
        for key, cfg in fig4_configs(SCALE).items()
    }


@pytest.fixture(scope="module")
def km_results():
    return {
        key: run_experiment("KM", cfg, scale=SCALE)
        for key, cfg in fig4_configs(SCALE).items()
    }


class TestHeadlineShapes:
    def test_unmanaged_slower_than_dram_only(self, pr_results, km_results):
        for results in (pr_results, km_results):
            assert results["unmanaged"].elapsed_s > results["dram-only"].elapsed_s

    def test_panthera_faster_than_unmanaged(self, pr_results, km_results):
        for results in (pr_results, km_results):
            assert results["panthera"].elapsed_s < results["unmanaged"].elapsed_s

    def test_panthera_time_near_dram_only(self, pr_results):
        ratio = pr_results["panthera"].elapsed_s / pr_results["dram-only"].elapsed_s
        assert 0.8 <= ratio <= 1.1

    def test_hybrid_saves_energy(self, pr_results, km_results):
        for results in (pr_results, km_results):
            base = results["dram-only"].energy_j
            assert results["unmanaged"].energy_j < base
            assert results["panthera"].energy_j < base

    def test_panthera_energy_at_most_unmanaged(self, pr_results, km_results):
        for results in (pr_results, km_results):
            assert (
                results["panthera"].energy_j
                <= results["unmanaged"].energy_j * 1.02
            )

    def test_unmanaged_gc_penalty_large(self, pr_results, km_results):
        # §5.3: the unmanaged GC overhead dwarfs its mutator overhead.
        for results in (pr_results, km_results):
            gc_ratio = results["unmanaged"].gc_s / results["dram-only"].gc_s
            assert gc_ratio > 1.2

    def test_panthera_gc_beats_unmanaged_gc(self, pr_results, km_results):
        for results in (pr_results, km_results):
            assert results["panthera"].gc_s < results["unmanaged"].gc_s


class TestCardPaddingEffects:
    def test_stock_policies_suffer_stuck_rescans(self, pr_results):
        assert pr_results["dram-only"].stuck_rescans > 0
        assert pr_results["unmanaged"].stuck_rescans > 0

    def test_panthera_padding_eliminates_stuck_rescans(self, pr_results):
        assert pr_results["panthera"].stuck_rescans == 0

    def test_padding_ablation_increases_gc(self):
        base_cfg = paper_config(64, 1 / 3, PolicyName.PANTHERA, SCALE)
        no_pad = base_cfg.replace(card_padding=False)
        with_pad = run_experiment("PR", base_cfg, scale=SCALE)
        without = run_experiment("PR", no_pad, scale=SCALE)
        assert without.gc_s > with_pad.gc_s

    def test_eager_promotion_ablation_increases_gc(self):
        base_cfg = paper_config(64, 1 / 3, PolicyName.PANTHERA, SCALE)
        no_eager = base_cfg.replace(eager_promotion=False)
        with_eager = run_experiment("PR", base_cfg, scale=SCALE)
        without = run_experiment("PR", no_eager, scale=SCALE)
        assert without.gc_s >= with_eager.gc_s * 0.95


class TestTable5Shapes:
    def test_only_graphx_migrates(self):
        # Needs enough pressure for major GCs: use the bench scale.
        scale = 0.1
        migrations = {}
        for wl in ("KM", "CC"):
            cfg = paper_config(64, 1 / 3, PolicyName.PANTHERA, scale)
            result = run_experiment(wl, cfg, scale=scale)
            migrations[wl] = result.migrated_rdds
        assert migrations["CC"] >= 1
        assert migrations["KM"] == 0

    def test_monitoring_overhead_below_one_percent(self):
        cfg = paper_config(64, 1 / 3, PolicyName.PANTHERA, SCALE)
        result = run_experiment("PR", cfg, scale=SCALE, keep_context=True)
        overhead = result.context.monitor.overhead_ns / 1e9
        assert overhead < 0.01 * result.elapsed_s

    def test_graphx_monitored_calls_exceed_pr(self):
        cfg = paper_config(64, 1 / 3, PolicyName.PANTHERA, SCALE)
        pr = run_experiment("PR", cfg, scale=SCALE)
        cc = run_experiment(
            "CC", paper_config(64, 1 / 3, PolicyName.PANTHERA, SCALE), scale=SCALE
        )
        assert cc.monitored_calls > 0
        assert pr.monitored_calls > 0


class TestWriteRationingComparison:
    def test_kingsguard_worse_than_panthera(self):
        results = {
            key: run_experiment("KM", cfg, scale=SCALE)
            for key, cfg in write_rationing_configs(SCALE).items()
        }
        # §5.2: Write Rationing incurs much larger overheads on Spark
        # because persisted RDDs are read-mostly and land in NVM.
        assert results["kingsguard-nursery"].elapsed_s > results["panthera"].elapsed_s
        assert results["kingsguard-writes"].elapsed_s > results["panthera"].elapsed_s


class TestBandwidthTraces:
    def test_panthera_shifts_traffic_off_nvm(self):
        results = {}
        for pol in ("unmanaged", "panthera"):
            cfg = fig4_configs(SCALE)[pol]
            results[pol] = run_experiment(
                "CC", cfg, scale=SCALE, keep_context=True
            )
        unm_nvm = results["unmanaged"].context.machine.bandwidth.total_bytes(
            DeviceKind.NVM, False
        )
        pan_nvm = results["panthera"].context.machine.bandwidth.total_bytes(
            DeviceKind.NVM, False
        )
        assert pan_nvm < unm_nvm

    def test_dram_only_never_touches_nvm(self):
        cfg = fig4_configs(SCALE)["dram-only"]
        result = run_experiment("PR", cfg, scale=SCALE, keep_context=True)
        bw = result.context.machine.bandwidth
        assert bw.total_bytes(DeviceKind.NVM, False) == 0
        assert bw.total_bytes(DeviceKind.NVM, True) == 0
