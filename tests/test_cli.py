"""CLI tests: every subcommand runs end to end."""

import json

from repro.cli import main


def run_cli(capsys, *argv):
    code = main(list(argv))
    out = capsys.readouterr().out
    return code, out


class TestList:
    def test_lists_all_workloads(self, capsys):
        code, out = run_cli(capsys, "list")
        assert code == 0
        for name in ("PR", "KM", "LR", "TC", "CC", "SSSP", "BC"):
            assert name in out


class TestAnalyze:
    def test_pagerank_tags(self, capsys):
        code, out = run_cli(capsys, "analyze", "PR", "--iterations", "3")
        assert code == 0
        assert "links" in out and "DRAM" in out
        assert "contribs" in out and "NVM" in out

    def test_flip_note_for_graphx(self, capsys):
        code, out = run_cli(capsys, "analyze", "CC", "--scale", "0.02")
        assert code == 0
        assert "flipped to DRAM" in out

    def test_placements_and_ser_candidates(self, capsys):
        code, out = run_cli(capsys, "analyze", "PR", "--iterations", "3")
        assert code == 0
        assert "[object-heap-dram]" in out
        assert "serialization candidates" in out and "contribs" in out

    def test_persist_override_routes_to_tier(self, capsys):
        code, out = run_cli(
            capsys,
            "analyze",
            "KM",
            "--iterations",
            "3",
            "--persist",
            "MEMORY_ONLY_SER",
        )
        assert code == 0
        assert "[serialized-nvm]" in out


class TestRunPersistOverride:
    def test_run_with_serialized_persist(self, capsys):
        code, out = run_cli(
            capsys,
            "run",
            "KM",
            "--scale",
            "0.02",
            "--iterations",
            "3",
            "--persist",
            "MEMORY_ONLY_SER",
        )
        assert code == 0
        assert "KM [panthera]" in out


class TestRun:
    ARGS = ("--scale", "0.02", "--iterations", "3")

    def test_basic_run(self, capsys):
        code, out = run_cli(capsys, "run", "PR", *self.ARGS)
        assert code == 0
        assert "PR [panthera]" in out
        assert "GC" in out

    def test_policy_selection(self, capsys):
        code, out = run_cli(capsys, "run", "KM", "--policy", "unmanaged", *self.ARGS)
        assert code == 0
        assert "unmanaged" in out

    def test_gclog_output(self, capsys):
        code, out = run_cli(capsys, "run", "PR", "--gclog", "3", *self.ARGS)
        assert code == 0
        assert "GC summary:" in out

    def test_verify_flag(self, capsys):
        code, out = run_cli(capsys, "run", "PR", "--verify", *self.ARGS)
        assert code == 0
        assert "heap verification: consistent" in out

    def test_export_json(self, capsys, tmp_path):
        path = tmp_path / "out.json"
        code, out = run_cli(capsys, "run", "PR", "--export-json", str(path), *self.ARGS)
        assert code == 0
        data = json.loads(path.read_text())
        assert data["PR"]["workload"] == "PR"

    def test_export_bandwidth(self, capsys, tmp_path):
        path = tmp_path / "bw.csv"
        code, out = run_cli(
            capsys, "run", "PR", "--export-bandwidth", str(path), *self.ARGS
        )
        assert code == 0
        assert path.read_text().startswith("time_s,device,direction,gbps")


class TestCompare:
    def test_three_policies(self, capsys):
        code, out = run_cli(
            capsys, "compare", "KM", "--scale", "0.02", "--iterations", "3"
        )
        assert code == 0
        assert "dram-only" in out
        assert "panthera" in out
        assert "time (norm.)" in out
