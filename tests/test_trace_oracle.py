"""The trace-replay oracle as a test oracle: random-program property
tests, workload-level checks, dynamic-migration invariants and the
``--jobs 1`` vs ``--jobs 4`` determinism regression."""

import pytest
from hypothesis import given, settings

from repro.config import PolicyName
from repro.core.tags import MemoryTag
from repro.harness.configs import paper_config
from repro.harness.engine import ExperimentEngine, ExperimentPoint
from repro.harness.experiment import run_experiment
from repro.trace import (
    TraceSession,
    events_to_jsonl,
    heap_live_bytes,
    oracle_check,
    replay_events,
)
from repro.trace.events import (
    FREE,
    MIGRATE_DRAM_TO_NVM,
    MIGRATE_KINDS,
    MIGRATE_NVM_TO_DRAM,
)
from tests.conftest import make_stack
from tests.test_properties_gc import OPERATIONS, apply_ops

SCALE = 0.02
YOUNG_SPACES = {"eden", "survivor-from", "survivor-to"}


# -- satellite: the oracle on random workload programs -----------------------


@pytest.mark.parametrize(
    "policy", [PolicyName.PANTHERA, PolicyName.UNMANAGED]
)
@settings(max_examples=55, deadline=None)
@given(ops=OPERATIONS)
def test_oracle_on_random_programs(policy, ops):
    """Replaying the trace of any random op sequence reconstructs the
    heap's live bytes per space and the pause list exactly."""
    stack = make_stack(policy)
    session = TraceSession.attach(stack.heap, stack.collector.stats)
    apply_ops(stack, ops)
    assert session.check() == []


@settings(max_examples=25, deadline=None)
@given(ops=OPERATIONS)
def test_replay_totals_match_alloc_minus_free(ops):
    """The replayed total equals traced allocations minus traced frees —
    moves (copies, promotions, migrations) never create or lose bytes."""
    stack = make_stack(PolicyName.PANTHERA)
    session = TraceSession.attach(stack.heap, stack.collector.stats)
    apply_ops(stack, ops)
    state = replay_events(session.events)
    allocated = sum(e.size for e in session.events if e.kind == "alloc")
    freed = sum(e.size for e in session.events if e.kind == FREE)
    assert state.total_live_bytes() == int(allocated - freed)


# -- satellite: the oracle on the real workloads -----------------------------


@pytest.mark.parametrize("workload", ["PR", "KM", "LR", "TC", "CC", "SSSP", "BC"])
def test_oracle_on_tier1_workloads(workload):
    config = paper_config(64, 1 / 3, PolicyName.PANTHERA, SCALE)
    result = run_experiment(
        workload, config, scale=SCALE, keep_context=True, trace=True
    )
    ctx = result.context
    assert result.trace_events, "tracing recorded nothing"
    assert (
        oracle_check(ctx.heap, ctx.collector.stats, result.trace_events) == []
    )


# -- satellite: dynamic-migration invariants ---------------------------------


def _hot_nvm_stack():
    """Three rooted NVM-placed RDD arrays, aged one full cycle, then
    reported hot — the §4.2.2 recipe that forces NVM -> DRAM moves."""
    stack = make_stack(PolicyName.PANTHERA)
    heap = stack.heap
    session = TraceSession.attach(heap, stack.collector.stats)
    for i in range(3):
        heap.tag_wait.arm(MemoryTag.NVM)
        heap.add_root(heap.allocate_rdd_array(256 * 1024, rdd_id=10 + i))
    stack.collector.collect_major()  # survivors age to 1
    for i in range(3):
        for _ in range(5):  # >= HOT_CALL_THRESHOLD
            stack.monitor.record_call(10 + i)
    before = sum(heap_live_bytes(heap).values())
    stack.collector.collect_major()  # reassessment migrates NVM -> DRAM
    return stack, session, before


def test_forced_migration_emits_nvm_to_dram_events():
    _, session, _ = _hot_nvm_stack()
    migrations = [e for e in session.events if e.kind in MIGRATE_KINDS]
    assert migrations, "the hot-RDD recipe produced no migrations"
    assert all(e.kind == MIGRATE_NVM_TO_DRAM for e in migrations)


def test_migrations_cross_the_device_boundary_exactly_once():
    _, session, _ = _hot_nvm_stack()
    moved = set()
    for event in session.events:
        if event.kind not in MIGRATE_KINDS:
            continue
        # Each move crosses DRAM<->NVM: source and destination devices
        # are distinct and together cover both sides.
        assert {event.src_device, event.device} == {"dram", "nvm"}
        expected = (
            MIGRATE_NVM_TO_DRAM
            if event.device == "dram"
            else MIGRATE_DRAM_TO_NVM
        )
        assert event.kind == expected
        assert event.oid not in moved, "object migrated twice in one run"
        moved.add(event.oid)


def test_migrations_never_originate_in_the_young_generation():
    _, session, _ = _hot_nvm_stack()
    for event in session.events:
        if event.kind in MIGRATE_KINDS:
            assert event.src_space not in YOUNG_SPACES
            assert event.space not in YOUNG_SPACES


def test_migrating_major_gc_conserves_live_bytes():
    stack, session, before = _hot_nvm_stack()
    after = sum(heap_live_bytes(stack.heap).values())
    assert after == before  # every object was rooted: nothing may die
    assert session.check() == []


def test_cold_dram_arrays_migrate_to_nvm():
    stack = make_stack(PolicyName.PANTHERA)
    heap = stack.heap
    session = TraceSession.attach(heap, stack.collector.stats)
    heap.tag_wait.arm(MemoryTag.DRAM)
    heap.add_root(heap.allocate_rdd_array(256 * 1024, rdd_id=42))
    stack.collector.collect_major()  # ages to 1, resets the monitor
    for _ in range(4):  # MIN_COLD_CYCLE_MINORS of zero calls
        stack.collector.collect_minor()
    stack.collector.collect_major()
    migrations = [e for e in session.events if e.kind in MIGRATE_KINDS]
    assert migrations and all(
        e.kind == MIGRATE_DRAM_TO_NVM and e.src_space == "old-dram"
        for e in migrations
    )
    assert session.check() == []


def test_real_workload_migrations_respect_invariants():
    """Whatever migrations a real run produces obey the same rules."""
    config = paper_config(64, 1 / 3, PolicyName.PANTHERA, SCALE)
    result = run_experiment("KM", config, scale=SCALE, trace=True)
    for event in result.trace_events:
        if event.kind in MIGRATE_KINDS:
            assert {event.src_device, event.device} == {"dram", "nvm"}
            assert event.src_space not in YOUNG_SPACES


# -- satellite: serial vs parallel determinism -------------------------------


def _pr_points():
    return [
        ExperimentPoint(
            "PR",
            paper_config(64, 1 / 3, policy, SCALE),
            SCALE,
            workload_kwargs={"iterations": 2},
            trace=True,
        )
        for policy in (PolicyName.DRAM_ONLY, PolicyName.PANTHERA)
    ]


def test_trace_events_byte_identical_serial_vs_parallel():
    serial = ExperimentEngine(jobs=1).run(_pr_points())
    parallel = ExperimentEngine(jobs=4).run(_pr_points())
    assert len(serial) == len(parallel) == 2
    for lhs, rhs in zip(serial, parallel):
        assert lhs.trace_events, "tracing recorded nothing"
        assert events_to_jsonl(lhs.trace_events) == events_to_jsonl(
            rhs.trace_events
        )


def test_matrix_trace_output_byte_identical_across_jobs(capsys):
    from repro.cli import main

    def render(jobs: int) -> str:
        code = main(
            [
                "matrix",
                "--workloads",
                "PR",
                "--scale",
                str(SCALE),
                "--jobs",
                str(jobs),
                "--trace",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        # Progress lines carry wall-clock timings; everything else (the
        # report and every trace section) must be byte-identical.
        return "\n".join(
            line for line in out.splitlines() if not line.startswith("  [")
        )

    assert render(1) == render(4)


def test_trace_fingerprint_differs_from_untraced():
    """Traced and untraced runs never share a result-cache entry."""
    traced, untraced = _pr_points()[0], _pr_points()[0]
    untraced.trace = False
    assert traced.fingerprint() != untraced.fingerprint()
