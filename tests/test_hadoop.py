"""Tests for the §4.3 Hadoop substrate: MapReduce + HashJoin over the
Panthera runtime APIs."""

import pytest

from repro.config import DeviceKind, MiB, PolicyName
from repro.core.tags import MemoryTag
from repro.errors import ReproError
from repro.hadoop.hashjoin import HashJoin
from repro.hadoop.mapreduce import MapReduceJob, SideTable
from tests.conftest import make_stack


def word_count_job(stack, **kwargs):
    return MapReduceJob(
        stack.heap,
        stack.machine,
        stack.runtime,
        map_fn=lambda record: [(word, 1) for word in record[1].split()],
        reduce_fn=lambda key, values: sum(values),
        **kwargs,
    )


class TestMapReduce:
    def test_word_count_end_to_end(self, panthera_stack):
        splits = [
            [(0, "the quick brown fox"), (1, "the lazy dog")],
            [(2, "the fox again")],
        ]
        job = word_count_job(panthera_stack)
        result = job.run(splits, bytes_per_record=256 * 1024)
        assert result["the"] == 3
        assert result["fox"] == 2
        assert result["dog"] == 1

    def test_map_phase_charges_the_machine(self, panthera_stack):
        job = word_count_job(panthera_stack)
        job.run([[(0, "a b c")]], bytes_per_record=MiB)
        assert panthera_stack.machine.elapsed_s > 0
        disk = panthera_stack.machine.devices[DeviceKind.DISK]
        assert disk.counters.read_bytes > 0  # HDFS input

    def test_streaming_splits_drive_minor_gcs(self, panthera_stack):
        job = word_count_job(panthera_stack)
        splits = [[(i, "x y z")] for i in range(8)]
        job.run(splits, bytes_per_record=MiB)
        assert panthera_stack.collector.stats.minor_count >= 1

    def test_empty_job_rejected(self, panthera_stack):
        with pytest.raises(ReproError):
            word_count_job(panthera_stack).run([], bytes_per_record=1024)

    def test_side_table_pretenured_by_tag(self, panthera_stack):
        table = SideTable("dims", [(1, "a")], nbytes=2 * MiB, tag=MemoryTag.DRAM)
        job = word_count_job(panthera_stack, side_tables=[table])
        job.load_side_tables()
        assert table.array.space.name == "old-dram"
        job.release_side_tables()
        assert table.array is None

    def test_untagged_side_table_goes_to_nvm(self, panthera_stack):
        table = SideTable("cold", [(1, "a")], nbytes=2 * MiB, tag=None)
        job = word_count_job(panthera_stack, side_tables=[table])
        job.load_side_tables()
        assert table.array.space.name == "old-nvm"
        job.release_side_tables()

    def test_side_tables_survive_collections_during_job(self, panthera_stack):
        table = SideTable("dims", [(0, "v")], nbytes=2 * MiB, tag=MemoryTag.DRAM)
        job = word_count_job(panthera_stack, side_tables=[table])
        splits = [[(i, "w w w")] for i in range(6)]
        job.run(splits, bytes_per_record=MiB)
        # Collections ran; the table must have stayed alive throughout
        # (release only happens at job end).
        assert panthera_stack.collector.stats.minor_count >= 1


class TestHashJoin:
    def build_join(self, stack, monitored=False, tag=MemoryTag.DRAM):
        build = [(key, f"dim{key}") for key in range(8)]
        return HashJoin(
            stack.heap,
            stack.machine,
            stack.runtime,
            build_records=build,
            build_nbytes=2 * MiB,
            tag=tag,
            monitored=monitored,
        )

    def test_join_results_correct(self, panthera_stack):
        join = self.build_join(panthera_stack)
        probe = [[(k % 8, f"fact{k}") for k in range(16)]]
        result = join.join(probe, bytes_per_record=256 * 1024)
        assert set(result) == set(range(8))
        for key, pairs in result.items():
            for fact_value, dim_value in pairs:
                assert dim_value == f"dim{key}"
        assert sum(len(v) for v in result.values()) == 16

    def test_missing_keys_dropped(self, panthera_stack):
        join = self.build_join(panthera_stack)
        result = join.join([[(99, "nope")]], bytes_per_record=1024)
        assert result == {}

    def test_build_table_in_dram(self, panthera_stack):
        join = self.build_join(panthera_stack)

        # Sample the placement while the job is mid-flight via the map fn.
        seen = {}

        original = join.table.lookup

        def spying_lookup(key):
            seen["space"] = join.table.array.space.name
            return original(key)

        join.table.lookup = spying_lookup
        join.join([[(0, "probe")]], bytes_per_record=1024)
        assert seen["space"] == "old-dram"

    def test_monitored_table_accumulates_calls(self, panthera_stack):
        join = self.build_join(panthera_stack, monitored=True, tag=MemoryTag.NVM)
        probe_splits = [[(k, "p")] for k in range(6)]
        join.join(probe_splits, bytes_per_record=MiB)
        # Six map tasks -> six monitored probes.
        assert panthera_stack.monitor.total_calls >= 6

    def test_hashjoin_under_stock_policy(self):
        # The APIs degrade gracefully without a split old generation.
        stack = make_stack(PolicyName.DRAM_ONLY)
        join = self.build_join(stack)
        result = join.join([[(1, "x")]], bytes_per_record=1024)
        assert result == {1: [("x", "dim1")]}
