"""Tests for edge-list loading, the bundled graph and pause percentiles."""

import pathlib

import networkx as nx
import pytest

from repro.config import MiB, PolicyName
from repro.core.static_analysis import analyze_program
from repro.gc.stats import GCStats
from repro.spark.program import execute_program
from repro.workloads.datasets import from_edge_list
from repro.workloads.graphx import build_connected_components
from tests.conftest import small_context

KARATE = pathlib.Path(__file__).resolve().parents[1] / "data" / "karate.edges"


class TestEdgeListLoading:
    def test_karate_club_loads(self):
        ds = from_edge_list(KARATE, total_bytes=8 * MiB)
        assert len(ds.records) == 78
        assert ds.name == "karate.edges"
        vertices = {v for edge in ds.records for v in edge}
        assert len(vertices) == 34

    def test_total_bytes_assigned(self):
        ds = from_edge_list(KARATE, total_bytes=8 * MiB, name="k")
        assert ds.total_bytes == 8 * MiB
        assert ds.bytes_per_record == pytest.approx(8 * MiB / 78)

    def test_comments_and_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "graph.txt"
        path.write_text("# header\n\n1 2\n2 3  \n# trailing\n")
        ds = from_edge_list(path, total_bytes=MiB)
        assert ds.records == ((1, 2), (2, 3))

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.txt"
        path.write_text("# nothing\n")
        with pytest.raises(ValueError):
            from_edge_list(path, total_bytes=MiB)

    def test_karate_cc_matches_networkx(self):
        """A real dataset through a real workload: the karate club is one
        connected component."""
        ds = from_edge_list(KARATE, total_bytes=8 * MiB)
        spec = build_connected_components(dataset=ds, iterations=6)
        ctx = small_context(PolicyName.PANTHERA)
        tags = analyze_program(spec.program).tags
        results = execute_program(spec.program, ctx, tags)
        labels = {label for _, (label, _) in results["components"]}
        graph = nx.Graph()
        graph.add_edges_from(ds.records)
        assert len(labels) == nx.number_connected_components(graph) == 1


class TestPausePercentiles:
    def make_stats(self):
        stats = GCStats()
        for i in range(1, 11):
            stats.record_minor(i * 1e9, i * 1e6)  # 1..10 ms
        stats.record_major(99e9, 100e6)  # 100 ms
        return stats

    def test_max_pause(self):
        assert self.make_stats().max_pause_ms() == pytest.approx(100.0)

    def test_median_pause(self):
        stats = self.make_stats()
        assert 5.0 <= stats.pause_percentile(0.5) <= 7.0

    def test_kind_filter(self):
        stats = self.make_stats()
        assert stats.pause_percentile(1.0, kind="minor") == pytest.approx(10.0)
        assert stats.pause_percentile(1.0, kind="major") == pytest.approx(100.0)

    def test_mean_pause(self):
        stats = self.make_stats()
        expected = (sum(range(1, 11)) + 100) / 11
        assert stats.mean_pause_ms() == pytest.approx(expected)

    def test_empty_stats(self):
        assert GCStats().pause_percentile(0.99) == 0.0
        assert GCStats().mean_pause_ms() == 0.0

    def test_bad_fraction_rejected(self):
        with pytest.raises(ValueError):
            GCStats().pause_percentile(1.5)
