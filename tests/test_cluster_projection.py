"""Tests for the cluster-scale pause projection (§5.2's argument)."""

import pytest

from repro.config import PolicyName
from repro.cluster.projection import project_cluster, project_pauses
from repro.errors import ReproError
from repro.harness.configs import paper_config
from repro.harness.experiment import run_experiment

SCALE = 0.05


class TestProjectPauses:
    def test_single_node_is_identity(self):
        projection = project_pauses(100.0, [1.0, 2.0], nodes=1)
        assert projection.cluster_s == pytest.approx(103.0)
        assert projection.slowdown == pytest.approx(1.0)

    def test_no_pauses_no_slowdown(self):
        projection = project_pauses(100.0, [], nodes=32)
        assert projection.slowdown == pytest.approx(1.0)
        assert projection.gc_amplification == pytest.approx(1.0)

    def test_slowdown_grows_with_cluster_size(self):
        pauses = [0.5] * 40
        slowdowns = [
            project_pauses(100.0, pauses, nodes=k).slowdown for k in (1, 4, 16, 64)
        ]
        for smaller, larger in zip(slowdowns, slowdowns[1:]):
            assert larger >= smaller

    def test_amplification_bounded_by_windows_times_worst(self):
        pauses = [1.0] * 10
        projection = project_pauses(100.0, pauses, nodes=8, sync_windows=5)
        # The cluster can never wait more than every node pausing fully
        # in every window.
        assert projection.gc_amplification <= 8.0

    def test_deterministic(self):
        pauses = [0.3] * 20
        a = project_pauses(50.0, pauses, nodes=8, seed=7)
        b = project_pauses(50.0, pauses, nodes=8, seed=7)
        assert a.cluster_s == b.cluster_s

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ReproError):
            project_pauses(1.0, [], nodes=0)
        with pytest.raises(ReproError):
            project_pauses(1.0, [], nodes=2, sync_windows=0)


class TestProjectCluster:
    @pytest.fixture(scope="class")
    def results(self):
        out = {}
        for key, policy in (
            ("unmanaged", PolicyName.UNMANAGED),
            ("panthera", PolicyName.PANTHERA),
        ):
            cfg = paper_config(64, 1 / 3, policy, SCALE)
            out[key] = run_experiment(
                "PR", cfg, scale=SCALE, keep_context=True,
                workload_kwargs={"iterations": 6},
            )
        return out

    def test_requires_context(self):
        cfg = paper_config(64, 1 / 3, PolicyName.PANTHERA, SCALE)
        result = run_experiment(
            "PR", cfg, scale=SCALE, workload_kwargs={"iterations": 2}
        )
        with pytest.raises(ReproError):
            project_cluster(result, nodes=4)

    def test_panthera_amplifies_less_than_unmanaged(self, results):
        """The §5.2 prediction: Panthera's GC advantage grows with
        cluster size."""
        k = 32
        unmanaged = project_cluster(results["unmanaged"], nodes=k)
        panthera = project_cluster(results["panthera"], nodes=k)
        unmanaged_penalty = unmanaged.cluster_s - unmanaged.single_node_s
        panthera_penalty = panthera.cluster_s - panthera.single_node_s
        assert panthera_penalty < unmanaged_penalty

    def test_projection_consistent_with_single_node(self, results):
        projection = project_cluster(results["panthera"], nodes=1)
        assert projection.cluster_s == pytest.approx(
            results["panthera"].elapsed_s, rel=0.01
        )
