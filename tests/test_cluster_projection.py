"""Tests for the cluster-scale pause projection (§5.2's argument)."""

import pytest

from repro.config import PolicyName
from repro.cluster.projection import project_cluster, project_pauses
from repro.errors import ReproError
from repro.harness.configs import paper_config
from repro.harness.experiment import run_experiment

SCALE = 0.05


class TestProjectPauses:
    def test_single_node_is_identity(self):
        projection = project_pauses(100.0, [1.0, 2.0], nodes=1)
        assert projection.cluster_s == pytest.approx(103.0)
        assert projection.slowdown == pytest.approx(1.0)

    def test_no_pauses_no_slowdown(self):
        projection = project_pauses(100.0, [], nodes=32)
        assert projection.slowdown == pytest.approx(1.0)
        assert projection.gc_amplification == pytest.approx(1.0)

    def test_slowdown_grows_with_cluster_size(self):
        pauses = [0.5] * 40
        slowdowns = [
            project_pauses(100.0, pauses, nodes=k).slowdown for k in (1, 4, 16, 64)
        ]
        for smaller, larger in zip(slowdowns, slowdowns[1:]):
            assert larger >= smaller

    def test_amplification_bounded_by_windows_times_worst(self):
        pauses = [1.0] * 10
        projection = project_pauses(100.0, pauses, nodes=8, sync_windows=5)
        # The cluster can never wait more than every node pausing fully
        # in every window.
        assert projection.gc_amplification <= 8.0

    def test_deterministic(self):
        pauses = [0.3] * 20
        a = project_pauses(50.0, pauses, nodes=8, seed=7)
        b = project_pauses(50.0, pauses, nodes=8, seed=7)
        assert a.cluster_s == b.cluster_s

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ReproError):
            project_pauses(1.0, [], nodes=0)
        with pytest.raises(ReproError):
            project_pauses(1.0, [], nodes=2, sync_windows=0)


class TestProjectCluster:
    @pytest.fixture(scope="class")
    def results(self):
        out = {}
        for key, policy in (
            ("unmanaged", PolicyName.UNMANAGED),
            ("panthera", PolicyName.PANTHERA),
        ):
            cfg = paper_config(64, 1 / 3, policy, SCALE)
            out[key] = run_experiment(
                "PR", cfg, scale=SCALE, keep_context=True,
                workload_kwargs={"iterations": 6},
            )
        return out

    def test_requires_context(self):
        cfg = paper_config(64, 1 / 3, PolicyName.PANTHERA, SCALE)
        result = run_experiment(
            "PR", cfg, scale=SCALE, workload_kwargs={"iterations": 2}
        )
        with pytest.raises(ReproError):
            project_cluster(result, nodes=4)

    def test_panthera_amplifies_less_than_unmanaged(self, results):
        """The §5.2 prediction: Panthera's GC advantage grows with
        cluster size."""
        k = 32
        unmanaged = project_cluster(results["unmanaged"], nodes=k)
        panthera = project_cluster(results["panthera"], nodes=k)
        unmanaged_penalty = unmanaged.cluster_s - unmanaged.single_node_s
        panthera_penalty = panthera.cluster_s - panthera.single_node_s
        assert panthera_penalty < unmanaged_penalty

    def test_projection_consistent_with_single_node(self, results):
        projection = project_cluster(results["panthera"], nodes=1)
        assert projection.cluster_s == pytest.approx(
            results["panthera"].elapsed_s, rel=0.01
        )


class TestProjectionCrossCheck:
    """Pin ``project_pauses`` against the gang simulator.

    ``gang_run(placement="scattered")`` computes the projection's
    quantity from K real simulated nodes (per-node dataset seed
    jitter), isolating the window-max composition assumption.  The
    analytical estimate must track the simulation within a documented
    tolerance — measured headroom is ~3x the observed error (see
    docs/CLUSTER.md, "Cross-checking the analytical projection").
    ``projection.py`` stays as the fast estimator; the residual
    (clone-node pause correlation under ``placement="measured"``) is
    documented there too.
    """

    #: Pinned tolerances: slowdown tracks within 5%, GC amplification
    #: within 20% (observed at nodes=2..4, scale 0.02: <=0.7% and
    #: <=5.5% respectively).
    SLOWDOWN_RTOL = 0.05
    AMPLIFICATION_RTOL = 0.20

    @pytest.fixture(scope="class")
    def pair(self):
        from repro.cluster import gang_run
        from repro.cluster.gang import DEFAULT_SEED_BASE

        cfg = paper_config(64, 1 / 3, PolicyName.PANTHERA, SCALE)
        gang = gang_run("PR", 4, cfg, scale=SCALE, placement="scattered")
        reference = run_experiment(
            "PR",
            cfg,
            scale=SCALE,
            workload_kwargs={"seed": DEFAULT_SEED_BASE},
            keep_context=True,
        )
        pauses = [
            d / 1e9 for _, _, d in reference.context.collector.stats.pauses
        ]
        projection = project_pauses(reference.mutator_s, pauses, 4)
        return gang, projection

    def test_slowdown_within_tolerance(self, pair):
        gang, projection = pair
        assert projection.slowdown == pytest.approx(
            gang.slowdown, rel=self.SLOWDOWN_RTOL
        )

    def test_amplification_within_tolerance(self, pair):
        gang, projection = pair
        assert projection.gc_amplification == pytest.approx(
            gang.gc_amplification, rel=self.AMPLIFICATION_RTOL
        )

    def test_both_report_real_amplification(self, pair):
        gang, projection = pair
        assert gang.gc_amplification > 1.0
        assert projection.gc_amplification > 1.0
        assert gang.slowdown >= 1.0

    def test_measured_placement_shows_the_residual(self):
        """The projection's random scatter ignores pause-timing
        correlation across nodes; measured placement keeps it, and the
        gap between the two is the documented residual (correlated
        pauses overlap in the same windows, so the gang waits less)."""
        from repro.cluster import gang_run

        cfg = paper_config(64, 1 / 3, PolicyName.PANTHERA, SCALE)
        measured = gang_run("PR", 4, cfg, scale=SCALE, placement="measured")
        scattered = gang_run("PR", 4, cfg, scale=SCALE, placement="scattered")
        assert measured.gc_amplification <= scattered.gc_amplification
        assert measured.gc_amplification >= 1.0

    def test_gang_validation(self):
        from repro.cluster import gang_run

        cfg = paper_config(64, 1 / 3, PolicyName.PANTHERA, SCALE)
        with pytest.raises(ReproError):
            gang_run("PR", 0, cfg)
        with pytest.raises(ReproError):
            gang_run("PR", 2, cfg, sync_windows=0)
        with pytest.raises(ReproError):
            gang_run("PR", 2, cfg, placement="uniform")
