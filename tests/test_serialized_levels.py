"""Serialised in-memory storage levels: smaller footprint, CPU on read."""

import pytest

from repro.config import MiB
from repro.spark.storage import StorageLevel
from tests.conftest import small_context


def cached_rdd(ctx, level, n=12, total_bytes=6 * MiB, name="ser-src"):
    rdd = ctx.parallelize(
        [(i, i) for i in range(n)], 3, total_bytes, name=name
    ).map(lambda r: r)
    rdd.persist(level)
    rdd.count()
    return rdd


class TestSerializedBlocks:
    def test_ser_block_is_smaller_in_heap(self):
        ctx = small_context()
        plain = cached_rdd(ctx, StorageLevel.MEMORY_ONLY, name="plain")
        ser = cached_rdd(ctx, StorageLevel.MEMORY_ONLY_SER, name="ser")
        plain_block = ctx.block_manager.get(plain.id)
        ser_block = ctx.block_manager.get(ser.id)
        assert ser_block.serialized
        assert not plain_block.serialized
        assert ser_block.data_bytes < plain_block.data_bytes

    def test_ser_shrink_matches_ser_factor(self):
        ctx = small_context()
        plain = cached_rdd(ctx, StorageLevel.MEMORY_ONLY, name="plain2")
        ser = cached_rdd(ctx, StorageLevel.MEMORY_ONLY_SER, name="ser2")
        ratio = (
            ctx.block_manager.get(ser.id).data_bytes
            / ctx.block_manager.get(plain.id).data_bytes
        )
        assert ratio == pytest.approx(ctx.costs.ser_factor, rel=0.05)

    def test_ser_read_pays_deserialization_cpu(self):
        plain_ctx = small_context()
        plain = cached_rdd(plain_ctx, StorageLevel.MEMORY_ONLY)
        before = plain_ctx.machine.clock.now_ns
        plain.count()
        plain_cost = plain_ctx.machine.clock.now_ns - before

        ser_ctx = small_context()
        ser = cached_rdd(ser_ctx, StorageLevel.MEMORY_ONLY_SER)
        before = ser_ctx.machine.clock.now_ns
        ser.count()
        ser_cost = ser_ctx.machine.clock.now_ns - before
        # Reads stream fewer bytes but pay CPU; net must differ from the
        # deserialised read, and the CPU term must make it non-trivial.
        assert ser_cost != plain_cost
        assert ser_cost > 0

    def test_ser_results_identical(self):
        ctx = small_context()
        plain = cached_rdd(ctx, StorageLevel.MEMORY_ONLY, name="a")
        ser = cached_rdd(ctx, StorageLevel.MEMORY_ONLY_SER, name="b")
        assert sorted(ctx.scheduler.run_action(plain, "collect")) == sorted(
            ctx.scheduler.run_action(ser, "collect")
        )

    def test_memory_and_disk_ser_spills_like_others(self):
        ctx = small_context(heap_bytes=24 * MiB)
        blocks = []
        for i in range(6):
            rdd = ctx.parallelize(
                [(j, j) for j in range(8)], 2, 4 * MiB, name=f"s{i}"
            ).map(lambda r: r)
            rdd.persist(StorageLevel.MEMORY_AND_DISK_SER)
            rdd.count()
            blocks.append(rdd)
        # Serialised blocks are half-size, so fewer (possibly zero)
        # spills than the deserialised test — but reads still work.
        for rdd in blocks:
            assert rdd.count() == 8
