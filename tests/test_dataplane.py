"""Tests for the scale-sweep data-plane overhaul.

Covers the optimised data plane behind ``partition.LEGACY_DATA_PLANE``:
cached shuffle hashing (O(1) hash work on repeated shuffles), shared
record batches (alias safety and the peak-memory win), the O(1) shuffle
byte counter, dataset memoisation, A/B byte-identity on traced and
fault-injected runs (fixed cells and random hypothesis pipelines), the
scale-sweep mechanics, and the ``bench_compare`` sweep kinds.
"""

import tracemalloc

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.config import PolicyName
from repro.faults import FaultInjector, FaultPlan, KillSpec, action_checksums
from repro.gc.gclog import render_log
from repro.harness.configs import paper_config
from repro.harness.experiment import run_experiment
from repro.spark import partition as _partition
from repro.spark.partition import HashPartitioner, _stable_hash
from repro.spark.shuffle import ShuffleManager
from repro.trace import TraceSession
from tests.conftest import small_context
from tests.test_properties_spark import DATASET, STEP, build_pipeline


@pytest.fixture
def legacy_plane():
    """Run a test under the legacy (pre-overhaul) data plane."""
    saved = _partition.LEGACY_DATA_PLANE
    _partition.LEGACY_DATA_PLANE = True
    try:
        yield
    finally:
        _partition.LEGACY_DATA_PLANE = saved


def _under_plane(legacy, fn):
    """Call ``fn()`` with the data-plane flag set to ``legacy``."""
    saved = _partition.LEGACY_DATA_PLANE
    _partition.LEGACY_DATA_PLANE = legacy
    try:
        return fn()
    finally:
        _partition.LEGACY_DATA_PLANE = saved


# -- satellite: cached shuffle hashing -------------------------------------


class TestHashCache:
    def test_repeated_split_does_no_hash_work(self, monkeypatch):
        """Second shuffle of the same string keys recomputes zero hashes."""
        calls = []
        monkeypatch.setattr(
            _partition,
            "_stable_hash",
            lambda key, _real=_stable_hash: (calls.append(key), _real(key))[1],
        )
        part = HashPartitioner(4)
        records = [(f"key-{i % 50}", i) for i in range(200)]
        first = part.split(records)
        assert len(calls) == 50  # one per distinct key, not per record
        calls.clear()
        second = part.split(records)
        assert calls == []  # O(1) hash work: all hits
        assert first == second

    def test_cache_is_bounded(self, monkeypatch):
        monkeypatch.setattr(_partition, "_HASH_CACHE_LIMIT", 8)
        part = HashPartitioner(4)
        part.split([(f"key-{i}", i) for i in range(100)])
        assert len(part._hash_cache) <= 8

    @pytest.mark.parametrize(
        "key",
        [1, -1, 1.0, 2.5, True, False, None, "1", "", "key", b"key",
         (1,), (1.0,), (1, 2), (-3, 7), ("a", 1), (1, 2, 3), ((1, 2), 3)],
    )
    def test_bucketing_identical_to_legacy_per_key(self, key):
        """Equal-but-differently-typed keys (1 vs 1.0 vs True) must keep
        their legacy buckets: only exact-type fast paths are allowed."""
        part = HashPartitioner(7)
        legacy = _under_plane(True, lambda: part.partition_of(key))
        optimised = _under_plane(False, lambda: part.partition_of(key))
        assert optimised == legacy
        buckets = part.split([(key, "v")])
        assert buckets[legacy] == [(key, "v")]

    def test_split_matches_legacy_on_mixed_keys(self):
        records = [
            (k, i)
            for i, k in enumerate(
                [0, 1, 2**40, -5, "a", "bb", "a", 3.5, None, (1, 2),
                 (2, 1), ("x", 2), True, b"raw", (7,)] * 4
            )
        ]
        part_a, part_b = HashPartitioner(5), HashPartitioner(5)
        legacy = _under_plane(True, lambda: part_a.split(records))
        optimised = _under_plane(False, lambda: part_b.split(records))
        assert optimised == legacy

    @pytest.mark.parametrize(
        "key",
        [(True, False), (False, True), (True, 1), (1, True), (0, False)],
    )
    def test_bool_tuples_dodge_the_int_pair_fast_path(self, key):
        """bucket_into's inline 2-int-tuple path uses ``type(...) is int``
        so bool elements (a subclass of int whose legacy hash path
        differs) must take the slow path and keep their legacy bucket."""
        part = HashPartitioner(7)
        legacy = _under_plane(True, lambda: part.partition_of(key))
        optimised = _under_plane(False, lambda: part.partition_of(key))
        assert optimised == legacy
        buckets = [[] for _ in range(7)]
        _under_plane(False, lambda: part.bucket_into([(key, "v")], buckets))
        assert buckets[legacy] == [(key, "v")]

    def test_non_finite_float_keys_bucket_without_raising(self):
        """Regression: ``_stable_hash`` used to raise OverflowError on
        inf (and ValueError on nan) via ``int(key * 1e6)``."""
        import math

        records = [
            (k, i)
            for i, k in enumerate(
                [math.inf, -math.inf, math.nan, 1e308, -1e308, 0.5] * 3
            )
        ]
        part_a, part_b = HashPartitioner(5), HashPartitioner(5)
        legacy = _under_plane(True, lambda: part_a.split(records))
        optimised = _under_plane(False, lambda: part_b.split(records))
        assert repr(optimised) == repr(legacy)


MIXED_KEY = st.one_of(
    st.integers(min_value=-(2**63), max_value=2**63),
    st.booleans(),
    st.floats(),  # includes nan and ±inf
    st.text(max_size=8),
    st.binary(max_size=8),
    st.none(),
    st.tuples(
        st.integers(min_value=-(2**40), max_value=2**40),
        st.integers(min_value=-(2**40), max_value=2**40),
    ),
    st.tuples(st.booleans(), st.booleans()),
    st.tuples(st.text(max_size=4), st.integers()),
)


class TestMixedKeyPropertyAB:
    """Property: both shuffle planes bucket any mix of key types alike."""

    @settings(max_examples=80, deadline=None)
    @given(
        keys=st.lists(MIXED_KEY, min_size=1, max_size=40),
        n=st.integers(min_value=1, max_value=9),
    )
    def test_partition_of_and_bucket_into_agree_across_planes(self, keys, n):
        records = [(k, i) for i, k in enumerate(keys)]
        part_a, part_b = HashPartitioner(n), HashPartitioner(n)
        legacy = _under_plane(True, lambda: part_a.split(records))
        optimised = _under_plane(False, lambda: part_b.split(records))
        # repr-compare so nan keys (unequal to themselves) still match.
        assert repr(optimised) == repr(legacy)
        for key in keys:
            assert _under_plane(
                True, lambda: part_a.partition_of(key)
            ) == _under_plane(False, lambda: part_b.partition_of(key))


# -- satellite: shared record batches --------------------------------------


class TestSharedBatches:
    def _collect_twice(self, ctx):
        rdd = ctx.parallelize(
            [(i % 5, i) for i in range(40)], 3, 2 * 2**20, name="shared-src"
        ).map(lambda r: (r[0], r[1] + 1))
        rdd.persist()
        first = ctx.scheduler.run_action(rdd, "collect")
        return rdd, first

    def test_action_result_is_not_an_alias_of_the_block(self):
        """Mutating a collect() result must not corrupt the cached block."""
        ctx = small_context(PolicyName.PANTHERA)
        rdd, first = self._collect_twice(ctx)
        baseline = list(first)
        first.append(("junk", -1))
        first[0] = ("junk", -2)
        second = ctx.scheduler.run_action(rdd, "collect")
        assert second == baseline

    def test_shared_and_legacy_planes_compute_equal_results(self):
        def run():
            ctx = small_context(PolicyName.PANTHERA)
            rdd, first = self._collect_twice(ctx)
            return first, ctx.scheduler.run_action(rdd, "collect")

        opt_first, opt_second = _under_plane(False, run)
        leg_first, leg_second = _under_plane(True, run)
        assert opt_first == leg_first
        assert opt_second == leg_second

    def test_peak_memory_drops_without_deep_copies(self):
        """Sharing batches instead of deep-copying lowers the Python-level
        peak allocation of a CC cell (datasets pre-warmed for both)."""
        config = paper_config(64, 1 / 3, PolicyName.PANTHERA, 0.5)

        def run_cell():
            return run_experiment(
                "CC", config, scale=0.5, workload_kwargs={"iterations": 2}
            )

        run_cell()  # warm the dataset memo and import state for both sides

        def peak(legacy):
            def measured():
                tracemalloc.start()
                try:
                    run_cell()
                    return tracemalloc.get_traced_memory()[1]
                finally:
                    tracemalloc.stop()

            return _under_plane(legacy, measured)

        assert peak(False) < peak(True)


# -- satellite: O(1) shuffle byte accounting -------------------------------


class TestShuffleTotalBytes:
    @staticmethod
    def _recomputed(manager):
        return sum(sum(sizes) for sizes in manager._sizes.values())

    def test_counter_tracks_write_overwrite_invalidate(self):
        manager = ShuffleManager()
        assert manager.total_bytes() == 0.0
        manager.write(0, [[(1, 1)], [(2, 2)]], [10.0, 20.0])
        assert manager.total_bytes() == self._recomputed(manager) == 30.0
        manager.write(1, [[(3, 3)]], [5.5])
        assert manager.total_bytes() == self._recomputed(manager) == 35.5
        # A fault-recovery rewrite replaces shuffle 0's sizes in place.
        manager.invalidate(0, 1)
        assert manager.total_bytes() == self._recomputed(manager) == 35.5
        manager.write(0, [[(1, 1)], [(2, 2)]], [12.0, 8.0], overwrite=True)
        assert manager.total_bytes() == self._recomputed(manager) == 25.5


# -- satellite: dataset memoisation ----------------------------------------


class TestDatasetMemoisation:
    def test_same_key_returns_cached_spec(self):
        from repro.workloads import datasets

        datasets.clear_dataset_caches()
        a = datasets.pagerank_graph(scale=0.05, seed=7)
        b = datasets.pagerank_graph(scale=0.05, seed=7)
        assert a is b  # memo hit: the exact same frozen spec
        hits, misses = datasets.dataset_cache_info()["pagerank_graph"]
        assert (hits, misses) == (1, 1)

    def test_distinct_keys_generate_distinct_specs(self):
        from repro.workloads import datasets

        datasets.clear_dataset_caches()
        base = datasets.pagerank_graph(scale=0.05, seed=7)
        assert datasets.pagerank_graph(scale=0.05, seed=8) is not base
        assert datasets.pagerank_graph(scale=0.1, seed=7) is not base
        # typed=True: int and float scales stay distinct (names differ).
        by_int = datasets.pagerank_graph(scale=1, seed=7)
        by_float = datasets.pagerank_graph(scale=1.0, seed=7)
        assert by_int is not by_float
        assert by_int.name != by_float.name

    def test_clear_resets_the_memo(self):
        from repro.workloads import datasets

        datasets.clear_dataset_caches()
        datasets.pagerank_graph(scale=0.05, seed=7)
        datasets.clear_dataset_caches()
        _, misses = datasets.dataset_cache_info()["pagerank_graph"]
        assert misses == 0


# -- satellite: A/B byte-identity on traced + faulted cells ----------------


class TestDataPlaneIdentity:
    def _run_cell(self, workload):
        config = paper_config(64, 1 / 3, PolicyName.PANTHERA, 0.01)
        plan = FaultPlan(kills=[KillSpec("shuffle", 1, 0)], seed=7)
        result = run_experiment(
            workload,
            config,
            scale=0.01,
            workload_kwargs={"iterations": 2},
            keep_context=True,
            trace=True,
            faults=plan,
        )
        stats = result.context.collector.stats
        return {
            "elapsed": repr(result.elapsed_s),
            "gclog": render_log(stats, result.elapsed_s, tail=50),
            "checksums": action_checksums(result.action_results),
            "events": [repr(e) for e in result.trace_events],
        }

    @pytest.mark.parametrize("workload", ["PR", "CC"])
    def test_traced_faulted_cell_identical_either_plane(self, workload):
        optimised = _under_plane(False, lambda: self._run_cell(workload))
        legacy = _under_plane(True, lambda: self._run_cell(workload))
        assert optimised["elapsed"] == legacy["elapsed"]
        assert optimised["gclog"] == legacy["gclog"]
        assert optimised["checksums"] == legacy["checksums"]
        assert optimised["events"] == legacy["events"]


class TestDataPlanePropertyAB:
    """Random traced (and sometimes faulted) pipelines are byte-identical
    under the legacy and optimised data planes."""

    @settings(
        max_examples=12,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        records=DATASET,
        steps=st.lists(STEP, min_size=1, max_size=5),
        kill=st.booleans(),
    )
    def test_random_pipelines_identical_across_planes(
        self, records, steps, kill
    ):
        def run():
            ctx = small_context(PolicyName.PANTHERA)
            session = TraceSession.attach_to_context(ctx)
            if kill:
                plan = FaultPlan(kills=[KillSpec("shuffle", 1, 0)], seed=3)
                FaultInjector.attach(plan, ctx)
            rdd = build_pipeline(ctx, records, steps)
            result = ctx.scheduler.run_action(rdd, "collect")
            return {
                "result": sorted(result, key=repr),
                "checksums": action_checksums({"collect": result}),
                "elapsed": repr(ctx.machine.elapsed_s),
                "events": [repr(e) for e in session.events],
            }

        assert _under_plane(False, run) == _under_plane(True, run)


# -- satellite: scale-sweep mechanics and bench_compare kinds --------------


class TestScaleSweep:
    def test_tiny_real_sweep_emits_records_and_summary(self):
        from repro.bench import run_scale_sweep

        lines = []
        records = run_scale_sweep(
            scales=(0.01, 0.02),
            cells=[("PR", PolicyName.PANTHERA)],
            log=lines.append,
        )
        assert [r["kind"] for r in records] == [
            "sweep", "sweep", "sweep_summary"
        ]
        assert records[0]["name"] == "sweep.PR.panthera.s0.01"
        assert records[1]["name"] == "sweep.PR.panthera.s0.02"
        assert all(r["wall_s"] > 0 for r in records[:2])
        assert all(r["sim_s"] > 0 for r in records[:2])
        summary = records[2]
        assert summary["name"] == "sweep.PR.panthera.linearity"
        # Base is the scale closest to 1.0 — here the top scale itself,
        # so the ratio degenerates to exactly 1.0.
        assert summary["base_scale"] == 0.02
        assert summary["top_scale"] == 0.02
        assert summary["per_record_ratio"] == pytest.approx(1.0)
        assert summary["linear"] is True
        assert len(lines) == 3

    def test_summary_flags_superlinear_growth(self, monkeypatch):
        import repro.bench as bench

        def fake_cell(workload, policy, scale):
            return {
                "name": f"sweep.{workload}.{policy.value}.s{scale:g}",
                "kind": "sweep",
                "scale": scale,
                "wall_s": scale * scale,  # quadratic wall time
                "sim_s": 1.0,
                "sim_per_wall": 1.0,
                "n_records": int(1000 * scale),
                "wall_us_per_record": scale * 1000.0,
            }

        monkeypatch.setattr(bench, "run_sweep_cell", fake_cell)
        records = bench.run_scale_sweep(
            scales=(1.0, 10.0), cells=[("PR", PolicyName.PANTHERA)]
        )
        summary = records[-1]
        assert summary["kind"] == "sweep_summary"
        assert summary["per_record_ratio"] == pytest.approx(10.0)
        assert summary["linear"] is False

    def test_summary_accepts_linear_growth(self, monkeypatch):
        import repro.bench as bench

        def fake_cell(workload, policy, scale):
            return {
                "name": f"sweep.{workload}.{policy.value}.s{scale:g}",
                "kind": "sweep",
                "scale": scale,
                "wall_s": scale,
                "sim_s": 1.0,
                "sim_per_wall": 1.0,
                "n_records": int(1000 * scale),
                "wall_us_per_record": 1.0,  # flat per-record cost
            }

        monkeypatch.setattr(bench, "run_sweep_cell", fake_cell)
        records = bench.run_scale_sweep(
            scales=(0.1, 1.0, 10.0), cells=[("CC", PolicyName.PANTHERA)]
        )
        assert records[-1]["linear"] is True
        assert records[-1]["per_record_ratio"] == pytest.approx(1.0)


class TestBenchCompareSweepKinds:
    @staticmethod
    def _doc(*benchmarks):
        return {"schema": 1, "benchmarks": list(benchmarks)}

    def test_sweep_wall_regression_flagged(self):
        from repro.bench import compare_documents

        base = self._doc(
            {"name": "sweep.PR.panthera.s10", "kind": "sweep", "wall_s": 1.0}
        )
        curr = self._doc(
            {"name": "sweep.PR.panthera.s10", "kind": "sweep", "wall_s": 1.5}
        )
        report = compare_documents(base, curr, tolerance=0.20)
        assert report.regressions == ["sweep.PR.panthera.s10"]

    def test_sweep_summary_compares_machine_independent_ratio(self):
        from repro.bench import compare_documents

        base = self._doc(
            {"name": "sweep.PR.panthera.linearity", "kind": "sweep_summary",
             "per_record_ratio": 1.0, "wall_s": 123.0}
        )
        curr = self._doc(
            {"name": "sweep.PR.panthera.linearity", "kind": "sweep_summary",
             "per_record_ratio": 1.6, "wall_s": 0.001}
        )
        report = compare_documents(base, curr, tolerance=0.20)
        assert report.regressions == ["sweep.PR.panthera.linearity"]
        improved = compare_documents(curr, base, tolerance=0.20)
        assert improved.improvements == ["sweep.PR.panthera.linearity"]
