"""Tests for the matrix runner and a documentation-coverage meta-test."""

import importlib
import pkgutil

import pytest

from repro.harness.matrix import matrix_report, run_matrix


class TestMatrix:
    @pytest.fixture(scope="class")
    def matrix(self):
        seen = []
        result = run_matrix(
            scale=0.02,
            workloads=["PR", "KM"],
            progress=lambda w, p: seen.append((w, p)),
        )
        assert len(seen) == 2 * 3
        return result

    def test_shape(self, matrix):
        assert set(matrix) == {"PR", "KM"}
        for row in matrix.values():
            assert set(row) == {"dram-only", "unmanaged", "panthera"}

    def test_report_renders(self, matrix):
        text = matrix_report(matrix)
        assert "| program |" in text
        assert "PR" in text and "KM" in text
        assert "panthera time" in text

    def test_report_excludes_baseline_column(self, matrix):
        text = matrix_report(matrix)
        assert "dram-only time" not in text

    def test_cli_matrix(self, capsys):
        from repro.cli import main

        code = main(
            ["matrix", "--scale", "0.02", "--workloads", "PR"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "running PR" in out
        assert "panthera time" in out


class TestDocumentationCoverage:
    """Every public module, class and function carries a docstring."""

    def iter_modules(self):
        import repro

        for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
            if info.name == "repro.__main__":
                continue  # importing it runs the CLI
            yield importlib.import_module(info.name)

    def test_every_module_has_docstring(self):
        missing = [
            module.__name__
            for module in self.iter_modules()
            if not (module.__doc__ or "").strip()
        ]
        assert missing == []

    def test_public_classes_and_functions_documented(self):
        import inspect

        missing = []
        for module in self.iter_modules():
            for name, obj in vars(module).items():
                if name.startswith("_"):
                    continue
                if getattr(obj, "__module__", None) != module.__name__:
                    continue
                if inspect.isclass(obj) or inspect.isfunction(obj):
                    if not (obj.__doc__ or "").strip():
                        missing.append(f"{module.__name__}.{name}")
        assert missing == []
