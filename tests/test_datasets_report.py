"""Tests for the dataset generators and the report helpers."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import MiB, PolicyName
from repro.harness.configs import paper_config
from repro.harness.experiment import run_experiment
from repro.harness.report import gc_breakdown, normalize_results, summarize
from repro.workloads.datasets import (
    kdd_points,
    labeled_points,
    ml_points,
    notre_dame_graph,
    pagerank_graph,
    powerlaw_graph,
    wiki_en_graph,
)


class TestPowerlawGraph:
    def test_every_vertex_has_out_edge(self):
        ds = powerlaw_graph("p1", 50, 150, total_bytes=MiB, seed=3)
        sources = {src for src, _ in ds.records}
        assert sources == set(range(50))

    def test_no_self_loops(self):
        ds = powerlaw_graph("p2", 50, 200, total_bytes=MiB, seed=4)
        assert all(src != dst for src, dst in ds.records)

    def test_degree_skew(self):
        ds = powerlaw_graph("p3", 100, 2000, total_bytes=MiB, seed=5)
        in_degree = {}
        for _, dst in ds.records:
            in_degree[dst] = in_degree.get(dst, 0) + 1
        low_half = sum(in_degree.get(v, 0) for v in range(50))
        high_half = sum(in_degree.get(v, 0) for v in range(50, 100))
        assert low_half > high_half  # preferential attachment to low ids

    def test_deterministic_per_seed(self):
        a = powerlaw_graph("p4", 30, 90, total_bytes=MiB, seed=9)
        b = powerlaw_graph("p4", 30, 90, total_bytes=MiB, seed=9)
        assert a.records == b.records

    def test_too_few_vertices_rejected(self):
        with pytest.raises(ValueError):
            powerlaw_graph("p5", 1, 10, total_bytes=MiB)

    @given(
        n=st.integers(min_value=2, max_value=60),
        e_extra=st.integers(min_value=0, max_value=120),
        seed=st.integers(min_value=0, max_value=100),
    )
    @settings(max_examples=25, deadline=None)
    def test_edge_count_respected(self, n, e_extra, seed):
        e = n + e_extra
        ds = powerlaw_graph("ph", n, e, total_bytes=MiB, seed=seed)
        assert len(ds.records) == e
        for src, dst in ds.records:
            assert 0 <= src < n and 0 <= dst < n


class TestLabeledPoints:
    def test_labels_round_robin(self):
        ds = labeled_points("l1", 12, dim=3, n_classes=3, total_bytes=MiB)
        labels = [label for label, _ in ds.records]
        assert labels == [i % 3 for i in range(12)]

    def test_dimension(self):
        ds = labeled_points("l2", 5, dim=7, n_classes=2, total_bytes=MiB)
        assert all(len(vec) == 7 for _, vec in ds.records)

    def test_clusters_separated(self):
        ds = labeled_points("l3", 200, dim=4, n_classes=2,
                            total_bytes=MiB, seed=5)
        sums = {0: [0.0] * 4, 1: [0.0] * 4}
        counts = {0: 0, 1: 0}
        for label, vec in ds.records:
            counts[label] += 1
            for i, x in enumerate(vec):
                sums[label][i] += x
        means = {
            label: [s / counts[label] for s in sums[label]] for label in (0, 1)
        }
        gap = sum(abs(a - b) for a, b in zip(means[0], means[1]))
        assert gap > 2.0  # centres drawn from U(-10, 10) are apart


class TestPaperDatasetFactories:
    def test_sizes_scale_linearly(self):
        for factory in (pagerank_graph, wiki_en_graph, ml_points, kdd_points,
                        notre_dame_graph):
            small = factory(scale=0.1)
            large = factory(scale=0.2)
            assert large.total_bytes == pytest.approx(2 * small.total_bytes)

    def test_notre_dame_structure_fixed_under_scaling(self):
        # TC's closure is quadratic in vertices: structure must not scale.
        small = notre_dame_graph(scale=0.05)
        large = notre_dame_graph(scale=0.5)
        assert len(small.records) == len(large.records)

    def test_names_unique_per_scale(self):
        assert pagerank_graph(0.1).name != pagerank_graph(0.2).name


class TestReportHelpers:
    @pytest.fixture(scope="class")
    def results(self):
        out = {}
        for key, policy in (
            ("dram-only", PolicyName.DRAM_ONLY),
            ("panthera", PolicyName.PANTHERA),
        ):
            cfg = paper_config(64, 1 / 3, policy, 0.02)
            out[key] = run_experiment(
                "KM", cfg, scale=0.02, workload_kwargs={"iterations": 3}
            )
        return out

    def test_normalize_rejects_zero_baseline(self, results):
        import dataclasses

        broken = dict(results)
        broken["dram-only"] = dataclasses.replace(
            results["dram-only"], elapsed_s=0.0
        )
        with pytest.raises(ValueError):
            normalize_results(broken, "dram-only")

    def test_gc_breakdown_counts(self, results):
        rows = gc_breakdown(results)
        for key, row in rows.items():
            assert row["minor_gcs"] == results[key].minor_gcs
            assert row["major_gcs"] == results[key].major_gcs

    def test_summarize_is_one_line(self, results):
        line = summarize(results["panthera"])
        assert "\n" not in line
        assert "KM" in line
