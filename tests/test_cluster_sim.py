"""Tests for the multi-executor cluster simulator under live traffic.

Covers the tentpole and its oracle: seeded traffic generation, the
shared shuffle-service ownership overlay, the 1-executor byte-identity
oracle against ``run_experiment`` (gclog, trace stream, bandwidth CSV
and action checksums), hypothesis-driven report determinism across
``--jobs`` and repeated seeds, executor-kill fault composition with
lineage recovery at every stage boundary, the cluster report's metrics,
the ``repro cluster`` CLI and the ``cluster.*`` bench records.
"""

import json

import pytest
from hypothesis import HealthCheck, assume, given, settings, strategies as st

from repro.bench import _COMPARE_METRIC, run_cluster_bench
from repro.cli import main as cli_main
from repro.cluster import (
    Cluster,
    ClusterFaultPlan,
    Executor,
    ExecutorKill,
    JobSpec,
    ShuffleService,
    TrafficPlan,
    generate_traffic,
)
from repro.cluster.simulator import default_cluster_config, percentile
from repro.cluster.traffic import TENANT_SCALE_CYCLE, tenant_scale
from repro.config import PolicyName
from repro.errors import FaultError, ReproError
from repro.faults import action_checksums
from repro.gc.gclog import render_log
from repro.harness.configs import paper_config
from repro.harness.experiment import run_experiment
from repro.harness.export import bandwidth_csv_from_machine

SCALE = 0.02


def one_job_plan(workload="PR", scale=SCALE, arrival_s=0.0):
    """A single-job traffic plan (the fault-composition fixture)."""
    return TrafficPlan(
        jobs=(JobSpec(0, arrival_s, 0, workload, scale),),
        seed=0,
        rate_jobs_per_s=1.0,
        duration_s=max(arrival_s, 1.0),
    )


# -- traffic generation ----------------------------------------------------


class TestTrafficGenerator:
    def test_same_seed_same_plan(self):
        a = generate_traffic(seed=42, duration_s=50.0, rate_jobs_per_s=0.4)
        b = generate_traffic(seed=42, duration_s=50.0, rate_jobs_per_s=0.4)
        assert a.to_dict() == b.to_dict()

    def test_different_seed_different_plan(self):
        a = generate_traffic(seed=1, duration_s=50.0, rate_jobs_per_s=0.4)
        b = generate_traffic(seed=2, duration_s=50.0, rate_jobs_per_s=0.4)
        assert a.to_dict() != b.to_dict()

    def test_roundtrip(self):
        plan = generate_traffic(
            seed=9, duration_s=40.0, rate_jobs_per_s=0.3, iterations=2
        )
        assert TrafficPlan.from_dict(plan.to_dict()).to_dict() == plan.to_dict()

    def test_arrivals_sorted_within_horizon(self):
        plan = generate_traffic(seed=5, duration_s=30.0, rate_jobs_per_s=0.5)
        arrivals = [j.arrival_s for j in plan.jobs]
        assert arrivals == sorted(arrivals)
        assert all(0.0 < t < 30.0 for t in arrivals)
        assert [j.job_id for j in plan.jobs] == list(range(len(plan.jobs)))

    def test_diurnal_thinning_generates_fewer_jobs_than_peak(self):
        poisson = generate_traffic(
            seed=3, duration_s=200.0, rate_jobs_per_s=0.5
        )
        diurnal = generate_traffic(
            seed=3, duration_s=200.0, rate_jobs_per_s=0.5, process="diurnal"
        )
        assert not diurnal.is_empty
        # Thinning preserves the mean rate to first order.
        assert len(diurnal.jobs) == pytest.approx(len(poisson.jobs), rel=0.5)

    def test_tenant_scales_follow_cycle(self):
        plan = generate_traffic(seed=8, duration_s=60.0, rate_jobs_per_s=0.5)
        for job in plan.jobs:
            assert job.scale == tenant_scale(job.tenant, plan.base_scale)
        assert tenant_scale(0, 1.0) == TENANT_SCALE_CYCLE[0]
        assert tenant_scale(4, 1.0) == TENANT_SCALE_CYCLE[0]

    def test_tenant_submission_shares_are_skewed(self):
        plan = generate_traffic(
            seed=13, duration_s=2000.0, rate_jobs_per_s=0.5, tenants=4
        )
        counts = [0] * 4
        for job in plan.jobs:
            counts[job.tenant] += 1
        assert counts[0] > counts[3]

    def test_max_jobs_cap(self):
        plan = generate_traffic(
            seed=1, duration_s=1000.0, rate_jobs_per_s=1.0, max_jobs=5
        )
        assert len(plan.jobs) == 5

    def test_validation(self):
        with pytest.raises(ReproError):
            generate_traffic(seed=0, duration_s=0.0)
        with pytest.raises(ReproError):
            generate_traffic(seed=0, rate_jobs_per_s=0.0)
        with pytest.raises(ReproError):
            generate_traffic(seed=0, tenants=0)
        with pytest.raises(ReproError):
            generate_traffic(seed=0, process="bursty")
        with pytest.raises(ReproError):
            generate_traffic(seed=0, diurnal_amplitude=1.0)
        with pytest.raises(ReproError):
            generate_traffic(seed=0, workloads=[])


# -- shuffle service -------------------------------------------------------


class TestShuffleService:
    def test_single_executor_owns_everything(self):
        service = ShuffleService(1)
        assert all(
            service.owner_of(o, p) == 0 for o in range(5) for p in range(7)
        )

    def test_ownership_stripes_across_executors(self):
        service = ShuffleService(3)
        owners = {service.owner_of(0, p) for p in range(6)}
        assert owners == {0, 1, 2}
        # Pure function: same inputs, same owner, on any instance.
        other = ShuffleService(3)
        assert all(
            service.owner_of(o, p) == other.owner_of(o, p)
            for o in range(4)
            for p in range(8)
        )

    def test_hop_cost_latency_plus_wire_time(self):
        service = ShuffleService(2, net_latency_s=1e-4, net_gbps=10.0)
        assert service.hop_ns(0.0) == pytest.approx(1e5)
        one_gib = service.hop_ns(1024.0**3) - service.hop_ns(0.0)
        # 1 GiB over 10 Gb/s-as-GiB/s-decimal: 0.1 s of wire time.
        assert one_gib == pytest.approx(0.1e9)


# -- cluster fault plans ---------------------------------------------------


class TestClusterFaultPlan:
    def test_roundtrip(self):
        plan = ClusterFaultPlan(
            kills=[ExecutorKill(1, 2), ExecutorKill(0, 3, job_id=4)],
            max_recovery_attempts=2,
            seed=9,
        )
        assert ClusterFaultPlan.from_dict(plan.to_dict()).to_dict() == plan.to_dict()

    def test_kills_for_job_filters_pinned_kills(self):
        plan = ClusterFaultPlan(
            kills=[ExecutorKill(0, 1), ExecutorKill(1, 2, job_id=3)]
        )
        assert len(plan.kills_for_job(3)) == 2
        assert len(plan.kills_for_job(0)) == 1

    def test_random_is_seeded_and_bounded(self):
        a = ClusterFaultPlan.random(7, executors=4, max_boundary=5, kills=6)
        b = ClusterFaultPlan.random(7, executors=4, max_boundary=5, kills=6)
        assert a.to_dict() == b.to_dict()
        for kill in a.kills:
            assert 0 <= kill.executor < 4
            assert 1 <= kill.at_boundary <= 5

    def test_validation(self):
        with pytest.raises(FaultError):
            ExecutorKill(-1, 1)
        with pytest.raises(FaultError):
            ExecutorKill(0, 0)
        with pytest.raises(FaultError):
            ClusterFaultPlan(max_recovery_attempts=0)
        with pytest.raises(FaultError):
            ClusterFaultPlan.random(0, executors=0, max_boundary=1)


# -- the 1-executor oracle -------------------------------------------------


class TestSingleExecutorOracle:
    """A 1-executor cluster job is byte-identical to run_experiment —
    the cluster path is a strict generalisation, not a fork."""

    @pytest.fixture(scope="class")
    def pair(self):
        config = paper_config(64, 1 / 3, PolicyName.PANTHERA, SCALE)
        executor = Executor(0, ShuffleService(1), config)
        record, artifacts = executor.run_job(
            JobSpec(0, 0.0, 0, "PR", SCALE), keep_artifacts=True
        )
        reference = run_experiment(
            "PR",
            paper_config(64, 1 / 3, PolicyName.PANTHERA, SCALE),
            scale=SCALE,
            keep_context=True,
            trace=True,
        )
        return record, artifacts, reference

    def test_action_checksums_identical(self, pair):
        record, _, reference = pair
        assert record.checksums == action_checksums(reference.action_results)

    def test_gclog_byte_identical(self, pair):
        _, artifacts, reference = pair
        expected = render_log(
            reference.context.collector.stats, reference.elapsed_s
        )
        assert artifacts.gclog == expected

    def test_trace_stream_identical(self, pair):
        _, artifacts, reference = pair
        assert artifacts.trace_events == reference.trace_events

    def test_bandwidth_series_byte_identical(self, pair):
        _, artifacts, reference = pair
        assert artifacts.bandwidth_csv == bandwidth_csv_from_machine(
            reference.context.machine
        )

    def test_scalar_metrics_identical(self, pair):
        record, _, reference = pair
        assert record.exec_s == reference.elapsed_s
        assert record.gc_s == pytest.approx(reference.gc_s, abs=1e-12)
        assert record.minor_gcs == reference.minor_gcs
        assert record.major_gcs == reference.major_gcs
        assert record.remote_fetches == 0
        assert record.net_s == 0.0

    def test_executor_reusable_after_cleanup(self):
        """Inter-job block cleanup keeps a lane viable across jobs."""
        config = paper_config(64, 1 / 3, PolicyName.PANTHERA, SCALE)
        executor = Executor(0, ShuffleService(1), config)
        first, _ = executor.run_job(JobSpec(0, 0.0, 0, "PR", SCALE))
        second, _ = executor.run_job(JobSpec(1, 0.0, 0, "PR", SCALE))
        assert second.checksums == first.checksums
        assert second.wait_s == pytest.approx(first.exec_s)


# -- report determinism (hypothesis) ---------------------------------------


class TestReportDeterminism:
    @settings(
        max_examples=5,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        rate=st.floats(min_value=0.2, max_value=0.6),
        process=st.sampled_from(["poisson", "diurnal"]),
        tenants=st.integers(min_value=1, max_value=4),
    )
    def test_report_identical_across_jobs_and_repeats(
        self, seed, rate, process, tenants
    ):
        """Random seeded traffic: serial, parallel and repeated runs
        produce byte-identical reports."""
        plan = generate_traffic(
            seed=seed,
            duration_s=30.0,
            rate_jobs_per_s=rate,
            process=process,
            tenants=tenants,
            base_scale=0.01,
            iterations=2,
            max_jobs=3,
        )
        assume(not plan.is_empty)
        serial = Cluster(2).run(plan)[0].to_json()
        parallel = Cluster(2).run(plan, jobs=4)[0].to_json()
        repeat = Cluster(2).run(plan)[0].to_json()
        assert serial == parallel
        assert serial == repeat


# -- fault composition -----------------------------------------------------


class TestFaultComposition:
    @pytest.fixture(scope="class")
    def clean(self):
        report, _ = Cluster(2).run(one_job_plan())
        return report

    def test_kill_at_every_boundary_converges(self, clean):
        """An executor kill at each stage boundary of a PageRank job
        always recovers through lineage to the same action checksums."""
        baseline = clean.jobs[0].checksums
        boundaries = clean.jobs[0].boundaries
        assert boundaries > 0
        for boundary in range(1, boundaries + 1):
            faults = ClusterFaultPlan(
                kills=[ExecutorKill(executor=1, at_boundary=boundary)]
            )
            report, _ = Cluster(2).run(one_job_plan(), faults=faults)
            job = report.jobs[0]
            assert job.checksums == baseline, f"diverged at boundary {boundary}"
            assert job.kills_fired == 1
            assert job.partitions_lost > 0
            assert job.partitions_recomputed > 0

    def test_recovery_visible_as_recompute_trace_events(self, clean):
        """The surviving executor announces each lineage recovery on
        its trace bus."""
        faults = ClusterFaultPlan(kills=[ExecutorKill(executor=1, at_boundary=3)])
        report, artifacts = Cluster(2).run(
            one_job_plan(), faults=faults, keep_artifacts=True
        )
        recomputes = [
            e for e in artifacts[0].trace_events if e.kind == "recompute"
        ]
        assert recomputes
        assert report.jobs[0].recompute_s > 0.0
        assert report.jobs[0].checksums == clean.jobs[0].checksums

    def test_seeded_random_kill_plans_converge(self, clean):
        baseline = clean.jobs[0].checksums
        for seed in (1, 2, 3):
            faults = ClusterFaultPlan.random(
                seed, executors=2, max_boundary=clean.jobs[0].boundaries, kills=2
            )
            report, _ = Cluster(2).run(one_job_plan(), faults=faults)
            assert report.jobs[0].checksums == baseline

    def test_fault_free_plan_is_byte_neutral(self, clean):
        """Running under an empty fault plan changes nothing."""
        report, _ = Cluster(2).run(one_job_plan(), faults=ClusterFaultPlan())
        assert report.to_json() == clean.to_json()


# -- the report ------------------------------------------------------------


class TestClusterReport:
    @pytest.fixture(scope="class")
    def report(self):
        plan = generate_traffic(
            seed=7,
            duration_s=30.0,
            rate_jobs_per_s=0.3,
            base_scale=SCALE,
            max_jobs=6,
        )
        return Cluster(4).run(plan)[0]

    def test_percentile_nearest_rank(self):
        values = [5.0, 1.0, 3.0, 2.0, 4.0]
        assert percentile(values, 50.0) == 3.0
        assert percentile(values, 99.0) == 5.0
        assert percentile([], 50.0) == 0.0

    def test_throughput_and_latency(self, report):
        assert report.n_jobs == 6
        assert report.throughput_jobs_per_s == pytest.approx(
            report.n_jobs / report.makespan_s
        )
        assert 0.0 < report.latency_p50_s <= report.latency_p99_s
        latencies = sorted(j.latency_s for j in report.jobs)
        assert report.latency_p99_s == latencies[-1]

    def test_tenant_utilisation_shares_sum_to_one(self, report):
        assert report.tenants
        assert sum(t["dram_share"] for t in report.tenants.values()) == (
            pytest.approx(1.0)
        )
        assert sum(t["nvm_share"] for t in report.tenants.values()) == (
            pytest.approx(1.0)
        )
        assert sum(t["jobs"] for t in report.tenants.values()) == report.n_jobs

    def test_remote_fetches_happen_on_a_real_cluster(self, report):
        assert report.service["remote_fetches"] > 0
        assert report.service["net_s"] > 0.0

    def test_per_job_latency_decomposition(self, report):
        for job in report.jobs:
            assert job.latency_s == pytest.approx(job.wait_s + job.exec_s)
            assert job.wait_s >= 0.0
            assert job.finish_s > job.arrival_s

    def test_summary_lines_name_the_headline_metrics(self, report):
        text = "\n".join(report.summary_lines())
        assert "throughput" in text
        assert "p50" in text and "p99" in text
        assert "tenant" in text
        assert "executor" in text

    def test_json_roundtrip(self, report):
        payload = json.loads(report.to_json())
        assert payload["executors"] == 4
        assert len(payload["jobs"]) == report.n_jobs

    def test_default_config_sized_for_largest_job(self):
        plan = generate_traffic(
            seed=7, duration_s=30.0, rate_jobs_per_s=0.3, base_scale=SCALE
        )
        config = default_cluster_config(plan)
        biggest = max(j.scale for j in plan.jobs)
        assert config.heap_bytes == paper_config(
            64, 1 / 3, PolicyName.PANTHERA, biggest
        ).heap_bytes

    def test_cluster_validation(self):
        with pytest.raises(ReproError):
            Cluster(0)
        with pytest.raises(ReproError):
            Cluster(2).run(TrafficPlan())


# -- CLI and bench ---------------------------------------------------------


class TestClusterCli:
    ARGS = (
        "cluster",
        "--executors",
        "2",
        "--seed",
        "3",
        "--duration",
        "20",
        "--rate",
        "0.4",
        "--max-jobs",
        "2",
        "--scale",
        "0.01",
        "--iterations",
        "2",
    )

    def test_reports_headline_metrics(self, capsys):
        code = cli_main(list(self.ARGS))
        out = capsys.readouterr().out
        assert code == 0
        assert "throughput" in out
        assert "p50" in out and "p99" in out
        assert "tenant" in out

    def test_kill_and_export_json(self, capsys, tmp_path):
        path = tmp_path / "cluster.json"
        code = cli_main(
            list(self.ARGS)
            + ["--kill-executor", "1:2", "--export-json", str(path)]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "kill executor 1" in out
        payload = json.loads(path.read_text())
        assert payload["executors"] == 2
        assert payload["fault_plan"]["kills"] == [
            {"executor": 1, "at_boundary": 2}
        ]

    def test_parallel_jobs_flag(self, capsys):
        code = cli_main(list(self.ARGS) + ["--jobs", "2"])
        assert code == 0


class TestClusterBench:
    def test_compare_metric_registered(self):
        assert _COMPARE_METRIC["cluster"] == "wall_s"

    def test_cluster_bench_record_shape(self):
        record = run_cluster_bench("e2", 2, 2, rounds=1)
        assert record["kind"] == "cluster"
        assert record["name"] == "cluster.mix.e2"
        assert record["executors"] == 2
        assert record["wall_s"] > 0.0
        assert record["throughput_jobs_per_s"] > 0.0
        assert record["latency_p99_s"] > 0.0
