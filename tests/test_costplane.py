"""Tests for the vectorised cost plane (``VECTORISED_COST_PLANE``).

Covers the column-charging overhaul behind ``charging.VECTORISED_COST_PLANE``:
``ChargeColumns`` reduction exactness and first-touch ordering (numpy and
``array``-module fallback), the two-row coalescing of the charge
primitives, ``Machine.run_rows`` equivalence with per-call ``access``,
the environment-variable override, and A/B byte-identity — simulated
time, GC logs, bandwidth series, trace streams and fault checksums — on
traced + faulted experiment cells and random hypothesis pipelines.
"""

import os
import subprocess
import sys
from types import SimpleNamespace

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.config import CACHE_LINE_BYTES, PolicyName, DeviceKind
from repro.faults import FaultInjector, FaultPlan, KillSpec, action_checksums
from repro.gc import charging as _charging
from repro.gc.charging import (
    KIND_RANDOM_READ,
    KIND_READ,
    KIND_WRITE,
    ChargeAccumulator,
    ChargeColumns,
)
from repro.gc.gclog import render_log
from repro.harness.configs import paper_config
from repro.harness.experiment import run_experiment
from repro.heap.object_model import HEADER_BYTES
from repro.memory.machine import Machine, TrafficSet
from repro.trace import TraceSession
from tests.conftest import small_config, small_context
from tests.test_properties_spark import DATASET, STEP, build_pipeline


def _under_costplane(vectorised, fn):
    """Call ``fn()`` with the cost-plane flag set to ``vectorised``."""
    saved = _charging.VECTORISED_COST_PLANE
    _charging.VECTORISED_COST_PLANE = vectorised
    try:
        return fn()
    finally:
        _charging.VECTORISED_COST_PLANE = saved


def _bandwidth_fingerprint(machine):
    """Every bandwidth series, repr'd: float bins make byte-identity
    visible (any reordering of float adds would change some repr)."""
    return {
        (device.value, is_write): repr(machine.bandwidth.series(device, is_write))
        for device in DeviceKind
        for is_write in (False, True)
    }


# -- ChargeColumns: reduction exactness and ordering -----------------------


def _dram_base():
    return _charging._DEV_BASE[DeviceKind.DRAM]


def _nvm_base():
    return _charging._DEV_BASE[DeviceKind.NVM]


class TestChargeColumns:
    def test_reduce_sums_by_device_and_kind(self):
        cols = ChargeColumns()
        base = _dram_base()
        for code, amount in [
            (base + KIND_READ, 100),
            (base + KIND_WRITE, 7),
            (base + KIND_READ, 23),
            (base + KIND_RANDOM_READ, 5),
        ]:
            cols.codes.append(code)
            cols.amounts.append(amount)
        assert cols.reduce() == [(DeviceKind.DRAM, [123, 7, 5, 0])]

    def test_first_touch_order_is_row_order(self):
        cols = ChargeColumns()
        for code in [_nvm_base(), _dram_base(), _nvm_base() + KIND_WRITE]:
            cols.codes.append(code)
            cols.amounts.append(1)
        devices = [device for device, _ in cols.reduce()]
        assert devices == [DeviceKind.NVM, DeviceKind.DRAM]

    def test_clear_empties_but_keeps_buffer_objects(self):
        cols = ChargeColumns()
        codes_buf, amounts_buf = cols.codes, cols.amounts
        cols.codes.append(_dram_base())
        cols.amounts.append(9)
        cols.clear()
        assert len(cols) == 0
        # The accumulator caches bound .append methods; clear() must
        # empty in place, not rebind fresh arrays.
        assert cols.codes is codes_buf and cols.amounts is amounts_buf

    @pytest.mark.skipif(_charging._np is None, reason="numpy not available")
    def test_numpy_and_fallback_reductions_agree(self, monkeypatch):
        import random

        rng = random.Random(42)
        cols = ChargeColumns()
        all_codes = [
            base + kind
            for base in (_dram_base(), _nvm_base())
            for kind in (KIND_READ, KIND_WRITE, KIND_RANDOM_READ, 3)
        ]
        for _ in range(1000):
            cols.codes.append(rng.choice(all_codes))
            cols.amounts.append(rng.randrange(1, 10**12))
        with_numpy = cols.reduce()
        monkeypatch.setattr(_charging, "_np", None)
        scalar = cols.reduce()
        assert with_numpy == scalar

    @pytest.mark.skipif(_charging._np is None, reason="numpy not available")
    def test_numpy_reduce_is_integer_exact(self):
        cols = ChargeColumns()
        # 2**53 + 1 is not representable in float64: a float accumulator
        # would round it away, the int64 accumulator must not.
        big = 2**53 + 1
        for _ in range(max(_charging._NUMPY_MIN_ROWS, 200)):
            cols.codes.append(_dram_base())
            cols.amounts.append(big)
        [(device, entry)] = cols.reduce()
        assert device is DeviceKind.DRAM
        assert entry[KIND_READ] == big * max(_charging._NUMPY_MIN_ROWS, 200)


# -- ChargeAccumulator: primitives vs the scalar oracle --------------------


def _fake_obj(device, size=96):
    space = SimpleNamespace(
        device=device,
        object_traffic=lambda obj: [(device, obj.size)],
    )
    return SimpleNamespace(space=space, addr=0x1000, size=size)


def _dst_space(device, top=0x2000, end=0x3000):
    return SimpleNamespace(device_of=lambda addr: device, top=top, end=end)


def _drive(acc):
    """One mixed charge sequence touching every primitive."""
    dram_objs = [_fake_obj(DeviceKind.DRAM) for _ in range(20)]
    nvm_objs = [_fake_obj(DeviceKind.NVM) for _ in range(3)]
    for obj in dram_objs[:4]:
        acc.visit(obj)
    acc.visit_all(dram_objs + nvm_objs)  # long: run-grouping path
    acc.visit_all(nvm_objs)  # short: per-object fallback path
    acc.stream_read(_fake_obj(DeviceKind.NVM, size=4096))
    for obj in dram_objs[:5]:
        acc.copy([(DeviceKind.NVM, obj.size)], obj, _dst_space(DeviceKind.DRAM))
    acc.read(DeviceKind.DISK, 512)
    acc.write(DeviceKind.DISK, 128)
    acc.write(DeviceKind.DRAM, 64)
    acc.flush()


def _traffic_fingerprint(traffic):
    return [
        (device.value, t.read_bytes, t.write_bytes, t.random_reads, t.random_writes)
        for device, t in traffic.per_device.items()
    ]


class TestChargeAccumulator:
    def test_vectorised_matches_scalar_totals_and_device_order(self):
        fingerprints = {}
        for vectorised in (False, True):
            traffic = TrafficSet()
            _drive(ChargeAccumulator(traffic, batched=True, vectorised=vectorised))
            fingerprints[vectorised] = _traffic_fingerprint(traffic)
        assert fingerprints[True] == fingerprints[False]

    def test_per_charge_flushing_matches_too(self):
        batched = TrafficSet()
        _drive(ChargeAccumulator(batched, batched=True, vectorised=True))
        unbatched = TrafficSet()
        _drive(ChargeAccumulator(unbatched, batched=False))
        assert _traffic_fingerprint(batched) == _traffic_fingerprint(unbatched)

    def test_unbatched_accumulator_forces_the_scalar_path(self):
        acc = ChargeAccumulator(TrafficSet(), batched=False, vectorised=True)
        assert acc.vectorised is False

    def test_defaults_follow_the_module_flags(self):
        assert ChargeAccumulator(TrafficSet()).vectorised is (
            _charging.VECTORISED_COST_PLANE and _charging.BATCHED_DEPOSITS
        )
        on = _under_costplane(True, lambda: ChargeAccumulator(TrafficSet()))
        off = _under_costplane(False, lambda: ChargeAccumulator(TrafficSet()))
        assert on.vectorised is True
        assert off.vectorised is False

    def test_visit_pair_merge_collapses_rows(self):
        acc = ChargeAccumulator(TrafficSet(), batched=True, vectorised=True)
        for obj in [_fake_obj(DeviceKind.DRAM) for _ in range(50)]:
            acc.visit(obj)
        # 50 visits on one device coalesce into one [header, random] pair.
        assert len(acc._cols) == 2
        acc.flush()
        t = acc.traffic.per_device[DeviceKind.DRAM]
        assert t.read_bytes == 50 * HEADER_BYTES
        assert t.random_reads == 50

    def test_copy_pair_merge_collapses_rows(self):
        acc = ChargeAccumulator(TrafficSet(), batched=True, vectorised=True)
        dst = _dst_space(DeviceKind.DRAM)
        for _ in range(30):
            obj = _fake_obj(DeviceKind.NVM, size=128)
            acc.copy([(DeviceKind.NVM, 128)], obj, dst)
        assert len(acc._cols) == 2
        acc.flush()
        assert acc.traffic.per_device[DeviceKind.NVM].read_bytes == 30 * 128
        assert acc.traffic.per_device[DeviceKind.DRAM].write_bytes == 30 * 128

    def test_flush_clears_and_is_idempotent(self):
        acc = ChargeAccumulator(TrafficSet(), batched=True, vectorised=True)
        acc.read(DeviceKind.DRAM, 10)
        acc.flush()
        acc.flush()
        t = acc.traffic.per_device[DeviceKind.DRAM]
        assert t.read_bytes == 10

    def test_visit_all_long_path_matches_per_object(self, monkeypatch):
        objs = [
            _fake_obj([DeviceKind.DRAM, DeviceKind.NVM][i % 3 == 2])
            for i in range(40)
        ]
        bulk = ChargeAccumulator(TrafficSet(), batched=True, vectorised=True)
        bulk.visit_all(objs)
        bulk.flush()
        single = ChargeAccumulator(TrafficSet(), batched=True, vectorised=True)
        for obj in objs:
            single.visit(obj)
        single.flush()
        assert _traffic_fingerprint(bulk.traffic) == _traffic_fingerprint(
            single.traffic
        )


# -- Machine.run_rows vs per-call access -----------------------------------


_ROWS = [
    (DeviceKind.DISK, 64 * 1024.0, 0.0, 0, 0, 500.0),
    (DeviceKind.DRAM, 0.0, 48 * 1024.0, 0, 0, 0.0),
    (DeviceKind.DRAM, 0.0, 0.0, 24, 0, 300.0),
    (DeviceKind.NVM, 16 * 1024.0, 8 * 1024.0, 0, 4, 200.0),
    (DeviceKind.NVM, 0.0, 0.0, 0, 0, 750.0),  # pure-CPU row
]


def _machine_fingerprint(machine):
    return (
        repr(machine.clock.now_ns),
        {
            kind.value: (
                dev.counters.read_bytes,
                dev.counters.write_bytes,
                dev.counters.random_reads,
                dev.counters.random_writes,
            )
            for kind, dev in machine.devices.items()
        },
        _bandwidth_fingerprint(machine),
    )


class TestRunRows:
    def _fresh_machine(self):
        return Machine(small_config(PolicyName.PANTHERA))

    @pytest.mark.parametrize("threads,mlp", [(1, None), (8, None), (4, 2)])
    def test_rows_match_sequential_access_calls(self, threads, mlp):
        bulk = self._fresh_machine()
        returned = bulk.run_rows(_ROWS * 7, threads=threads, mlp=mlp)
        scalar = self._fresh_machine()
        start = scalar.clock.now_ns
        for device, rb, wb, rr, rw, cpu in _ROWS * 7:
            scalar.access(
                device,
                read_bytes=rb,
                write_bytes=wb,
                random_reads=rr,
                random_writes=rw,
                threads=threads,
                mlp=mlp,
                cpu_ns=cpu,
            )
        assert _machine_fingerprint(bulk) == _machine_fingerprint(scalar)
        assert repr(returned) == repr(scalar.clock.now_ns - start)

    def test_rows_apply_the_nvm_throttle(self):
        class Halver:
            def apply(self, start_ns, device_ns):
                return device_ns * 2.0

        bulk = self._fresh_machine()
        bulk.nvm_throttle = Halver()
        bulk.run_rows(_ROWS, threads=2)
        scalar = self._fresh_machine()
        scalar.nvm_throttle = Halver()
        for device, rb, wb, rr, rw, cpu in _ROWS:
            scalar.access(
                device,
                read_bytes=rb,
                write_bytes=wb,
                random_reads=rr,
                random_writes=rw,
                threads=2,
                cpu_ns=cpu,
            )
        assert _machine_fingerprint(bulk) == _machine_fingerprint(scalar)

    def test_empty_rows_are_free(self):
        machine = self._fresh_machine()
        assert machine.run_rows([]) == 0.0
        assert machine.clock.now_ns == 0.0

    def test_negative_cpu_raises(self):
        machine = self._fresh_machine()
        with pytest.raises(ValueError):
            machine.run_rows([(DeviceKind.DRAM, 0.0, 0.0, 0, 0, -1.0)])

    def test_random_traffic_charges_cache_lines(self):
        machine = self._fresh_machine()
        machine.run_rows([(DeviceKind.DRAM, 0.0, 0.0, 5, 3, 0.0)])
        counters = machine.devices[DeviceKind.DRAM].counters
        assert counters.read_bytes == 5 * CACHE_LINE_BYTES
        assert counters.write_bytes == 3 * CACHE_LINE_BYTES


# -- the environment-variable override -------------------------------------


class TestEnvOverride:
    @pytest.mark.parametrize(
        "value,expected", [("0", False), ("1", True), ("off", False)]
    )
    def test_flag_follows_the_environment(self, value, expected):
        env = dict(os.environ, REPRO_VECTORISED_COST_PLANE=value)
        env["PYTHONPATH"] = "src"
        out = subprocess.run(
            [
                sys.executable,
                "-c",
                "from repro.gc import charging; "
                "print(charging.VECTORISED_COST_PLANE)",
            ],
            capture_output=True,
            text=True,
            env=env,
            check=True,
        )
        assert out.stdout.strip() == str(expected)


# -- A/B byte-identity on traced + faulted cells ---------------------------


class TestCostPlaneIdentity:
    def _run_cell(self, workload):
        config = paper_config(64, 1 / 3, PolicyName.PANTHERA, 0.01)
        plan = FaultPlan(kills=[KillSpec("shuffle", 1, 0)], seed=7)
        result = run_experiment(
            workload,
            config,
            scale=0.01,
            workload_kwargs={"iterations": 2},
            keep_context=True,
            trace=True,
            faults=plan,
        )
        stats = result.context.collector.stats
        return {
            "elapsed": repr(result.elapsed_s),
            "gclog": render_log(stats, result.elapsed_s, tail=50),
            "checksums": action_checksums(result.action_results),
            "events": [repr(e) for e in result.trace_events],
            "bandwidth": _bandwidth_fingerprint(result.context.machine),
        }

    @pytest.mark.parametrize("workload", ["PR", "CC"])
    def test_traced_faulted_cell_identical_either_plane(self, workload):
        vectorised = _under_costplane(True, lambda: self._run_cell(workload))
        scalar = _under_costplane(False, lambda: self._run_cell(workload))
        assert vectorised["elapsed"] == scalar["elapsed"]
        assert vectorised["gclog"] == scalar["gclog"]
        assert vectorised["checksums"] == scalar["checksums"]
        assert vectorised["events"] == scalar["events"]
        assert vectorised["bandwidth"] == scalar["bandwidth"]


class TestCostPlanePropertyAB:
    """Random traced (and sometimes faulted) pipelines are byte-identical
    under the scalar and vectorised cost planes."""

    @settings(
        max_examples=12,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        records=DATASET,
        steps=st.lists(STEP, min_size=1, max_size=5),
        kill=st.booleans(),
    )
    def test_random_pipelines_identical_across_planes(self, records, steps, kill):
        def run():
            ctx = small_context(PolicyName.PANTHERA)
            session = TraceSession.attach_to_context(ctx)
            if kill:
                plan = FaultPlan(kills=[KillSpec("shuffle", 1, 0)], seed=3)
                FaultInjector.attach(plan, ctx)
            rdd = build_pipeline(ctx, records, steps)
            result = ctx.scheduler.run_action(rdd, "collect")
            return {
                "result": sorted(result, key=repr),
                "checksums": action_checksums({"collect": result}),
                "elapsed": repr(ctx.machine.elapsed_s),
                "events": [repr(e) for e in session.events],
                "bandwidth": _bandwidth_fingerprint(ctx.machine),
            }

        assert _under_costplane(True, run) == _under_costplane(False, run)
