"""Tests for the access monitor (§4.2.2, §5.5) and runtime API (§4.3)."""


from repro.config import MiB
from repro.core.monitor import AccessMonitor
from repro.core.tags import MEMORY_BITS_NVM, MemoryTag
from repro.heap.object_model import ObjKind


class TestAccessMonitor:
    def test_counts_per_rdd(self):
        monitor = AccessMonitor()
        monitor.record_call(1)
        monitor.record_call(1)
        monitor.record_call(2)
        assert monitor.call_count(1) == 2
        assert monitor.call_count(2) == 1
        assert monitor.call_count(3) == 0

    def test_reset_clears_cycle_but_keeps_lifetime(self):
        monitor = AccessMonitor()
        for _ in range(5):
            monitor.record_call(7)
        monitor.reset()
        assert monitor.call_count(7) == 0
        assert monitor.total_calls == 5

    def test_overhead_charged_to_machine(self, panthera_stack):
        machine = panthera_stack.machine
        before = machine.clock.now_ns
        panthera_stack.monitor.record_call(1)
        assert machine.clock.now_ns == before + AccessMonitor.JNI_CALL_NS

    def test_overhead_is_lightweight(self):
        # §5.5: monitoring overhead below 1 % — a 300-call PageRank run
        # costs microseconds against a multi-minute execution.
        monitor = AccessMonitor()
        for _ in range(300):
            monitor.record_call(1)
        assert monitor.overhead_ns < 1e6

    def test_snapshot_is_a_copy(self):
        monitor = AccessMonitor()
        monitor.record_call(1)
        snap = monitor.snapshot()
        snap[1] = 99
        assert monitor.call_count(1) == 1


class TestRuntimeApi:
    def test_rdd_alloc_stamps_bits_and_arms(self, panthera_stack):
        heap = panthera_stack.heap
        top = heap.new_object(ObjKind.RDD_TOP, 64)
        panthera_stack.runtime.rdd_alloc(top, MemoryTag.NVM)
        assert top.memory_bits == MEMORY_BITS_NVM
        assert heap.tag_wait.armed
        assert heap.tag_wait.pending_tag is MemoryTag.NVM

    def test_rdd_alloc_with_none_tag(self, panthera_stack):
        heap = panthera_stack.heap
        top = heap.new_object(ObjKind.RDD_TOP, 64)
        panthera_stack.runtime.rdd_alloc(top, None)
        assert top.memory_bits == 0
        assert heap.tag_wait.armed

    def test_place_array_api(self, panthera_stack):
        """§4.3 API 1: pre-tenure a data structure by tag (the Hadoop
        HashJoin in-memory table example)."""
        array = panthera_stack.runtime.place_array(
            2 * MiB, MemoryTag.DRAM, owner_id=99
        )
        assert array.space.name == "old-dram"
        assert array.rdd_id == 99

    def test_track_api(self, panthera_stack):
        """§4.3 API 2: dynamic monitoring of a data structure."""
        runtime = panthera_stack.runtime
        runtime.track(55)
        assert runtime.is_tracked(55)
        runtime.record_call(55)
        assert panthera_stack.monitor.call_count(55) == 1

    def test_record_call_without_monitor_is_noop(self, panthera_stack):
        from repro.core.runtime_api import PantheraRuntime

        runtime = PantheraRuntime(panthera_stack.heap, monitor=None)
        runtime.record_call(1)  # must not raise

    def test_tracked_structure_migrated_by_major_gc(self, panthera_stack):
        """End-to-end §4.3 flow: track, accumulate calls, migrate."""
        runtime = panthera_stack.runtime
        array = runtime.place_array(MiB, MemoryTag.NVM, owner_id=77)
        panthera_stack.heap.add_root(array)
        array.age = 1  # survived a prior major cycle
        runtime.track(77)
        for _ in range(4):
            runtime.record_call(77)
        panthera_stack.collector.collect_major()
        assert array.space.name == "old-dram"
