"""Tests for the ``ctx.text_file`` entry point (Figure 2(a)'s textFile)."""

import pytest

from repro.config import MiB
from repro.errors import SparkError
from tests.conftest import small_context


@pytest.fixture
def text_path(tmp_path):
    path = tmp_path / "input.txt"
    path.write_text("alpha beta\ngamma\ndelta epsilon zeta\n")
    return path


class TestTextFile:
    def test_lines_become_records(self, text_path):
        ctx = small_context()
        rdd = ctx.text_file(str(text_path), total_bytes=MiB)
        records = sorted(ctx.scheduler.run_action(rdd, "collect"))
        assert records == [
            (0, "alpha beta"),
            (1, "gamma"),
            (2, "delta epsilon zeta"),
        ]

    def test_default_weight_applies_bloat(self, text_path):
        ctx = small_context()
        rdd = ctx.text_file(str(text_path))
        file_size = text_path.stat().st_size
        assert rdd.bytes_per_record * 3 == pytest.approx(file_size * 8)

    def test_word_count_over_text_file(self, text_path):
        ctx = small_context()
        counts = dict(
            ctx.text_file(str(text_path), total_bytes=MiB)
            .flat_map(lambda r: [(w, 1) for w in r[1].split()])
            .reduce_by_key(lambda a, b: a + b)
            .collect()
        )
        assert counts["alpha"] == 1
        assert len(counts) == 6

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.txt"
        path.write_text("")
        with pytest.raises(SparkError):
            small_context().text_file(str(path))

    def test_name_is_basename(self, text_path):
        rdd = small_context().text_file(str(text_path), total_bytes=MiB)
        assert rdd.name == "input.txt"
