"""Tests for heap spaces: bump allocation, padding, device resolution."""

import pytest
from hypothesis import given, strategies as st

from repro.config import DeviceKind, MiB
from repro.errors import HeapError
from repro.heap.object_model import HeapObject, ObjKind
from repro.heap.spaces import Space
from repro.memory.interleave import ChunkMap


def make_space(size=16 * MiB, device=DeviceKind.DRAM):
    return Space("test", base=0x1000, size=size, generation="old", device=device)


class TestAllocation:
    def test_bump_allocation_is_sequential(self):
        space = make_space()
        a = space.allocate(100)
        b = space.allocate(200)
        assert b == a + 100

    def test_allocation_failure_returns_none(self):
        space = make_space(size=100)
        assert space.allocate(101) is None

    def test_exact_fit_succeeds(self):
        space = make_space(size=100)
        assert space.allocate(100) is not None
        assert space.free == 0

    def test_align_end_to_card(self):
        space = make_space()
        space.allocate(100)  # misalign the cursor
        addr = space.allocate(1000, align_end_to=512)
        assert (space.top) % 512 == 0
        assert addr is not None

    def test_align_no_padding_when_already_aligned(self):
        space = make_space()
        addr = space.allocate(512, align_end_to=512)
        # base 0x1000 is card-aligned; 512 bytes end on a boundary already.
        assert space.top == addr + 512

    def test_negative_allocation_rejected(self):
        with pytest.raises(HeapError):
            make_space().allocate(-1)

    def test_used_free_accounting(self):
        space = make_space(size=1000)
        space.allocate(300)
        assert space.used == 300
        assert space.free == 700

    def test_reset_empties(self):
        space = make_space()
        obj = HeapObject(ObjKind.DATA, 100)
        space.place(obj)
        space.reset()
        assert space.used == 0
        assert not space.objects


class TestPlace:
    def test_place_sets_location(self):
        space = make_space()
        obj = HeapObject(ObjKind.DATA, 64)
        assert space.place(obj)
        assert obj.space is space
        assert space.contains(obj.addr)
        assert obj in space.objects

    def test_place_moves_between_spaces(self):
        a, b = make_space(), Space("b", 0x100_0000, MiB, "old", device=DeviceKind.NVM)
        obj = HeapObject(ObjKind.DATA, 64)
        a.place(obj)
        b.place(obj)
        assert obj.space is b
        assert obj not in a.objects
        assert obj in b.objects

    def test_place_failure_leaves_object_untouched(self):
        space = make_space(size=10)
        obj = HeapObject(ObjKind.DATA, 100)
        assert not space.place(obj)
        assert obj.addr is None


class TestDeviceResolution:
    def test_homogeneous_device(self):
        space = make_space(device=DeviceKind.NVM)
        assert space.device_of(0x1000) is DeviceKind.NVM

    def test_traffic_split_homogeneous(self):
        space = make_space()
        assert space.traffic_split(0x1000, 100) == [(DeviceKind.DRAM, 100)]

    def test_chunked_space(self):
        chunk_map = ChunkMap(0x1000, 16 * MiB, MiB, dram_probability=0.5, seed=3)
        space = Space("chunked", 0x1000, 16 * MiB, "old", chunk_map=chunk_map)
        obj = HeapObject(ObjKind.RDD_ARRAY, 3 * MiB)
        space.place(obj)
        pieces = space.object_traffic(obj)
        assert sum(n for _, n in pieces) == 3 * MiB

    def test_space_requires_exactly_one_backing(self):
        with pytest.raises(HeapError):
            Space("bad", 0, MiB, "old")
        chunk_map = ChunkMap(0, MiB, MiB, 0.5)
        with pytest.raises(HeapError):
            Space("bad", 0, MiB, "old", device=DeviceKind.DRAM, chunk_map=chunk_map)

    def test_unplaced_object_traffic_rejected(self):
        space = make_space()
        with pytest.raises(HeapError):
            space.object_traffic(HeapObject(ObjKind.DATA, 10))


class TestAccounting:
    def test_live_bytes(self):
        space = make_space()
        for size in (100, 200, 300):
            space.place(HeapObject(ObjKind.DATA, size))
        assert space.live_bytes() == 600

    def test_device_histogram_homogeneous(self):
        space = make_space()
        space.place(HeapObject(ObjKind.DATA, 128))
        assert space.device_histogram() == {DeviceKind.DRAM: 128}

    def test_iter_objects_by_addr_sorted(self):
        space = make_space()
        objs = [HeapObject(ObjKind.DATA, 50) for _ in range(5)]
        for obj in objs:
            space.place(obj)
        ordered = list(space.iter_objects_by_addr())
        addrs = [o.addr for o in ordered]
        assert addrs == sorted(addrs)

    @given(sizes=st.lists(st.integers(min_value=1, max_value=4096), max_size=50))
    def test_allocations_never_overlap(self, sizes):
        space = make_space()
        spans = []
        for size in sizes:
            addr = space.allocate(size, align_end_to=512 if size % 2 else None)
            if addr is None:
                continue
            for start, end in spans:
                assert addr >= end or addr + size <= start
            spans.append((addr, addr + size))
        assert space.top <= space.end
