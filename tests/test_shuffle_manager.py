"""Direct tests for the shuffle-file registry and NVM spec overrides."""

import pytest

from repro.config import DeviceKind, GiB, NVM_SPEC
from repro.errors import SparkError
from repro.memory.machine import Machine
from repro.spark.shuffle import ShuffleManager
from tests.conftest import small_config


class TestShuffleManager:
    def test_write_then_read(self):
        manager = ShuffleManager()
        manager.write(0, [[(1, "a")], [(2, "b")]], [100.0, 200.0])
        assert manager.has(0)
        assert manager.read(0, 0) == [(1, "a")]
        assert manager.read(0, 1) == [(2, "b")]

    def test_read_shares_stored_records(self):
        # The optimised data plane serves the stored list itself (no
        # internal consumer mutates record lists); the legacy plane
        # still copies defensively.
        manager = ShuffleManager()
        manager.write(0, [[(1, "a")]], [10.0])
        assert manager.read(0, 0) is manager._outputs[0][0]

    def test_legacy_read_returns_copy(self):
        from repro.spark import partition

        saved = partition.LEGACY_DATA_PLANE
        partition.LEGACY_DATA_PLANE = True
        try:
            manager = ShuffleManager()
            manager.write(0, [[(1, "a")]], [10.0])
            records = manager.read(0, 0)
            records.append((9, "z"))
            assert manager.read(0, 0) == [(1, "a")]
        finally:
            partition.LEGACY_DATA_PLANE = saved

    def test_double_write_rejected(self):
        manager = ShuffleManager()
        manager.write(1, [[]], [0.0])
        with pytest.raises(SparkError):
            manager.write(1, [[]], [0.0])

    def test_missing_shuffle_rejected(self):
        with pytest.raises(SparkError):
            ShuffleManager().read(7, 0)

    def test_size_mismatch_rejected(self):
        with pytest.raises(SparkError):
            ShuffleManager().write(2, [[], []], [1.0])

    def test_serialized_bytes(self):
        manager = ShuffleManager()
        manager.write(3, [[], []], [128.0, 256.0])
        assert manager.serialized_bytes(3, 1) == 256.0
        assert manager.total_bytes() == 384.0


class TestNvmSpecOverride:
    def test_default_uses_table2(self):
        machine = Machine(small_config())
        spec = machine.devices[DeviceKind.NVM].spec
        assert spec.read_latency_ns == NVM_SPEC.read_latency_ns
        assert spec.read_bandwidth_gbps == NVM_SPEC.read_bandwidth_gbps

    def test_latency_factor_applied(self):
        config = small_config(nvm_latency_factor=1.6)
        machine = Machine(config)
        spec = machine.devices[DeviceKind.NVM].spec
        assert spec.read_latency_ns == pytest.approx(
            NVM_SPEC.read_latency_ns * 1.6
        )

    def test_bandwidth_factor_applied(self):
        config = small_config(nvm_bandwidth_factor=0.5)
        machine = Machine(config)
        spec = machine.devices[DeviceKind.NVM].spec
        assert spec.read_bandwidth_gbps == pytest.approx(5.0)

    def test_slower_nvm_costs_more(self):
        fast = Machine(small_config())
        slow = Machine(small_config(nvm_bandwidth_factor=0.25))
        fast_ns = fast.devices[DeviceKind.NVM].batch_ns(read_bytes=GiB)
        slow_ns = slow.devices[DeviceKind.NVM].batch_ns(read_bytes=GiB)
        assert slow_ns == pytest.approx(4 * fast_ns)

    def test_dram_unaffected_by_nvm_factors(self):
        machine = Machine(small_config(nvm_latency_factor=2.0))
        assert machine.devices[DeviceKind.DRAM].spec.read_latency_ns == 120.0
