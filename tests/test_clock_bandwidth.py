"""Tests for the simulated clock and the windowed bandwidth tracker."""

import pytest
from hypothesis import given, strategies as st

from repro.config import DeviceKind
from repro.memory.bandwidth import BandwidthTracker
from repro.memory.clock import SimClock


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now_ns == 0.0

    def test_advance_accumulates(self):
        clock = SimClock()
        clock.advance(100)
        clock.advance(50)
        assert clock.now_ns == 150

    def test_now_s_converts(self):
        clock = SimClock()
        clock.advance(2.5e9)
        assert clock.now_s == pytest.approx(2.5)

    def test_negative_advance_rejected(self):
        with pytest.raises(ValueError):
            SimClock().advance(-1)

    def test_reset(self):
        clock = SimClock()
        clock.advance(10)
        clock.reset()
        assert clock.now_ns == 0

    @given(st.lists(st.floats(min_value=0, max_value=1e9), max_size=20))
    def test_monotonic(self, steps):
        clock = SimClock()
        last = 0.0
        for step in steps:
            assert clock.advance(step) >= last
            last = clock.now_ns


class TestBandwidthTracker:
    def test_single_event_lands_in_one_window(self):
        bw = BandwidthTracker(window_ns=1e9)
        bw.record(DeviceKind.DRAM, False, 3e9, start_ns=0, duration_ns=1e9)
        series = bw.series(DeviceKind.DRAM, False)
        assert len(series) == 1
        assert series[0].gbps == pytest.approx(3.0, rel=1e-6)

    def test_long_event_spreads_over_windows(self):
        bw = BandwidthTracker(window_ns=1e9)
        bw.record(DeviceKind.NVM, True, 10e9, start_ns=0, duration_ns=5e9)
        series = bw.series(DeviceKind.NVM, True)
        # 10 GB over 5 s = 2 GB/s sustained.
        sustained = [s.gbps for s in series[:5]]
        for value in sustained:
            assert value == pytest.approx(2.0, rel=1e-6)

    def test_zero_duration_event(self):
        bw = BandwidthTracker(window_ns=1e9)
        bw.record(DeviceKind.DRAM, False, 1e6, start_ns=5e8, duration_ns=0)
        assert bw.total_bytes(DeviceKind.DRAM, False) == pytest.approx(1e6)

    def test_directions_are_separate(self):
        bw = BandwidthTracker()
        bw.record(DeviceKind.DRAM, False, 100, 0, 10)
        assert bw.series(DeviceKind.DRAM, True) == []

    def test_peak(self):
        bw = BandwidthTracker(window_ns=1e9)
        bw.record(DeviceKind.DRAM, False, 5e9, 0, 1e9)
        bw.record(DeviceKind.DRAM, False, 1e9, 3e9, 1e9)
        assert bw.peak_gbps(DeviceKind.DRAM, False) == pytest.approx(5.0, rel=0.01)

    def test_gap_windows_reported_as_zero(self):
        bw = BandwidthTracker(window_ns=1e9)
        bw.record(DeviceKind.DRAM, False, 1e9, 0, 0.5e9)
        bw.record(DeviceKind.DRAM, False, 1e9, 4e9, 0.5e9)
        series = bw.series(DeviceKind.DRAM, False)
        assert any(s.gbps == 0.0 for s in series)

    def test_bad_window_rejected(self):
        with pytest.raises(ValueError):
            BandwidthTracker(window_ns=0)

    @given(
        nbytes=st.floats(min_value=1, max_value=1e12),
        start=st.floats(min_value=0, max_value=1e10),
        duration=st.floats(min_value=0, max_value=1e10),
    )
    def test_bytes_conserved(self, nbytes, start, duration):
        bw = BandwidthTracker(window_ns=1e9)
        bw.record(DeviceKind.NVM, False, nbytes, start, duration)
        assert bw.total_bytes(DeviceKind.NVM, False) == pytest.approx(
            nbytes, rel=1e-2
        )
