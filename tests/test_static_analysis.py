"""Static analysis tests: every inference rule of §3."""


from repro.core.static_analysis import analyze_program
from repro.core.tags import MemoryTag
from repro.spark.program import Program
from repro.spark.storage import StorageLevel


def identity(record):
    return record


def build_pagerank_like(iterations=3):
    """The shape of Figure 2(a)."""
    class FakeDataset:
        name = "fake"

    p = Program()
    lines = p.let("lines", p.source(FakeDataset()))
    links = p.let(
        "links",
        lines.map(identity).distinct().group_by_key()
        .persist(StorageLevel.MEMORY_ONLY),
    )
    ranks = p.let("ranks", links.map_values(identity))
    with p.loop(iterations):
        contribs = p.let(
            "contribs",
            links.join(ranks).values().flat_map(identity)
            .persist(StorageLevel.MEMORY_AND_DISK_SER),
        )
        ranks = p.let(
            "ranks", contribs.reduce_by_key(identity).map_values(identity)
        )
    p.action(ranks, "count")
    return p


class TestPageRankTags:
    """The paper's running example: links=DRAM, contribs=NVM, ranks=NVM."""

    def test_links_is_dram(self):
        analysis = analyze_program(build_pagerank_like())
        assert analysis.tag_of("links") is MemoryTag.DRAM

    def test_contribs_is_nvm(self):
        analysis = analyze_program(build_pagerank_like())
        assert analysis.tag_of("contribs") is MemoryTag.NVM

    def test_ranks_is_nvm(self):
        # ranks materialises only at the post-loop action; no loop follows,
        # so its in-loop behaviour is irrelevant (§3).
        analysis = analyze_program(build_pagerank_like())
        assert analysis.tag_of("ranks") is MemoryTag.NVM

    def test_not_flipped(self):
        assert not analyze_program(build_pagerank_like()).flipped

    def test_rationale_provided(self):
        analysis = analyze_program(build_pagerank_like())
        assert "used-only" in analysis.rationale["links"]


class TestCoreRules:
    def test_used_only_in_loop_is_dram(self):
        p = Program()
        data = p.let("data", p.source(object()).map(identity).persist())
        with p.loop(3):
            p.let("tmp", data.map(identity))
        analysis = analyze_program(p)
        assert analysis.tag_of("data") is MemoryTag.DRAM

    def test_defined_in_loop_is_nvm(self):
        p = Program()
        acc = p.let("acc", p.source(object()).map(identity).persist())
        anchor = p.let("anchor", p.source(object()).map(identity).persist())
        with p.loop(3):
            acc = p.let("acc", acc.map(identity).persist())
            p.let("use_anchor", anchor.map(identity))
        analysis = analyze_program(p)
        assert analysis.tag_of("acc") is MemoryTag.NVM
        assert analysis.tag_of("anchor") is MemoryTag.DRAM

    def test_no_loop_means_nvm_then_flip(self):
        # "If no loop exists ... all the RDDs receive an NVM tag"; then
        # the all-NVM rule flips them to DRAM.
        p = Program()
        p.let("a", p.source(object()).map(identity).persist())
        p.let("b", p.source(object()).map(identity).persist())
        p.action(p.let("c", p.source(object()).map(identity)), "count")
        analysis = analyze_program(p)
        assert analysis.flipped
        assert analysis.tag_of("a") is MemoryTag.DRAM
        assert analysis.tag_of("b") is MemoryTag.DRAM

    def test_materialization_after_loop_ignores_that_loop(self):
        p = Program()
        other = p.let("other", p.source(object()).map(identity).persist())
        with p.loop(2):
            p.let("use", other.map(identity))
            late = p.let("late", p.source(object()).map(identity))
        # late materialises only here, after the loop.
        p.let("late", p.let("late2", p.source(object()).map(identity)).map(identity).persist())
        analysis = analyze_program(p)
        assert analysis.tag_of("late") is MemoryTag.NVM

    def test_multiple_loops_any_used_only_wins_dram(self):
        # "we tag it DRAM as long as there exists one loop in which the
        # variable is used-only and that loop follows or contains the
        # materialization point"
        p = Program()
        v = p.let("v", p.source(object()).map(identity).persist())
        with p.loop(2):
            v = p.let("v", v.map(identity).persist())
        with p.loop(2):
            p.let("consume", v.map(identity))
        analysis = analyze_program(p)
        assert analysis.tag_of("v") is MemoryTag.DRAM

    def test_loop_before_materialization_not_considered(self):
        p = Program()
        base = p.let("base", p.source(object()).map(identity))
        with p.loop(2):
            p.let("warmup", base.map(identity))
        # base materialises only now; the loop above is in the past.
        p.let("base", base.map(identity).persist())
        anchor = p.let("anchor", p.source(object()).map(identity).persist())
        with p.loop(2):
            p.let("a_use", anchor.map(identity))
        analysis = analyze_program(p)
        assert analysis.tag_of("base") is MemoryTag.NVM

    def test_off_heap_is_fixed_nvm(self):
        p = Program()
        native = p.let(
            "native", p.source(object()).map(identity).persist(StorageLevel.OFF_HEAP)
        )
        with p.loop(2):
            p.let("use", native.map(identity))
        analysis = analyze_program(p)
        # OFF_HEAP translates directly to NVM, regardless of def/use.
        assert analysis.tag_of("native") is MemoryTag.NVM

    def test_off_heap_excluded_from_flip(self):
        p = Program()
        p.let(
            "native", p.source(object()).map(identity).persist(StorageLevel.OFF_HEAP)
        )
        p.let("plain", p.source(object()).map(identity).persist())
        analysis = analyze_program(p)
        assert analysis.flipped  # plain was NVM -> flip
        assert analysis.tag_of("native") is MemoryTag.NVM  # stays fixed
        assert analysis.tag_of("plain") is MemoryTag.DRAM

    def test_disk_only_has_no_tag(self):
        p = Program()
        p.let(
            "spilled",
            p.source(object()).map(identity).persist(StorageLevel.DISK_ONLY),
        )
        anchor = p.let("anchor", p.source(object()).map(identity).persist())
        with p.loop(2):
            p.let("use", anchor.map(identity))
        analysis = analyze_program(p)
        assert analysis.tag_of("spilled") is None

    def test_unpersist_is_ignored(self):
        # §5.5: lack of unpersist support is what sends GraphX to
        # dynamic migration.
        p = Program()
        g = p.let("g", p.source(object()).map(identity).persist())
        with p.loop(3):
            g = p.let("g", g.map(identity).persist())
            p.unpersist_prior(g)
        analysis = analyze_program(p)
        assert analysis.flipped  # g def+use in loop -> NVM -> flip
        assert analysis.tag_of("g") is MemoryTag.DRAM

    def test_action_only_variable_is_analyzed(self):
        # "Panthera analyzes not only RDD variables on which persist is
        # explicitly called, but also those on which actions are invoked"
        p = Program()
        anchor = p.let("anchor", p.source(object()).map(identity).persist())
        acted = p.let("acted", p.source(object()).map(identity))
        with p.loop(2):
            p.let("use", anchor.map(identity))
        p.action(acted, "count")
        analysis = analyze_program(p)
        assert analysis.tag_of("acted") is MemoryTag.NVM

    def test_nested_loops_attributed_to_enclosing_spans(self):
        p = Program()
        outer_var = p.let("ov", p.source(object()).map(identity).persist())
        with p.loop(2):
            with p.loop(2):
                p.let("inner_use", outer_var.map(identity))
        analysis = analyze_program(p)
        # Used-only in both the inner and outer loop spans.
        assert analysis.tag_of("ov") is MemoryTag.DRAM
        assert len(analysis.loops) == 2
