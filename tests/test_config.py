"""Configuration tests: Table 2 device parameters and sizing invariants."""

import pytest
from hypothesis import given, strategies as st

from repro.config import (
    DISK_SPEC,
    DRAM_SPEC,
    GiB,
    MiB,
    NVM_SPEC,
    DeviceKind,
    PolicyName,
    SystemConfig,
    dram_only_config,
    hybrid_config,
)
from repro.errors import ConfigError


class TestTable2DeviceSpecs:
    """The emulated device parameters of Table 2."""

    def test_dram_read_latency_is_120ns(self):
        assert DRAM_SPEC.read_latency_ns == 120.0

    def test_nvm_read_latency_is_300ns_one_hop(self):
        assert NVM_SPEC.read_latency_ns == 300.0

    def test_nvm_latency_ratio_in_paper_range(self):
        # "the latency of an NVM read is 2-4x larger than a DRAM read"
        ratio = NVM_SPEC.read_latency_ns / DRAM_SPEC.read_latency_ns
        assert 2.0 <= ratio <= 4.0

    def test_dram_bandwidth_is_30gbps(self):
        assert DRAM_SPEC.read_bandwidth_gbps == 30.0

    def test_nvm_bandwidth_is_10gbps_each_direction(self):
        assert NVM_SPEC.read_bandwidth_gbps == 10.0
        assert NVM_SPEC.write_bandwidth_gbps == 10.0

    def test_nvm_bandwidth_fraction_of_dram(self):
        # "NVM's bandwidth is about 1/8 - 1/3 of that of DRAM"
        ratio = NVM_SPEC.read_bandwidth_gbps / DRAM_SPEC.read_bandwidth_gbps
        assert 1 / 8 <= ratio <= 1 / 3

    def test_nvm_write_energy_exceeds_dram_write_energy(self):
        assert NVM_SPEC.write_energy_pj > DRAM_SPEC.write_energy_pj

    def test_nvm_read_energy_below_dram_read_energy(self):
        # "Reads on NVM consume less energy than on DRAM" (§5.1)
        assert NVM_SPEC.read_energy_pj < DRAM_SPEC.read_energy_pj

    def test_nvm_static_power_negligible_vs_dram(self):
        assert NVM_SPEC.static_mw_per_gb < DRAM_SPEC.static_mw_per_gb / 10

    def test_disk_slower_than_both_memories(self):
        assert DISK_SPEC.read_bandwidth_gbps < NVM_SPEC.read_bandwidth_gbps

    def test_device_kinds(self):
        assert DRAM_SPEC.kind is DeviceKind.DRAM
        assert NVM_SPEC.kind is DeviceKind.NVM


class TestSystemConfig:
    def test_basic_construction(self):
        cfg = SystemConfig(heap_bytes=GiB, dram_bytes=GiB, nvm_bytes=0)
        assert cfg.total_memory_bytes == GiB
        assert cfg.dram_ratio == 1.0

    def test_nursery_is_one_sixth_by_default(self):
        cfg = SystemConfig(heap_bytes=60 * MiB, dram_bytes=60 * MiB, nvm_bytes=0)
        assert cfg.nursery_bytes == 10 * MiB

    def test_old_gen_is_heap_minus_nursery(self):
        cfg = SystemConfig(heap_bytes=60 * MiB, dram_bytes=60 * MiB, nvm_bytes=0)
        assert cfg.old_gen_bytes == 50 * MiB

    def test_heap_larger_than_memory_rejected(self):
        with pytest.raises(ConfigError):
            SystemConfig(heap_bytes=2 * GiB, dram_bytes=GiB, nvm_bytes=0)

    def test_zero_heap_rejected(self):
        with pytest.raises(ConfigError):
            SystemConfig(heap_bytes=0, dram_bytes=GiB, nvm_bytes=0)

    def test_nursery_must_fit_in_dram(self):
        # Young generation is always DRAM-resident (§4.1).
        with pytest.raises(ConfigError):
            SystemConfig(
                heap_bytes=60 * MiB,
                dram_bytes=5 * MiB,
                nvm_bytes=55 * MiB,
            )

    def test_bad_nursery_fraction_rejected(self):
        with pytest.raises(ConfigError):
            SystemConfig(
                heap_bytes=GiB, dram_bytes=GiB, nvm_bytes=0, nursery_fraction=1.5
            )

    def test_old_dram_plus_old_nvm_covers_old_gen(self):
        cfg = hybrid_config(64, 1 / 3)
        assert cfg.old_dram_bytes + cfg.old_nvm_bytes == cfg.old_gen_bytes

    def test_dram_only_old_gen_entirely_dram(self):
        cfg = dram_only_config(64)
        assert cfg.old_dram_bytes == cfg.old_gen_bytes
        assert cfg.old_nvm_bytes == 0

    def test_kingsguard_nursery_old_gen_entirely_nvm(self):
        cfg = hybrid_config(64, 1 / 3, policy=PolicyName.KINGSGUARD_NURSERY)
        assert cfg.old_dram_bytes == 0

    def test_replace_returns_modified_copy(self):
        cfg = dram_only_config(64)
        other = cfg.replace(gc_threads=8)
        assert other.gc_threads == 8
        assert cfg.gc_threads != 8 or cfg is not other


class TestConfigBuilders:
    def test_hybrid_splits_by_ratio(self):
        cfg = hybrid_config(64, 1 / 4)
        assert cfg.dram_bytes == cfg.heap_bytes // 4
        assert cfg.dram_bytes + cfg.nvm_bytes == cfg.heap_bytes

    def test_dram_only_has_no_nvm(self):
        cfg = dram_only_config(32)
        assert cfg.nvm_bytes == 0
        assert cfg.policy is PolicyName.DRAM_ONLY

    @given(ratio=st.floats(min_value=0.2, max_value=0.9))
    def test_hybrid_ratio_roundtrip(self, ratio):
        cfg = hybrid_config(64, ratio)
        assert abs(cfg.dram_ratio - ratio) < 1e-6

    @given(heap_gb=st.floats(min_value=0.25, max_value=256))
    def test_old_spaces_partition_heap(self, heap_gb):
        cfg = hybrid_config(heap_gb, 1 / 3)
        assert cfg.nursery_bytes + cfg.old_gen_bytes == cfg.heap_bytes
