"""Every example script must run end to end (no doc rot)."""

import pathlib
import runpy

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).resolve().parents[1] / "examples").glob("*.py")
)


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(path, capsys):
    runpy.run_path(str(path), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{path.name} produced no output"


def test_all_examples_discovered():
    names = {p.stem for p in EXAMPLES}
    assert {
        "quickstart",
        "pagerank_hybrid",
        "hashjoin_pretenure",
        "static_analysis_tour",
        "wordcount_mapreduce",
        "custom_policy",
        "memtable_cassandra",
    } <= names
