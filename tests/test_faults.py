"""Fault-injection tests: kills converge, degradation degrades gracefully.

The headline property mirrors Spark's fault-tolerance contract: losing
any single partition (shuffle output or persisted block) at any stage
boundary must be invisible in the computed answers — lineage recovery
re-executes exactly what is needed and the action checksums match the
fault-free run.  The degradation ladder (NVM→DRAM fallback under an
exhausted NVM old space) must complete runs with counted fallbacks, not
aborts, and everything must stay byte-identical across ``--jobs``.
"""

import functools
import json

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.config import MiB, PolicyName
from repro.errors import FaultError
from repro.faults import (
    KILL_KINDS,
    FaultInjector,
    FaultPlan,
    FaultReport,
    KillSpec,
    ThrottleSchedule,
    ThrottleSpec,
    action_checksums,
)
from repro.harness.configs import paper_config
from repro.harness.engine import ExperimentEngine, ExperimentPoint
from repro.harness.experiment import run_experiment
from repro.spark.storage import StorageLevel
from tests.conftest import small_context


# ---------------------------------------------------------------------------
# plan validation and round-trips
# ---------------------------------------------------------------------------


class TestPlanValidation:
    def test_kill_kind_validated(self):
        with pytest.raises(FaultError):
            KillSpec("executor", 1)

    def test_kill_boundary_one_based(self):
        with pytest.raises(FaultError):
            KillSpec("shuffle", 0)

    def test_throttle_factor_is_slowdown(self):
        with pytest.raises(FaultError):
            ThrottleSpec(0, 1e9, 0.5)

    def test_throttle_duration_positive(self):
        with pytest.raises(FaultError):
            ThrottleSpec(0, 0, 2.0)

    def test_balloon_fraction_range(self):
        with pytest.raises(FaultError):
            FaultPlan(nvm_balloon_fraction=1.0)

    def test_attempts_bound_positive(self):
        with pytest.raises(FaultError):
            FaultPlan(max_recovery_attempts=0)

    def test_plan_round_trips_through_json(self):
        plan = FaultPlan(
            kills=[KillSpec("shuffle", 3, 1), KillSpec("block", 5)],
            throttles=[ThrottleSpec(1e8, 4e8, 4.0)],
            nvm_balloon_fraction=0.5,
            max_recovery_attempts=2,
            seed=9,
        )
        text = json.dumps(plan.to_dict(), sort_keys=True)
        assert FaultPlan.from_dict(json.loads(text)) == plan

    def test_report_round_trips(self):
        report = FaultReport(kills_fired=2, fallback_bytes=123.0)
        assert FaultReport.from_dict(report.to_dict()) == report

    def test_random_plan_is_seed_deterministic(self):
        a = FaultPlan.random(7, max_boundary=10, kills=3, throttle_windows=2)
        b = FaultPlan.random(7, max_boundary=10, kills=3, throttle_windows=2)
        assert a == b
        assert a != FaultPlan.random(8, max_boundary=10, kills=3)
        assert all(1 <= k.at_boundary <= 10 for k in a.kills)

    def test_empty_plan_is_empty(self):
        assert FaultPlan().is_empty
        assert not FaultPlan(kills=[KillSpec("block", 1)]).is_empty


class TestThrottleSchedule:
    def test_overlapping_windows_compound(self):
        schedule = ThrottleSchedule(
            [ThrottleSpec(0, 10, 2.0), ThrottleSpec(5, 10, 3.0)]
        )
        assert schedule.factor_at(2) == 2.0
        assert schedule.factor_at(7) == 6.0
        assert schedule.factor_at(12) == 3.0
        assert schedule.factor_at(20) == 1.0

    def test_apply_counts_and_stretches(self):
        schedule = ThrottleSchedule([ThrottleSpec(0, 10, 4.0)])
        assert schedule.apply(5, 100.0) == 400.0
        assert schedule.apply(50, 100.0) == 100.0
        assert schedule.throttled_batches == 1
        assert schedule.extra_ns == 300.0


# ---------------------------------------------------------------------------
# the convergence property: any single kill is invisible in the answers
# ---------------------------------------------------------------------------


def _mini_run(plan=None):
    """A small multi-stage pipeline with a persisted block and two
    shuffles — enough structure for both kill kinds to bite."""
    ctx = small_context()
    injector = FaultInjector.attach(plan, ctx) if plan is not None else None
    src = ctx.parallelize(
        [(i % 7, i) for i in range(42)], 4, 2 * MiB, name="src"
    )
    mapped = src.map(lambda r: (r[0], r[1] + 1))
    mapped.persist(StorageLevel.MEMORY_ONLY)
    summed = mapped.reduce_by_key(lambda a, b: a + b)
    results = {
        "sums": sorted(ctx.scheduler.run_action(summed, "collect")),
        "ordered": ctx.scheduler.run_action(
            summed.sort_by_key(num_partitions=2), "collect"
        ),
        "count": ctx.scheduler.run_action(mapped, "count"),
    }
    return results, (injector.report() if injector is not None else None), ctx


@functools.lru_cache(maxsize=1)
def _mini_baseline():
    """Fault-free reference: checksums plus the boundary count (probed
    with an empty plan so the injector counts without injecting)."""
    results, report, _ = _mini_run(FaultPlan())
    assert report.kills_fired == 0 and report.boundaries_seen >= 3
    return action_checksums(results), report.boundaries_seen


class TestKillConvergence:
    @settings(
        max_examples=30,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(data=st.data())
    def test_any_single_kill_converges(self, data):
        """Lose any one partition, anywhere: same answers."""
        clean_sums, boundaries = _mini_baseline()
        kill = KillSpec(
            kind=data.draw(st.sampled_from(KILL_KINDS)),
            at_boundary=data.draw(st.integers(1, boundaries)),
            partition=data.draw(st.integers(0, 7)),
        )
        results, report, ctx = _mini_run(FaultPlan(kills=[kill]))
        assert action_checksums(results) == clean_sums, kill
        assert report.kills_fired + report.kills_noop == 1
        # Recovery is lazy (demand-driven, like Spark): a kill at the
        # final boundary may destroy state nothing reads again, so
        # recomputation can legitimately be zero — but when it happened
        # it must have cost simulated time.
        if report.partitions_recomputed:
            assert report.recompute_s > 0.0
        from repro.heap.verify import verify_heap

        assert verify_heap(ctx.heap) == []

    def test_shuffle_kill_forces_map_rerun(self):
        clean_sums, _ = _mini_baseline()
        plan = FaultPlan(kills=[KillSpec("shuffle", 2, partition=1)])
        results, report, ctx = _mini_run(plan)
        assert action_checksums(results) == clean_sums
        assert report.kills_fired == 1
        assert report.partitions_recomputed >= 4  # one map stage re-ran
        assert report.recovery_attempts_max == 1

    def test_block_kill_recovers_through_lineage(self):
        clean_sums, _ = _mini_baseline()
        plan = FaultPlan(kills=[KillSpec("block", 3)])
        results, report, ctx = _mini_run(plan)
        assert action_checksums(results) == clean_sums
        assert report.kills_fired == 1
        assert ctx.block_manager.killed_count == 1
        # the killed block was rebuilt and re-registered
        assert ctx.block_manager.in_memory_bytes() > 0

    def test_kill_past_last_boundary_is_noop(self):
        clean_sums, boundaries = _mini_baseline()
        plan = FaultPlan(kills=[KillSpec("shuffle", boundaries + 50)])
        results, report, _ = _mini_run(plan)
        assert action_checksums(results) == clean_sums
        assert report.kills_fired == 0 and report.kills_noop == 0

    def test_bounded_retries_raise_fault_error(self):
        """A recovery that never restores the partition hits the retry
        bound instead of looping forever."""
        ctx = small_context()
        injector = FaultInjector.attach(
            FaultPlan(max_recovery_attempts=2), ctx
        )
        src = ctx.parallelize([(1, 1), (2, 2)], 2, MiB, name="s")
        summed = src.reduce_by_key(lambda a, b: a + b)
        ctx.scheduler.run_action(summed, "collect")
        dep = summed.deps[0]
        ctx.shuffles.invalidate(dep.shuffle_id, 0)

        class StuckScheduler:
            def _run_shuffle_map(self, dep, force=False):
                pass  # recovery that never restores anything

        with pytest.raises(FaultError):
            injector.ensure_shuffle_partition(StuckScheduler(), dep, 0)


# ---------------------------------------------------------------------------
# degradation ladder: NVM exhaustion falls back, never silently corrupts
# ---------------------------------------------------------------------------


class TestDegradationLadder:
    def test_nvm_exhaustion_completes_with_counted_fallbacks(self):
        """A ballooned NVM old space degrades (NVM→DRAM fallback) and the
        run still finishes with correct, fault-free answers."""
        config = paper_config(32, 1 / 3, PolicyName.PANTHERA, scale=0.02)
        clean = run_experiment(
            "PR", config, scale=0.02, workload_kwargs={"iterations": 3}
        )
        faulted = run_experiment(
            "PR",
            config,
            scale=0.02,
            workload_kwargs={"iterations": 3},
            faults=FaultPlan(nvm_balloon_fraction=0.9),
        )
        report = faulted.fault_report
        assert report.balloon_bytes > 0
        assert report.fallback_events > 0
        assert report.fallback_bytes > 0
        assert action_checksums(faulted.action_results) == action_checksums(
            clean.action_results
        )

    def test_ballooned_run_satisfies_replay_oracle(self):
        """Every fallback placement is traced; replaying the stream
        reproduces the final heap exactly (live bytes conserved)."""
        from repro.trace import oracle_check
        from repro.trace.events import FALLBACK

        config = paper_config(32, 1 / 3, PolicyName.PANTHERA, scale=0.02)
        result = run_experiment(
            "PR",
            config,
            scale=0.02,
            workload_kwargs={"iterations": 3},
            keep_context=True,
            trace=True,
            faults=FaultPlan(nvm_balloon_fraction=0.9),
        )
        events = result.trace_events
        assert any(e.kind == FALLBACK for e in events)
        problems = oracle_check(
            result.context.heap, result.context.collector.stats, events
        )
        assert problems == []

    def test_balloon_ignored_without_nvm_spaces(self):
        config = paper_config(32, 1.0, PolicyName.DRAM_ONLY, scale=0.02)
        result = run_experiment(
            "PR",
            config,
            scale=0.02,
            workload_kwargs={"iterations": 3},
            faults=FaultPlan(nvm_balloon_fraction=0.9),
        )
        assert result.fault_report.balloon_bytes == 0


class TestThrottleBehaviour:
    def test_throttle_slows_but_does_not_change_answers(self):
        config = paper_config(32, 0.25, PolicyName.PANTHERA, scale=0.02)
        kwargs = dict(scale=0.02, workload_kwargs={"iterations": 3})
        clean = run_experiment("PR", config, **kwargs)
        throttled = run_experiment(
            "PR",
            config,
            faults=FaultPlan(throttles=[ThrottleSpec(0, 5e9, 8.0)]),
            **kwargs,
        )
        report = throttled.fault_report
        assert report.throttled_batches > 0
        assert report.throttle_extra_s > 0
        assert throttled.elapsed_s > clean.elapsed_s
        assert action_checksums(throttled.action_results) == action_checksums(
            clean.action_results
        )


# ---------------------------------------------------------------------------
# engine integration: fingerprints and --jobs byte-identity
# ---------------------------------------------------------------------------


def _pr_point(plan):
    config = paper_config(32, 0.25, PolicyName.PANTHERA, scale=0.02)
    return ExperimentPoint(
        "PR",
        config,
        scale=0.02,
        workload_kwargs={"iterations": 3},
        trace=True,
        faults=plan,
    )


FULL_PLAN = FaultPlan(
    kills=[KillSpec("shuffle", 3, 1), KillSpec("block", 5)],
    throttles=[ThrottleSpec(1e8, 4e8, 4.0)],
    nvm_balloon_fraction=0.5,
)


class TestEngineIntegration:
    def test_fingerprint_distinguishes_fault_plans(self):
        clean = _pr_point(None)
        faulted = _pr_point(FULL_PLAN)
        other = _pr_point(FaultPlan(kills=[KillSpec("shuffle", 4, 1)]))
        prints = {p.fingerprint() for p in (clean, faulted, other)}
        assert len(prints) == 3

    def test_injected_run_byte_identical_across_jobs(self):
        """The tentpole determinism requirement: serial and parallel
        injected runs agree on every canonical serialization."""
        from repro.trace import events_to_jsonl

        serial = ExperimentEngine(jobs=1).run([_pr_point(FULL_PLAN)])[0]
        parallel = ExperimentEngine(jobs=4).run([_pr_point(FULL_PLAN)])[0]
        assert serial.trace_events, "tracing recorded nothing"
        assert events_to_jsonl(serial.trace_events) == events_to_jsonl(
            parallel.trace_events
        )
        assert json.dumps(
            serial.fault_report.to_dict(), sort_keys=True
        ) == json.dumps(parallel.fault_report.to_dict(), sort_keys=True)
        assert action_checksums(serial.action_results) == action_checksums(
            parallel.action_results
        )
        assert serial.fault_report.kills_fired == 2

    def test_fault_report_survives_cache_round_trip(self, tmp_path):
        engine = ExperimentEngine(jobs=1, cache_dir=tmp_path / "cache")
        first = engine.run([_pr_point(FULL_PLAN)])[0]
        again = ExperimentEngine(jobs=1, cache_dir=tmp_path / "cache")
        second = again.run([_pr_point(FULL_PLAN)])[0]
        assert again.stats.cached == 1
        assert second.fault_report == first.fault_report


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


class TestFaultsCli:
    def _run(self, argv):
        from repro.cli import main

        return main(argv)

    def test_kill_and_report(self, capsys, tmp_path):
        out_path = tmp_path / "report.json"
        code = self._run(
            [
                "faults",
                "PR",
                "--scale",
                "0.02",
                "--iterations",
                "3",
                "--kill",
                "shuffle:3:1",
                "--export-report",
                str(out_path),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "converged" in out
        assert "kills: 1 fired" in out
        payload = json.loads(out_path.read_text())
        assert payload["converged"] is True
        assert payload["report"]["kills_fired"] == 1

    def test_empty_plan_rejected(self, capsys):
        code = self._run(["faults", "PR", "--scale", "0.02"])
        assert code == 2
        assert "empty" in capsys.readouterr().out

    def test_random_plan(self, capsys):
        code = self._run(
            [
                "faults",
                "PR",
                "--scale",
                "0.02",
                "--iterations",
                "3",
                "--random",
                "1",
                "--seed",
                "5",
            ]
        )
        assert code == 0
        assert "converged" in capsys.readouterr().out

    def test_bad_kill_spec_rejected(self):
        with pytest.raises(SystemExit):
            self._run(["faults", "PR", "--kill", "executor:1"])

    def test_bad_throttle_spec_rejected(self):
        with pytest.raises(SystemExit):
            self._run(["faults", "PR", "--throttle", "1:2"])
