"""Major-collection tests: sweep, compaction boundaries, dense prefix,
dynamic migration and monitor reset (§4.2.2)."""


from repro.config import MiB, PolicyName
from repro.core.tags import MemoryTag
from repro.heap.object_model import ObjKind
from tests.conftest import make_stack


def rooted(stack, size=1024, kind=ObjKind.DATA):
    obj = stack.heap.new_object(kind, size)
    stack.heap.add_root(obj)
    return obj


class TestSweep:
    def test_dead_old_objects_reclaimed(self, panthera_stack):
        heap = panthera_stack.heap
        array = heap.allocate_rdd_array(2 * MiB, rdd_id=1)  # unrooted: garbage
        space = array.space
        used_before = space.used
        panthera_stack.collector.collect_major()
        assert array not in space.objects
        assert space.used < used_before

    def test_live_old_objects_survive(self, panthera_stack):
        heap = panthera_stack.heap
        array = heap.allocate_rdd_array(2 * MiB, rdd_id=1)
        heap.add_root(array)
        panthera_stack.collector.collect_major()
        assert array in array.space.objects

    def test_dead_arrays_unregistered_from_card_table(self, panthera_stack):
        heap = panthera_stack.heap
        array = heap.allocate_rdd_array(2 * MiB, rdd_id=1)
        panthera_stack.collector.collect_major()
        assert not heap.card_table.is_registered(array)

    def test_young_survivors_all_tenured(self, panthera_stack):
        obj = rooted(panthera_stack)
        panthera_stack.collector.collect_major()
        assert panthera_stack.heap.in_old(obj)

    def test_cards_cleared(self, dram_stack):
        heap = dram_stack.heap
        array = heap.allocate_rdd_array(2 * MiB + 7, rdd_id=1)
        heap.add_root(array)
        slab = heap.new_object(ObjKind.DATA, 256)
        heap.write_ref(array, slab)
        dram_stack.collector.collect_major()
        fresh, stuck = heap.card_table.scan_plan()
        assert not fresh and not stuck

    def test_major_stats_recorded(self, panthera_stack):
        panthera_stack.collector.collect_major()
        stats = panthera_stack.collector.stats
        assert stats.major_count == 1
        assert stats.major_ns > 0


class TestCompaction:
    def test_compaction_never_crosses_device_boundary(self):
        # Migration off so only compaction could move objects.
        stack = make_stack(PolicyName.PANTHERA, dynamic_migration=False)
        heap = stack.heap
        live = []
        for i in range(6):
            heap.tag_wait.arm(MemoryTag.NVM if i % 2 else MemoryTag.DRAM)
            array = heap.allocate_rdd_array(MiB, rdd_id=i)
            if i % 3 != 0:
                heap.add_root(array)
                live.append((array, array.space.name))
        stack.collector.collect_major()
        for array, original_space in live:
            assert array.space.name == original_space

    def test_sliding_preserves_address_order(self, dram_stack):
        heap = dram_stack.heap
        arrays = [heap.allocate_rdd_array(MiB, rdd_id=i) for i in range(5)]
        for array in arrays[::2]:
            heap.add_root(array)
        dram_stack.collector.collect_major()
        survivors = [a for a in arrays if heap.in_old(a)]
        addrs = [a.addr for a in survivors]
        assert addrs == sorted(addrs)

    def test_dense_prefix_leaves_stable_bottom_unmoved(self, dram_stack):
        heap = dram_stack.heap
        stable = heap.allocate_rdd_array(4 * MiB, rdd_id=1)
        heap.add_root(stable)
        addr_before = stable.addr
        # Garbage above the stable object.
        heap.allocate_rdd_array(4 * MiB, rdd_id=2)
        dram_stack.collector.collect_major()
        assert stable.addr == addr_before

    def test_objects_above_large_gaps_slide_down(self, dram_stack):
        heap = dram_stack.heap
        config = dram_stack.config
        garbage = heap.allocate_rdd_array(
            int(heap.old_spaces[0].size * config.dense_prefix_waste * 3),
            rdd_id=1,
        )
        mover = heap.allocate_rdd_array(MiB, rdd_id=2)
        heap.add_root(mover)
        addr_before = mover.addr
        dram_stack.collector.collect_major()
        assert mover.addr < addr_before
        assert dram_stack.collector.stats.compacted_bytes >= mover.size

    def test_panthera_compaction_keeps_arrays_padded(self, panthera_stack):
        heap = panthera_stack.heap
        config = panthera_stack.config
        garbage = heap.allocate_rdd_array(
            int(heap.old_space_named("old-nvm").size * config.dense_prefix_waste * 3)
            + 13,
            rdd_id=1,
        )
        mover = heap.allocate_rdd_array(MiB + 13, rdd_id=2)
        heap.add_root(mover)
        panthera_stack.collector.collect_major()
        assert mover.padded


class TestDynamicMigration:
    def _materialized_array(self, stack, tag, rdd_id, size=MiB):
        heap = stack.heap
        heap.tag_wait.arm(tag)
        array = heap.allocate_rdd_array(size, rdd_id=rdd_id)
        heap.add_root(array)
        # Migration only re-assesses arrays that survived a major cycle,
        # and coldness needs a long-enough monitoring window.
        array.age = 1
        stack.collector.minors_since_major = 10
        return array

    def test_cold_dram_array_migrates_to_nvm(self, panthera_stack):
        array = self._materialized_array(panthera_stack, MemoryTag.DRAM, rdd_id=7)
        assert array.space.name == "old-dram"
        # Zero monitored calls this cycle -> cold.
        panthera_stack.collector.collect_major()
        assert array.space.name == "old-nvm"
        assert 7 in panthera_stack.collector.stats.migrated_rdd_ids

    def test_hot_nvm_array_migrates_to_dram(self, panthera_stack):
        array = self._materialized_array(panthera_stack, MemoryTag.NVM, rdd_id=8)
        for _ in range(5):
            panthera_stack.monitor.record_call(8)
        panthera_stack.collector.collect_major()
        assert array.space.name == "old-dram"

    def test_warm_arrays_stay_put(self, panthera_stack):
        array = self._materialized_array(panthera_stack, MemoryTag.NVM, rdd_id=9)
        panthera_stack.monitor.record_call(9)  # 1 call < hot threshold
        panthera_stack.collector.collect_major()
        assert array.space.name == "old-nvm"

    def test_migration_disabled_by_config(self):
        stack = make_stack(PolicyName.PANTHERA, dynamic_migration=False)
        heap = stack.heap
        heap.tag_wait.arm(MemoryTag.DRAM)
        array = heap.allocate_rdd_array(MiB, rdd_id=3)
        heap.add_root(array)
        stack.collector.collect_major()
        assert array.space.name == "old-dram"

    def test_reachable_data_objects_move_with_array(self, panthera_stack):
        heap = panthera_stack.heap
        array = self._materialized_array(panthera_stack, MemoryTag.DRAM, rdd_id=11)
        slab = heap.new_object(ObjKind.DATA, 64 * 1024)
        heap.write_ref(array, slab)
        panthera_stack.collector.collect_minor()  # slab tag-propagated + promoted
        assert slab.space.name == "old-dram"
        panthera_stack.collector.collect_major()  # cold -> both move to NVM
        assert array.space.name == "old-nvm"
        assert slab.space.name == "old-nvm"

    def test_monitor_reset_after_major(self, panthera_stack):
        panthera_stack.monitor.record_call(42)
        panthera_stack.collector.collect_major()
        assert panthera_stack.monitor.call_count(42) == 0
        assert panthera_stack.monitor.total_calls == 1  # lifetime kept (Table 5)

    def test_kingsguard_writes_migrates_write_hot(self):
        stack = make_stack(PolicyName.KINGSGUARD_WRITES)
        heap = stack.heap
        array = heap.allocate_rdd_array(MiB, rdd_id=1)
        heap.add_root(array)
        assert array.space.name == "old"
        array.write_count = 10
        stack.collector.collect_major()
        assert array.space.name == "old-dram"

    def test_write_counts_reset_after_major(self):
        stack = make_stack(PolicyName.KINGSGUARD_WRITES)
        heap = stack.heap
        array = heap.allocate_rdd_array(MiB, rdd_id=1)
        heap.add_root(array)
        array.write_count = 1  # below threshold: stays, but counter resets
        stack.collector.collect_major()
        assert array.write_count == 0


class TestPromotionGuarantee:
    def test_minor_triggers_major_when_old_tight(self, panthera_stack):
        heap = panthera_stack.heap
        # Fill most of each old space with garbage arrays.
        for i, space in enumerate(heap.old_spaces):
            heap.tag_wait.arm(
                MemoryTag.DRAM if space.name == "old-dram" else MemoryTag.NVM
            )
            heap.allocate_rdd_array(int(space.free * 0.99) - 1024, rdd_id=i + 1)
        # Large survivable young object.
        obj = rooted(panthera_stack, size=heap.eden.size // 2)
        panthera_stack.collector.collect_minor()
        assert panthera_stack.collector.stats.major_count >= 1
        assert obj.space is not None
