"""Energy model tests (§5.1)."""

import pytest

from repro.config import (
    CACHE_LINE_BYTES,
    DRAM_SPEC,
    GiB,
    NVM_READ_PJ_PER_CACHE_LINE,
    NVM_SPEC,
    NVM_WRITE_PJ_PER_CACHE_LINE,
    DeviceKind,
)
from repro.memory.device import MemoryDevice
from repro.memory.energy import EnergyMeter


def make_meter(static_factor=1.0):
    devices = {
        DeviceKind.DRAM: MemoryDevice(DRAM_SPEC, GiB),
        DeviceKind.NVM: MemoryDevice(NVM_SPEC, 3 * GiB),
    }
    return devices, EnergyMeter(devices, static_factor=static_factor)


class TestEnergyModel:
    def test_paper_nvm_write_constant(self):
        # §5.1's bottom line before the calibration multiplier.
        assert NVM_WRITE_PJ_PER_CACHE_LINE == 31_200.0

    def test_nvm_read_cheaper_than_write(self):
        assert NVM_READ_PJ_PER_CACHE_LINE < NVM_WRITE_PJ_PER_CACHE_LINE

    def test_static_energy_proportional_to_time(self):
        _, meter = make_meter()
        one = meter.breakdown(1.0)[DeviceKind.DRAM].static_j
        ten = meter.breakdown(10.0)[DeviceKind.DRAM].static_j
        assert ten == pytest.approx(10 * one)

    def test_static_factor_scales_static_only(self):
        devices, meter = make_meter(static_factor=5.0)
        devices[DeviceKind.DRAM].record(read_bytes=CACHE_LINE_BYTES * 100)
        _, plain_meter = make_meter(static_factor=1.0)
        scaled = meter.breakdown(1.0)[DeviceKind.DRAM]
        plain = plain_meter.breakdown(1.0)[DeviceKind.DRAM]
        assert scaled.static_j == pytest.approx(5 * plain.static_j)

    def test_dynamic_energy_from_counters(self):
        devices, meter = make_meter()
        devices[DeviceKind.NVM].record(write_bytes=CACHE_LINE_BYTES * 1000)
        dynamic = meter.breakdown(0.0)[DeviceKind.NVM].dynamic_j
        assert dynamic == pytest.approx(1000 * NVM_SPEC.write_energy_pj / 1e12)

    def test_nvm_static_negligible(self):
        _, meter = make_meter()
        breakdown = meter.breakdown(100.0)
        # 3x the capacity but far below DRAM's static draw.
        assert breakdown[DeviceKind.NVM].static_j < breakdown[DeviceKind.DRAM].static_j

    def test_total_sums_devices(self):
        devices, meter = make_meter()
        devices[DeviceKind.DRAM].record(read_bytes=GiB)
        total = meter.total_j(10.0)
        parts = sum(b.total_j for b in meter.breakdown(10.0).values())
        assert total == pytest.approx(parts)

    def test_negative_elapsed_rejected(self):
        _, meter = make_meter()
        with pytest.raises(ValueError):
            meter.breakdown(-1.0)

    def test_breakdown_total_property(self):
        devices, meter = make_meter()
        devices[DeviceKind.DRAM].record(write_bytes=GiB)
        b = meter.breakdown(1.0)[DeviceKind.DRAM]
        assert b.total_j == pytest.approx(b.static_j + b.dynamic_j)
