"""The full workload x policy matrix at tiny scale: everything runs,
every heap ends structurally consistent, every result is sane."""

import pytest

from repro.config import PolicyName
from repro.harness.configs import paper_config
from repro.harness.experiment import run_experiment
from repro.heap.verify import verify_heap
from repro.workloads.registry import WORKLOADS

SCALE = 0.02
ALL_POLICIES = list(PolicyName)


@pytest.mark.parametrize("workload", sorted(WORKLOADS))
@pytest.mark.parametrize("policy", ALL_POLICIES, ids=lambda p: p.value)
def test_matrix_cell(workload, policy):
    config = paper_config(64, 1 / 3, policy, SCALE)
    result = run_experiment(workload, config, scale=SCALE, keep_context=True)
    assert result.elapsed_s > 0
    assert result.energy_j > 0
    assert result.mutator_s >= 0
    assert result.minor_gcs >= 0
    assert verify_heap(result.context.heap) == []
    # Panthera-only machinery stays off elsewhere (Kingsguard-Writes has
    # its own write-driven migrations, so only monitoring is asserted).
    if policy is not PolicyName.PANTHERA:
        assert result.monitored_calls == 0
        if policy is not PolicyName.KINGSGUARD_WRITES:
            assert result.migrated_rdds == 0
    # Only the stock (unpadded) layouts can suffer stuck rescans.
    if policy is PolicyName.PANTHERA:
        assert result.stuck_rescans == 0
