"""Tests for the unmanaged baseline's chunk interleaving (§5.2)."""

import pytest
from hypothesis import given, strategies as st

from repro.config import DeviceKind, MiB
from repro.memory.interleave import ChunkMap


class TestChunkMap:
    def make(self, p=0.25, size=64 * MiB, chunk=MiB, seed=1):
        return ChunkMap(base=0, size=size, chunk_bytes=chunk, dram_probability=p, seed=seed)

    def test_deterministic_for_same_seed(self):
        a, b = self.make(seed=7), self.make(seed=7)
        for addr in range(0, 64 * MiB, MiB):
            assert a.device_of(addr) == b.device_of(addr)

    def test_different_seeds_differ(self):
        a, b = self.make(seed=1), self.make(seed=2)
        diffs = sum(
            a.device_of(addr) != b.device_of(addr)
            for addr in range(0, 64 * MiB, MiB)
        )
        assert diffs > 0

    def test_probability_extremes(self):
        all_dram = self.make(p=1.0)
        all_nvm = self.make(p=0.0)
        assert all_dram.dram_fraction() == 1.0
        assert all_nvm.dram_fraction() == 0.0

    def test_dram_fraction_near_probability(self):
        chunk_map = ChunkMap(0, 4000 * MiB, MiB, dram_probability=0.25, seed=3)
        assert 0.18 <= chunk_map.dram_fraction() <= 0.32

    def test_out_of_range_address_rejected(self):
        with pytest.raises(ValueError):
            self.make().device_of(64 * MiB)

    def test_split_range_covers_length(self):
        chunk_map = self.make()
        pieces = chunk_map.split_range(100, 10 * MiB)
        assert sum(n for _, n in pieces) == 10 * MiB

    def test_split_range_merges_adjacent_same_device(self):
        chunk_map = self.make(p=1.0)
        pieces = chunk_map.split_range(0, 10 * MiB)
        assert pieces == [(DeviceKind.DRAM, 10 * MiB)]

    def test_split_range_zero_length(self):
        assert self.make().split_range(0, 0) == []

    def test_negative_split_rejected(self):
        with pytest.raises(ValueError):
            self.make().split_range(0, -1)

    def test_bad_probability_rejected(self):
        with pytest.raises(ValueError):
            self.make(p=1.5)

    def test_bad_size_rejected(self):
        with pytest.raises(ValueError):
            ChunkMap(0, 0, MiB, 0.5)

    @given(
        addr=st.integers(min_value=0, max_value=63 * MiB),
        length=st.integers(min_value=0, max_value=MiB * 8),
    )
    def test_split_conserves_bytes(self, addr, length):
        chunk_map = self.make()
        length = min(length, 64 * MiB - addr)
        pieces = chunk_map.split_range(addr, length)
        assert sum(n for _, n in pieces) == length
        # Each piece's device matches device_of at its start.
        pos = addr
        for device, nbytes in pieces:
            assert chunk_map.device_of(pos) == device
            pos += nbytes
