"""Unit tests for the ``repro.trace`` subsystem: the event vocabulary,
the bus, streaming aggregation, rendering, JSONL export and the
:class:`~repro.trace.TraceSession` front door (including the CLI)."""

import json

import pytest

from repro.config import MiB
from repro.core.tags import MemoryTag
from repro.heap.object_model import ObjKind
from repro.trace import (
    ReplayError,
    TraceSession,
    aggregate_events,
    events_from_jsonl,
    events_to_jsonl,
    render_residency_table,
    render_timeline,
    render_trace_report,
    replay_events,
)
from repro.trace.events import (
    ALLOC,
    FREE,
    GC_PAUSE,
    MIGRATE_NVM_TO_DRAM,
    PROMOTE,
    SURVIVOR_COPY,
    TraceEvent,
)
from tests.conftest import make_stack


def attach(stack) -> TraceSession:
    """Wire a fresh session onto a conftest stack."""
    return TraceSession.attach(stack.heap, stack.collector.stats)


class TestEvents:
    def test_to_dict_omits_empty_fields(self):
        event = TraceEvent(ALLOC, 5.0, oid=1, size=64.0, space="eden")
        row = event.to_dict()
        assert row == {
            "kind": ALLOC,
            "t_ns": 5.0,
            "oid": 1,
            "size": 64.0,
            "space": "eden",
        }

    def test_roundtrip_through_dict(self):
        event = TraceEvent(
            MIGRATE_NVM_TO_DRAM,
            9.0,
            oid=3,
            size=128.0,
            space="old-dram",
            src_space="old-nvm",
            device="dram",
            src_device="nvm",
            rdd_id=7,
        )
        assert TraceEvent.from_dict(event.to_dict()) == event

    def test_pause_roundtrip_keeps_duration(self):
        event = TraceEvent(GC_PAUSE, 1.0, pause_kind="minor", duration_ns=42.0)
        assert TraceEvent.from_dict(event.to_dict()) == event


class TestJsonl:
    def test_roundtrip(self):
        events = [
            TraceEvent(ALLOC, 0.0, oid=1, size=10.0, space="eden"),
            TraceEvent(FREE, 2.0, oid=1, size=10.0, space="eden"),
            TraceEvent(GC_PAUSE, 2.0, pause_kind="minor", duration_ns=5.0),
        ]
        text = events_to_jsonl(events)
        assert events_from_jsonl(text) == events

    def test_lines_are_compact_sorted_json(self):
        text = events_to_jsonl(
            [TraceEvent(ALLOC, 0.0, oid=1, size=10.0, space="eden")]
        )
        (line,) = text.strip().splitlines()
        assert ": " not in line  # compact separators
        keys = list(json.loads(line))
        assert keys == sorted(keys)


class TestBus:
    def test_oids_are_dense_first_seen(self, panthera_stack):
        session = attach(panthera_stack)
        heap = panthera_stack.heap
        heap.new_object(ObjKind.DATA, 64)
        heap.new_object(ObjKind.DATA, 64)
        assert [e.oid for e in session.events] == [1, 2]

    def test_alloc_event_describes_the_object(self, panthera_stack):
        session = attach(panthera_stack)
        heap = panthera_stack.heap
        heap.tag_wait.arm(MemoryTag.NVM)
        heap.allocate_rdd_array(MiB, rdd_id=9)
        allocs = [e for e in session.events if e.kind == ALLOC]
        assert len(allocs) == 1
        event = allocs[0]
        assert event.size == MiB
        assert event.rdd_id == 9
        assert event.tag == "nvm"
        assert event.device in ("dram", "nvm")
        assert event.space is not None

    def test_tracing_is_off_by_default(self, panthera_stack):
        heap = panthera_stack.heap
        assert heap.trace is None
        assert heap.tag_wait.trace is None
        assert panthera_stack.collector.stats.trace is None

    def test_detach_stops_recording(self, panthera_stack):
        session = attach(panthera_stack)
        heap = panthera_stack.heap
        heap.new_object(ObjKind.DATA, 64)
        session.detach()
        heap.new_object(ObjKind.DATA, 64)
        assert len(session.events) == 1


class TestGCEvents:
    def test_minor_gc_emits_pause_copies_and_frees(self, panthera_stack):
        session = attach(panthera_stack)
        heap = panthera_stack.heap
        keep = heap.new_object(ObjKind.DATA, 4096)
        heap.add_root(keep)
        heap.new_object(ObjKind.DATA, 4096)  # dies at the scavenge
        panthera_stack.collector.collect_minor()
        kinds = [e.kind for e in session.events]
        assert kinds.count(GC_PAUSE) == 1
        assert SURVIVOR_COPY in kinds
        assert FREE in kinds
        pause = next(e for e in session.events if e.kind == GC_PAUSE)
        assert pause.pause_kind == "minor"
        assert pause.duration_ns > 0

    def test_full_gc_promotion_records_source_space(self, panthera_stack):
        session = attach(panthera_stack)
        heap = panthera_stack.heap
        keep = heap.new_object(ObjKind.DATA, 4096)
        heap.add_root(keep)
        panthera_stack.collector.collect_major()
        promote = next(e for e in session.events if e.kind == PROMOTE)
        assert promote.src_space == "eden"
        assert promote.src_device == "dram"
        assert promote.space == keep.space.name


class TestReplay:
    def test_double_alloc_raises(self):
        events = [
            TraceEvent(ALLOC, 0.0, oid=1, size=8.0, space="eden"),
            TraceEvent(ALLOC, 1.0, oid=1, size=8.0, space="eden"),
        ]
        with pytest.raises(ReplayError):
            replay_events(events)

    def test_move_of_unknown_object_raises(self):
        events = [
            TraceEvent(
                PROMOTE, 0.0, oid=5, size=8.0, space="old-nvm", src_space="eden"
            )
        ]
        with pytest.raises(ReplayError):
            replay_events(events)

    def test_move_from_wrong_space_raises(self):
        events = [
            TraceEvent(ALLOC, 0.0, oid=1, size=8.0, space="eden"),
            TraceEvent(
                PROMOTE,
                1.0,
                oid=1,
                size=8.0,
                space="old-nvm",
                src_space="survivor-from",
            ),
        ]
        with pytest.raises(ReplayError):
            replay_events(events)

    def test_free_of_unknown_object_raises(self):
        with pytest.raises(ReplayError):
            replay_events([TraceEvent(FREE, 0.0, oid=1, size=8.0, space="eden")])

    def test_lenient_mode_skips_inconsistencies(self):
        events = [
            TraceEvent(FREE, 0.0, oid=1, size=8.0, space="eden"),
            TraceEvent(ALLOC, 1.0, oid=2, size=8.0, space="eden"),
        ]
        state = replay_events(events, strict=False)
        assert state.live_bytes == {"eden": 8}

    def test_reconstructs_simple_stream(self):
        events = [
            TraceEvent(ALLOC, 0.0, oid=1, size=100.0, space="eden"),
            TraceEvent(ALLOC, 0.0, oid=2, size=50.0, space="eden"),
            TraceEvent(
                PROMOTE, 1.0, oid=1, size=100.0, space="old-nvm", src_space="eden"
            ),
            TraceEvent(FREE, 1.0, oid=2, size=50.0, space="eden"),
            TraceEvent(GC_PAUSE, 1.0, pause_kind="minor", duration_ns=3.0),
        ]
        state = replay_events(events)
        assert state.live_bytes == {"eden": 0, "old-nvm": 100}
        assert state.total_live_bytes() == 100
        assert state.pauses == [("minor", 1.0, 3.0)]


class TestAggregation:
    def test_residency_integral(self):
        events = [
            TraceEvent(
                ALLOC, 0.0, oid=1, size=100.0, space="eden", device="dram", rdd_id=1
            ),
            TraceEvent(FREE, 2e9, oid=1, size=100.0, space="eden", rdd_id=1),
        ]
        agg = aggregate_events(events)
        profile = agg.profiles[1]
        assert profile.dram_byte_s == pytest.approx(200.0)
        assert profile.nvm_byte_s == 0.0
        assert profile.alloc_bytes == 100
        assert profile.freed_bytes == 100
        assert profile.peak_bytes == 100

    def test_move_switches_device_attribution(self):
        events = [
            TraceEvent(
                ALLOC, 0.0, oid=1, size=10.0, space="old-nvm", device="nvm", rdd_id=2
            ),
            TraceEvent(
                MIGRATE_NVM_TO_DRAM,
                1e9,
                oid=1,
                size=10.0,
                space="old-dram",
                src_space="old-nvm",
                device="dram",
                src_device="nvm",
                rdd_id=2,
            ),
        ]
        agg = aggregate_events(events, end_ns=3e9)
        profile = agg.profiles[2]
        assert profile.nvm_byte_s == pytest.approx(10.0)
        assert profile.dram_byte_s == pytest.approx(20.0)
        assert profile.migrations_to_dram == 1
        assert agg.timelines["old-nvm"][-1] == (1e9, 0)
        assert agg.timelines["old-dram"][-1] == (1e9, 10)

    def test_top_profiles_ranked_and_tie_broken_by_id(self):
        events = [
            TraceEvent(
                ALLOC, 0.0, oid=1, size=10.0, space="eden", device="dram", rdd_id=5
            ),
            TraceEvent(
                ALLOC, 0.0, oid=2, size=10.0, space="eden", device="dram", rdd_id=3
            ),
        ]
        agg = aggregate_events(events, end_ns=1e9)
        assert [p.rdd_id for p in agg.top_profiles(2)] == [3, 5]


class TestRendering:
    def _events(self):
        return [
            TraceEvent(
                ALLOC, 0.0, oid=1, size=4096.0, space="eden", device="dram", rdd_id=1
            ),
            TraceEvent(GC_PAUSE, 5e8, pause_kind="minor", duration_ns=1e6),
            TraceEvent(FREE, 1e9, oid=1, size=4096.0, space="eden", rdd_id=1),
        ]

    def test_timeline_has_one_row_per_space(self):
        agg = aggregate_events(self._events(), end_ns=1e9)
        text = render_timeline(agg, width=20)
        assert "eden" in text
        assert "|" in text and "peak" in text

    def test_residency_table_is_markdown(self):
        agg = aggregate_events(self._events(), end_ns=1e9)
        table = render_residency_table(agg)
        assert table.splitlines()[0].startswith("| RDD |")

    def test_full_report_is_deterministic(self):
        events = self._events()
        first = render_trace_report(events, end_ns=1e9)
        second = render_trace_report(list(events), end_ns=1e9)
        assert first == second
        assert "trace: 3 events, 1 minor / 0 major pauses" in first


class TestSession:
    def test_oracle_clean_after_workout(self, panthera_stack):
        session = attach(panthera_stack)
        heap = panthera_stack.heap
        for i in range(6):
            array = heap.allocate_rdd_array(MiB, rdd_id=i)
            if i % 2 == 0:
                heap.add_root(array)
        panthera_stack.collector.collect_minor()
        panthera_stack.collector.collect_major()
        assert session.check() == []

    def test_aggregate_uses_machine_clock(self, panthera_stack):
        session = attach(panthera_stack)
        heap = panthera_stack.heap
        heap.add_root(heap.new_object(ObjKind.DATA, 4096))
        panthera_stack.collector.collect_minor()
        agg = session.aggregate()
        assert agg.event_count == len(session.events)
        assert agg.end_ns <= panthera_stack.machine.clock.now_ns


class TestTraceCli:
    def test_trace_subcommand_reports_and_checks(self, capsys, tmp_path):
        from repro.cli import main

        out_path = tmp_path / "events.jsonl"
        code = main(
            [
                "trace",
                "PR",
                "--scale",
                "0.02",
                "--iterations",
                "2",
                "--check",
                "--export-jsonl",
                str(out_path),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "occupancy timeline" in out
        assert "| RDD |" in out
        assert "replay oracle: consistent" in out
        events = events_from_jsonl(out_path.read_text())
        assert events and any(e.kind == GC_PAUSE for e in events)
