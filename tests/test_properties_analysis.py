"""Property-based tests for the §3 static analysis.

Random programs — random loop nesting, random defs/uses/persists — must
always satisfy the analysis's structural guarantees, whatever the shape.
"""

from hypothesis import given, settings, strategies as st

from repro.core.static_analysis import analyze_program
from repro.core.tags import MemoryTag
from repro.spark.program import Program
from repro.spark.storage import StorageLevel


def identity(record):
    return record


VARS = ["a", "b", "c", "d"]

#: One statement template: (kind, var index, aux index, level index)
STMT = st.tuples(
    st.sampled_from(["define", "use", "persist_define", "action", "loop_open", "loop_close"]),
    st.integers(min_value=0, max_value=len(VARS) - 1),
    st.integers(min_value=0, max_value=len(VARS) - 1),
    st.sampled_from(
        [
            StorageLevel.MEMORY_ONLY,
            StorageLevel.MEMORY_AND_DISK_SER,
            StorageLevel.OFF_HEAP,
            StorageLevel.DISK_ONLY,
        ]
    ),
)


def build_program(script):
    """Materialise a statement script into a Program (loops balanced by
    construction: loop_close pops only when a loop is open)."""

    class Source:
        name = "prop"

    p = Program()
    defined = set()
    # Seed every variable so uses are always legal.
    for var in VARS:
        p.let(var, p.source(Source()).map(identity))
        defined.add(var)
    open_loops = []

    def emit(kind, var, aux, level):
        if kind == "define":
            p.let(var, p.source(Source()).map(identity))
        elif kind == "use":
            p.let(f"tmp_{len(p.body)}", _ref(p, var).map(identity))
        elif kind == "persist_define":
            p.let(var, p.source(Source()).map(identity).persist(level))
        elif kind == "action":
            p.action(_ref(p, var), "count")

    def _ref(p, var):
        from repro.spark.program import VarRef

        return VarRef(var)

    for kind, vi, ai, level in script:
        var = VARS[vi]
        if kind == "loop_open":
            ctx = p.loop(2)
            ctx.__enter__()
            open_loops.append(ctx)
        elif kind == "loop_close":
            if open_loops:
                open_loops.pop().__exit__(None, None, None)
        else:
            emit(kind, var, VARS[ai], level)
    while open_loops:
        open_loops.pop().__exit__(None, None, None)
    return p


@settings(max_examples=60, deadline=None)
@given(script=st.lists(STMT, max_size=25))
def test_analysis_structural_guarantees(script):
    program = build_program(script)
    analysis = analyze_program(program)

    persisted_levels = {}
    from repro.spark.program import AssignStmt, LoopStmt

    def walk(stmts):
        for stmt in stmts:
            if isinstance(stmt, AssignStmt):
                for node in stmt.expr.walk():
                    if node.persist_level is not None:
                        persisted_levels.setdefault(stmt.var, set()).add(
                            node.persist_level
                        )
            elif isinstance(stmt, LoopStmt):
                walk(stmt.body)

    walk(program.statements())

    # (1) OFF_HEAP variables are always NVM, never flipped.
    for var, levels in persisted_levels.items():
        if levels == {StorageLevel.OFF_HEAP}:
            assert analysis.tag_of(var) is MemoryTag.NVM
        # (2) DISK_ONLY-only variables never carry a memory tag.
        if levels == {StorageLevel.DISK_ONLY}:
            assert analysis.tag_of(var) is None

    # (3) Every tagged variable has a rationale.
    for var in analysis.tags:
        assert var in analysis.rationale

    # (4) The flip rule is consistent: if not flipped, some taggable
    # persisted variable is DRAM (or there are none at all).
    # A variable that is *ever* persisted OFF_HEAP or DISK_ONLY is fixed
    # by that level (the implementation pins it at the first such
    # materialisation point); only purely-taggable variables participate
    # in the flip rule.
    taggable = [
        var
        for var, levels in persisted_levels.items()
        if all(lvl.taggable for lvl in levels)
    ]
    if taggable and not analysis.flipped:
        assert any(analysis.tag_of(v) is MemoryTag.DRAM for v in taggable)
    # (5) If flipped, every taggable persisted variable is DRAM.
    if analysis.flipped:
        for var in taggable:
            assert analysis.tag_of(var) is MemoryTag.DRAM


@settings(max_examples=30, deadline=None)
@given(script=st.lists(STMT, max_size=20))
def test_analysis_deterministic(script):
    a = analyze_program(build_program(script))
    b = analyze_program(build_program(script))
    assert a.tags == b.tags
    assert a.flipped == b.flipped
