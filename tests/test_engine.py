"""The parallel experiment engine: determinism, caching, events, CLI."""

import dataclasses

import pytest

from repro.config import PolicyName
from repro.harness.configs import paper_config
from repro.harness.engine import (
    ExperimentEngine,
    ExperimentPoint,
    ResultCache,
    code_version,
    run_points,
)
from repro.harness.experiment import run_experiment
from repro.harness.matrix import matrix_report, run_matrix

SCALE = 0.02


def _point(policy=PolicyName.PANTHERA, **overrides):
    config = paper_config(64, 1 / 3, policy, SCALE)
    if overrides:
        config = config.replace(**overrides)
    return ExperimentPoint("PR", config, SCALE)


class TestFingerprint:
    def test_stable_across_calls(self):
        assert _point().fingerprint() == _point().fingerprint()

    def test_differs_by_workload_policy_scale_and_config(self):
        base = _point().fingerprint()
        other_workload = ExperimentPoint(
            "KM", paper_config(64, 1 / 3, PolicyName.PANTHERA, SCALE), SCALE
        )
        assert other_workload.fingerprint() != base
        assert _point(policy=PolicyName.UNMANAGED).fingerprint() != base
        assert _point(seed=7).fingerprint() != base
        assert _point(nursery_fraction=0.25).fingerprint() != base
        rescaled = ExperimentPoint(
            "PR", paper_config(64, 1 / 3, PolicyName.PANTHERA, SCALE), 0.03
        )
        assert rescaled.fingerprint() != base

    def test_differs_by_workload_kwargs(self):
        kw = _point()
        kw.workload_kwargs = {"iterations": 3}
        assert kw.fingerprint() != _point().fingerprint()

    def test_embeds_code_version(self, monkeypatch):
        base = _point().fingerprint()
        monkeypatch.setattr("repro.harness.engine._code_version", "deadbeef")
        assert _point().fingerprint() != base

    def test_code_version_is_hex_digest(self):
        version = code_version()
        assert len(version) == 64
        int(version, 16)


class TestParallelDeterminism:
    def test_matrix_parallel_identical_to_serial(self):
        serial = run_matrix(scale=SCALE, workloads=["PR", "KM"])
        parallel = run_matrix(scale=SCALE, workloads=["PR", "KM"], jobs=4)
        assert serial.keys() == parallel.keys()
        for workload in serial:
            assert serial[workload].keys() == parallel[workload].keys()
            for policy in serial[workload]:
                assert serial[workload][policy] == parallel[workload][policy]

    def test_engine_results_match_direct_run(self):
        point = _point()
        engine = ExperimentEngine(jobs=1)
        (engine_result,) = engine.run([point])
        direct = run_experiment("PR", point.config, scale=SCALE)
        assert engine_result == direct.without_runtime_handles()

    def test_results_are_context_free(self):
        engine = ExperimentEngine(jobs=2)
        results = engine.run([_point(), _point(policy=PolicyName.UNMANAGED)])
        assert all(r.context is None for r in results)

    def test_keep_analysis_false_drops_analysis(self):
        engine = ExperimentEngine(jobs=1, keep_analysis=False)
        (result,) = engine.run([_point()])
        assert result.analysis is None


class TestResultCache:
    def test_miss_then_hit(self, tmp_path):
        engine = ExperimentEngine(jobs=1, cache_dir=tmp_path)
        first = engine.run([_point()])
        assert engine.stats.executed == 1
        assert engine.stats.cached == 0

        warm = ExperimentEngine(jobs=1, cache_dir=tmp_path)
        second = warm.run([_point()])
        assert warm.stats.executed == 0
        assert warm.stats.cached == 1
        assert first == second

    def test_config_change_invalidates(self, tmp_path):
        engine = ExperimentEngine(jobs=1, cache_dir=tmp_path)
        engine.run([_point()])
        changed = ExperimentEngine(jobs=1, cache_dir=tmp_path)
        changed.run([_point(nursery_fraction=0.25)])
        assert changed.stats.executed == 1
        assert changed.stats.cached == 0

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        fingerprint = _point().fingerprint()
        path = cache.path_for(fingerprint)
        path.parent.mkdir(parents=True)
        path.write_bytes(b"not a pickle")
        assert cache.get(fingerprint) is None
        assert cache.misses == 1

    def test_json_sidecar_written(self, tmp_path):
        engine = ExperimentEngine(jobs=1, cache_dir=tmp_path)
        engine.run([_point()])
        sidecars = list(tmp_path.rglob("*.json"))
        assert len(sidecars) == 1
        assert '"workload": "PR"' in sidecars[0].read_text()

    def test_warm_matrix_rerun_executes_nothing(self, tmp_path):
        run_matrix(scale=SCALE, workloads=["PR"], cache_dir=tmp_path)
        events = []
        rerun = run_matrix(
            scale=SCALE,
            workloads=["PR"],
            jobs=2,
            cache_dir=tmp_path,
            on_event=events.append,
        )
        assert [e.kind for e in events] == ["cached"] * 3
        assert set(rerun["PR"]) == {"dram-only", "unmanaged", "panthera"}


class TestEventsAndHelpers:
    def test_event_stream_shape(self):
        events = []
        engine = ExperimentEngine(jobs=1, on_event=events.append)
        engine.run([_point(), _point(policy=PolicyName.UNMANAGED)])
        kinds = [e.kind for e in events]
        assert kinds == ["start", "done", "start", "done"]
        done = [e for e in events if e.kind == "done"]
        assert [e.completed for e in done] == [1, 2]
        assert all(e.total == 2 for e in events)
        assert all(e.seconds > 0 for e in done)
        assert done[0].point.label == "PR [panthera]"

    def test_run_points_preserves_keys(self):
        cells = {
            "a": ("PR", paper_config(64, 1.0, PolicyName.DRAM_ONLY, SCALE)),
            "b": ("PR", paper_config(64, 1 / 3, PolicyName.PANTHERA, SCALE)),
        }
        results = run_points(cells, SCALE, jobs=2)
        assert list(results) == ["a", "b"]
        assert results["a"].policy is PolicyName.DRAM_ONLY
        assert results["b"].policy is PolicyName.PANTHERA

    def test_invalid_jobs_rejected(self):
        with pytest.raises(ValueError):
            ExperimentEngine(jobs=0)

    def test_progress_fires_once_per_cell_even_when_cached(self, tmp_path):
        seen = []
        run_matrix(
            scale=SCALE,
            workloads=["PR"],
            cache_dir=tmp_path,
            progress=lambda w, p: seen.append((w, p.value)),
        )
        assert len(seen) == 3
        seen.clear()
        run_matrix(
            scale=SCALE,
            workloads=["PR"],
            cache_dir=tmp_path,
            progress=lambda w, p: seen.append((w, p.value)),
        )
        assert len(seen) == 3


class TestMatrixReportGuards:
    def _result(self, elapsed, energy, gc):
        from repro.harness.experiment import ExperimentResult

        return ExperimentResult(
            workload="PR",
            policy=PolicyName.PANTHERA,
            heap_gb=64.0,
            dram_ratio=1 / 3,
            elapsed_s=elapsed,
            gc_s=gc,
            mutator_s=elapsed - gc,
            minor_gcs=0,
            major_gcs=0,
            energy_j=energy,
            energy_by_device={},
            monitored_calls=0,
            migrated_rdds=0,
            spilled_blocks=0,
            dropped_blocks=0,
            card_scanned_gb=0.0,
            stuck_rescans=0,
        )

    def test_zero_baseline_divisions_are_guarded(self):
        matrix = {
            "PR": {
                "dram-only": self._result(0.0, 0.0, 0.0),
                "panthera": self._result(1.0, 2.0, 0.5),
            }
        }
        text = matrix_report(matrix)
        assert "| PR |" in text
        for cell in text.splitlines()[-1].split("|")[2:5]:
            assert float(cell.strip()) == 0.0


class TestCliParallel:
    def test_matrix_jobs_and_cache_flags(self, tmp_path, capsys):
        from repro.cli import main

        export = tmp_path / "matrix.json"
        code = main(
            [
                "matrix",
                "--scale",
                str(SCALE),
                "--workloads",
                "PR",
                "--jobs",
                "2",
                "--cache-dir",
                str(tmp_path / "cache"),
                "--export-json",
                str(export),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "running PR" in out
        assert "done" in out
        assert "panthera time" in out
        assert '"panthera"' in export.read_text()

        code = main(
            [
                "matrix",
                "--scale",
                str(SCALE),
                "--workloads",
                "PR",
                "--cache-dir",
                str(tmp_path / "cache"),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "cached" in out
        assert "running" not in out

    def test_compare_jobs_flag(self, capsys):
        from repro.cli import main

        code = main(["compare", "PR", "--scale", str(SCALE), "--jobs", "3"])
        out = capsys.readouterr().out
        assert code == 0
        assert "time (norm.)" in out


class TestWithoutRuntimeHandles:
    def test_strips_context_keeps_metrics(self):
        config = paper_config(64, 1 / 3, PolicyName.PANTHERA, SCALE)
        result = run_experiment("PR", config, scale=SCALE, keep_context=True)
        stripped = result.without_runtime_handles()
        assert result.context is not None
        assert stripped.context is None
        assert stripped.analysis == result.analysis
        assert dataclasses.replace(result, context=None) == stripped
