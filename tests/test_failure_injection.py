"""Failure-injection tests: the system fails loudly and precisely.

A memory-management simulator's error paths matter as much as its happy
paths: out-of-memory conditions, impossible configurations, and misuse
of the runtime APIs must raise typed, actionable errors — never corrupt
state or loop forever.
"""

import pytest

from repro.config import GiB, MiB, SystemConfig
from repro.core.tags import MemoryTag
from repro.errors import (
    ConfigError,
    GCError,
    HeapError,
    OutOfMemoryError,
    ReproError,
    SparkError,
)
from repro.heap.object_model import ObjKind
from repro.heap.verify import verify_heap
from repro.spark.storage import StorageLevel
from tests.conftest import small_config, small_context


class TestOutOfMemory:
    def test_unevictable_pressure_raises_oom(self):
        """MEMORY_ONLY blocks bigger than the whole old generation: the
        block manager evicts what it can, then the allocator reports OOM
        rather than thrashing."""
        ctx = small_context(heap_bytes=24 * MiB)
        huge = ctx.parallelize(
            [(i, i) for i in range(8)], 2, 64 * MiB, name="whale"
        ).map(lambda r: r)
        huge.persist(StorageLevel.MEMORY_ONLY)
        with pytest.raises((OutOfMemoryError, GCError)):
            huge.count()

    def test_array_larger_than_old_gen(self, panthera_stack):
        total_old = panthera_stack.heap.old_capacity_bytes()
        with pytest.raises(OutOfMemoryError):
            panthera_stack.heap.allocate_rdd_array(total_old * 2, rdd_id=1)

    def test_heap_still_consistent_after_oom(self, panthera_stack):
        total_old = panthera_stack.heap.old_capacity_bytes()
        with pytest.raises(OutOfMemoryError):
            panthera_stack.heap.allocate_rdd_array(total_old * 2, rdd_id=1)
        assert verify_heap(panthera_stack.heap) == []
        # And the heap keeps working afterwards.
        obj = panthera_stack.heap.new_object(ObjKind.DATA, 1024)
        assert obj.space is not None

    def test_rooted_young_exceeding_old_capacity(self, panthera_stack):
        """Rooted young data that cannot ever be tenured ends in a clean
        OOM from the allocation path, not a GC crash."""
        heap = panthera_stack.heap
        # Fill the old generation almost completely with live arrays.
        for i, space in enumerate(heap.old_spaces):
            heap.tag_wait.arm(
                MemoryTag.DRAM if space.name == "old-dram" else MemoryTag.NVM
            )
            array = heap.allocate_rdd_array(int(space.free) - 4096, rdd_id=i)
            heap.add_root(array)
        # Root more young data than the remaining old space can take.
        for _ in range(3):
            obj = heap.new_object(ObjKind.DATA, heap.eden.size // 4)
            heap.add_root(obj)
        with pytest.raises((OutOfMemoryError, GCError)):
            for _ in range(64):
                heap.allocate_ephemeral(heap.eden.size // 2)


class TestConfigFailures:
    def test_all_config_validations_raise_config_error(self):
        bad_configs = [
            dict(heap_bytes=0, dram_bytes=GiB, nvm_bytes=0),
            dict(heap_bytes=2 * GiB, dram_bytes=GiB, nvm_bytes=0),
            dict(heap_bytes=GiB, dram_bytes=-1, nvm_bytes=GiB),
            dict(heap_bytes=GiB, dram_bytes=GiB, nvm_bytes=0, nursery_fraction=0.0),
            dict(heap_bytes=GiB, dram_bytes=GiB, nvm_bytes=0, survivor_fraction=0.5),
        ]
        for kwargs in bad_configs:
            with pytest.raises(ConfigError):
                SystemConfig(**kwargs)

    def test_nursery_bigger_than_dram(self):
        with pytest.raises(ConfigError):
            SystemConfig(
                heap_bytes=GiB,
                dram_bytes=100 * MiB,
                nvm_bytes=GiB - 100 * MiB,
                nursery_fraction=0.9,
            )


class TestApiMisuse:
    def test_collector_required_before_allocation(self):
        from repro.gc.policies import make_policy
        from repro.heap.layout import HEAP_BASE, young_span_bytes
        from repro.heap.managed_heap import ManagedHeap
        from repro.memory.machine import Machine

        config = small_config()
        machine = Machine(config)
        policy = make_policy(config)
        heap = ManagedHeap(
            config,
            machine,
            policy.build_old_spaces(HEAP_BASE + young_span_bytes(config)),
            card_padding=True,
        )
        big = heap.eden.size  # force the GC path
        heap.allocate_ephemeral(big)
        with pytest.raises(HeapError):
            heap.allocate_ephemeral(big)

    def test_negative_sizes_rejected(self, panthera_stack):
        with pytest.raises(HeapError):
            panthera_stack.heap.allocate_ephemeral(-1)
        with pytest.raises(ValueError):
            from repro.heap.object_model import HeapObject

            HeapObject(ObjKind.DATA, -5)

    def test_empty_parallelize_rejected(self):
        ctx = small_context()
        with pytest.raises(SparkError):
            ctx.parallelize([], 2, MiB)

    def test_unknown_rdd_lookup_rejected(self):
        ctx = small_context()
        with pytest.raises(SparkError):
            ctx.rdd_by_id(99999)

    def test_exception_hierarchy_single_root(self):
        for exc in (ConfigError, HeapError, GCError, OutOfMemoryError, SparkError):
            assert issubclass(exc, ReproError)


class TestRecoveryPaths:
    def test_eviction_storm_preserves_results(self):
        """Sustained pressure forces repeated spill/drop/recompute; every
        answer must still be exact."""
        ctx = small_context(heap_bytes=24 * MiB)
        rdds = []
        for i in range(8):
            level = (
                StorageLevel.MEMORY_AND_DISK if i % 2 else StorageLevel.MEMORY_ONLY
            )
            rdd = ctx.parallelize(
                [(j, j * i) for j in range(6)], 2, 4 * MiB, name=f"wave{i}"
            ).map(lambda r: r)
            rdd.persist(level)
            rdd.count()
            rdds.append((i, rdd))
        assert ctx.block_manager.spilled_count + ctx.block_manager.dropped_count > 0
        for i, rdd in rdds:
            assert sorted(rdd.collect()) == [(j, j * i) for j in range(6)]
        assert verify_heap(ctx.heap) == []

    def test_unpersist_everything_still_computes(self):
        ctx = small_context()
        cached = ctx.parallelize([(1, 2)], 1, MiB, name="gone").map(lambda r: r)
        cached.persist(StorageLevel.MEMORY_ONLY)
        cached.count()
        cached.unpersist()
        ctx.collector.collect_major()
        assert cached.collect() == [(1, 2)]
