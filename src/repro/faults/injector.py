"""The fault injector: turns a :class:`~repro.faults.plan.FaultPlan`
into scheduled damage, drives bounded lineage recovery, and measures
what the recovery cost.

The injector is the only piece of fault machinery the hot paths see,
and they see it the same way they see tracing: one ``is None`` check.
The scheduler calls in at three points —

* :meth:`stage_boundary` / :meth:`action_boundary` advance the boundary
  counter and fire kills scheduled for it;
* :meth:`ensure_shuffle_partition` recovers a lost reduce partition by
  forcing its map stage to re-run through lineage (bounded retries);
* :meth:`materialize_persisted` wraps the scheduler's normal persisted-
  block materialisation so the recomputation of a *killed* block is
  measured (clock delta, GC pauses inside the window) and announced as
  a ``recompute`` trace event.

Everything the injector does is a deterministic function of the plan
and the simulated execution — no wall clock, no unseeded randomness —
so an injected run is byte-identical across ``--jobs 1`` and
``--jobs N``.
"""

from __future__ import annotations

from typing import List, Optional, Set

from repro.config import DeviceKind
from repro.errors import FaultError
from repro.faults.plan import FaultPlan, KillSpec, ThrottleSpec
from repro.faults.report import FaultReport
from repro.heap.object_model import HeapObject, ObjKind


class ThrottleSchedule:
    """The machine-side view of the plan's NVM throttle windows.

    Installed as ``machine.nvm_throttle``;
    :meth:`~repro.memory.machine.Machine.run_batch` calls :meth:`apply`
    for every batch with NVM traffic.  The stretched batch duration
    flows into the bandwidth tracker unchanged, so Figure 8's NVM
    series shows the collapse without any extra plumbing.
    """

    def __init__(self, windows: List[ThrottleSpec]) -> None:
        self.windows = sorted(windows, key=lambda w: (w.start_ns, w.end_ns))
        self.throttled_batches = 0
        self.extra_ns = 0.0

    def factor_at(self, t_ns: float) -> float:
        """The slowdown factor active at ``t_ns`` (1.0 = no throttle;
        overlapping windows compound, worst-case thermal behaviour)."""
        factor = 1.0
        for window in self.windows:
            if window.covers(t_ns):
                factor *= window.factor
        return factor

    def apply(self, start_ns: float, device_ns: float) -> float:
        """Stretch one NVM batch that starts at ``start_ns``."""
        factor = self.factor_at(start_ns)
        if factor <= 1.0:
            return device_ns
        self.throttled_batches += 1
        self.extra_ns += device_ns * (factor - 1.0)
        return device_ns * factor


class FaultInjector:
    """Executes one :class:`FaultPlan` against a live SparkContext."""

    def __init__(self, plan: FaultPlan, ctx) -> None:
        self.plan = plan
        self.ctx = ctx
        self.boundaries_seen = 0
        self.kills_fired = 0
        self.kills_noop = 0
        self.partitions_recomputed = 0
        self.recompute_ns = 0.0
        self.recovery_gc_pauses = 0
        self.recovery_gc_ns = 0.0
        self.recovery_attempts_max = 0
        self.balloon_bytes = 0.0
        self.throttle = ThrottleSchedule(list(plan.throttles))
        self._unfired: List[KillSpec] = list(plan.kills)
        self._last_shuffle_dep = None
        #: RDD ids whose persisted block a kill destroyed; their next
        #: materialisation is recovery (measured), not a first build.
        self._killed_blocks: Set[int] = set()
        self._balloon: Optional[HeapObject] = None

    # ------------------------------------------------------------------
    # attachment
    # ------------------------------------------------------------------

    @classmethod
    def attach(cls, plan: FaultPlan, ctx) -> "FaultInjector":
        """Install the plan on a freshly built context: hook the
        scheduler (``ctx.faults``), install the NVM throttle schedule,
        inflate the NVM balloon, and announce the throttle windows on
        the trace bus (if tracing is on)."""
        injector = cls(plan, ctx)
        ctx.faults = injector
        if plan.throttles:
            ctx.machine.nvm_throttle = injector.throttle
            if ctx.heap.trace is not None:
                for window in injector.throttle.windows:
                    ctx.heap.trace.throttle(
                        window.start_ns, window.duration_ns, window.factor
                    )
        if plan.nvm_balloon_fraction > 0.0:
            injector._inflate_balloon()
        return injector

    def _inflate_balloon(self) -> None:
        """Pre-fill the NVM old space with a rooted, unreclaimable
        balloon so tag-driven placement must walk the degradation
        ladder (NVM→DRAM fallback → spill → abort)."""
        heap = self.ctx.heap
        nvm_spaces = [
            s for s in heap.old_spaces if s.device is DeviceKind.NVM
        ]
        if not nvm_spaces:
            return  # dram-only / chunk-interleaved: nothing to exhaust
        for space in nvm_spaces:
            size = int(space.free * self.plan.nvm_balloon_fraction)
            if size <= 0:
                continue
            balloon = HeapObject(ObjKind.CONTROL, size, rdd_id=None)
            if not space.place(balloon):
                continue  # free shrank between sizing and placing
            heap.add_root(balloon)
            heap.pinned_old_bytes += size
            self.balloon_bytes += size
            self._balloon = balloon
            if heap.trace is not None:
                heap.trace.alloc(balloon)

    # ------------------------------------------------------------------
    # boundaries and kills
    # ------------------------------------------------------------------

    def stage_boundary(self, dep) -> None:
        """A shuffle map stage just completed (its files are written)."""
        self._last_shuffle_dep = dep
        self._cross_boundary()

    def action_boundary(self, rdd) -> None:
        """An action is about to execute its final stage."""
        self._cross_boundary()

    def _cross_boundary(self) -> None:
        self.boundaries_seen += 1
        here = self.boundaries_seen
        due = [k for k in self._unfired if k.at_boundary == here]
        for kill in due:
            self._unfired.remove(kill)
            self._fire(kill)

    def _fire(self, kill: KillSpec) -> None:
        if kill.kind == "shuffle":
            fired = self._fire_shuffle_kill(kill)
        else:
            fired = self._fire_block_kill(kill)
        if fired:
            self.kills_fired += 1
        else:
            self.kills_noop += 1

    def _fire_shuffle_kill(self, kill: KillSpec) -> bool:
        """Destroy one reduce partition of the most recent shuffle."""
        dep = self._last_shuffle_dep
        if dep is None:
            return False
        n_out = dep.partitioner.num_partitions
        pidx = kill.partition % n_out
        self.ctx.shuffles.invalidate(dep.shuffle_id, pidx)
        return True

    def _fire_block_kill(self, kill: KillSpec) -> bool:
        """Destroy one persisted in-memory block (deterministic pick)."""
        manager = self.ctx.block_manager
        candidates = [b for b in manager.blocks() if not b.on_disk]
        if kill.rdd_name is not None:
            candidates = [
                b
                for b in candidates
                if self._rdd_name(b.rdd_id) == kill.rdd_name
            ]
        if not candidates:
            return False
        victim = min(candidates, key=lambda b: b.rdd_id)
        if manager.kill(victim.rdd_id) is None:
            return False
        self._killed_blocks.add(victim.rdd_id)
        return True

    def _rdd_name(self, rdd_id: int) -> Optional[str]:
        rdd = self.ctx._rdds.get(rdd_id)
        return rdd.name if rdd is not None else None

    def external_block_kill(self, rdd_id: int) -> bool:
        """Destroy one specific persisted in-memory block on behalf of
        an external fault source (a cluster-level executor kill whose
        victim owned this block's replica).  The block's next
        materialisation runs through the measured recovery path exactly
        like a plan-driven ``block`` kill.  Returns whether a live
        in-memory block was actually destroyed."""
        block = self.ctx.block_manager.get(rdd_id)
        if block is None or block.on_disk:
            return False
        if self.ctx.block_manager.kill(rdd_id) is None:
            return False
        self._killed_blocks.add(rdd_id)
        self.kills_fired += 1
        return True

    # ------------------------------------------------------------------
    # recovery
    # ------------------------------------------------------------------

    def ensure_shuffle_partition(self, scheduler, dep, pidx: int) -> None:
        """Recover a lost reduce partition before it is read: force the
        map stage to re-run through lineage (every map task re-executes
        and re-materialises through the tagged heap), bounded by the
        plan's retry budget — a kill can re-fire during recovery."""
        shuffles = self.ctx.shuffles
        attempts = 0
        while shuffles.is_lost(dep.shuffle_id, pidx):
            attempts += 1
            if attempts > self.plan.max_recovery_attempts:
                raise FaultError(
                    f"shuffle {dep.shuffle_id} partition {pidx} still lost "
                    f"after {self.plan.max_recovery_attempts} recovery "
                    "attempts"
                )
            with self._recovery_window():
                scheduler._run_shuffle_map(dep, force=True)
            self.partitions_recomputed += dep.parent.num_partitions
            if self.ctx.heap.trace is not None:
                self.ctx.heap.trace.recompute(
                    None,
                    shuffles.serialized_bytes(dep.shuffle_id, pidx),
                    f"shuffle:{shuffles.ordinal(dep.shuffle_id)}:{pidx}",
                )
        self.recovery_attempts_max = max(self.recovery_attempts_max, attempts)

    def materialize_persisted(self, scheduler, rdd) -> None:
        """Materialise a persisted RDD, measuring the run as recovery
        when an injected kill destroyed its block (the recomputed
        objects re-enter eden and re-promote — residency profiles show
        the second life)."""
        if rdd.id not in self._killed_blocks:
            scheduler._materialize_persisted(rdd)
            return
        self._killed_blocks.discard(rdd.id)
        with self._recovery_window():
            scheduler._materialize_persisted(rdd)
        self.partitions_recomputed += rdd.num_partitions
        self.recovery_attempts_max = max(self.recovery_attempts_max, 1)
        if self.ctx.heap.trace is not None:
            block = self.ctx.block_manager.get(rdd.id)
            self.ctx.heap.trace.recompute(
                rdd.id,
                block.data_bytes if block is not None else 0.0,
                "block",
            )

    def _recovery_window(self):
        """Context manager accumulating the simulated time and GC work
        spent inside one recovery."""
        return _RecoveryWindow(self)

    # ------------------------------------------------------------------
    # report
    # ------------------------------------------------------------------

    def report(self) -> FaultReport:
        """The measured outcome (see :class:`FaultReport`)."""
        heap = self.ctx.heap
        return FaultReport(
            boundaries_seen=self.boundaries_seen,
            kills_planned=len(self.plan.kills),
            kills_fired=self.kills_fired,
            kills_noop=self.kills_noop,
            partitions_recomputed=self.partitions_recomputed,
            recompute_s=self.recompute_ns / 1e9,
            recovery_gc_pauses=self.recovery_gc_pauses,
            recovery_gc_s=self.recovery_gc_ns / 1e9,
            recovery_attempts_max=self.recovery_attempts_max,
            fallback_events=heap.fallback_count,
            fallback_bytes=heap.fallback_bytes,
            balloon_bytes=self.balloon_bytes,
            throttle_windows=len(self.throttle.windows),
            throttled_batches=self.throttle.throttled_batches,
            throttle_extra_s=self.throttle.extra_ns / 1e9,
        )


class _RecoveryWindow:
    """Measures one recovery: simulated-clock delta plus the GC pauses
    that started inside it."""

    def __init__(self, injector: FaultInjector) -> None:
        self.injector = injector

    def __enter__(self) -> "_RecoveryWindow":
        ctx = self.injector.ctx
        stats = ctx.collector.stats
        self._start_ns = ctx.machine.clock.now_ns
        self._pauses_before = len(stats.pauses)
        self._gc_ns_before = stats.total_gc_ns
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        ctx = self.injector.ctx
        stats = ctx.collector.stats
        self.injector.recompute_ns += ctx.machine.clock.now_ns - self._start_ns
        self.injector.recovery_gc_pauses += (
            len(stats.pauses) - self._pauses_before
        )
        self.injector.recovery_gc_ns += stats.total_gc_ns - self._gc_ns_before
