"""Fault reports: what the injected faults actually cost.

A :class:`FaultReport` is the measured counterpart of a
:class:`~repro.faults.plan.FaultPlan`: how many kills fired, how much
lineage recomputation they forced (simulated seconds and partitions),
how much extra GC work the recovery windows generated, how many
NVM→DRAM placement fallbacks the balloon caused and how many bytes they
moved, and how much time thermal throttling added to NVM batches.  It
rides on :class:`~repro.harness.experiment.ExperimentResult` (plain
picklable dataclass, so ``--jobs N`` workers ship it back intact) and
serialises to JSON for the CI ``faults-smoke`` artifact.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass
from typing import Any, Dict, Mapping


@dataclass
class FaultReport:
    """Measured outcome of one injected run.

    Attributes:
        boundaries_seen: stage boundaries the run crossed (completed
            shuffle map stages + action starts).
        kills_planned / kills_fired / kills_noop: plan size, kills that
            actually destroyed state, and kills whose boundary arrived
            but found nothing to destroy (e.g. no live block).
        partitions_recomputed: map/persisted partitions re-executed
            through lineage because of a kill.
        recompute_s: simulated seconds spent inside recovery windows
            (the recomputation cost the paper's serialization-vs-
            recomputation trade-off weighs).
        recovery_gc_pauses / recovery_gc_s: GC pauses (count, seconds)
            that happened inside recovery windows — the extra GC work
            re-materialisation through the tagged heap costs.
        recovery_attempts_max: deepest bounded-retry chain one lost
            partition needed.
        fallback_events / fallback_bytes: off-intended old-space
            placements (the NVM→DRAM degradation ladder) and their
            payload bytes.
        balloon_bytes: bytes the NVM-exhaustion balloon pinned.
        throttle_windows / throttled_batches / throttle_extra_s:
            configured NVM throttle windows, device batches they
            slowed, and the simulated seconds they added.
    """

    boundaries_seen: int = 0
    kills_planned: int = 0
    kills_fired: int = 0
    kills_noop: int = 0
    partitions_recomputed: int = 0
    recompute_s: float = 0.0
    recovery_gc_pauses: int = 0
    recovery_gc_s: float = 0.0
    recovery_attempts_max: int = 0
    fallback_events: int = 0
    fallback_bytes: float = 0.0
    balloon_bytes: float = 0.0
    throttle_windows: int = 0
    throttled_batches: int = 0
    throttle_extra_s: float = 0.0

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe representation (all fields, stable keys)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, row: Dict[str, Any]) -> "FaultReport":
        """Inverse of :meth:`to_dict`."""
        return cls(**row)

    def summary_lines(self) -> list:
        """Human-readable report lines for the CLI."""
        return [
            f"boundaries seen: {self.boundaries_seen}",
            (
                f"kills: {self.kills_fired} fired / {self.kills_noop} no-op "
                f"(of {self.kills_planned} planned)"
            ),
            (
                f"recomputed partitions: {self.partitions_recomputed} "
                f"in {self.recompute_s:.3f}s simulated "
                f"(deepest retry chain: {self.recovery_attempts_max})"
            ),
            (
                f"recovery GC: {self.recovery_gc_pauses} pauses, "
                f"{self.recovery_gc_s:.3f}s"
            ),
            (
                f"placement fallbacks: {self.fallback_events} events, "
                f"{self.fallback_bytes / (1024 ** 2):.1f} MiB "
                f"(balloon {self.balloon_bytes / (1024 ** 2):.1f} MiB)"
            ),
            (
                f"NVM throttling: {self.throttle_windows} windows, "
                f"{self.throttled_batches} slowed batches, "
                f"+{self.throttle_extra_s:.3f}s"
            ),
        ]


def action_checksums(action_results: Mapping[str, Any]) -> Dict[str, str]:
    """Stable per-action checksums of a run's outputs.

    The convergence oracle for lineage recovery: a faulted run is
    correct iff its checksums equal the fault-free run's.  Values are
    canonicalised through sorted-key JSON (``repr`` for non-JSON types,
    so floats hash by their exact ``repr``) and digested with SHA-256.
    """
    sums: Dict[str, str] = {}
    for name in sorted(action_results):
        canonical = json.dumps(
            action_results[name], sort_keys=True, default=repr
        )
        sums[name] = hashlib.sha256(canonical.encode()).hexdigest()
    return sums
