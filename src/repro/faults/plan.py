"""Fault plans: the declarative, seeded description of what fails when.

A :class:`FaultPlan` is data, not behaviour — a picklable, JSON-round-
trippable value that names every fault the run will experience before
the run starts.  Determinism is the whole point: the plan enters the
:class:`~repro.harness.engine.ExperimentPoint` fingerprint, two runs
with the same (workload, config, scale, plan) produce byte-identical
results, and ``--jobs 1`` vs ``--jobs N`` cannot diverge because no
fault decision is ever taken from wall-clock time or an unseeded RNG.

Three fault families (see docs/FAULTS.md):

* :class:`KillSpec` — lose a reduce partition's shuffle output, or a
  persisted executor block, at a numbered *stage boundary*.  Boundaries
  count completed shuffle map stages and action starts, in execution
  order, starting at 1.
* :class:`ThrottleSpec` — a transient NVM bandwidth-collapse window,
  modeling the NUMA emulator's thermal-register throttling ("Emulating
  Hybrid Memory on NUMA Hardware", PAPERS.md).
* ``nvm_balloon_fraction`` — pre-fill the NVM old space so tag-driven
  placement must degrade (NVM→DRAM fallback, then spill, then abort).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.errors import FaultError

#: Valid :attr:`KillSpec.kind` values.
KILL_KINDS = ("shuffle", "block")


@dataclass(frozen=True)
class KillSpec:
    """One executor-loss event at a stage boundary.

    Attributes:
        kind: ``"shuffle"`` loses one reduce partition of the most
            recently written shuffle (its map output must be recomputed
            through lineage before the partition can be fetched again);
            ``"block"`` drops one persisted in-memory block (lineage
            recomputes it on next access, re-entering eden and
            re-promoting through the tagged heap).
        at_boundary: which stage boundary the kill fires at (1-based,
            counting completed shuffle map stages and action starts in
            execution order).
        partition: reduce partition to lose (``shuffle`` kills; taken
            modulo the shuffle's partition count).  Ignored for
            ``block`` kills.
        rdd_name: for ``block`` kills, the name of the persisted RDD to
            drop; None picks the live in-memory block with the smallest
            RDD id (deterministic).
    """

    kind: str
    at_boundary: int
    partition: int = 0
    rdd_name: Optional[str] = None

    def __post_init__(self) -> None:
        if self.kind not in KILL_KINDS:
            raise FaultError(f"unknown kill kind {self.kind!r}")
        if self.at_boundary < 1:
            raise FaultError("at_boundary is 1-based; must be >= 1")
        if self.partition < 0:
            raise FaultError("partition must be >= 0")

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe representation (None fields omitted)."""
        row: Dict[str, Any] = {
            "kind": self.kind,
            "at_boundary": self.at_boundary,
            "partition": self.partition,
        }
        if self.rdd_name is not None:
            row["rdd_name"] = self.rdd_name
        return row

    @classmethod
    def from_dict(cls, row: Dict[str, Any]) -> "KillSpec":
        """Inverse of :meth:`to_dict`."""
        return cls(**row)


@dataclass(frozen=True)
class ThrottleSpec:
    """One transient NVM bandwidth-throttle window.

    While the simulated clock is inside ``[start_ns, start_ns +
    duration_ns)``, every batch touching the NVM device takes
    ``factor`` times as long — the discrete-cost analogue of the NUMA
    emulator capping NVM bandwidth through the thermal registers.

    Attributes:
        start_ns: window start on the simulated clock.
        duration_ns: window length in simulated nanoseconds.
        factor: slowdown multiplier for NVM batch time (>= 1).
    """

    start_ns: float
    duration_ns: float
    factor: float

    def __post_init__(self) -> None:
        if self.start_ns < 0 or self.duration_ns <= 0:
            raise FaultError("throttle window must have start>=0, duration>0")
        if self.factor < 1.0:
            raise FaultError("throttle factor must be >= 1 (a slowdown)")

    @property
    def end_ns(self) -> float:
        """One past the window's last covered instant."""
        return self.start_ns + self.duration_ns

    def covers(self, t_ns: float) -> bool:
        """Whether the window is active at simulated time ``t_ns``."""
        return self.start_ns <= t_ns < self.end_ns

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe representation."""
        return {
            "start_ns": self.start_ns,
            "duration_ns": self.duration_ns,
            "factor": self.factor,
        }

    @classmethod
    def from_dict(cls, row: Dict[str, Any]) -> "ThrottleSpec":
        """Inverse of :meth:`to_dict`."""
        return cls(**row)


@dataclass(frozen=True)
class FaultPlan:
    """Everything that will go wrong in one run, decided up front.

    Attributes:
        kills: executor-loss events, fired at their stage boundaries.
        throttles: NVM bandwidth-collapse windows.
        nvm_balloon_fraction: fraction of the NVM old space's free
            bytes pre-filled with an unreclaimable balloon object at
            attach time (0 disables).  Forces the NVM→DRAM degradation
            ladder.
        max_recovery_attempts: bound on re-running one lost stage
            before the run aborts with :class:`~repro.errors.FaultError`
            (a kill can re-fire during its own recovery).
        seed: the seed this plan was generated from (recorded for
            provenance; :meth:`random` uses it).
    """

    kills: List[KillSpec] = field(default_factory=list)
    throttles: List[ThrottleSpec] = field(default_factory=list)
    nvm_balloon_fraction: float = 0.0
    max_recovery_attempts: int = 3
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.nvm_balloon_fraction < 1.0:
            raise FaultError("nvm_balloon_fraction must be in [0, 1)")
        if self.max_recovery_attempts < 1:
            raise FaultError("max_recovery_attempts must be >= 1")

    @property
    def is_empty(self) -> bool:
        """True when the plan injects nothing at all."""
        return (
            not self.kills
            and not self.throttles
            and self.nvm_balloon_fraction == 0.0
        )

    def to_dict(self) -> Dict[str, Any]:
        """Stable JSON-safe representation (fingerprint input)."""
        return {
            "kills": [k.to_dict() for k in self.kills],
            "throttles": [t.to_dict() for t in self.throttles],
            "nvm_balloon_fraction": self.nvm_balloon_fraction,
            "max_recovery_attempts": self.max_recovery_attempts,
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, row: Dict[str, Any]) -> "FaultPlan":
        """Inverse of :meth:`to_dict`."""
        return cls(
            kills=[KillSpec.from_dict(k) for k in row.get("kills", [])],
            throttles=[
                ThrottleSpec.from_dict(t) for t in row.get("throttles", [])
            ],
            nvm_balloon_fraction=row.get("nvm_balloon_fraction", 0.0),
            max_recovery_attempts=row.get("max_recovery_attempts", 3),
            seed=row.get("seed", 0),
        )

    @classmethod
    def random(
        cls,
        seed: int,
        max_boundary: int,
        kills: int = 1,
        max_partitions: int = 8,
        throttle_windows: int = 0,
        horizon_ns: float = 5e9,
        nvm_balloon_fraction: float = 0.0,
        max_recovery_attempts: int = 3,
    ) -> "FaultPlan":
        """Build a seeded random plan (the chaos-testing entry point).

        Args:
            seed: drives a private :class:`random.Random`; the same seed
                always yields the same plan.
            max_boundary: kills are placed uniformly in
                ``[1, max_boundary]`` (run once without faults and read
                ``FaultReport.boundaries_seen`` to size this).
            kills: how many kill events to generate.
            max_partitions: shuffle-kill partitions are drawn from
                ``[0, max_partitions)`` (taken modulo the real count).
            throttle_windows: how many NVM throttle windows to generate.
            horizon_ns: throttle windows start uniformly in
                ``[0, horizon_ns)``.
            nvm_balloon_fraction / max_recovery_attempts: passed through.
        """
        if max_boundary < 1:
            raise FaultError("max_boundary must be >= 1")
        rng = random.Random(seed)
        kill_specs = [
            KillSpec(
                kind=rng.choice(KILL_KINDS),
                at_boundary=rng.randint(1, max_boundary),
                partition=rng.randrange(max_partitions),
            )
            for _ in range(kills)
        ]
        throttle_specs = [
            ThrottleSpec(
                start_ns=rng.uniform(0, horizon_ns),
                duration_ns=rng.uniform(horizon_ns / 20, horizon_ns / 4),
                factor=rng.uniform(2.0, 10.0),
            )
            for _ in range(throttle_windows)
        ]
        return cls(
            kills=kill_specs,
            throttles=throttle_specs,
            nvm_balloon_fraction=nvm_balloon_fraction,
            max_recovery_attempts=max_recovery_attempts,
            seed=seed,
        )
