"""``repro.faults``: seeded, deterministic fault injection with
lineage-based recovery and graceful degradation.

Three layers (see docs/FAULTS.md for the fault model):

1. :mod:`~repro.faults.plan` — the declarative, picklable
   :class:`FaultPlan` (:class:`KillSpec` executor losses at stage
   boundaries, :class:`ThrottleSpec` NVM bandwidth-collapse windows,
   the NVM-exhaustion balloon fraction, the bounded retry budget).
2. :mod:`~repro.faults.injector` — :class:`FaultInjector` executes the
   plan against a live context: fires kills at boundaries, drives the
   scheduler's forced map-stage re-runs and persisted-block
   recomputations, and measures every recovery window.
3. :mod:`~repro.faults.report` — the measured :class:`FaultReport`
   (recomputation cost, extra GC work, fallback bytes, throttle time)
   and the :func:`action_checksums` convergence oracle.
"""

from __future__ import annotations

from repro.faults.injector import FaultInjector, ThrottleSchedule
from repro.faults.plan import KILL_KINDS, FaultPlan, KillSpec, ThrottleSpec
from repro.faults.report import FaultReport, action_checksums

__all__ = [
    "FaultInjector",
    "FaultPlan",
    "FaultReport",
    "KILL_KINDS",
    "KillSpec",
    "ThrottleSchedule",
    "ThrottleSpec",
    "action_checksums",
]
