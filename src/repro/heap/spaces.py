"""Heap spaces: contiguous address ranges with bump-pointer allocation.

Young-generation spaces (eden and the two survivor semi-spaces) are always
DRAM-backed.  Old-generation spaces are either homogeneous (Panthera's
DRAM and NVM components, Kingsguard's NVM space) or device-heterogeneous
via a :class:`~repro.memory.interleave.ChunkMap` (the unmanaged baseline's
1 GB-chunk interleaving).

Occupancy accounting is incremental: every residency change goes through
:meth:`Space.place` / :meth:`Space.discard` / :meth:`Space.adopt` /
:meth:`Space.reset`, which maintain the live-byte and array counters the
GC triggers read on every allocation slow path.  ``verify_heap`` checks
the counters against a recomputed sum, so drift is caught by the same
machinery that catches bump-pointer corruption.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.config import DeviceKind
from repro.errors import HeapError
from repro.heap.object_model import HeapObject
from repro.memory.interleave import ChunkMap


class Space:
    """One contiguous region of the simulated heap.

    Attributes:
        name: human-readable identifier ("eden", "old-nvm", ...).
        base: first address.
        size: capacity in bytes.
        end: one past the last address (``base + size``, precomputed).
        generation: "young", "old" or "native".
        device: backing device for homogeneous spaces (None if chunked).
        chunk_map: address->device map for heterogeneous spaces.
    """

    __slots__ = (
        "name",
        "base",
        "size",
        "end",
        "generation",
        "device",
        "chunk_map",
        "top",
        "objects",
        "_live_bytes",
        "_array_count",
    )

    def __init__(
        self,
        name: str,
        base: int,
        size: int,
        generation: str,
        device: Optional[DeviceKind] = None,
        chunk_map: Optional[ChunkMap] = None,
    ) -> None:
        if size < 0:
            raise HeapError(f"space {name} has negative size")
        if (device is None) == (chunk_map is None):
            raise HeapError(
                f"space {name} needs exactly one of device / chunk_map"
            )
        self.name = name
        self.base = base
        self.size = size
        self.end = base + size
        self.generation = generation
        self.device = device
        self.chunk_map = chunk_map
        self.top = base
        self.objects: Set[HeapObject] = set()
        #: payload bytes of resident objects (incremental live_bytes()).
        self._live_bytes = 0
        #: resident RDD backbone arrays (promotion-guarantee padding term).
        self._array_count = 0

    # -- capacity --------------------------------------------------------

    @property
    def used(self) -> int:
        """Bytes allocated since the last reset."""
        return self.top - self.base

    @property
    def free(self) -> int:
        """Bytes still available."""
        return self.end - self.top

    def contains(self, addr: int) -> bool:
        """Whether ``addr`` falls inside this space."""
        return self.base <= addr < self.end

    # -- allocation ------------------------------------------------------

    def allocate(self, nbytes: int, align_end_to: Optional[int] = None) -> Optional[int]:
        """Bump-allocate ``nbytes``; optionally pad so the allocation's end
        lands on an ``align_end_to`` boundary (Panthera's card padding,
        §4.2.3).

        Returns:
            The address, or None if the space cannot fit the request.
        """
        if nbytes < 0:
            raise HeapError("cannot allocate a negative size")
        addr = self.top
        end = addr + nbytes
        if align_end_to:
            remainder = end % align_end_to
            if remainder:
                end += align_end_to - remainder
        if end > self.end:
            return None
        self.top = end
        return addr

    def place(self, obj: HeapObject, align_end_to: Optional[int] = None) -> bool:
        """Allocate room for ``obj`` here and update its location fields.

        Returns:
            True on success, False when the space is full.
        """
        addr = self.allocate(obj.size, align_end_to=align_end_to)
        if addr is None:
            return False
        old_space = obj.space
        if old_space is not None:
            old_space.discard(obj)
        obj.addr = addr
        obj.space = self
        self.objects.add(obj)
        self._live_bytes += obj.size
        if obj.is_array:
            self._array_count += 1
        return True

    def discard(self, obj: HeapObject) -> bool:
        """Remove ``obj`` from this space's residency set (no address or
        space-field changes — callers clear those when the object dies).

        Returns:
            True when the object was resident here.
        """
        if obj not in self.objects:
            return False
        self.objects.discard(obj)
        self._live_bytes -= obj.size
        if obj.is_array:
            self._array_count -= 1
        return True

    def adopt(self, obj: HeapObject) -> None:
        """Register an object as resident without bump-allocating — the
        dense-prefix path of compaction, where the object keeps its
        address and the caller advances ``top`` explicitly."""
        self.objects.add(obj)
        self._live_bytes += obj.size
        if obj.is_array:
            self._array_count += 1

    def begin_compaction(self) -> List[HeapObject]:
        """Start an in-place compaction: forget all residents and rewind
        the bump pointer, returning the former residents in address order
        so the collector can re-place the live ones."""
        live = sorted(self.objects, key=_addr_key)
        self.objects = set()
        self._live_bytes = 0
        self._array_count = 0
        self.top = self.base
        return live

    def reset(self) -> None:
        """Empty the space (used for eden / from-space after a scavenge).

        Objects still registered here are dead (a scavenge has already
        evacuated the survivors): their location fields are cleared so
        any lingering reference to them is visibly a reference to
        garbage (``obj.space is None``), never a stale young-gen
        residency.  Tracing GCs publish their ``free`` events from
        ``self.objects`` *before* calling this, so the disabled path
        pays nothing extra.
        """
        for obj in self.objects:
            obj.space = None
            obj.addr = None
        self.top = self.base
        self.objects.clear()
        self._live_bytes = 0
        self._array_count = 0

    # -- device resolution -------------------------------------------------

    def device_of(self, addr: int) -> DeviceKind:
        """Backing device of one address."""
        if self.device is not None:
            return self.device
        assert self.chunk_map is not None
        return self.chunk_map.device_of(addr)

    def traffic_split(self, addr: int, nbytes: int) -> List[Tuple[DeviceKind, int]]:
        """Split a byte range into per-device pieces for cost charging."""
        if self.device is not None:
            return [(self.device, nbytes)] if nbytes else []
        assert self.chunk_map is not None
        return self.chunk_map.split_range(addr, nbytes)

    def object_traffic(self, obj: HeapObject) -> List[Tuple[DeviceKind, int]]:
        """Per-device byte pieces of one resident object's payload."""
        if obj.addr is None:
            raise HeapError(f"object {obj!r} has no address")
        return self.traffic_split(obj.addr, obj.size)

    def live_bytes(self) -> int:
        """Total payload bytes of objects currently registered here.

        O(1): maintained incrementally by ``place``/``discard``/``adopt``/
        ``reset`` (``verify_heap`` cross-checks it against a recomputed
        sum; see :func:`~repro.heap.spaces.recompute_live_bytes`).
        """
        return self._live_bytes

    @property
    def array_count(self) -> int:
        """Resident RDD backbone arrays (incremental, like live_bytes)."""
        return self._array_count

    def device_histogram(self) -> Dict[DeviceKind, int]:
        """Payload bytes per backing device for the resident objects.

        Homogeneous spaces answer in O(1) from the incremental
        ``live_bytes`` counter — every resident's traffic lands on the
        one backing device, so the histogram is the counter (or empty
        when nothing is resident, matching the per-object loop, which
        never emits zero-byte pieces).  Chunked spaces still walk their
        residents to split each payload across the chunk boundary.
        """
        if self.device is not None:
            return {self.device: self._live_bytes} if self._live_bytes else {}
        hist: Dict[DeviceKind, int] = {}
        for obj in self.objects:
            for device, nbytes in self.object_traffic(obj):
                hist[device] = hist.get(device, 0) + nbytes
        return hist

    def iter_objects_by_addr(self) -> Iterable[HeapObject]:
        """Objects in address order (compaction order)."""
        return sorted(self.objects, key=_addr_key)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        backing = self.device.value if self.device else "chunked"
        return (
            f"<Space {self.name} [{self.base:#x}, {self.end:#x}) {backing} "
            f"used={self.used}/{self.size}>"
        )


def _addr_key(obj: HeapObject) -> int:
    """Address sort key (unplaced objects sort first)."""
    return obj.addr or 0


def recompute_live_bytes(space: Space) -> Tuple[int, int]:
    """Recompute ``(live_bytes, array_count)`` from scratch — the oracle
    ``verify_heap`` checks the incremental counters against."""
    total = 0
    arrays = 0
    for obj in space.objects:
        total += obj.size
        if obj.is_array:
            arrays += 1
    return total, arrays
