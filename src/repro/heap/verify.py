"""Heap invariant verification.

A debugging/testing aid that checks the structural invariants the
collector relies on. Returns a list of human-readable violations (empty
when the heap is consistent) or raises when asked to.

Checked invariants:

* every space's bump pointer stays within its bounds;
* every space's incremental live-byte / array counters equal a recomputed
  sum over its resident objects (catches counter drift in the O(1)
  ``live_bytes()`` fast path);
* every resident object's ``space``/``addr`` fields agree with the space
  that lists it, and its extent lies below the bump pointer;
* no two objects in a space overlap;
* no object is resident in two spaces;
* every GC root is placed;
* the card table tracks only placed objects;
* padded arrays end on card boundaries;
* no old-generation object references a young object without its card
  being dirty (the write-barrier invariant).
"""

from __future__ import annotations

from typing import List

from repro.errors import HeapError
from repro.heap.managed_heap import ManagedHeap
from repro.heap.spaces import recompute_live_bytes


def verify_heap(heap: ManagedHeap, raise_on_error: bool = False) -> List[str]:
    """Check all heap invariants.

    Args:
        heap: the heap to verify.
        raise_on_error: raise :class:`HeapError` listing every violation
            instead of returning them.

    Returns:
        A list of violation descriptions; empty when consistent.
    """
    problems: List[str] = []
    all_spaces = heap.young_spaces + heap.old_spaces
    if heap.regions is not None:
        all_spaces = all_spaces + heap.regions.spaces
    residency = {}

    for space in all_spaces:
        if not space.base <= space.top <= space.end:
            problems.append(
                f"space {space.name}: bump pointer {space.top:#x} outside "
                f"[{space.base:#x}, {space.end:#x}]"
            )
        expected_live, expected_arrays = recompute_live_bytes(space)
        if space.live_bytes() != expected_live:
            problems.append(
                f"space {space.name}: live-byte counter "
                f"{space.live_bytes()} != recomputed {expected_live}"
            )
        if space.array_count != expected_arrays:
            problems.append(
                f"space {space.name}: array counter {space.array_count} "
                f"!= recomputed {expected_arrays}"
            )
        spans = []
        for obj in space.objects:
            if obj.space is not space:
                problems.append(
                    f"object #{obj.oid} listed in {space.name} but its "
                    f"space field says {getattr(obj.space, 'name', None)!r}"
                )
                continue
            if obj.addr is None:
                problems.append(f"object #{obj.oid} resident but unplaced")
                continue
            if not space.contains(obj.addr):
                problems.append(
                    f"object #{obj.oid} at {obj.addr:#x} outside {space.name}"
                )
            if obj.addr + obj.size > space.top:
                problems.append(
                    f"object #{obj.oid} extends past {space.name}'s bump pointer"
                )
            if obj.oid in residency:
                problems.append(
                    f"object #{obj.oid} resident in both "
                    f"{residency[obj.oid]} and {space.name}"
                )
            residency[obj.oid] = space.name
            spans.append((obj.addr, obj.addr + obj.size, obj.oid))
        spans.sort()
        for (s1, e1, o1), (s2, e2, o2) in zip(spans, spans[1:]):
            if e1 > s2:
                problems.append(
                    f"objects #{o1} and #{o2} overlap in {space.name}"
                )

    for root in heap.iter_roots():
        if root.space is None or root.addr is None:
            problems.append(f"root object #{root.oid} is unplaced (collected?)")

    for obj in heap.card_table.tracked():
        if obj.addr is None or obj.space is None:
            problems.append(f"card table tracks unplaced object #{obj.oid}")
        elif obj.space.generation == "region":
            # Region arenas are invisible to the collector: a tracked
            # region object would be scanned by GCs that never free it.
            problems.append(
                f"card table tracks region-resident object #{obj.oid}"
            )
        elif obj.padded and (obj.addr + obj.size) % heap.config.card_size != 0:
            # A padded array's allocation ends on a boundary; its payload
            # may not, but then the pad region is exclusively its own —
            # nothing to check beyond placement, covered above.
            pass

    # Write-barrier invariant: *live* old objects with young references
    # must have dirty cards.  Dead-but-unswept objects are exempt — their
    # card regions are dropped when blocks are released, and a future
    # full GC reclaims them without ever needing their cards.
    live = set()
    stack = [r.oid for r in heap.iter_roots()]
    by_oid = {}
    for space in all_spaces:
        for obj in space.objects:
            by_oid[obj.oid] = obj
    worklist = [by_oid[oid] for oid in stack if oid in by_oid]
    while worklist:
        obj = worklist.pop()
        if obj.oid in live:
            continue
        live.add(obj.oid)
        for child in obj.refs:
            if child.space is not None and child.oid not in live:
                worklist.append(child)
    fresh, stuck = heap.card_table.scan_plan()
    dirty = fresh | stuck
    for space in heap.old_spaces:
        for obj in space.objects:
            if obj.oid not in live:
                continue
            for child in obj.refs:
                if child.space is not None and heap.in_young(child):
                    if obj not in dirty:
                        problems.append(
                            f"old object #{obj.oid} references young "
                            f"#{child.oid} without a dirty card"
                        )
                    break

    if problems and raise_on_error:
        raise HeapError("; ".join(problems))
    return problems
