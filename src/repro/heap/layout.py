"""Young-generation and native-memory layout shared by every policy.

The young generation (eden plus two survivor semi-spaces) is always
DRAM-resident (§4.1: "We place the entire young generation in DRAM"), and
the off-heap native region is placed entirely in NVM.  Old-generation
layout differs per placement policy and is built in
:mod:`repro.gc.policies`.
"""

from __future__ import annotations

from typing import Tuple

from repro.config import DeviceKind, SystemConfig
from repro.heap.spaces import Space

#: Base address of the simulated heap; non-zero so address zero stays
#: an obvious "never allocated" sentinel.
HEAP_BASE = 0x1000_0000


def build_young_spaces(
    config: SystemConfig, base: int = HEAP_BASE
) -> Tuple[Space, Space, Space, int]:
    """Create eden and the two survivor semi-spaces.

    Returns:
        ``(eden, survivor_from, survivor_to, next_base)``.
    """
    nursery = config.nursery_bytes
    survivor = int(nursery * config.survivor_fraction)
    eden_size = nursery - 2 * survivor
    eden = Space("eden", base, eden_size, "young", device=DeviceKind.DRAM)
    s_from = Space(
        "survivor-from", eden.end, survivor, "young", device=DeviceKind.DRAM
    )
    s_to = Space("survivor-to", s_from.end, survivor, "young", device=DeviceKind.DRAM)
    return eden, s_from, s_to, s_to.end


def young_span_bytes(config: SystemConfig) -> int:
    """Exact bytes the young generation occupies as laid out (eden plus
    two survivors, after integer rounding).  Old spaces start at
    ``HEAP_BASE + young_span_bytes(config)``."""
    nursery = config.nursery_bytes
    survivor = int(nursery * config.survivor_fraction)
    eden_size = nursery - 2 * survivor
    return eden_size + 2 * survivor


def build_native_space(config: SystemConfig, base: int) -> Space:
    """The off-heap native region, placed entirely in NVM (§4.1).

    Under a DRAM-only system there is no NVM, so native memory falls back
    to DRAM.
    """
    device = DeviceKind.NVM if config.nvm_bytes > 0 else DeviceKind.DRAM
    size = max(config.total_memory_bytes - config.heap_bytes, config.heap_bytes)
    return Space("native", base, size, "native", device=device)
