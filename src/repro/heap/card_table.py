"""The card table and the shared-card pathology Panthera's padding fixes.

OpenJDK divides the heap into 512-byte cards; a write barrier dirties the
card holding a written reference, and each minor GC scans dirty cards for
old-to-young references.  Section 4.2.3 of the paper describes the
pathology this reproduction models: when two large arrays share a card
(one ends in the middle, the next begins there), the card can never be
cleaned by either GC thread, so *every* minor GC rescans every element of
both arrays until a major GC occurs.  Panthera pads array allocations so
each array ends exactly on a card boundary, eliminating sharing.

Card spans of multi-gigabyte arrays are tracked as ranges, never
enumerated.  Only the first and last card of an object can be shared
under bump-pointer allocation, so sharing detection needs only those two
boundary cards.
"""

from __future__ import annotations

from typing import Dict, Iterable, Set, Tuple

from repro.errors import HeapError
from repro.heap.object_model import HeapObject


class CardTable:
    """Tracks dirty state and card sharing for old-generation objects."""

    def __init__(self, card_size: int = 512) -> None:
        if card_size <= 0:
            raise HeapError("card_size must be positive")
        self.card_size = card_size
        #: object -> (first card index, last card index)
        self._spans: Dict[HeapObject, Tuple[int, int]] = {}
        #: boundary card index -> objects touching that card
        self._boundary: Dict[int, Set[HeapObject]] = {}
        #: freshly dirtied objects, scanned (then cleaned) by the next minor GC
        self._dirty: Set[HeapObject] = set()
        #: objects stuck dirty because a shared card was dirtied; rescanned
        #: by every minor GC until a major GC
        self._stuck: Set[HeapObject] = set()

    # -- registration ------------------------------------------------------

    def register(self, obj: HeapObject) -> None:
        """Start tracking an old-generation object's card span."""
        if obj.addr is None:
            raise HeapError("cannot register an unplaced object")
        if obj in self._spans:
            self.unregister(obj)
        first = obj.addr // self.card_size
        last = (obj.addr + max(obj.size, 1) - 1) // self.card_size
        self._spans[obj] = (first, last)
        self._boundary.setdefault(first, set()).add(obj)
        self._boundary.setdefault(last, set()).add(obj)

    def unregister(self, obj: HeapObject) -> bool:
        """Stop tracking an object (death or migration).

        Returns:
            True when the object was tracked — one dict lookup instead of
            the ``is_registered`` + ``unregister`` double probe.
        """
        span = self._spans.pop(obj, None)
        if span is None:
            return False
        for card in set(span):
            occupants = self._boundary.get(card)
            if occupants is not None:
                occupants.discard(obj)
                if not occupants:
                    del self._boundary[card]
        self._dirty.discard(obj)
        self._stuck.discard(obj)
        return True

    def is_registered(self, obj: HeapObject) -> bool:
        """Whether the object is currently tracked."""
        return obj in self._spans

    # -- dirtying ------------------------------------------------------------

    def neighbors_sharing_card(self, obj: HeapObject) -> Set[HeapObject]:
        """Objects that share a boundary card with ``obj``.

        With Panthera's padding every array ends on a card boundary, so
        this set is empty by construction.
        """
        span = self._spans.get(obj)
        if span is None:
            return set()
        shared: Set[HeapObject] = set()
        for card in set(span):
            shared |= self._boundary.get(card, set()) - {obj}
        return shared

    def mark_dirty(self, obj: HeapObject) -> None:
        """Dirty the cards of one object (an old-to-young reference was
        written into it).

        If the object is a large array whose end does not fall on a card
        boundary, its last card is shared with whatever the bump
        allocator placed next ("shared cards exist pervasively",
        §4.2.3): neither GC thread can clean that card, so the array is
        *stuck* — rescanned by every minor GC until a major GC clears
        the table.  Panthera's padding aligns array ends to card
        boundaries, so padded arrays are never stuck.  An explicitly
        registered neighbour sharing a boundary card is dragged into the
        stuck set as well.
        """
        if obj not in self._spans:
            raise HeapError(f"dirtying an unregistered object: {obj!r}")
        self._dirty.add(obj)
        misaligned = (
            obj.is_array
            and not obj.padded
            and (obj.addr + obj.size) % self.card_size != 0
        )
        neighbors = self.neighbors_sharing_card(obj)
        if misaligned or neighbors:
            self._stuck.add(obj)
            self._stuck.update(n for n in neighbors if n.is_array)

    # -- minor GC interface ---------------------------------------------------

    def pending_scan(self) -> bool:
        """Whether the next minor GC has any cards to scan at all — lets
        the scavenge skip :meth:`scan_plan`'s defensive set copies (and
        the whole card phase) on a clean table."""
        return bool(self._dirty or self._stuck)

    def scan_plan(self) -> Tuple[Set[HeapObject], Set[HeapObject]]:
        """Objects the next minor GC must card-scan.

        Returns:
            ``(fresh, stuck)``: freshly dirtied objects (cleaned after the
            scan) and stuck objects (rescanned every minor GC).
        """
        return set(self._dirty), set(self._stuck)

    def after_minor_scan(self) -> None:
        """Clean what can be cleaned after a minor GC's card scan: fresh
        dirt is cleared; stuck objects remain dirty."""
        self._dirty.clear()

    def clear_all(self) -> None:
        """Major GC: every card is cleaned."""
        self._dirty.clear()
        self._stuck.clear()

    # -- introspection ---------------------------------------------------------

    @property
    def stuck_objects(self) -> Set[HeapObject]:
        """Objects currently stuck dirty (for tests and stats)."""
        return set(self._stuck)

    @property
    def dirty_objects(self) -> Set[HeapObject]:
        """Freshly dirty objects (for tests)."""
        return set(self._dirty)

    def tracked(self) -> Iterable[HeapObject]:
        """All registered objects."""
        return self._spans.keys()
