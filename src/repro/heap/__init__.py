"""The managed heap: object model, spaces, allocator, card table, barrier.

This package simulates the OpenJDK 8 Parallel Scavenge heap that Panthera
modifies: an eden plus two survivor semi-spaces form the young generation
(always DRAM-resident), and the old generation is one or two spaces whose
device backing depends on the placement policy (split DRAM/NVM for
Panthera, 1 GB-chunk interleaved for the unmanaged baseline, single-device
for the others).
"""

from repro.heap.card_table import CardTable
from repro.heap.managed_heap import ManagedHeap
from repro.heap.object_model import HeapObject, ObjKind
from repro.heap.spaces import Space

__all__ = ["CardTable", "HeapObject", "ManagedHeap", "ObjKind", "Space"]
