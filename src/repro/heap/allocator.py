"""Allocation paths: the eden fast path and the tag-wait slow path.

Section 4.2.1 of the paper: an instrumented call to ``rdd_alloc(rdd, tag)``
right before a materialisation point (1) stamps the RDD top object's
MEMORY_BITS, and (2) puts the allocating thread into a *wait* state.  In
that state, the first allocation request for an array larger than a
threshold is recognised as the RDD's backbone array and is allocated
directly into the space named by the tag; the state is then reset.
:class:`TagWaitState` is that mechanism.
"""

from __future__ import annotations

from typing import Optional

from repro.core.tags import MemoryTag


class TagWaitState:
    """The per-thread "waiting for the RDD array" state of §4.2.1."""

    def __init__(self, large_array_threshold: int) -> None:
        if large_array_threshold <= 0:
            raise ValueError("large_array_threshold must be positive")
        self.large_array_threshold = large_array_threshold
        self._pending: Optional[MemoryTag] = None
        self._armed = False
        #: optional :class:`~repro.trace.bus.TraceBus`; when set, each
        #: recognised backbone array publishes a ``tag_recognized`` event.
        self.trace = None

    def arm(self, tag: Optional[MemoryTag]) -> None:
        """Enter the wait state with a pending tag.

        A ``None`` tag still arms the state (the paper resets the state on
        the next large allocation either way, keeping young-gen allocation
        for untagged arrays).
        """
        self._pending = tag
        self._armed = True

    @property
    def armed(self) -> bool:
        """Whether the thread is waiting for an RDD array allocation."""
        return self._armed

    @property
    def pending_tag(self) -> Optional[MemoryTag]:
        """The tag that will be applied to the next large array."""
        return self._pending

    def consume_for_array(self, size: int) -> Optional[MemoryTag]:
        """Called on every array allocation while armed.

        Returns:
            The pending tag if this allocation is large enough to be
            recognised as the RDD array (also resetting the state);
            None otherwise.
        """
        if not self._armed or size < self.large_array_threshold:
            return None
        tag = self._pending
        self.reset()
        if self.trace is not None:
            self.trace.tag_recognized(tag, size)
        return tag

    def reset(self) -> None:
        """Leave the wait state."""
        self._pending = None
        self._armed = False
