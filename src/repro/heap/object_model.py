"""Heap object model.

A :class:`HeapObject` stands for one *logical* chunk of application data.
RDD data records are aggregated — one object represents a slab of tuples
whose combined payload is ``size`` bytes — so the simulation keeps object
counts laptop-scale while byte-accurate costs flow through the device
model.  The structure mirrors Figure 1 of the paper: an RDD top object
references one array object per partition, and each array references its
data (tuple-slab) objects.
"""

from __future__ import annotations

import enum
import itertools
from typing import List, Optional

from repro.core.tags import MEMORY_BITS_NONE, MemoryTag

_OBJECT_IDS = itertools.count(1)

#: Size of an object header plus reference slots that tracing touches.
HEADER_BYTES = 16


class ObjKind(enum.Enum):
    """What role an object plays inside an RDD (Table 1's "Obj Type")."""

    RDD_TOP = "rdd-top"
    RDD_ARRAY = "rdd-array"
    DATA = "data"
    CONTROL = "control"


class HeapObject:
    """One simulated heap object.

    Attributes:
        oid: unique object id.
        kind: role within an RDD (top / array / data / control).
        size: payload size in bytes (what copying and scanning cost).
        refs: outgoing references to other heap objects.
        memory_bits: the two reserved header bits (§4.1).
        age: minor GCs survived (drives tenuring).
        addr: current address, or None before first placement.
        space: the space the object currently resides in.
        rdd_id: id of the logical RDD this object belongs to, if any.
        write_count: mutator writes since the last major GC (used by the
            Kingsguard-Writes baseline and by tests).
    """

    __slots__ = (
        "oid",
        "kind",
        "size",
        "refs",
        "memory_bits",
        "age",
        "addr",
        "space",
        "rdd_id",
        "write_count",
        "padded",
        "is_array",
        "_mark",
    )

    def __init__(
        self,
        kind: ObjKind,
        size: int,
        rdd_id: Optional[int] = None,
    ) -> None:
        if size < 0:
            raise ValueError("object size must be non-negative")
        self.oid: int = next(_OBJECT_IDS)
        self.kind = kind
        self.size = size
        self.refs: List["HeapObject"] = []
        self.memory_bits: int = MEMORY_BITS_NONE
        self.age: int = 0
        self.addr: Optional[int] = None
        self.space = None  # type: ignore[assignment]
        self.rdd_id = rdd_id
        self.write_count: int = 0
        #: True when the allocation was padded to a card boundary
        #: (§4.2.3), so the object's last card is exclusively its own.
        self.padded: bool = False
        #: True for RDD backbone arrays (the card-padding targets).
        #: Precomputed: ``kind`` never changes, and this flag is read on
        #: every place/discard/adopt and card-table operation.
        self.is_array: bool = kind is ObjKind.RDD_ARRAY
        self._mark: bool = False

    @property
    def tag(self) -> Optional[MemoryTag]:
        """The memory tag encoded in this object's header bits."""
        return MemoryTag.from_bits(self.memory_bits)

    def set_tag(self, tag: Optional[MemoryTag]) -> None:
        """Set the header bits from a tag (None clears them)."""
        self.memory_bits = MEMORY_BITS_NONE if tag is None else tag.bits

    def add_ref(self, target: "HeapObject") -> None:
        """Add an outgoing reference (bookkeeping only; barriers are the
        heap's job)."""
        self.refs.append(target)

    def clear_refs(self) -> None:
        """Drop all outgoing references."""
        self.refs.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        where = self.space.name if self.space is not None else "unplaced"
        return (
            f"<HeapObject #{self.oid} {self.kind.value} {self.size}B "
            f"bits={self.memory_bits:02b} in {where}>"
        )
