"""The managed heap facade: allocation, roots, barrier, GC triggering.

This is the object the rest of the system talks to.  It owns the young
generation, the policy-built old spaces, the card table and the tag-wait
allocator state, and it delegates collections to the attached collector
(two-phase initialisation, since the collector also needs the heap).
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional, Set

from repro.config import SystemConfig
from repro.errors import HeapError, OutOfMemoryError
from repro.heap.allocator import TagWaitState
from repro.heap.layout import build_native_space, build_young_spaces
from repro.heap.card_table import CardTable
from repro.heap.object_model import HeapObject, ObjKind
from repro.heap.spaces import Space
from repro.memory.machine import Machine


class ManagedHeap:
    """The simulated JVM heap.

    Attributes:
        config: system configuration.
        machine: the simulated machine costs are charged to.
        eden, survivor_from, survivor_to: young generation spaces (DRAM).
        old_spaces: policy-built old generation spaces.
        native: the off-heap NVM region.
        card_table: dirty-card tracking for old-generation objects.
        tag_wait: the §4.2.1 "waiting for the RDD array" state.
    """

    def __init__(
        self,
        config: SystemConfig,
        machine: Machine,
        old_spaces: List[Space],
        card_padding: bool,
    ) -> None:
        self.config = config
        self.machine = machine
        (
            self.eden,
            self.survivor_from,
            self.survivor_to,
            next_base,
        ) = build_young_spaces(config)
        expected_old = sum(s.size for s in old_spaces)
        if expected_old > config.old_gen_bytes + config.interleave_chunk_bytes:
            raise HeapError("old spaces exceed the configured old generation")
        self.old_spaces = list(old_spaces)
        for space in self.old_spaces:
            if space.base < next_base:
                raise HeapError(f"old space {space.name} overlaps the young gen")
        native_base = max((s.end for s in self.old_spaces), default=next_base)
        self.native = build_native_space(config, native_base)
        self.card_table = CardTable(config.card_size)
        self.card_padding = card_padding
        self.tag_wait = TagWaitState(config.large_array_threshold)
        self._roots: Set[HeapObject] = set()
        #: memoised sorted root list (every GC sorts the roots otherwise;
        #: invalidated by add_root / remove_root)
        self._sorted_roots: Optional[List[HeapObject]] = None
        #: set post-construction; must provide collect_minor()/collect_major()
        self.collector = None
        #: optional callback invoked on every mutator ref write (KW barrier)
        self.write_barrier_hook: Optional[Callable[[HeapObject], None]] = None
        #: optional :class:`~repro.trace.bus.TraceBus` the allocator and
        #: the GCs publish placement events to (None = tracing off; every
        #: emission site is guarded so the disabled cost is one check).
        self.trace = None
        #: off-intended old-gen placements (the graceful-degradation
        #: ladder: an NVM-tagged object that could not fit its intended
        #: space landed in another instead of aborting) and their bytes.
        self.fallback_count = 0
        self.fallback_bytes = 0.0
        #: old-gen bytes pinned by unreclaimable control objects (the
        #: fault injector's NVM-exhaustion balloon); capacity planners
        #: (block-manager eviction) must not count them as usable.
        self.pinned_old_bytes = 0.0
        #: optional :class:`~repro.heap.regions.RegionManager` (Deca's
        #: lifetime arenas; None for every tracing policy).  When set,
        #: classified allocations bypass the generational machinery.
        self.regions = None

    # -- space queries -----------------------------------------------------

    @property
    def young_spaces(self) -> List[Space]:
        """Eden plus the two survivor semi-spaces."""
        return [self.eden, self.survivor_from, self.survivor_to]

    def old_space_named(self, name: str) -> Space:
        """Look up an old space by name."""
        for space in self.old_spaces:
            if space.name == name:
                return space
        raise HeapError(f"no old space named {name!r}")

    def in_young(self, obj: HeapObject) -> bool:
        """Whether the object currently resides in the young generation."""
        return obj.space is not None and obj.space.generation == "young"

    def in_old(self, obj: HeapObject) -> bool:
        """Whether the object currently resides in the old generation."""
        return obj.space is not None and obj.space.generation == "old"

    def old_used_bytes(self) -> int:
        """Bytes bump-allocated across all old spaces."""
        return sum(s.used for s in self.old_spaces)

    def old_capacity_bytes(self) -> int:
        """Total old generation capacity."""
        return sum(s.size for s in self.old_spaces)

    # -- roots ---------------------------------------------------------------

    def add_root(self, obj: HeapObject) -> None:
        """Register a GC root (driver variable, persisted block, ...)."""
        self._roots.add(obj)
        self._sorted_roots = None

    def remove_root(self, obj: HeapObject) -> None:
        """Unregister a GC root."""
        self._roots.discard(obj)
        self._sorted_roots = None

    def iter_roots(self) -> Iterable[HeapObject]:
        """All current roots, in allocation order (deterministic).

        The sorted list is memoised between root-set changes — callers
        must not mutate it (every in-tree caller copies or iterates).
        """
        if self._sorted_roots is None:
            self._sorted_roots = sorted(self._roots, key=lambda o: o.oid)
        return self._sorted_roots

    def is_root(self, obj: HeapObject) -> bool:
        """Whether the object is currently a root."""
        return obj in self._roots

    # -- allocation ------------------------------------------------------------

    def _require_collector(self):
        if self.collector is None:
            raise HeapError("no collector attached to the heap")
        return self.collector

    def allocate_ephemeral(self, nbytes: int) -> None:
        """Bump-allocate short-lived streaming bytes in eden.

        No :class:`HeapObject` is created — streaming tuples die before the
        next collection ever traces them — but the bytes fill eden and
        therefore drive minor-GC frequency exactly like real allocation.
        """
        if nbytes < 0:
            raise HeapError("negative ephemeral allocation")
        if self.regions is not None and self.regions.take_ephemeral(nbytes):
            return
        # Inlined bump: this is the hottest mutator path (called for every
        # streamed batch), so the common in-bounds case pays two attribute
        # reads and an add instead of a Space.allocate call.
        eden = self.eden
        new_top = eden.top + nbytes
        if new_top <= eden.end:
            eden.top = new_top
            return
        if nbytes > eden.size:
            raise HeapError(
                f"ephemeral allocation of {nbytes} exceeds eden "
                f"({eden.size}); chunk the request"
            )
        self._require_collector().collect_minor()
        if eden.allocate(nbytes) is None:
            raise OutOfMemoryError("eden full even after a minor GC")

    def new_object(
        self,
        kind: ObjKind,
        size: int,
        rdd_id: Optional[int] = None,
    ) -> HeapObject:
        """Allocate a survivable object in eden (the TLAB fast path).

        Under Deca, objects whose RDD has a lifetime class land in the
        matching region arena instead (no ``alloc`` event; the arena
        emits ``region_alloc``)."""
        obj = HeapObject(kind, size, rdd_id=rdd_id)
        if self.regions is not None and self.regions.take_object(obj):
            return obj
        if size > self.eden.size:
            raise HeapError(
                f"object of {size} bytes cannot fit in eden; use "
                "allocate_rdd_array for large arrays"
            )
        if not self.eden.place(obj):
            self._require_collector().collect_minor()
            if not self.eden.place(obj):
                raise OutOfMemoryError("eden full even after a minor GC")
        if self.trace is not None:
            self.trace.alloc(obj)
        return obj

    def allocate_rdd_array(self, size: int, rdd_id: Optional[int]) -> HeapObject:
        """Allocate an RDD backbone array.

        If the tag-wait state is armed (``rdd_alloc`` ran) and the array
        exceeds the recognition threshold, the array goes straight into
        the old space chosen by the policy for its tag (Table 1).  An
        untagged array below the recognition threshold starts in the
        young generation like any object (Table 1's NONE row); larger
        untagged arrays are humongous allocations that go old directly.
        """
        collector = self._require_collector()
        tag = self.tag_wait.consume_for_array(size)
        obj = HeapObject(ObjKind.RDD_ARRAY, size, rdd_id=rdd_id)
        if self.regions is not None and self.regions.take_object(obj):
            return obj
        if tag is not None:
            obj.set_tag(tag)
        elif size < self.config.large_array_threshold and size <= self.eden.size:
            if not self.eden.place(obj):
                collector.collect_minor()
                if not self.eden.place(obj):
                    raise OutOfMemoryError("eden full even after a minor GC")
            if self.trace is not None:
                self.trace.alloc(obj)
            return obj
        for attempt in range(2):
            space = collector.policy.array_allocation_space(self, tag, size)
            if self._place_in_old(obj, space):
                if self.trace is not None:
                    self.trace.alloc(obj)
                return obj
            if attempt == 0:
                collector.collect_major()
        raise OutOfMemoryError(
            f"cannot place a {size}-byte RDD array in the old generation"
        )

    def allocate_native(self, size: int, rdd_id: Optional[int]) -> HeapObject:
        """Place an OFF_HEAP RDD array in the native (non-GC'd) region.

        Native objects are never collected: they live until the end of
        the run, outside the generational machinery (§4.1's off-heap
        NVM storage).
        """
        obj = HeapObject(ObjKind.RDD_ARRAY, int(size), rdd_id=rdd_id)
        if not self.native.place(obj):
            raise OutOfMemoryError("native (off-heap) memory exhausted")
        if self.trace is not None:
            self.trace.alloc(obj)
        return obj

    def free_native(self, obj: HeapObject) -> bool:
        """Explicitly release a native-region object.

        Unlike the legacy OFF_HEAP blocks (which live until the end of
        the run), serialized-tier blocks are unpersistable and killable:
        their packed buffers are freed here so the native region's live
        bytes — and the trace-replay oracle's reconstruction of them —
        track the block manager's registry exactly.

        Returns:
            True when the object was resident in the native region.
        """
        if obj.space is not self.native:
            return False
        if self.trace is not None:
            self.trace.free(obj, self.native.name)
        self.native.discard(obj)
        obj.space = None
        obj.addr = None
        return True

    def _place_in_old(self, obj: HeapObject, space: Space) -> bool:
        """Place an object in an old space, falling back across old spaces
        in policy order, registering arrays with the card table."""
        candidates = [space] + [s for s in self.old_spaces if s is not space]
        align = self.config.card_size if (self.card_padding and obj.is_array) else None
        for candidate in candidates:
            if candidate.place(obj, align_end_to=align):
                obj.padded = align is not None
                if obj.is_array:
                    self.card_table.register(obj)
                if candidate is not space:
                    self.fallback_count += 1
                    self.fallback_bytes += obj.size
                    if self.trace is not None:
                        self.trace.fallback(obj, space.name)
                return True
        return False

    # -- mutator barrier ----------------------------------------------------------

    def write_ref(self, holder: HeapObject, target: HeapObject) -> None:
        """Store a reference ``holder.field = target`` through the write
        barrier: old-to-young stores dirty the holder's cards."""
        holder.add_ref(target)
        holder.write_count += 1
        if self.write_barrier_hook is not None:
            self.write_barrier_hook(holder)
        if self.in_old(holder) and self.in_young(target):
            if not self.card_table.is_registered(holder):
                self.card_table.register(holder)
            self.card_table.mark_dirty(holder)

    def write_data(self, obj: HeapObject, writes: int = 1) -> None:
        """Record mutator data writes into an object (no card dirtying:
        only reference stores go through the card-marking barrier)."""
        obj.write_count += writes
        if self.write_barrier_hook is not None:
            self.write_barrier_hook(obj)

    # -- stats -----------------------------------------------------------------

    def describe(self) -> str:
        """Human-readable snapshot of space occupancy (debugging aid)."""
        lines = [
            f"{s.name}: {s.used}/{s.size} bytes, {len(s.objects)} objects"
            for s in self.young_spaces + self.old_spaces
        ]
        return "\n".join(lines)
