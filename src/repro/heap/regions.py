"""Lifetime-based region allocation: Deca's rival policy (arXiv 1602.01959).

Deca observes that almost all bytes a data-parallel job allocates fall
into three lifetime classes a static analysis can recover from the
program structure:

* *UDF-ephemeral* — streaming tuples and aggregation scratch created
  inside one user function invocation; dead before the operator yields.
* *Stage-local* — shuffle buffers and intermediate blocks that die when
  their stage's last task finishes.
* *Job-long* — explicitly persisted RDDs, live until the action (or the
  whole job) completes.

Instead of letting the generational collector discover those deaths by
tracing, each class gets a bump-pointer *arena* and the whole arena is
freed wholesale when its lifetime ends — a pointer reset whose cost is
charged through the cost plane as pure CPU work (no tracing, no
copying, no card scanning).  On hybrid memory the arenas also encode
placement: the ephemeral arena reuses the nursery's DRAM budget (eden
stays near-empty under Deca), the stage arena prefers DRAM, and the
job arena — the bulk of the data, written once and scanned
sequentially — is NVM-eligible, mirroring Panthera's observation that
long-lived RDDs tolerate NVM.

Region arenas live outside the traced heap: their objects never emit
``alloc``/``free`` trace events (the replay oracle's per-space ledger
covers only the GC-managed spaces) and are never card-registered.
The informational ``region_alloc``/``region_reset`` trace kinds make
them observable instead.
"""

from __future__ import annotations

import bisect
import enum
import math
from typing import Dict, List, Optional, Tuple

from repro.config import DeviceKind
from repro.gc import charging as _charging
from repro.heap.object_model import HeapObject
from repro.heap.spaces import Space

#: Per-byte CPU cost of a wholesale arena reset, across the mutator
#: threads.  A reset is pointer arithmetic plus page-table work — far
#: below ``gc_ns_per_byte`` (0.04), which is the per-byte cost of the
#: tracing work a reset replaces.
RESET_NS_PER_BYTE = 0.002

#: Fraction of the arena budget given to the stage arena; the job arena
#: receives the remainder (persisted RDDs dominate a job's footprint).
STAGE_ARENA_FRACTION = 1.0 / 3.0


class LifetimeClass(enum.Enum):
    """Deca's three allocation lifetime classes."""

    EPHEMERAL = "udf-ephemeral"
    STAGE = "stage-local"
    JOB = "job-long"


class _ExtentAllocator:
    """First-fit free-extent allocator for the job arena.

    The job arena is not one bump pointer: each RDD's materialisation
    is its own *region* (Deca's data container), freed wholesale when
    the block is unpersisted, dropped or the job ends.  A block's
    objects are allocated back-to-back, so its freed extents coalesce
    back into large holes — no copying, no compaction.
    """

    def __init__(self, base: int, size: int) -> None:
        self.base = base
        self.end = base + size
        self._free: List[Tuple[int, int]] = (
            [(base, self.end)] if size > 0 else []
        )

    def take(self, nbytes: int) -> Optional[int]:
        """Reserve ``nbytes`` from the first extent that fits."""
        for i, (start, end) in enumerate(self._free):
            if end - start >= nbytes:
                if end - start == nbytes:
                    self._free.pop(i)
                else:
                    self._free[i] = (start + nbytes, end)
                return start
        return None

    def give(self, start: int, end: int) -> None:
        """Return an extent, coalescing with its neighbours."""
        if end <= start:
            return
        bisect.insort(self._free, (start, end))
        merged: List[Tuple[int, int]] = []
        for s, e in self._free:
            if merged and s <= merged[-1][1]:
                last_s, last_e = merged[-1]
                merged[-1] = (last_s, max(last_e, e))
            else:
                merged.append((s, e))
        self._free = merged

    @property
    def free_bytes(self) -> int:
        """Total free bytes across all extents."""
        return sum(e - s for s, e in self._free)

    @property
    def largest_extent(self) -> int:
        """Size of the largest single free extent."""
        return max((e - s for s, e in self._free), default=0)


class RegionManager:
    """Bump-pointer lifetime arenas attached to a :class:`ManagedHeap`.

    Attributes:
        heap: the owning heap (``heap.regions`` points back here).
        ephemeral: DRAM arena for streaming/UDF scratch bytes (recycled
            in place when it fills, reset at stage boundaries).
        stage: arena for stage-local blocks (reset when the scheduler's
            scope stack empties — a stage/action boundary).
        job: NVM-eligible arena for job-long persisted RDDs (reset only
            at job end).
        reset_count / reset_bytes: wholesale resets performed and the
            bytes they released (the work that replaces GC pauses).
    """

    def __init__(self, heap) -> None:
        self.heap = heap
        config = heap.config
        base = heap.native.end
        arena_budget = max(
            0, config.old_gen_bytes - heap.old_capacity_bytes()
        )
        stage_size = int(arena_budget * STAGE_ARENA_FRACTION)
        job_size = arena_budget - stage_size
        stage_device = (
            DeviceKind.DRAM if config.old_dram_bytes > 0 else DeviceKind.NVM
        )
        job_device = (
            DeviceKind.NVM if config.old_nvm_bytes > 0 else DeviceKind.DRAM
        )
        self.ephemeral = Space(
            "region-ephemeral",
            base,
            heap.eden.size,
            "region",
            device=DeviceKind.DRAM,
        )
        self.stage = Space(
            "region-stage",
            self.ephemeral.end,
            stage_size,
            "region",
            device=stage_device,
        )
        self.job = Space(
            "region-job", self.stage.end, job_size, "region", device=job_device
        )
        #: per-RDD region bookkeeping inside the job arena: freed
        #: extents are recycled without copying (Deca's data containers).
        self._job_alloc = _ExtentAllocator(self.job.base, self.job.size)
        #: rdd_id -> lifetime class, fed by the scheduler as the static
        #: analysis' classification reaches each materialisation.
        self._classes: Dict[int, LifetimeClass] = {}
        self.reset_count = 0
        self.reset_bytes = 0.0
        #: whole-region frees performed (unpersist/evict) and their bytes.
        self.region_free_count = 0
        self.region_free_bytes = 0.0

    @classmethod
    def attach(cls, heap) -> "RegionManager":
        """Build a manager for ``heap`` and point ``heap.regions`` at it."""
        manager = cls(heap)
        heap.regions = manager
        return manager

    # -- classification -------------------------------------------------

    @property
    def spaces(self) -> List[Space]:
        """The three arenas (for verification and reporting)."""
        return [self.ephemeral, self.stage, self.job]

    def note_rdd(self, rdd_id: int, lifetime: LifetimeClass) -> None:
        """Record the lifetime class of an RDD about to materialise."""
        self._classes[rdd_id] = lifetime

    def lifetime_of(self, rdd_id: Optional[int]) -> Optional[LifetimeClass]:
        """The recorded class of an RDD, or None when unclassified."""
        if rdd_id is None:
            return None
        return self._classes.get(rdd_id)

    def in_region(self, obj: HeapObject) -> bool:
        """Whether the object currently resides in a region arena."""
        return obj.space is not None and obj.space.generation == "region"

    # -- allocation -----------------------------------------------------

    def take_object(self, obj: HeapObject) -> bool:
        """Place a classified object into its lifetime arena.

        Job-long objects go through the per-RDD extent allocator;
        stage-local allocations bump the stage arena and fall over into
        a job extent when it is full (freed later than needed, never
        earlier — the safe direction).  When neither fits, the caller
        falls back to the traced heap.  No card registration, no
        ``alloc`` event: the arenas are invisible to the collector and
        the replay oracle's ledger.

        Returns:
            True when the object landed in an arena.
        """
        lifetime = self.lifetime_of(obj.rdd_id)
        if lifetime is None:
            return False
        if lifetime is LifetimeClass.JOB:
            if not self._place_in_job(obj):
                return False
        elif not self.stage.place(obj):
            if self._place_in_job(obj):
                heap = self.heap
                heap.fallback_count += 1
                heap.fallback_bytes += obj.size
                if heap.trace is not None:
                    heap.trace.fallback(obj, self.stage.name)
            else:
                return False
        if self.heap.trace is not None:
            self.heap.trace.region_alloc(obj, lifetime.value)
        return True

    def _place_in_job(self, obj: HeapObject) -> bool:
        """Reserve a job-arena extent for ``obj`` and make it resident."""
        addr = self._job_alloc.take(int(math.ceil(obj.size)))
        if addr is None:
            return False
        obj.addr = addr
        obj.space = self.job
        self.job.adopt(obj)
        # ``top`` is kept as a high-water mark so the bump-pointer
        # invariant (objects end at or below top) keeps holding.
        if addr + obj.size > self.job.top:
            self.job.top = addr + int(math.ceil(obj.size))
        return True

    def take_ephemeral(self, nbytes: int) -> bool:
        """Bump UDF-ephemeral bytes into the ephemeral arena.

        The arena recycles in place when it fills (a charged wholesale
        reset — the Deca equivalent of the minor GC the legacy path
        would have triggered).  Requests larger than the arena are
        refused so the caller can chunk them through the legacy path.

        Returns:
            True when the bytes were taken by the arena.
        """
        arena = self.ephemeral
        if nbytes > arena.size:
            return False
        if arena.top + nbytes > arena.end:
            self._reset(arena, "ephemeral-recycle")
        arena.top += nbytes
        return True

    # -- wholesale frees ------------------------------------------------

    def free_block(self, block) -> float:
        """Free one block's region wholesale (unpersist/drop/evict).

        Job-arena objects return their extents to the free list (the
        whole-region free: pointer bookkeeping, no copying, no tracing);
        stage-arena objects just leave the residency set — their bytes
        come back at the next stage reset.

        Returns:
            The job-arena bytes released.
        """
        freed = 0.0
        for obj in block.heap_objects():
            if obj.space is self.job:
                self.job.discard(obj)
                self._job_alloc.give(
                    obj.addr, obj.addr + int(math.ceil(obj.size))
                )
                obj.space = None
                obj.addr = None
                freed += obj.size
            elif obj.space is self.stage:
                self.stage.discard(obj)
                obj.space = None
                obj.addr = None
        if freed:
            self.region_free_count += 1
            self.region_free_bytes += freed
            machine = self.heap.machine
            cpu_ns = freed * RESET_NS_PER_BYTE
            if _charging.VECTORISED_COST_PLANE:
                machine.run_rows(((self.job.device, 0.0, 0.0, 0, 0, cpu_ns),))
            else:
                machine.access(self.job.device, cpu_ns=cpu_ns)
            if self.heap.trace is not None:
                self.heap.trace.region_reset(
                    self.job.name, float(freed), f"region-free rdd={block.rdd_id}"
                )
        return freed

    def ensure_job_capacity(self, nbytes: float, block_manager) -> None:
        """Make room for ``nbytes`` in the job arena by freeing the
        least-recently-used region-resident blocks (region-grained
        eviction: each victim's whole region comes back at once; the
        block manager spills or drops it exactly as under pressure in
        the traced heap)."""
        needed = int(math.ceil(nbytes))
        while (
            self._job_alloc.free_bytes < needed
            or self._job_alloc.largest_extent < min(needed, self.job.size)
        ):
            if not block_manager.evict_region_victim():
                break

    def stage_boundary(self) -> None:
        """A stage/action finished: free the stage and ephemeral arenas."""
        self._reset(self.stage, "stage-end")
        self._reset(self.ephemeral, "stage-end")

    def job_end(self) -> None:
        """The job finished: free every arena."""
        self._reset(self.stage, "job-end")
        self._reset(self.ephemeral, "job-end")
        self._reset(self.job, "job-end", freed=self.job.live_bytes())
        self._job_alloc = _ExtentAllocator(self.job.base, self.job.size)

    def _reset(
        self, arena: Space, reason: str, freed: Optional[int] = None
    ) -> int:
        """Free one arena wholesale, charging the reset's CPU cost.

        Args:
            freed: bytes the reset releases; defaults to the arena's
                bump-pointer usage (the job arena passes its live bytes
                instead — extents freed earlier are not re-counted).

        Returns:
            The bytes released.
        """
        if freed is None:
            freed = arena.used
        if freed == 0:
            arena.reset()
            return 0
        machine = self.heap.machine
        cpu_ns = freed * RESET_NS_PER_BYTE
        device = arena.device
        # Byte-identical across cost planes: one cpu-only row vs one
        # cpu-only access (the scheduler's gated-site pattern).
        if _charging.VECTORISED_COST_PLANE:
            machine.run_rows(((device, 0.0, 0.0, 0, 0, cpu_ns),))
        else:
            machine.access(device, cpu_ns=cpu_ns)
        if self.heap.trace is not None:
            self.heap.trace.region_reset(arena.name, float(freed), reason)
        arena.reset()
        self.reset_count += 1
        self.reset_bytes += freed
        return freed
