"""Windowed per-device bandwidth traces.

Figure 8 of the paper plots DRAM and NVM read/write bandwidth over the run
of GraphX-CC.  Each bulk access in the simulation deposits its bytes into
fixed-width time windows here; :meth:`BandwidthTracker.series` then yields
(time, GB/s) points per device and direction.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, Iterator, List, Tuple

from repro.config import DeviceKind


@dataclass(frozen=True)
class BandwidthSample:
    """One point of a bandwidth time series.

    Attributes:
        time_s: window start, in simulated seconds.
        gbps: average bandwidth over the window, in GB/s.
    """

    time_s: float
    gbps: float


class BandwidthTracker:
    """Accumulates bytes moved per (device, direction) into time windows."""

    def __init__(self, window_ns: float = 1e9) -> None:
        """Create a tracker.

        Args:
            window_ns: window width in nanoseconds (default one second).
        """
        if window_ns <= 0:
            raise ValueError("window_ns must be positive")
        self.window_ns = window_ns
        # (device, is_write) -> {window index -> bytes}
        self._bins: Dict[Tuple[DeviceKind, bool], Dict[int, float]] = defaultdict(
            lambda: defaultdict(float)
        )

    def record(
        self,
        device: DeviceKind,
        is_write: bool,
        nbytes: float,
        start_ns: float,
        duration_ns: float,
    ) -> None:
        """Spread ``nbytes`` moved during [start, start+duration) over windows.

        Long accesses are apportioned to every window they overlap so the
        series shows sustained plateaus rather than spikes.
        """
        if nbytes <= 0:
            return
        bins = self._bins[(device, is_write)]
        if duration_ns < 1.0:  # sub-nanosecond: effectively instantaneous
            bins[int(start_ns // self.window_ns)] += nbytes
            return
        end_ns = start_ns + duration_ns
        first = int(start_ns // self.window_ns)
        last = int(end_ns // self.window_ns)
        if first == last:  # the common case: the access fits one window
            # Same arithmetic as the general loop below ((end - start) is
            # not exactly duration_ns in floats), so traces stay
            # bit-identical whichever path runs.
            bins[first] += nbytes * ((end_ns - start_ns) / duration_ns)
            return
        for idx in range(first, last + 1):
            w_start = idx * self.window_ns
            w_end = w_start + self.window_ns
            overlap = min(end_ns, w_end) - max(start_ns, w_start)
            if overlap > 0:
                bins[idx] += nbytes * (overlap / duration_ns)

    def record_rows(
        self,
        rows: List[Tuple[DeviceKind, bool, float, float, float]],
    ) -> None:
        """Record a sequence of accesses in one call.

        Each row is ``(device, is_write, nbytes, start_ns, duration_ns)``
        and is deposited with exactly :meth:`record`'s per-row window
        arithmetic, in row order — so bin values (float accumulation
        order matters) and bin-key insertion order match the equivalent
        sequence of single calls.  The bulk entry point exists to hoist
        the tracker's attribute lookups out of the hot wave-settling
        loop of the vectorised cost plane.
        """
        bins_map = self._bins
        window_ns = self.window_ns
        for device, is_write, nbytes, start_ns, duration_ns in rows:
            if nbytes <= 0:
                continue
            bins = bins_map[(device, is_write)]
            if duration_ns < 1.0:  # sub-nanosecond: effectively instantaneous
                bins[int(start_ns // window_ns)] += nbytes
                continue
            end_ns = start_ns + duration_ns
            first = int(start_ns // window_ns)
            last = int(end_ns // window_ns)
            if first == last:
                bins[first] += nbytes * ((end_ns - start_ns) / duration_ns)
                continue
            for idx in range(first, last + 1):
                w_start = idx * window_ns
                w_end = w_start + window_ns
                overlap = min(end_ns, w_end) - max(start_ns, w_start)
                if overlap > 0:
                    bins[idx] += nbytes * (overlap / duration_ns)

    def series(self, device: DeviceKind, is_write: bool) -> List[BandwidthSample]:
        """Return the bandwidth series for one device and direction.

        Windows with no traffic between active windows are reported as
        zero so plots show gaps honestly — but sparsely: an idle stretch
        contributes only its first and last window, which plots as the
        same flat zero plateau.  The old dense enumeration materialised
        every window of the gap, so a workload idling for simulated hours
        (checkpoint restore, fault back-off) produced millions of
        identical zero samples and an effectively unplottable series.
        """
        bins = self._bins.get((device, is_write))
        if not bins:
            return []
        window_s = self.window_ns / 1e9
        samples: List[BandwidthSample] = []
        prev = None
        for idx in sorted(bins):
            if prev is not None and idx - prev > 1:
                # Bracket the idle stretch with zeros at its edges.
                samples.append(BandwidthSample((prev + 1) * window_s, 0.0))
                if idx - prev > 2:
                    samples.append(BandwidthSample((idx - 1) * window_s, 0.0))
            samples.append(
                BandwidthSample(
                    time_s=idx * window_s,
                    gbps=bins[idx] / self.window_ns,  # bytes/ns == GB/s
                )
            )
            prev = idx
        return samples

    def peak_gbps(self, device: DeviceKind, is_write: bool) -> float:
        """Peak windowed bandwidth for one device and direction.

        Computed straight off the active bins: gap windows are zero and
        can never be the peak, so the series need not be materialised.
        """
        bins = self._bins.get((device, is_write))
        if not bins:
            return 0.0
        return max(bins.values()) / self.window_ns

    def total_bytes(self, device: DeviceKind, is_write: bool) -> float:
        """Total bytes moved on one device in one direction."""
        bins = self._bins.get((device, is_write))
        return sum(bins.values()) if bins else 0.0

    def iter_keys(self) -> Iterator[Tuple[DeviceKind, bool]]:
        """Iterate over (device, is_write) pairs that saw traffic."""
        return iter(self._bins.keys())
