"""The Quartz-style NVM emulation methodology of §5.1, as working code.

The paper could not run OpenJDK on architectural simulators or on
Quartz/PMEP, so the authors built their own emulator following Quartz
[48] on NUMA hardware:

* **Latency**: a daemon thread samples each application thread's memory
  stall time ``S`` per epoch and injects a software delay scaling it to
  ``S x NVM_latency / DRAM_latency`` — i.e. an extra
  ``S x (NVM/DRAM - 1)`` of spinning per epoch.  With NUMA remote memory
  already ~2.6x local latency, remote accesses need no injection at all.
* **Bandwidth**: the memory controller's thermal-control register
  (``PowerThrottlingCtl``-style) caps DRAM bandwidth in fixed steps; the
  emulator programs the largest step not exceeding the NVM target.

This module computes those emulation parameters and provides a small
epoch-level model of the injected delays, so the methodology itself is
testable: given a host profile and an NVM target, what throttle value and
delay factor would the paper's emulator have used, and what effective
latency/bandwidth does an emulated workload observe?
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.config import DRAM_SPEC, NVM_SPEC, DeviceSpec
from repro.errors import ConfigError


@dataclass(frozen=True)
class HostProfile:
    """The NUMA host the emulator runs on (Table 3's machine).

    Attributes:
        local_latency_ns: local-socket DRAM load latency.
        remote_latency_ns: one-hop remote-socket load latency.
        local_bandwidth_gbps: unthrottled local memory bandwidth.
        throttle_step_gbps: granularity of the thermal-control register's
            bandwidth cap.
        epoch_us: delay-injection epoch length.
    """

    local_latency_ns: float = 120.0
    remote_latency_ns: float = 300.0
    local_bandwidth_gbps: float = 30.0
    throttle_step_gbps: float = 2.0
    epoch_us: float = 100.0

    def __post_init__(self) -> None:
        if self.remote_latency_ns < self.local_latency_ns:
            raise ConfigError("remote latency below local latency")
        if self.local_bandwidth_gbps <= 0 or self.throttle_step_gbps <= 0:
            raise ConfigError("bandwidths must be positive")


@dataclass(frozen=True)
class EmulationPlan:
    """The parameters the emulator would program.

    Attributes:
        latency_scale: the Quartz scale factor NVM/DRAM applied to each
            epoch's stall time.
        use_remote_memory: whether NUMA remote memory alone reaches the
            target latency (the paper's case: 2.5-2.6x).
        residual_delay_factor: extra stall multiplier injected on top of
            remote accesses (0 when remote memory suffices).
        throttle_register_gbps: the bandwidth cap programmed into the
            thermal-control register.
        effective_latency_ns: latency the emulated application observes.
        effective_bandwidth_gbps: bandwidth the application observes.
    """

    latency_scale: float
    use_remote_memory: bool
    residual_delay_factor: float
    throttle_register_gbps: float
    effective_latency_ns: float
    effective_bandwidth_gbps: float


def plan_emulation(
    host: HostProfile = HostProfile(),
    target: DeviceSpec = NVM_SPEC,
    baseline: DeviceSpec = DRAM_SPEC,
) -> EmulationPlan:
    """Derive the §5.1 emulation parameters for an NVM target.

    Args:
        host: the NUMA machine profile.
        target: the NVM spec to emulate (Table 2's right column).
        baseline: the DRAM spec the scale factor is defined against.

    Returns:
        The register/delay settings and the effective device the
        emulated application sees.
    """
    latency_scale = target.read_latency_ns / baseline.read_latency_ns
    remote_scale = host.remote_latency_ns / host.local_latency_ns
    if remote_scale >= latency_scale:
        # Remote memory alone is at least as slow as the target: use it
        # directly (the paper's configuration).
        use_remote = True
        residual = 0.0
        effective_latency = host.remote_latency_ns
    else:
        use_remote = True
        residual = latency_scale / remote_scale - 1.0
        effective_latency = host.remote_latency_ns * (1.0 + residual)

    # Largest throttle step not exceeding the target bandwidth.
    steps = int(target.read_bandwidth_gbps / host.throttle_step_gbps)
    throttle = max(host.throttle_step_gbps, steps * host.throttle_step_gbps)
    throttle = min(throttle, host.local_bandwidth_gbps)
    return EmulationPlan(
        latency_scale=latency_scale,
        use_remote_memory=use_remote,
        residual_delay_factor=residual,
        throttle_register_gbps=throttle,
        effective_latency_ns=effective_latency,
        effective_bandwidth_gbps=throttle,
    )


def inject_delays(stall_ns_per_epoch: List[float], plan: EmulationPlan) -> List[float]:
    """Quartz's per-epoch delay injection.

    Each epoch whose measured stall time is ``S`` gets an injected delay
    of ``S x residual_delay_factor`` (zero when remote memory already
    matches the target), so the thread's observed epoch time stretches
    exactly as if every miss had the target latency.

    Args:
        stall_ns_per_epoch: measured CPU stall time per epoch.
        plan: the emulation plan.

    Returns:
        The injected delay per epoch, in ns.
    """
    factor = plan.residual_delay_factor
    return [max(0.0, stall) * factor for stall in stall_ns_per_epoch]


def emulated_epoch_times(
    epoch_ns: float, stall_ns_per_epoch: List[float], plan: EmulationPlan
) -> List[float]:
    """Observed wall time of each epoch under emulation."""
    delays = inject_delays(stall_ns_per_epoch, plan)
    return [epoch_ns + delay for delay in delays]


def emulation_error(plan: EmulationPlan, target: DeviceSpec = NVM_SPEC) -> dict:
    """How far the emulated device is from the target (the accuracy
    check researchers run against real Quartz)."""
    return {
        "latency_error": abs(plan.effective_latency_ns - target.read_latency_ns)
        / target.read_latency_ns,
        "bandwidth_error": abs(
            plan.effective_bandwidth_gbps - target.read_bandwidth_gbps
        )
        / target.read_bandwidth_gbps,
    }
