"""Memory device model: cost of bulk access batches plus traffic counters.

A *batch* is the unit of cost in the simulation: "16 GC threads trace
40 000 objects resident on NVM" or "8 mutator cores stream 10 GB out of
DRAM".  Its duration is the maximum of three components:

* a CPU component (work that would happen even with infinite memory),
* a latency component: ``random_accesses x latency`` divided by the number
  of threads times the per-thread memory-level parallelism, and
* a bandwidth component: sequential bytes divided by the device's
  sustained bandwidth (threads do not help here — the paper stresses that
  Parallel Scavenge's 16 threads saturate NVM's 10 GB/s).

This mirrors what the paper's NUMA emulator enforces: a 2.6x latency
factor for latency-bound phases and a thermal-register bandwidth cap for
throughput-bound phases (§5.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.config import CACHE_LINE_BYTES, DeviceSpec


@dataclass
class AccessKind:
    """Constants naming the two access directions."""

    READ = False
    WRITE = True


@dataclass
class TrafficCounters:
    """Cumulative traffic on one device."""

    read_bytes: float = 0.0
    write_bytes: float = 0.0
    random_reads: int = 0
    random_writes: int = 0

    @property
    def read_lines(self) -> float:
        """Cache lines read (for the energy model)."""
        return self.read_bytes / CACHE_LINE_BYTES

    @property
    def write_lines(self) -> float:
        """Cache lines written (for the energy model)."""
        return self.write_bytes / CACHE_LINE_BYTES


@dataclass
class MemoryDevice:
    """One memory technology instance with a capacity and counters.

    Attributes:
        spec: latency/bandwidth/energy parameters.
        capacity_bytes: installed capacity (drives static power).
    """

    spec: DeviceSpec
    capacity_bytes: int
    counters: TrafficCounters = field(default_factory=TrafficCounters)

    def __post_init__(self) -> None:
        # batch_ns is the innermost arithmetic of the whole simulator;
        # resolve the spec's derived rates once instead of per batch.
        self._read_latency_ns = self.spec.read_latency_ns
        self._write_latency_ns = self.spec.write_latency_ns
        self._bytes_per_ns_read = self.spec.bytes_per_ns_read()
        self._bytes_per_ns_write = self.spec.bytes_per_ns_write()

    def batch_ns(
        self,
        read_bytes: float = 0.0,
        write_bytes: float = 0.0,
        random_reads: int = 0,
        random_writes: int = 0,
        threads: int = 1,
        mlp: int = 1,
    ) -> float:
        """Duration in ns of a batch on this device, without recording it.

        Args:
            read_bytes: sequentially streamed bytes read.
            write_bytes: sequentially streamed bytes written.
            random_reads: latency-bound (pointer-chasing) read count.
            random_writes: latency-bound write count.
            threads: workers issuing the batch.
            mlp: outstanding misses per worker.
        """
        parallelism = max(1, threads) * max(1, mlp)
        latency_ns = (
            random_reads * self._read_latency_ns
            + random_writes * self._write_latency_ns
        ) / parallelism
        bandwidth_ns = (
            read_bytes / self._bytes_per_ns_read
            + write_bytes / self._bytes_per_ns_write
        )
        return max(latency_ns, bandwidth_ns)

    def charge_row(
        self,
        read_bytes: float,
        write_bytes: float,
        random_reads: int,
        random_writes: int,
        parallelism: int,
    ) -> float:
        """Duration of a batch *and* its counter update, in one call.

        Exactly :meth:`batch_ns` followed by :meth:`record` — the
        vectorised cost plane settles shuffle-wave rows through this to
        shave one method dispatch per row off the hot loop.
        ``parallelism`` is :meth:`batch_ns`'s ``max(1, threads) *
        max(1, mlp)``, hoisted out of the per-row path (it is constant
        across a wave).
        """
        latency_ns = (
            random_reads * self._read_latency_ns
            + random_writes * self._write_latency_ns
        ) / parallelism
        bandwidth_ns = (
            read_bytes / self._bytes_per_ns_read
            + write_bytes / self._bytes_per_ns_write
        )
        counters = self.counters
        counters.random_reads += random_reads
        counters.random_writes += random_writes
        counters.read_bytes += read_bytes + random_reads * CACHE_LINE_BYTES
        counters.write_bytes += write_bytes + random_writes * CACHE_LINE_BYTES
        return latency_ns if latency_ns > bandwidth_ns else bandwidth_ns

    def record(
        self,
        read_bytes: float = 0.0,
        write_bytes: float = 0.0,
        random_reads: int = 0,
        random_writes: int = 0,
    ) -> None:
        """Add a batch's traffic to the counters.

        Random (latency-bound) accesses also move one cache line each, so
        they contribute to byte counters for the energy model.
        """
        self.counters.random_reads += random_reads
        self.counters.random_writes += random_writes
        self.counters.read_bytes += read_bytes + random_reads * CACHE_LINE_BYTES
        self.counters.write_bytes += write_bytes + random_writes * CACHE_LINE_BYTES

    def dynamic_energy_pj(self) -> float:
        """Dynamic energy consumed so far, in pJ."""
        return (
            self.counters.read_lines * self.spec.read_energy_pj
            + self.counters.write_lines * self.spec.write_energy_pj
        )

    def static_power_w(self) -> float:
        """Background + refresh power for the installed capacity, in W."""
        gb = self.capacity_bytes / (1024**3)
        return gb * self.spec.static_mw_per_gb / 1e3
