"""The simulated machine: clock + devices + bandwidth traces + energy.

Every cost in the simulation flows through :meth:`Machine.run_batch`:
the heap allocator, the GC phases and the Spark mutator all describe
their work as per-device traffic, and the machine converts that into
elapsed nanoseconds (devices operate concurrently, so a phase touching
both DRAM and NVM takes the maximum of the two device times) and into
counter updates that later feed the energy model and Figure 8's
bandwidth series.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

from repro.config import (
    DISK_SPEC,
    DRAM_SPEC,
    NVM_SPEC,
    DeviceKind,
    SystemConfig,
)
from repro.memory.bandwidth import BandwidthTracker
from repro.memory.clock import SimClock
from repro.memory.device import MemoryDevice
from repro.memory.energy import EnergyMeter


class Traffic:
    """Traffic issued to one device within a batch.

    A ``__slots__`` class rather than a dataclass: every batch the
    simulator charges allocates at least one, so the ``__dict__`` per
    instance and the generated ``__init__`` overhead are measurable.
    """

    __slots__ = ("read_bytes", "write_bytes", "random_reads", "random_writes")

    def __init__(
        self,
        read_bytes: float = 0.0,
        write_bytes: float = 0.0,
        random_reads: int = 0,
        random_writes: int = 0,
    ) -> None:
        self.read_bytes = read_bytes
        self.write_bytes = write_bytes
        self.random_reads = random_reads
        self.random_writes = random_writes

    def merged(self, other: "Traffic") -> "Traffic":
        """Return the sum of two traffic descriptions."""
        return Traffic(
            read_bytes=self.read_bytes + other.read_bytes,
            write_bytes=self.write_bytes + other.write_bytes,
            random_reads=self.random_reads + other.random_reads,
            random_writes=self.random_writes + other.random_writes,
        )

    @property
    def is_empty(self) -> bool:
        """True when no traffic is described."""
        return (
            self.read_bytes == 0
            and self.write_bytes == 0
            and self.random_reads == 0
            and self.random_writes == 0
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Traffic):
            return NotImplemented
        return (
            self.read_bytes == other.read_bytes
            and self.write_bytes == other.write_bytes
            and self.random_reads == other.random_reads
            and self.random_writes == other.random_writes
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Traffic(read_bytes={self.read_bytes!r}, "
            f"write_bytes={self.write_bytes!r}, "
            f"random_reads={self.random_reads!r}, "
            f"random_writes={self.random_writes!r})"
        )


class TrafficSet:
    """A mutable batch of per-device traffic, built up by GC phases."""

    __slots__ = ("per_device",)

    def __init__(self, per_device: Optional[Dict[DeviceKind, Traffic]] = None) -> None:
        self.per_device: Dict[DeviceKind, Traffic] = (
            {} if per_device is None else per_device
        )

    def add(
        self,
        device: DeviceKind,
        read_bytes: float = 0.0,
        write_bytes: float = 0.0,
        random_reads: int = 0,
        random_writes: int = 0,
    ) -> None:
        """Accumulate traffic for ``device``."""
        current = self.per_device.get(device)
        if current is None:
            current = self.per_device[device] = Traffic()
        current.read_bytes += read_bytes
        current.write_bytes += write_bytes
        current.random_reads += random_reads
        current.random_writes += random_writes


class Machine:
    """One simulated node: devices sized per the configuration.

    Attributes:
        config: the system configuration.
        clock: simulated time.
        devices: DRAM, NVM and DISK device models.
        bandwidth: windowed traces for Figure 8.
    """

    def __init__(self, config: SystemConfig, bandwidth_window_ns: float = 1e9) -> None:
        self.config = config
        self.clock = SimClock()
        nvm_spec = NVM_SPEC
        if config.nvm_latency_factor != 1.0 or config.nvm_bandwidth_factor != 1.0:
            import dataclasses

            nvm_spec = dataclasses.replace(
                NVM_SPEC,
                read_latency_ns=NVM_SPEC.read_latency_ns
                * config.nvm_latency_factor,
                write_latency_ns=NVM_SPEC.write_latency_ns
                * config.nvm_latency_factor,
                read_bandwidth_gbps=NVM_SPEC.read_bandwidth_gbps
                * config.nvm_bandwidth_factor,
                write_bandwidth_gbps=NVM_SPEC.write_bandwidth_gbps
                * config.nvm_bandwidth_factor,
            )
        self.devices: Dict[DeviceKind, MemoryDevice] = {
            DeviceKind.DRAM: MemoryDevice(DRAM_SPEC, config.dram_bytes),
            DeviceKind.NVM: MemoryDevice(nvm_spec, config.nvm_bytes),
            DeviceKind.DISK: MemoryDevice(DISK_SPEC, 0),
        }
        self.bandwidth = BandwidthTracker(window_ns=bandwidth_window_ns)
        #: device -> bound charge_row, resolved once (devices are fixed
        #: for the machine's lifetime); run_rows' per-row dispatch.
        self._row_charger = {
            kind: dev.charge_row for kind, dev in self.devices.items()
        }
        self._energy = EnergyMeter(
            self.devices, static_factor=config.static_energy_factor
        )
        #: optional NVM throttle schedule (duck-typed: must provide
        #: ``apply(start_ns, device_ns) -> float``); installed by
        #: :class:`~repro.faults.injector.FaultInjector` to model the
        #: NUMA emulator's transient thermal bandwidth collapse.
        self.nvm_throttle = None

    # -- cost charging ---------------------------------------------------

    def run_batch(
        self,
        traffic: Mapping[DeviceKind, Traffic],
        threads: int = 1,
        mlp: Optional[int] = None,
        cpu_ns: float = 0.0,
    ) -> float:
        """Charge a batch of concurrent per-device traffic.

        Args:
            traffic: traffic description per device; devices proceed in
                parallel, so batch time is the max over devices (and the
                CPU component).
            threads: worker count for latency-bound components.
            mlp: outstanding misses per worker (defaults to the config).
            cpu_ns: pure-CPU time of the batch, already divided by however
                many cores the caller runs on.

        Returns:
            The batch duration in nanoseconds (the clock is advanced).
        """
        effective_mlp = self.config.mlp if mlp is None else mlp
        start_ns = self.clock.now_ns
        duration = float(cpu_ns)
        for kind, t in traffic.items():
            if (
                t.read_bytes == 0
                and t.write_bytes == 0
                and t.random_reads == 0
                and t.random_writes == 0
            ):
                continue
            device_ns = self.devices[kind].batch_ns(
                t.read_bytes,
                t.write_bytes,
                t.random_reads,
                t.random_writes,
                threads,
                effective_mlp,
            )
            if kind is DeviceKind.NVM and self.nvm_throttle is not None:
                device_ns = self.nvm_throttle.apply(start_ns, device_ns)
            if device_ns > duration:
                duration = device_ns
        for kind, t in traffic.items():
            if (
                t.read_bytes == 0
                and t.write_bytes == 0
                and t.random_reads == 0
                and t.random_writes == 0
            ):
                continue
            self.devices[kind].record(
                t.read_bytes, t.write_bytes, t.random_reads, t.random_writes
            )
            read_total = t.read_bytes + t.random_reads * 64
            write_total = t.write_bytes + t.random_writes * 64
            if read_total > 0:
                self.bandwidth.record(kind, False, read_total, start_ns, duration)
            if write_total > 0:
                self.bandwidth.record(kind, True, write_total, start_ns, duration)
        self.clock.advance(duration)
        return duration

    def run_rows(
        self,
        rows,
        threads: int = 1,
        mlp: Optional[int] = None,
    ) -> float:
        """Charge a sequence of single-device accesses back to back.

        Each row is ``(device, read_bytes, write_bytes, random_reads,
        random_writes, cpu_ns)``.  Equivalent to one :meth:`access` call
        per row — the same per-row duration arithmetic, the same clock
        advances, counter updates and bandwidth-window deposits in the
        same order — with the per-call scaffolding (a ``Traffic``, a
        dict, two loops) fused into a single loop and the bandwidth
        deposits settled through one
        :meth:`~repro.memory.bandwidth.BandwidthTracker.record_rows`
        call.  The vectorised cost plane settles shuffle waves through
        this; ``tests/test_costplane.py`` proves the equivalence.

        Returns:
            The clock advance across all rows, in nanoseconds.
        """
        effective_mlp = self.config.mlp if mlp is None else mlp
        parallelism = max(1, threads) * max(1, effective_mlp)
        chargers = self._row_charger
        clock = self.clock
        nvm = DeviceKind.NVM
        throttle = self.nvm_throttle
        bw_rows = []
        bw_append = bw_rows.append
        # The clock accumulates locally with the same per-row `+=`
        # sequence advance() would perform, then lands in one write —
        # bit-identical floats, one attribute store instead of one
        # method call per row.
        start = now = clock.now_ns
        for (
            device,
            read_bytes,
            write_bytes,
            random_reads,
            random_writes,
            cpu_ns,
        ) in rows:
            duration = float(cpu_ns)
            if read_bytes or write_bytes or random_reads or random_writes:
                device_ns = chargers[device](
                    read_bytes,
                    write_bytes,
                    random_reads,
                    random_writes,
                    parallelism,
                )
                if device is nvm and throttle is not None:
                    device_ns = throttle.apply(now, device_ns)
                if device_ns > duration:
                    duration = device_ns
                read_total = read_bytes + random_reads * 64
                write_total = write_bytes + random_writes * 64
                if read_total > 0:
                    bw_append((device, False, read_total, now, duration))
                if write_total > 0:
                    bw_append((device, True, write_total, now, duration))
            if duration < 0:
                raise ValueError(f"cannot advance the clock by {duration} ns")
            now += duration
        clock._now_ns = now
        if bw_rows:
            self.bandwidth.record_rows(bw_rows)
        return now - start

    def access(
        self,
        device: DeviceKind,
        read_bytes: float = 0.0,
        write_bytes: float = 0.0,
        random_reads: int = 0,
        random_writes: int = 0,
        threads: int = 1,
        mlp: Optional[int] = None,
        cpu_ns: float = 0.0,
    ) -> float:
        """Charge a single-device batch (see :meth:`run_batch`)."""
        return self.run_batch(
            {
                device: Traffic(
                    read_bytes=read_bytes,
                    write_bytes=write_bytes,
                    random_reads=random_reads,
                    random_writes=random_writes,
                )
            },
            threads=threads,
            mlp=mlp,
            cpu_ns=cpu_ns,
        )

    def transfer(
        self,
        src: DeviceKind,
        dst: DeviceKind,
        nbytes: float,
        threads: int = 1,
    ) -> float:
        """Charge a streamed copy of ``nbytes`` from ``src`` to ``dst``."""
        traffic = TrafficSet()
        traffic.add(src, read_bytes=nbytes)
        traffic.add(dst, write_bytes=nbytes)
        return self.run_batch(traffic.per_device, threads=threads)

    # -- metrics ---------------------------------------------------------

    @property
    def elapsed_s(self) -> float:
        """Total simulated elapsed time in seconds."""
        return self.clock.now_s

    def energy_j(self) -> float:
        """Total memory energy so far, in joules."""
        return self._energy.total_j(self.elapsed_s)

    def energy_breakdown(self):
        """Per-device static/dynamic energy breakdown."""
        return self._energy.breakdown(self.elapsed_s)
