"""Probabilistic chunked interleaving of DRAM and NVM (the *unmanaged*
baseline, §5.2).

The paper's strongest non-Panthera hybrid baseline divides the old
generation's virtual address range into 1 GB chunks and maps each chunk to
DRAM with probability equal to the system's DRAM ratio, and to NVM
otherwise — "a common practice to utilize the combined bandwidth of DRAM
and NVM".
"""

from __future__ import annotations

import random
from typing import List

from repro.config import DeviceKind


class ChunkMap:
    """Deterministic random mapping of an address range onto DRAM/NVM chunks."""

    def __init__(
        self,
        base: int,
        size: int,
        chunk_bytes: int,
        dram_probability: float,
        seed: int = 42,
    ) -> None:
        """Create the mapping.

        Args:
            base: first address of the mapped range.
            size: length of the mapped range in bytes.
            chunk_bytes: chunk granularity (paper: 1 GB).
            dram_probability: probability that a chunk is DRAM-backed.
            seed: RNG seed, so a configuration is reproducible.
        """
        if size <= 0 or chunk_bytes <= 0:
            raise ValueError("size and chunk_bytes must be positive")
        if not 0.0 <= dram_probability <= 1.0:
            raise ValueError("dram_probability must be in [0, 1]")
        self.base = base
        self.size = size
        self.chunk_bytes = chunk_bytes
        rng = random.Random(seed)
        n_chunks = (size + chunk_bytes - 1) // chunk_bytes
        self._chunks: List[DeviceKind] = [
            DeviceKind.DRAM if rng.random() < dram_probability else DeviceKind.NVM
            for _ in range(n_chunks)
        ]

    def device_of(self, addr: int) -> DeviceKind:
        """Device backing the chunk that contains ``addr``."""
        if not self.base <= addr < self.base + self.size:
            raise ValueError(f"address {addr:#x} outside the mapped range")
        return self._chunks[(addr - self.base) // self.chunk_bytes]

    def split_range(self, addr: int, length: int) -> List[tuple]:
        """Split ``[addr, addr+length)`` into per-device contiguous pieces.

        Returns:
            List of ``(DeviceKind, nbytes)`` pairs in address order; useful
            for charging a large array that straddles chunk boundaries.
        """
        if length < 0:
            raise ValueError("length must be non-negative")
        pieces = []
        pos = addr
        end = addr + length
        while pos < end:
            device = self.device_of(pos)
            chunk_end = self.base + (
                ((pos - self.base) // self.chunk_bytes) + 1
            ) * self.chunk_bytes
            take = min(end, chunk_end) - pos
            if pieces and pieces[-1][0] is device:
                pieces[-1] = (device, pieces[-1][1] + take)
            else:
                pieces.append((device, take))
            pos += take
        return pieces

    def dram_fraction(self) -> float:
        """Realised fraction of chunks mapped to DRAM."""
        if not self._chunks:
            return 0.0
        return sum(c is DeviceKind.DRAM for c in self._chunks) / len(self._chunks)
