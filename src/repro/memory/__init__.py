"""Hybrid-memory substrate: simulated devices, clock, energy and bandwidth.

This package models the physical half of the paper's emulator (§5.1): a
DRAM device and an NVM device with the latency/bandwidth parameters of
Table 2, a nanosecond clock, per-device access counters feeding the energy
model, and a windowed bandwidth tracker used to regenerate Figure 8.
"""

from repro.memory.bandwidth import BandwidthSample, BandwidthTracker
from repro.memory.clock import SimClock
from repro.memory.device import AccessKind, MemoryDevice
from repro.memory.energy import EnergyBreakdown, EnergyMeter
from repro.memory.interleave import ChunkMap
from repro.memory.machine import Machine

__all__ = [
    "AccessKind",
    "BandwidthSample",
    "BandwidthTracker",
    "ChunkMap",
    "EnergyBreakdown",
    "EnergyMeter",
    "Machine",
    "MemoryDevice",
    "SimClock",
]
