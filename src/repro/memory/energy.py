"""Memory energy accounting (paper §5.1).

Total memory energy is the sum, over devices, of

* static energy: installed capacity x static power x elapsed time (DRAM
  background + refresh; negligible for NVM), and
* dynamic energy: cache lines moved x per-line energy (31 200 pJ per NVM
  cache-line write; cheaper-than-DRAM NVM reads because they are
  non-destructive).

The paper reports *memory* energy only, so CPU energy is out of scope.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping

from repro.config import DeviceKind
from repro.memory.device import MemoryDevice


@dataclass(frozen=True)
class EnergyBreakdown:
    """Energy consumed by one device, in joules."""

    static_j: float
    dynamic_j: float

    @property
    def total_j(self) -> float:
        """Static plus dynamic energy."""
        return self.static_j + self.dynamic_j


class EnergyMeter:
    """Computes the energy breakdown from device counters and elapsed time."""

    def __init__(
        self,
        devices: Mapping[DeviceKind, MemoryDevice],
        static_factor: float = 1.0,
    ) -> None:
        """Create the meter.

        Args:
            devices: the machine's devices.
            static_factor: multiplier on static power; down-scaled runs
                use ``1/scale`` to restore the full-scale static/dynamic
                balance (see ``SystemConfig.static_energy_factor``).
        """
        self._devices = dict(devices)
        self._static_factor = static_factor

    def breakdown(self, elapsed_s: float) -> Dict[DeviceKind, EnergyBreakdown]:
        """Per-device energy given the run's elapsed simulated time."""
        if elapsed_s < 0:
            raise ValueError("elapsed_s must be non-negative")
        result: Dict[DeviceKind, EnergyBreakdown] = {}
        for kind, device in self._devices.items():
            result[kind] = EnergyBreakdown(
                static_j=device.static_power_w() * elapsed_s * self._static_factor,
                dynamic_j=device.dynamic_energy_pj() / 1e12,
            )
        return result

    def total_j(self, elapsed_s: float) -> float:
        """Total memory energy in joules."""
        return sum(b.total_j for b in self.breakdown(elapsed_s).values())
