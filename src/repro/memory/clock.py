"""A simulated nanosecond clock.

All time in the simulation is *charged*, never measured: mutator work and
GC phases compute their cost from the device model and advance this clock.
"""

from __future__ import annotations


class SimClock:
    """Monotonic simulated time in nanoseconds."""

    def __init__(self) -> None:
        self._now_ns: float = 0.0

    @property
    def now_ns(self) -> float:
        """Current simulated time in nanoseconds."""
        return self._now_ns

    @property
    def now_s(self) -> float:
        """Current simulated time in seconds."""
        return self._now_ns / 1e9

    def advance(self, ns: float) -> float:
        """Advance the clock by ``ns`` nanoseconds and return the new time.

        Args:
            ns: non-negative duration to add.

        Raises:
            ValueError: if ``ns`` is negative.
        """
        if ns < 0:
            raise ValueError(f"cannot advance the clock by {ns} ns")
        self._now_ns += ns
        return self._now_ns

    def reset(self) -> None:
        """Reset simulated time to zero."""
        self._now_ns = 0.0
