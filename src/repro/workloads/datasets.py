"""Synthetic dataset generators standing in for the paper's inputs.

The paper's datasets (Wikipedia link dumps, the Notre Dame web graph,
KDD 2012; Table 4) are not available offline, so we generate synthetic
equivalents with matching *shape*: power-law-ish degree graphs for the
graph workloads and labelled dense feature vectors for the ML workloads.

Byte weights are the paper's on-disk sizes multiplied by a Java
memory-bloat factor — a 1.2 GB text dump becomes roughly 10 GB of Java
objects once parsed into boxed tuples and strings, which is exactly why
the paper observes "a regular RDD consumes 10-30 GB" (§5.2).  The
simulated record count stays in the thousands; each record's byte weight
is ``total_bytes / n_records``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, List, Optional, Tuple

from repro.config import GiB, MiB
from repro.spark.partition import Record


@dataclass(frozen=True)
class DatasetSpec:
    """One input dataset.

    Attributes:
        name: unique name (sources are cached per name).
        records: the data plane.
        num_partitions: input split count.
        total_bytes: in-memory byte weight of the whole dataset.
    """

    name: str
    records: Tuple[Record, ...]
    num_partitions: int
    total_bytes: float

    @property
    def bytes_per_record(self) -> float:
        """Average byte weight of one record."""
        return self.total_bytes / max(1, len(self.records))


def powerlaw_graph(
    name: str,
    n_vertices: int,
    n_edges: int,
    total_bytes: float,
    num_partitions: int = 4,
    seed: int = 7,
) -> DatasetSpec:
    """A directed graph with skewed (preferential-attachment-ish) in-degrees.

    Every vertex gets at least one outgoing edge so iterative graph
    algorithms reach the whole graph; remaining edges prefer low vertex
    ids, giving the heavy-hitter keys real web graphs have.
    """
    if n_vertices < 2:
        raise ValueError("need at least two vertices")
    rng = random.Random(seed)
    edges: List[Record] = []
    for src in range(n_vertices):
        dst = rng.randrange(n_vertices - 1)
        if dst >= src:
            dst += 1
        edges.append((src, dst))
    while len(edges) < n_edges:
        src = rng.randrange(n_vertices)
        # Preferential-ish target: squaring biases towards low ids.
        dst = int(rng.random() ** 2 * n_vertices)
        if dst != src:
            edges.append((src, dst))
    return DatasetSpec(
        name=name,
        records=tuple(edges),
        num_partitions=num_partitions,
        total_bytes=total_bytes,
    )


def labeled_points(
    name: str,
    n_points: int,
    dim: int,
    n_classes: int,
    total_bytes: float,
    num_partitions: int = 4,
    seed: int = 11,
) -> DatasetSpec:
    """Labelled dense feature vectors (K-Means / LR / Naive Bayes input).

    Points cluster around ``n_classes`` separated centres so clustering
    and classification actually have structure to find.
    """
    rng = random.Random(seed)
    centers = [
        tuple(rng.uniform(-10.0, 10.0) for _ in range(dim))
        for _ in range(n_classes)
    ]
    records: List[Record] = []
    for i in range(n_points):
        label = i % n_classes
        center = centers[label]
        vec = tuple(c + rng.gauss(0.0, 1.0) for c in center)
        records.append((label, vec))
    return DatasetSpec(
        name=name,
        records=tuple(records),
        num_partitions=num_partitions,
        total_bytes=total_bytes,
    )


def from_edge_list(
    path,
    total_bytes: float,
    name: Optional[str] = None,
    num_partitions: int = 4,
    comment_prefix: str = "#",
) -> DatasetSpec:
    """Load a whitespace-separated edge-list file as a graph dataset.

    This is how real inputs (SNAP/KONECT dumps like the paper's
    Notre Dame webgraph) plug into the workloads: parse the edges, assign
    the in-memory byte weight, and hand the spec to any graph workload's
    ``dataset=`` parameter.  A small example graph ships in
    ``data/karate.edges``.

    Args:
        path: file with one ``src dst`` pair per line.
        total_bytes: the in-memory byte weight to assign the dataset.
        name: dataset name (defaults to the file name).
        num_partitions: input split count.
        comment_prefix: lines starting with this are skipped.
    """
    import os

    records: List[Record] = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if not line or line.startswith(comment_prefix):
                continue
            src_text, dst_text, *_ = line.split()
            records.append((int(src_text), int(dst_text)))
    if not records:
        raise ValueError(f"no edges found in {path}")
    return DatasetSpec(
        name=name or os.path.basename(str(path)),
        records=tuple(records),
        num_partitions=num_partitions,
        total_bytes=total_bytes,
    )


# -- paper-shaped dataset factories (Table 4 x Java bloat) -----------------
#
# Each factory is memoised per process on its exact (scale, seed)
# arguments — the same key the dataset *name* embeds — so a matrix of N
# policy cells generates each input once instead of N times.  This is
# safe to share because DatasetSpec is frozen and its records tuple is
# immutable, and it cannot go stale because generation is a pure
# function of (scale, seed).  ``typed=True`` keeps ``scale=1`` and
# ``scale=1.0`` distinct: the name embeds ``repr(scale)``, and the
# name-keyed source-RDD cache in SparkContext must see the same name the
# uncached factory would have produced.  The memo key never needs to
# reach the experiment-engine fingerprint separately: ExperimentPoint
# already fingerprints (workload, scale, workload_kwargs), which
# determines it.

_FACTORY_CACHES: Dict[str, "lru_cache"] = {}


def _memoised(factory):
    cached = lru_cache(maxsize=None, typed=True)(factory)
    _FACTORY_CACHES[factory.__name__] = cached
    return cached


def dataset_cache_info() -> Dict[str, Tuple[int, int]]:
    """Per-factory ``(hits, misses)`` of the dataset memo caches."""
    return {
        name: (cached.cache_info().hits, cached.cache_info().misses)
        for name, cached in _FACTORY_CACHES.items()
    }


def clear_dataset_caches() -> None:
    """Drop every memoised dataset (tests and memory-pressure escape)."""
    for cached in _FACTORY_CACHES.values():
        cached.cache_clear()


@_memoised
def pagerank_graph(scale: float = 1.0, seed: int = 7) -> DatasetSpec:
    """Wikipedia-German-shaped graph: 1.2 GB on disk, ~10 GB in memory."""
    return powerlaw_graph(
        name=f"wiki-de-{scale}-{seed}",
        n_vertices=max(40, int(1_200 * scale)),
        n_edges=max(120, int(4_800 * scale)),
        total_bytes=1.2 * GiB * 8 * scale,
        seed=seed,
    )


@_memoised
def wiki_en_graph(scale: float = 1.0, seed: int = 9) -> DatasetSpec:
    """Wikipedia-English-shaped graph for the GraphX programs: 5.7 GB on
    disk, ~14 GB in memory (GraphX's columnar vertex/edge storage bloats
    less than boxed tuples)."""
    return powerlaw_graph(
        name=f"wiki-en-{scale}-{seed}",
        n_vertices=max(40, int(1_500 * scale)),
        n_edges=max(150, int(6_000 * scale)),
        total_bytes=5.7 * GiB * 2.5 * scale,
        seed=seed,
    )


@_memoised
def notre_dame_graph(scale: float = 1.0, seed: int = 13) -> DatasetSpec:
    """Notre-Dame-webgraph-shaped input for Transitive Closure: 21 MB on
    disk.  TC's memory pressure comes from the closure itself.

    Unlike the other datasets, the *vertex count stays fixed* under
    scaling and only byte weights shrink: the closure's record count is
    quadratic in vertices, so scaling vertices down would deflate the
    closure-to-heap ratio superlinearly and lose the workload's memory
    pressure entirely.  With fixed structure, closure bytes scale
    linearly with the heap — the ratio the experiments depend on.
    """
    return powerlaw_graph(
        name=f"notre-dame-{scale}-{seed}",
        n_vertices=150,
        n_edges=400,
        total_bytes=21 * MiB * 40 * scale,
        seed=seed,
    )


@_memoised
def ml_points(scale: float = 1.0, seed: int = 11) -> DatasetSpec:
    """Wikipedia-English-derived feature vectors for K-Means/LR: 5.7 GB on
    disk, ~28 GB in memory."""
    return labeled_points(
        name=f"ml-points-{scale}-{seed}",
        n_points=max(60, int(2_000 * scale)),
        dim=8,
        n_classes=4,
        total_bytes=5.7 * GiB * 5 * scale,
        seed=seed,
    )


@_memoised
def kdd_points(scale: float = 1.0, seed: int = 17) -> DatasetSpec:
    """KDD-2012-shaped classification input for Naive Bayes: 10.1 GB on
    disk, ~30 GB in memory."""
    return labeled_points(
        name=f"kdd12-{scale}-{seed}",
        n_points=max(60, int(2_500 * scale)),
        dim=8,
        n_classes=2,
        total_bytes=10.1 * GiB * 3 * scale,
        seed=seed,
    )
