"""MLlib Naive Bayes classifier training (BC in Table 4).

A single pass: the training set is persisted and aggregated once.  With
no loop in the program, §3 initially tags everything NVM; the all-NVM
rule then flips every tag to DRAM so the available DRAM is not wasted.
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

from repro.spark import columnar as _columnar
from repro.spark.program import Program
from repro.spark.storage import StorageLevel
from repro.workloads.datasets import DatasetSpec, kdd_points
from repro.workloads.pagerank import WorkloadSpec

Vector = Tuple[float, ...]


def _identity(record):
    return record


def _pairify(record):
    """(label, vec) -> (label, (vec, 1)): the aggregation seed."""
    return (record[0], (record[1], 1))


def _merge_class_stats(a, b):
    vec_a, count_a = a
    vec_b, count_b = b
    return (tuple(x + y for x, y in zip(vec_a, vec_b)), count_a + count_b)


def _pairify_kernel(batch):
    mat = _columnar.vec_matrix(batch.values)
    if mat is None:
        return None
    return _columnar.ColumnBatch(
        batch.keys,
        _columnar.PairColumn(batch.values, _columnar.ones_int(len(mat))),
    )


_columnar.register_map_kernel(_identity, _columnar.identity_kernel)
_columnar.register_map_kernel(_pairify, _pairify_kernel)
_columnar.register_reduce_kernel(
    _merge_class_stats, _columnar.make_vec_count_merge_kernel()
)


def train_model(class_stats, total: int):
    """Per-class priors and feature means from aggregated sums."""
    model = {}
    for label, (vec_sum, count) in class_stats:
        prior = math.log(count / total) if total else 0.0
        means = tuple(x / count for x in vec_sum)
        model[label] = {"log_prior": prior, "means": means, "count": count}
    return model


def build_naive_bayes(
    scale: float = 1.0,
    seed: int = 17,
    dataset: Optional[DatasetSpec] = None,
) -> WorkloadSpec:
    """Build the Naive Bayes training program."""
    ds = dataset or kdd_points(scale=scale, seed=seed)

    p = Program()
    lines = p.let("lines", p.source(ds))
    training = p.let(
        "training",
        lines.map(_identity).persist(StorageLevel.MEMORY_AND_DISK),
    )
    stats = p.let(
        "stats",
        training.map(_pairify).reduce_by_key(
            _merge_class_stats, size_factor=0.05
        ),
    )
    p.action(stats, "collect", result_key="class_stats")
    p.action(training, "count", result_key="n_points")
    return WorkloadSpec(
        name="BC",
        program=p,
        dataset=ds,
        iterations=1,
        description="MLlib Naive Bayes classifier training",
    )
