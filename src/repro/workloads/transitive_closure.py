"""Spark Transitive Closure (the classic Spark example).

``edges`` is persisted once and only used inside the loop (DRAM tag);
the growing ``paths`` closure is redefined every iteration
(NVM tag) — the mixed-tag workload of the evaluation.
"""

from __future__ import annotations

from typing import Optional

from repro.spark.program import Program
from repro.spark.storage import StorageLevel
from repro.workloads.datasets import DatasetSpec, notre_dame_graph
from repro.workloads.pagerank import WorkloadSpec


def _swap(record):
    a, b = record
    return (b, a)


def _compose(record):
    """joined (mid, (src, dst)) -> new path (src, dst)."""
    _, (src, dst) = record
    return (src, dst)


def build_transitive_closure(
    scale: float = 1.0,
    iterations: int = 6,
    seed: int = 13,
    dataset: Optional[DatasetSpec] = None,
) -> WorkloadSpec:
    """Build the TC program: repeated self-join until (bounded) closure."""
    ds = dataset or notre_dame_graph(scale=scale, seed=seed)

    p = Program()
    lines = p.let("lines", p.source(ds))
    edges = p.let(
        "edges",
        lines.map(lambda r: r).distinct().persist(StorageLevel.MEMORY_ONLY),
    )
    paths = p.let("paths", edges.map(lambda r: r).persist(StorageLevel.MEMORY_ONLY))
    with p.loop(iterations):
        # paths.map(swap).join(edges): (mid, src) x (mid, dst) -> (src, dst)
        paths = p.let(
            "paths",
            paths.map(_swap)
            .join(edges)
            .map(_compose)
            .union(paths)
            .distinct()
            .persist(StorageLevel.MEMORY_ONLY),
        )
        p.unpersist_prior(paths)
    p.action(paths, "count", result_key="closure_size")
    return WorkloadSpec(
        name="TC",
        program=p,
        dataset=ds,
        iterations=iterations,
        description="Transitive closure by iterated self-join",
    )
