"""Spark K-Means: cached points, per-iteration assign + aggregate.

The ``points`` RDD is persisted before the loop and only *used* inside
it, so the static analysis tags it DRAM — the canonical
frequently-accessed long-lived RDD of the paper's first category (§1.2).
Per-iteration assignments are streaming intermediates that die young.
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from repro.spark import columnar as _columnar
from repro.spark.program import Program
from repro.spark.storage import StorageLevel
from repro.workloads.datasets import DatasetSpec, ml_points
from repro.workloads.pagerank import WorkloadSpec

Vector = Tuple[float, ...]


def _sq_dist(a: Vector, b: Vector) -> float:
    # Squares via multiplication, not ``** 2``: the columnar assign
    # kernel computes ``d * d`` with numpy, and plain multiplication is
    # the one spelling both planes are guaranteed to round identically.
    return sum((x - y) * (x - y) for x, y in zip(a, b))


def _vec_add(a: Vector, b: Vector) -> Vector:
    return tuple(x + y for x, y in zip(a, b))


def _vec_scale(a: Vector, s: float) -> Vector:
    return tuple(x * s for x in a)


def closest_center(vec: Vector, centers: List[Vector]) -> int:
    """Index of the nearest centre."""
    best, best_d = 0, float("inf")
    for idx, center in enumerate(centers):
        d = _sq_dist(vec, center)
        if d < best_d:
            best, best_d = idx, d
    return best


def build_kmeans(
    scale: float = 1.0,
    iterations: int = 10,
    k: int = 4,
    seed: int = 11,
    dataset: Optional[DatasetSpec] = None,
    persist_level: StorageLevel = StorageLevel.MEMORY_ONLY,
) -> WorkloadSpec:
    """Build the K-Means program (Lloyd's algorithm).

    ``persist_level`` selects how the cached ``points`` RDD is stored —
    the GC-vs-serialization experiment flips it between ``MEMORY_ONLY``
    (object heap) and ``MEMORY_ONLY_SER`` (serialized off-heap tier).
    """
    ds = dataset or ml_points(scale=scale, seed=seed)
    dim = len(ds.records[0][1])
    rng = random.Random(seed)
    state = {
        "centers": [
            tuple(rng.uniform(-10.0, 10.0) for _ in range(dim)) for _ in range(k)
        ]
    }

    def identity(record):
        return record

    def assign(record):
        _, vec = record
        return (closest_center(vec, state["centers"]), (vec, 1))

    def merge(a, b):
        return (_vec_add(a[0], b[0]), a[1] + b[1])

    if _columnar.kernels_available():
        import numpy as np

        def assign_kernel(batch):
            mat = _columnar.vec_matrix(batch.values)
            if mat is None:
                return None
            centers = state["centers"]
            n, dim = mat.shape
            dists = np.empty((n, len(centers)))
            for cidx, center in enumerate(centers):
                diff = mat - np.asarray(center)
                terms = diff * diff
                # Left fold from 0.0 per dimension — _sq_dist's sum()
                # replayed exactly (never np.sum: pairwise summation
                # reorders the float additions).
                acc = np.zeros(n)
                for j in range(dim):
                    acc += terms[:, j]
                dists[:, cidx] = acc
            # argmin takes the first minimum, matching closest_center's
            # strict `<` scan.
            clusters = np.argmin(dists, axis=1).astype(np.int64)
            return _columnar.ColumnBatch(
                _columnar.int_column(clusters),
                _columnar.PairColumn(
                    _columnar.VecColumn(mat), _columnar.ones_int(n)
                ),
            )

        _columnar.register_map_kernel(identity, _columnar.identity_kernel)
        _columnar.register_map_kernel(assign, assign_kernel)
        _columnar.register_reduce_kernel(
            merge, _columnar.make_vec_count_merge_kernel()
        )

    def update_centers(results) -> None:
        stats = results.get("stats")
        if not stats:
            return
        centers = list(state["centers"])
        for cluster, (vec_sum, count) in stats:
            if count > 0:
                centers[cluster] = _vec_scale(vec_sum, 1.0 / count)
        state["centers"] = centers

    p = Program()
    lines = p.let("lines", p.source(ds))
    points = p.let(
        "points",
        lines.map(identity).persist(persist_level),
    )
    with p.loop(iterations):
        closest = p.let("closest", points.map(assign, size_factor=1.0))
        stats = p.let(
            "stats", closest.reduce_by_key(merge, size_factor=0.05)
        )
        p.action(stats, "collect", result_key="stats")
        p.driver(update_centers)
    p.action(points, "count", result_key="n_points")
    return WorkloadSpec(
        name="KM",
        program=p,
        dataset=ds,
        iterations=iterations,
        description="K-Means clustering over cached feature vectors",
    )
