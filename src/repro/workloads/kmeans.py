"""Spark K-Means: cached points, per-iteration assign + aggregate.

The ``points`` RDD is persisted before the loop and only *used* inside
it, so the static analysis tags it DRAM — the canonical
frequently-accessed long-lived RDD of the paper's first category (§1.2).
Per-iteration assignments are streaming intermediates that die young.
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from repro.spark.program import Program
from repro.spark.storage import StorageLevel
from repro.workloads.datasets import DatasetSpec, ml_points
from repro.workloads.pagerank import WorkloadSpec

Vector = Tuple[float, ...]


def _sq_dist(a: Vector, b: Vector) -> float:
    return sum((x - y) ** 2 for x, y in zip(a, b))


def _vec_add(a: Vector, b: Vector) -> Vector:
    return tuple(x + y for x, y in zip(a, b))


def _vec_scale(a: Vector, s: float) -> Vector:
    return tuple(x * s for x in a)


def closest_center(vec: Vector, centers: List[Vector]) -> int:
    """Index of the nearest centre."""
    best, best_d = 0, float("inf")
    for idx, center in enumerate(centers):
        d = _sq_dist(vec, center)
        if d < best_d:
            best, best_d = idx, d
    return best


def build_kmeans(
    scale: float = 1.0,
    iterations: int = 10,
    k: int = 4,
    seed: int = 11,
    dataset: Optional[DatasetSpec] = None,
    persist_level: StorageLevel = StorageLevel.MEMORY_ONLY,
) -> WorkloadSpec:
    """Build the K-Means program (Lloyd's algorithm).

    ``persist_level`` selects how the cached ``points`` RDD is stored —
    the GC-vs-serialization experiment flips it between ``MEMORY_ONLY``
    (object heap) and ``MEMORY_ONLY_SER`` (serialized off-heap tier).
    """
    ds = dataset or ml_points(scale=scale, seed=seed)
    dim = len(ds.records[0][1])
    rng = random.Random(seed)
    state = {
        "centers": [
            tuple(rng.uniform(-10.0, 10.0) for _ in range(dim)) for _ in range(k)
        ]
    }

    def assign(record):
        _, vec = record
        return (closest_center(vec, state["centers"]), (vec, 1))

    def merge(a, b):
        return (_vec_add(a[0], b[0]), a[1] + b[1])

    def update_centers(results) -> None:
        stats = results.get("stats")
        if not stats:
            return
        centers = list(state["centers"])
        for cluster, (vec_sum, count) in stats:
            if count > 0:
                centers[cluster] = _vec_scale(vec_sum, 1.0 / count)
        state["centers"] = centers

    p = Program()
    lines = p.let("lines", p.source(ds))
    points = p.let(
        "points",
        lines.map(lambda r: r).persist(persist_level),
    )
    with p.loop(iterations):
        closest = p.let("closest", points.map(assign, size_factor=1.0))
        stats = p.let(
            "stats", closest.reduce_by_key(merge, size_factor=0.05)
        )
        p.action(stats, "collect", result_key="stats")
        p.driver(update_centers)
    p.action(points, "count", result_key="n_points")
    return WorkloadSpec(
        name="KM",
        program=p,
        dataset=ds,
        iterations=iterations,
        description="K-Means clustering over cached feature vectors",
    )
