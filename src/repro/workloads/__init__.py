"""The paper's seven benchmark programs (Table 4) over the mini-Spark IR.

PageRank, K-Means, Logistic Regression and Transitive Closure run
directly on Spark; Connected Components and Single-Source Shortest Path
are Pregel-style GraphX programs; Naive Bayes stands in for MLlib-BC.
All run on synthetic datasets (see :mod:`repro.workloads.datasets`) sized
to produce the paper's in-memory pressure.
"""

from repro.workloads.registry import WORKLOADS, build_workload

__all__ = ["WORKLOADS", "build_workload"]
