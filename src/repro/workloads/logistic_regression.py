"""Spark Logistic Regression: cached points, per-iteration gradient.

Identical memory shape to K-Means: the training set is persisted before
the loop and used-only inside it (DRAM tag); gradients are tiny driver-
side aggregates.
"""

from __future__ import annotations

import math
import random
from typing import Optional, Tuple

from repro.spark import columnar as _columnar
from repro.spark.program import Program
from repro.spark.storage import StorageLevel
from repro.workloads.datasets import DatasetSpec, ml_points
from repro.workloads.pagerank import WorkloadSpec

Vector = Tuple[float, ...]


def _dot(a: Vector, b: Vector) -> float:
    return sum(x * y for x, y in zip(a, b))


def build_logistic_regression(
    scale: float = 1.0,
    iterations: int = 10,
    learning_rate: float = 0.1,
    seed: int = 11,
    dataset: Optional[DatasetSpec] = None,
    persist_level: StorageLevel = StorageLevel.MEMORY_ONLY,
) -> WorkloadSpec:
    """Build the LR program (batch gradient descent, binary labels).

    ``persist_level`` selects how the cached ``points`` RDD is stored —
    the GC-vs-serialization experiment flips it between ``MEMORY_ONLY``
    (object heap) and ``MEMORY_ONLY_SER`` (serialized off-heap tier).
    """
    ds = dataset or ml_points(scale=scale, seed=seed)
    dim = len(ds.records[0][1])
    rng = random.Random(seed + 1)
    state = {"weights": tuple(rng.uniform(-0.1, 0.1) for _ in range(dim))}

    def identity(record):
        return record

    def gradient(record):
        label, vec = record
        y = 1.0 if (label % 2 == 1) else -1.0
        margin = y * _dot(state["weights"], vec)
        # Clamp to keep exp() finite on far-out points.
        margin = max(-30.0, min(30.0, margin))
        coeff = (1.0 / (1.0 + math.exp(-margin)) - 1.0) * y
        return ("grad", (tuple(coeff * x for x in vec), 1))

    def merge(a, b):
        return (tuple(x + y for x, y in zip(a[0], b[0])), a[1] + b[1])

    if _columnar.kernels_available():
        import numpy as np

        def gradient_kernel(batch):
            mat = _columnar.vec_matrix(batch.values)
            labels = _columnar.int_array(batch.keys)
            if mat is None or labels is None:
                return None
            w = state["weights"]
            n, dim = mat.shape
            ys = np.where(labels % 2 == 1, 1.0, -1.0)
            # _dot's sum() replayed: left fold from 0.0, one dimension
            # at a time (never np.dot/np.sum — pairwise summation).
            dots = np.zeros(n)
            for j in range(dim):
                dots += w[j] * mat[:, j]
            margins = np.maximum(-30.0, np.minimum(30.0, ys * dots))
            # numpy's exp is not bit-identical to math.exp, so the
            # sigmoid runs per element; everything around it vectorises.
            coeffs = np.asarray(
                [
                    (1.0 / (1.0 + math.exp(-m)) - 1.0) * y
                    for m, y in zip(margins.tolist(), ys.tolist())
                ]
            )
            grads = coeffs[:, None] * mat
            return _columnar.ColumnBatch(
                _columnar.ConstColumn("grad", n),
                _columnar.PairColumn(
                    _columnar.VecColumn(grads), _columnar.ones_int(n)
                ),
            )

        _columnar.register_map_kernel(identity, _columnar.identity_kernel)
        _columnar.register_map_kernel(gradient, gradient_kernel)
        _columnar.register_reduce_kernel(
            merge, _columnar.make_vec_count_merge_kernel()
        )

    def update_weights(results) -> None:
        grads = results.get("gradient")
        if not grads:
            return
        (_, (grad_sum, count)), = grads
        step = learning_rate / max(1, count)
        state["weights"] = tuple(
            w - step * g for w, g in zip(state["weights"], grad_sum)
        )

    p = Program()
    lines = p.let("lines", p.source(ds))
    points = p.let(
        "points", lines.map(identity).persist(persist_level)
    )
    with p.loop(iterations):
        grads = p.let("grads", points.map(gradient, size_factor=1.0))
        total = p.let("total", grads.reduce_by_key(merge, size_factor=0.02))
        p.action(total, "collect", result_key="gradient")
        p.driver(update_weights)
    p.action(points, "count", result_key="n_points")
    return WorkloadSpec(
        name="LR",
        program=p,
        dataset=ds,
        iterations=iterations,
        description="Logistic regression via batch gradient descent",
    )
