"""Spark PageRank, transcribed from Figure 2(a) of the paper.

``links`` is built once (map -> distinct -> groupByKey), persisted
MEMORY_ONLY and joined against every iteration — the static analysis
tags it DRAM.  ``contribs`` is rebuilt and persisted
MEMORY_AND_DISK_SER every iteration — tagged NVM.  ``ranks`` is only
materialised by the final ``count()`` after the loop — tagged NVM.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.spark import columnar as _columnar
from repro.spark.program import Program
from repro.spark.storage import StorageLevel
from repro.workloads.datasets import DatasetSpec, pagerank_graph

DAMPING = 0.85


@dataclass
class WorkloadSpec:
    """A runnable benchmark: its program plus metadata for reports."""

    name: str
    program: Program
    dataset: DatasetSpec
    iterations: int
    description: str


def _contribs_record(record):
    """join output (src, (neighbour_lists, rank)) -> contributions."""
    _, (urls_groups, rank) = record
    # `urls` is the groupByKey value: a list of destination vertices.
    urls = urls_groups
    size = max(1, len(urls))
    return [(url, rank / size) for url in urls]


def _edge(record):
    """(src, dst) -> (src, dst): identity over the 2-tuple edge records
    (named so the columnar plane can register a whole-batch kernel)."""
    return (record[0], record[1])


def _add(a, b):
    return a + b


def _damp(s):
    return 0.15 + DAMPING * s


def _damp_kernel(batch):
    ranks = _columnar.float_array(batch.values)
    if ranks is None:
        return None
    # 0.15 + DAMPING * s per element: the same two correctly-rounded
    # float64 operations _damp performs.
    return _columnar.ColumnBatch(
        batch.keys, _columnar.float_column(0.15 + DAMPING * ranks)
    )


_columnar.register_map_kernel(_edge, _columnar.identity_kernel)
_columnar.register_reduce_kernel(
    _add, _columnar.make_scalar_add_reduce_kernel()
)
_columnar.register_map_values_kernel(_damp, _damp_kernel)


def build_pagerank(
    scale: float = 1.0,
    iterations: int = 15,
    seed: int = 7,
    dataset: Optional[DatasetSpec] = None,
    persist_level: StorageLevel = StorageLevel.MEMORY_AND_DISK_SER,
) -> WorkloadSpec:
    """Build the PageRank program of Figure 2(a).

    ``persist_level`` selects how the per-iteration ``contribs`` RDD is
    stored — the GC-vs-serialization experiment flips it between the
    default object-heap form and ``MEMORY_ONLY_SER`` (serialized tier).
    """
    ds = dataset or pagerank_graph(scale=scale, seed=seed)
    n_vertices = len({src for src, _ in ds.records})
    fanout = max(1.0, len(ds.records) / max(1, n_vertices))

    p = Program()
    lines = p.let("lines", p.source(ds))
    links = p.let(
        "links",
        lines.map(_edge)
        .distinct()
        .group_by_key(size_factor=fanout)
        .persist(StorageLevel.MEMORY_ONLY),
    )
    ranks = p.let("ranks", links.map_values(lambda _: 1.0, size_factor=0.1))
    with p.loop(iterations):
        contribs = p.let(
            "contribs",
            links.join(ranks)
            .values()
            .flat_map(_contribs_record, size_factor=0.8)
            .persist(persist_level),
        )
        ranks = p.let(
            "ranks",
            contribs.reduce_by_key(_add).map_values(_damp),
        )
    p.action(ranks, "collect", result_key="ranks")
    return WorkloadSpec(
        name="PR",
        program=p,
        dataset=ds,
        iterations=iterations,
        description="PageRank over a Wikipedia-shaped link graph",
    )
