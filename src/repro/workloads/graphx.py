"""GraphX-style Pregel programs: Connected Components and SSSP.

Each iteration builds a *new* graph RDD (vertices carry their state plus
their adjacency) and unpersists an old generation — the pattern §5.5
describes: the static analysis, lacking unpersist support, sees every
persisted variable defined-and-used in the loop, tags them all NVM, and
the all-NVM rule flips them all to DRAM.  Stale graph versions that
survive into a major GC with zero monitored calls are then dynamically
migrated to NVM — the one-RDD migrations of Table 5.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.spark.program import Program
from repro.spark.storage import StorageLevel
from repro.workloads.datasets import DatasetSpec, wiki_en_graph
from repro.workloads.pagerank import WorkloadSpec

#: How many stale graph generations linger before unpersist — GraphX's
#: materialisation pattern keeps the previous graph alive while the new
#: one is built on top of it.
UNPERSIST_LAG = 2


def _adjacency_program(
    p: Program, ds: DatasetSpec, init_state_fn, undirected: bool = False
):
    """Shared prologue: build the initial graph (vid, (state, neighbours)).

    Connected components works on the undirected view of the graph (as
    GraphX's ``connectedComponents`` does); SSSP follows edge direction.
    """
    n_vertices = len({v for edge in ds.records for v in edge})
    fanout = max(1.0, len(ds.records) / max(1, n_vertices))
    lines = p.let("lines", p.source(ds))
    if undirected:
        edges_expr = lines.flat_map(
            lambda r: [(r[0], r[1]), (r[1], r[0])], size_factor=0.5
        )
        fanout *= 2
    else:
        edges_expr = lines.map(lambda r: r)
    g = p.let(
        "g",
        edges_expr.group_by_key(size_factor=fanout)
        .map(
            lambda r: (r[0], (init_state_fn(r[0]), r[1])),
            preserves_partitioning=True,
        )
        .persist(StorageLevel.MEMORY_ONLY),
    )
    return g


def build_connected_components(
    scale: float = 1.0,
    iterations: int = 6,
    seed: int = 9,
    dataset: Optional[DatasetSpec] = None,
) -> WorkloadSpec:
    """GraphX-CC: label propagation of the minimum vertex id."""
    ds = dataset or wiki_en_graph(scale=scale, seed=seed)

    def send_labels(record):
        vid, (label, nbrs) = record
        out = [(nbr, label) for nbr in nbrs]
        out.append((vid, label))  # self-message keeps isolated paths alive
        return out

    def update(value):
        (label, nbrs), incoming = value
        return (min(label, incoming), nbrs)

    p = Program()
    g = _adjacency_program(p, ds, init_state_fn=lambda vid: vid, undirected=True)
    with p.loop(iterations):
        msgs = p.let(
            "msgs",
            g.flat_map(send_labels, size_factor=0.1)
            .reduce_by_key(min)
            .persist(StorageLevel.MEMORY_ONLY),
        )
        g = p.let(
            "g",
            g.join(msgs)
            .map_values(update)
            .persist(StorageLevel.MEMORY_ONLY),
        )
        # Pregel checks the active-message count every superstep, which
        # is what actually drives per-iteration execution in GraphX.
        p.action(msgs, "count", result_key="active_messages")
        p.unpersist_prior(g, lag=UNPERSIST_LAG)
        p.unpersist_prior(msgs, lag=UNPERSIST_LAG)
    p.action(g, "collect", result_key="components")
    return WorkloadSpec(
        name="CC",
        program=p,
        dataset=ds,
        iterations=iterations,
        description="GraphX connected components (Pregel label propagation)",
    )


def build_sssp(
    scale: float = 1.0,
    iterations: int = 6,
    source_vertex: int = 0,
    seed: int = 9,
    dataset: Optional[DatasetSpec] = None,
) -> WorkloadSpec:
    """GraphX-SSSP: unit-weight shortest paths from one source."""
    ds = dataset or wiki_en_graph(scale=scale, seed=seed)

    def init_dist(vid: int) -> float:
        return 0.0 if vid == source_vertex else math.inf

    def relax(record):
        vid, (dist, nbrs) = record
        out = [(vid, dist)]  # self-message: keep own distance in play
        if not math.isinf(dist):
            out.extend((nbr, dist + 1.0) for nbr in nbrs)
        return out

    def update(value):
        (dist, nbrs), incoming = value
        return (min(dist, incoming), nbrs)

    p = Program()
    g = _adjacency_program(p, ds, init_state_fn=init_dist)
    with p.loop(iterations):
        msgs = p.let(
            "msgs",
            g.flat_map(relax, size_factor=0.1)
            .reduce_by_key(min)
            .persist(StorageLevel.MEMORY_ONLY),
        )
        g = p.let(
            "g",
            g.join(msgs)
            .map_values(update)
            .persist(StorageLevel.MEMORY_ONLY),
        )
        p.action(msgs, "count", result_key="active_messages")
        p.unpersist_prior(g, lag=UNPERSIST_LAG)
        p.unpersist_prior(msgs, lag=UNPERSIST_LAG)
    p.action(g, "collect", result_key="distances")
    return WorkloadSpec(
        name="SSSP",
        program=p,
        dataset=ds,
        iterations=iterations,
        description="GraphX single-source shortest paths",
    )
