"""Workload registry: the paper's benchmark names -> program builders."""

from __future__ import annotations

from typing import Callable, Dict

from repro.errors import ReproError
from repro.workloads.graphx import build_connected_components, build_sssp
from repro.workloads.kmeans import build_kmeans
from repro.workloads.logistic_regression import build_logistic_regression
from repro.workloads.naive_bayes import build_naive_bayes
from repro.workloads.pagerank import WorkloadSpec, build_pagerank
from repro.workloads.transitive_closure import build_transitive_closure

#: Table 4's program abbreviations.
WORKLOADS: Dict[str, Callable[..., WorkloadSpec]] = {
    "PR": build_pagerank,
    "KM": build_kmeans,
    "LR": build_logistic_regression,
    "TC": build_transitive_closure,
    "CC": build_connected_components,
    "SSSP": build_sssp,
    "BC": build_naive_bayes,
}


def build_workload(name: str, **kwargs) -> WorkloadSpec:
    """Build a workload by its Table 4 abbreviation.

    Input datasets are memoised per process on (scale, seed) — see
    :mod:`repro.workloads.datasets` — so building the same workload for
    several policy cells generates its input once; the program IR itself
    is rebuilt per call (it is cheap and carries per-run RDD identities).

    Args:
        name: one of PR, KM, LR, TC, CC, SSSP, BC.
        **kwargs: forwarded to the builder (``scale``, ``iterations``,
            ``seed``, ``dataset``).
    """
    try:
        builder = WORKLOADS[name.upper()]
    except KeyError:
        known = ", ".join(sorted(WORKLOADS))
        raise ReproError(f"unknown workload {name!r}; known: {known}") from None
    return builder(**kwargs)
