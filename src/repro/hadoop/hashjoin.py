"""The §4.3 HashJoin walkthrough as a reusable building block.

"In the case of HashJoin, which is a building block for SQL engines, one
input table is loaded entirely in memory while the second table is
partitioned across map workers. ... The first table is long-lived and
frequently accessed. Hence, it should be tagged DRAM and placed in the
DRAM space of the old generation, while different partitions of the
second table can be placed in the young generation and they will die
there quickly."
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.core.runtime_api import PantheraRuntime
from repro.core.tags import MemoryTag
from repro.hadoop.mapreduce import MapReduceJob, SideTable
from repro.heap.managed_heap import ManagedHeap
from repro.memory.machine import Machine

Record = Tuple[Any, Any]


class HashJoin:
    """Broadcast hash join: build side in memory, probe side streamed.

    The build table is pre-tenured into DRAM via API 1 (it is shared by
    all map workers and probed constantly).  Pass ``monitored=True`` to
    instead defer to API 2: the table starts wherever its tag says (or
    NVM if untagged) and the major GC migrates it once its call
    frequency is known — the paper's "parts ... whose memory tags can be
    easily inferred are pretenured and other parts are dynamically
    migrated" flexibility.
    """

    def __init__(
        self,
        heap: ManagedHeap,
        machine: Machine,
        runtime: PantheraRuntime,
        build_records: List[Record],
        build_nbytes: int,
        tag: Optional[MemoryTag] = MemoryTag.DRAM,
        monitored: bool = False,
        num_reducers: int = 4,
    ) -> None:
        self.table = SideTable(
            name="hashjoin-build",
            records=build_records,
            nbytes=build_nbytes,
            tag=tag,
            monitored=monitored,
        )
        self.heap = heap
        self.machine = machine
        self.runtime = runtime
        self.num_reducers = num_reducers

    def join(
        self,
        probe_splits: List[List[Record]],
        bytes_per_record: float,
    ) -> Dict[Any, List[Tuple[Any, Any]]]:
        """Join the probe side against the build table.

        Returns:
            key -> list of (probe value, build value) pairs.
        """
        table = self.table

        def probe(record: Record) -> List[Record]:
            key, value = record
            return [
                (key, (value, build_value)) for build_value in table.lookup(key)
            ]

        def collect(key: Any, values: List[Any]) -> List[Tuple[Any, Any]]:
            return list(values)

        job = MapReduceJob(
            self.heap,
            self.machine,
            self.runtime,
            map_fn=probe,
            reduce_fn=collect,
            num_reducers=self.num_reducers,
            side_tables=[table],
        )
        return job.run(probe_splits, bytes_per_record)

    @property
    def build_space_name(self) -> str:
        """Where the build table currently lives (for tests/reports)."""
        if self.table.array is None or self.table.array.space is None:
            return "(released)"
        return self.table.array.space.name
