"""A miniature MapReduce engine over the simulated heap.

The engine models Hadoop's memory behaviour the way §4.3 describes it:
map workers stream their input split through the young generation (the
records die there), optional *side tables* are long-lived in-memory
structures placed via Panthera's API 1 or monitored via API 2, and the
reduce phase hash-aggregates the shuffled output.

Data really flows: map/combine/reduce functions compute actual results,
so jobs are testable end to end.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.config import DeviceKind
from repro.core.runtime_api import PantheraRuntime
from repro.core.tags import MemoryTag
from repro.errors import ReproError
from repro.heap.managed_heap import ManagedHeap
from repro.heap.object_model import HeapObject
from repro.memory.machine import Machine

Record = Tuple[Any, Any]

#: Mutator cost constants (per byte / per record), matching the Spark
#: layer's granularity.
CPU_NS_PER_BYTE = 8.0
CPU_NS_PER_RECORD = 2_000.0
ALLOC_FACTOR = 5.0
HASH_GRAIN = 4_096


@dataclass
class SideTable:
    """A long-lived in-memory table a job loads before its map phase.

    Attributes:
        name: identifier (also the monitor key).
        records: the data plane (key -> value built at load time).
        nbytes: byte weight of the table.
        tag: placement tag for API 1 pre-tenuring; None defers placement
            to API 2 dynamic monitoring.
        monitored: register with API 2 (track + per-probe call counts).
    """

    name: str
    records: List[Record]
    nbytes: int
    tag: Optional[MemoryTag] = None
    monitored: bool = False
    #: set at load time
    array: Optional[HeapObject] = None
    index: Dict[Any, List[Any]] = field(default_factory=dict)

    def lookup(self, key: Any) -> List[Any]:
        """Probe the table."""
        return self.index.get(key, [])


class MapReduceJob:
    """One MapReduce job with optional Panthera-managed side tables."""

    _owner_ids = iter(range(10_000, 10_000_000))

    def __init__(
        self,
        heap: ManagedHeap,
        machine: Machine,
        runtime: PantheraRuntime,
        map_fn: Callable[[Record], List[Record]],
        reduce_fn: Callable[[Any, List[Any]], Any],
        num_reducers: int = 4,
        side_tables: Optional[List[SideTable]] = None,
        mutator_threads: int = 8,
    ) -> None:
        self.heap = heap
        self.machine = machine
        self.runtime = runtime
        self.map_fn = map_fn
        self.reduce_fn = reduce_fn
        self.num_reducers = num_reducers
        self.side_tables = side_tables or []
        self.threads = mutator_threads
        self._table_owner: Dict[str, int] = {}

    # -- side tables (§4.3's two APIs) -------------------------------------

    def load_side_tables(self) -> None:
        """Materialise every side table into the heap.

        Tables with a tag go through API 1 (``place_array``); monitored
        tables additionally register with API 2 so major GCs can
        re-assess them.
        """
        for table in self.side_tables:
            owner = next(self._owner_ids)
            self._table_owner[table.name] = owner
            table.array = self.runtime.place_array(
                table.nbytes, table.tag, owner_id=owner
            )
            self.heap.add_root(table.array)
            if table.monitored:
                self.runtime.track(owner)
            device = table.array.space.device_of(table.array.addr)
            self.machine.access(
                device,
                write_bytes=table.nbytes,
                threads=self.threads,
                cpu_ns=table.nbytes * CPU_NS_PER_BYTE / self.threads,
            )
            table.index.clear()
            for key, value in table.records:
                table.index.setdefault(key, []).append(value)

    def release_side_tables(self) -> None:
        """Drop the side tables (end of job)."""
        for table in self.side_tables:
            if table.array is not None:
                self.heap.remove_root(table.array)
                table.array = None

    def _charge_probe(self, table: SideTable, nbytes: float) -> None:
        """One map task's probes into a side table."""
        if table.array is None:
            raise ReproError(f"side table {table.name!r} not loaded")
        probes = max(1, int(nbytes / HASH_GRAIN))
        device = table.array.space.device_of(table.array.addr)
        self.machine.access(device, random_reads=probes, threads=self.threads)
        owner = self._table_owner[table.name]
        if table.monitored:
            self.runtime.record_call(owner)

    # -- execution --------------------------------------------------------------

    def run(
        self,
        splits: List[List[Record]],
        bytes_per_record: float,
    ) -> Dict[Any, Any]:
        """Execute the job and return the reduced output.

        Args:
            splits: input splits (one per map task).
            bytes_per_record: byte weight of one input record.
        """
        if not splits:
            raise ReproError("a job needs at least one input split")
        self.load_side_tables()
        try:
            buckets: List[List[Record]] = [[] for _ in range(self.num_reducers)]
            for split in splits:
                self._run_map_task(split, bytes_per_record, buckets)
            output: Dict[Any, Any] = {}
            for bucket in buckets:
                self._run_reduce_task(bucket, bytes_per_record, output)
            return output
        finally:
            self.release_side_tables()

    def _run_map_task(
        self,
        split: List[Record],
        bytes_per_record: float,
        buckets: List[List[Record]],
    ) -> None:
        in_bytes = len(split) * bytes_per_record
        # Input read from HDFS (disk) into the young generation.
        self.machine.access(
            DeviceKind.DISK,
            read_bytes=in_bytes,
            threads=self.threads,
            cpu_ns=in_bytes * CPU_NS_PER_BYTE / self.threads,
        )
        self._ephemeral(in_bytes)
        out: List[Record] = []
        for record in split:
            out.extend(self.map_fn(record))
        out_bytes = len(out) * bytes_per_record
        self._ephemeral(out_bytes)
        self.machine.access(
            DeviceKind.DRAM,
            write_bytes=out_bytes,
            threads=self.threads,
            cpu_ns=(
                in_bytes * CPU_NS_PER_BYTE + len(split) * CPU_NS_PER_RECORD
            )
            / self.threads,
        )
        for table in self.side_tables:
            self._charge_probe(table, in_bytes)
        for key, value in out:
            buckets[hash(key) % self.num_reducers].append((key, value))
        # Shuffle spill to local disk.
        self.machine.access(
            DeviceKind.DISK, write_bytes=out_bytes * 0.4, threads=self.threads
        )

    def _run_reduce_task(
        self,
        bucket: List[Record],
        bytes_per_record: float,
        output: Dict[Any, Any],
    ) -> None:
        in_bytes = len(bucket) * bytes_per_record
        self.machine.access(
            DeviceKind.DISK, read_bytes=in_bytes * 0.4, threads=self.threads
        )
        self._ephemeral(in_bytes)
        grouped: Dict[Any, List[Any]] = {}
        for key, value in bucket:
            grouped.setdefault(key, []).append(value)
        self.machine.access(
            DeviceKind.DRAM,
            random_reads=max(1, int(in_bytes / HASH_GRAIN)),
            threads=self.threads,
            cpu_ns=(in_bytes * CPU_NS_PER_BYTE + len(bucket) * CPU_NS_PER_RECORD)
            / self.threads,
        )
        for key, values in grouped.items():
            output[key] = self.reduce_fn(key, values)

    def _ephemeral(self, nbytes: float) -> None:
        remaining = int(nbytes * ALLOC_FACTOR)
        chunk = max(1, self.heap.eden.size // 4)
        while remaining > 0:
            take = min(remaining, chunk)
            self.heap.allocate_ephemeral(take)
            remaining -= take
