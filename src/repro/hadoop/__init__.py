"""A Hadoop-style MapReduce substrate driven by Panthera's public APIs.

Section 4.3 of the paper argues the runtime system generalises beyond
Spark: "the APIs for data placement and migration provided by the
Panthera runtime system can be employed to manage memory for any Big
Data system that uses a key-value array as its backbone data structure.
Examples include Apache Hadoop, Apache Flink, or database systems such
as Apache Cassandra."

This package is that claim as working code: a miniature MapReduce engine
whose in-memory tables are placed through §4.3's API 1 (pre-tenuring by
tag) and API 2 (dynamic call monitoring + major-GC migration), including
the paper's HashJoin walkthrough.
"""

from repro.hadoop.hashjoin import HashJoin
from repro.hadoop.mapreduce import MapReduceJob, SideTable

__all__ = ["HashJoin", "MapReduceJob", "SideTable"]
