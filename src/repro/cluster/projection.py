"""Projecting single-node pause behaviour onto a synchronised cluster.

Model: a data-parallel job is a sequence of synchronisation windows
(stages end at shuffles; every node must finish before any node starts
the next stage).  Each node does the same mutator work per window but
collects independently — pauses land in random windows.  A window's
cluster-wide duration is the *maximum* over nodes, so pause variance
amplifies with node count: with K nodes the expected excess grows like
the expected maximum of K sums of randomly scattered pauses.

The projection bootstraps from a measured single-node run: the observed
pause durations are scattered over windows independently per node (with
a deterministic RNG), and the cluster time is the sum over windows of
the per-window maxima.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Sequence

from repro.errors import ReproError
from repro.harness.experiment import ExperimentResult


@dataclass(frozen=True)
class ClusterProjection:
    """Result of one cluster projection.

    Attributes:
        nodes: cluster size.
        single_node_s: the measured single-node run time.
        cluster_s: projected synchronised-cluster run time.
        slowdown: ``cluster_s / single_node_s``.
        gc_amplification: projected cluster GC wait divided by the
            single node's own GC time (1.0 = no amplification).
    """

    nodes: int
    single_node_s: float
    cluster_s: float
    slowdown: float
    gc_amplification: float


def project_pauses(
    mutator_s: float,
    pause_durations_s: Sequence[float],
    nodes: int,
    sync_windows: int = 20,
    seed: int = 1234,
) -> ClusterProjection:
    """Project a pause profile onto a K-node synchronised cluster.

    Args:
        mutator_s: single-node mutator (non-GC) time.
        pause_durations_s: the node's individual GC pause durations.
        nodes: cluster size (>= 1).
        sync_windows: synchronisation windows (stage barriers) per run.
        seed: RNG seed for the per-node pause scattering.
    """
    if nodes < 1:
        raise ReproError("a cluster needs at least one node")
    if sync_windows < 1:
        raise ReproError("need at least one synchronisation window")
    gc_s = sum(pause_durations_s)
    single = mutator_s + gc_s
    if nodes == 1 or not pause_durations_s:
        return ClusterProjection(
            nodes=nodes,
            single_node_s=single,
            cluster_s=single,
            slowdown=1.0,
            gc_amplification=1.0,
        )
    rng = random.Random(seed)
    work_per_window = mutator_s / sync_windows
    cluster_total = 0.0
    cluster_gc_wait = 0.0
    # Pause-per-window accumulation, one layout per node.
    per_node_windows: List[List[float]] = []
    for _ in range(nodes):
        windows = [0.0] * sync_windows
        for pause in pause_durations_s:
            windows[rng.randrange(sync_windows)] += pause
        per_node_windows.append(windows)
    for w in range(sync_windows):
        worst_pause = max(per_node_windows[n][w] for n in range(nodes))
        cluster_total += work_per_window + worst_pause
        cluster_gc_wait += worst_pause
    return ClusterProjection(
        nodes=nodes,
        single_node_s=single,
        cluster_s=cluster_total,
        slowdown=cluster_total / single if single else 1.0,
        gc_amplification=(cluster_gc_wait / gc_s) if gc_s else 1.0,
    )


def project_cluster(
    result: ExperimentResult,
    nodes: int,
    sync_windows: int = 20,
    seed: int = 1234,
) -> ClusterProjection:
    """Project a kept-context experiment result onto a K-node cluster.

    Requires ``keep_context=True`` so the individual pause durations are
    available.
    """
    if result.context is None:
        raise ReproError("cluster projection needs keep_context=True")
    pauses = [
        duration_ns / 1e9
        for _, _, duration_ns in result.context.collector.stats.pauses
    ]
    return project_pauses(
        result.mutator_s, pauses, nodes, sync_windows=sync_windows, seed=seed
    )
