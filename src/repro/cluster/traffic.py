"""Seeded traffic generation: who submits which job, and when.

A :class:`TrafficPlan` is the cluster-scale analogue of a
:class:`~repro.faults.plan.FaultPlan` — a declarative, picklable,
JSON-round-trippable value that names every job the cluster will run
before the simulation starts.  Determinism is the point: the plan is a
pure function of its seed and knobs, two runs of the same plan are
byte-identical, and ``--jobs 1`` vs ``--jobs N`` cannot diverge because
no scheduling decision is taken after generation time.

Two arrival processes (the evaluation vocabulary of "Analysis of Server
Throughput for Managed Big Data Analytics Frameworks", PAPERS.md):

* ``poisson`` — memoryless arrivals at a constant rate, the classic
  open-loop load model.
* ``diurnal`` — a sinusoidally modulated Poisson process (thinning
  construction), modelling the day/night swing of a shared cluster.

Tenants are skewed two ways: a Zipf-ish submission share (tenant 0
submits the most jobs) and a per-tenant data-scale multiplier (some
tenants run bigger jobs), both drawn once, deterministically, from the
plan seed.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import ReproError

#: Default workload mix: every registered Table 4 workload.
DEFAULT_WORKLOADS = ("PR", "KM", "LR", "TC", "CC", "SSSP", "BC")

#: Per-tenant data-scale multipliers, cycled over tenant ids — tenant 0
#: runs 1.5x jobs, tenant 3 half-size jobs (skewed scale factors).
TENANT_SCALE_CYCLE = (1.5, 1.0, 0.75, 0.5)

#: Workloads whose builder has no iteration knob (single-pass jobs);
#: the plan-level ``iterations`` override does not apply to them.
NON_ITERATIVE_WORKLOADS = frozenset({"BC"})


@dataclass(frozen=True)
class JobSpec:
    """One submitted job.

    Attributes:
        job_id: dense submission index (0-based, arrival order).
        arrival_s: submission time on the simulated cluster clock.
        tenant: submitting tenant id (0-based).
        workload: Table 4 abbreviation (PR, KM, ...).
        scale: data-scale factor for this job (base scale times the
            tenant's multiplier).
        iterations: workload iteration override (None = builder default).
    """

    job_id: int
    arrival_s: float
    tenant: int
    workload: str
    scale: float
    iterations: Optional[int] = None

    def workload_kwargs(self) -> Dict[str, Any]:
        """Keyword arguments for the workload builder."""
        return {"iterations": self.iterations} if self.iterations else {}

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe representation (None fields omitted)."""
        row: Dict[str, Any] = {
            "job_id": self.job_id,
            "arrival_s": self.arrival_s,
            "tenant": self.tenant,
            "workload": self.workload,
            "scale": self.scale,
        }
        if self.iterations is not None:
            row["iterations"] = self.iterations
        return row

    @classmethod
    def from_dict(cls, row: Dict[str, Any]) -> "JobSpec":
        """Inverse of :meth:`to_dict`."""
        return cls(**row)


@dataclass(frozen=True)
class TrafficPlan:
    """Every job one cluster run will execute, decided up front.

    Attributes:
        jobs: the submitted jobs in arrival order.
        seed: the generation seed (provenance).
        process: arrival process name (``poisson`` or ``diurnal``).
        rate_jobs_per_s: mean arrival rate the plan was generated at.
        duration_s: the arrival horizon.
        tenants: tenant count.
        base_scale: data scale before per-tenant multipliers.
    """

    jobs: Tuple[JobSpec, ...] = field(default_factory=tuple)
    seed: int = 0
    process: str = "poisson"
    rate_jobs_per_s: float = 0.0
    duration_s: float = 0.0
    tenants: int = 1
    base_scale: float = 0.02

    @property
    def is_empty(self) -> bool:
        """True when no jobs were generated."""
        return not self.jobs

    def to_dict(self) -> Dict[str, Any]:
        """Stable JSON-safe representation."""
        return {
            "jobs": [j.to_dict() for j in self.jobs],
            "seed": self.seed,
            "process": self.process,
            "rate_jobs_per_s": self.rate_jobs_per_s,
            "duration_s": self.duration_s,
            "tenants": self.tenants,
            "base_scale": self.base_scale,
        }

    @classmethod
    def from_dict(cls, row: Dict[str, Any]) -> "TrafficPlan":
        """Inverse of :meth:`to_dict`."""
        return cls(
            jobs=tuple(JobSpec.from_dict(j) for j in row.get("jobs", [])),
            seed=row.get("seed", 0),
            process=row.get("process", "poisson"),
            rate_jobs_per_s=row.get("rate_jobs_per_s", 0.0),
            duration_s=row.get("duration_s", 0.0),
            tenants=row.get("tenants", 1),
            base_scale=row.get("base_scale", 0.02),
        )

    def describe(self) -> str:
        """One-line human summary."""
        return (
            f"{len(self.jobs)} jobs over {self.duration_s:g}s "
            f"({self.process}, rate {self.rate_jobs_per_s:g}/s, "
            f"{self.tenants} tenants, seed {self.seed})"
        )


def tenant_scale(tenant: int, base_scale: float) -> float:
    """The skewed data scale for one tenant's jobs."""
    return base_scale * TENANT_SCALE_CYCLE[tenant % len(TENANT_SCALE_CYCLE)]


def generate_traffic(
    seed: int,
    duration_s: float = 60.0,
    rate_jobs_per_s: float = 0.2,
    workloads: Optional[Sequence[str]] = None,
    process: str = "poisson",
    tenants: int = 4,
    base_scale: float = 0.02,
    tenant_skew: float = 1.2,
    diurnal_period_s: Optional[float] = None,
    diurnal_amplitude: float = 0.8,
    iterations: Optional[int] = None,
    max_jobs: Optional[int] = None,
) -> TrafficPlan:
    """Generate a seeded traffic plan.

    Args:
        seed: drives a private :class:`random.Random`; same seed, same
            plan, byte for byte.
        duration_s: arrival horizon in simulated seconds.
        rate_jobs_per_s: mean arrival rate (for ``diurnal`` this is the
            rate averaged over a full period).
        workloads: workload mix (default: all seven registered).
        process: ``poisson`` or ``diurnal``.
        tenants: tenant count (>= 1); submission shares follow a
            Zipf-ish law with exponent ``tenant_skew`` and data scales
            follow :data:`TENANT_SCALE_CYCLE`.
        base_scale: data scale before the tenant multiplier.
        tenant_skew: Zipf exponent of the submission-share skew.
        diurnal_period_s: sinusoid period (default: the full horizon).
        diurnal_amplitude: relative swing of the diurnal rate, in
            ``[0, 1)`` (0 degenerates to Poisson).
        iterations: per-job workload iteration override.
        max_jobs: cap on generated jobs (None = unlimited).
    """
    if duration_s <= 0:
        raise ReproError("traffic horizon must be positive")
    if rate_jobs_per_s <= 0:
        raise ReproError("arrival rate must be positive")
    if tenants < 1:
        raise ReproError("need at least one tenant")
    if process not in ("poisson", "diurnal"):
        raise ReproError(f"unknown arrival process {process!r}")
    if not 0.0 <= diurnal_amplitude < 1.0:
        raise ReproError("diurnal amplitude must be in [0, 1)")
    mix = tuple(workloads if workloads is not None else DEFAULT_WORKLOADS)
    if not mix:
        raise ReproError("workload mix is empty")
    rng = random.Random(seed)
    tenant_weights = [1.0 / (t + 1) ** tenant_skew for t in range(tenants)]
    period = diurnal_period_s if diurnal_period_s else duration_s
    peak_rate = rate_jobs_per_s * (1.0 + diurnal_amplitude)

    jobs: List[JobSpec] = []
    t = 0.0
    while True:
        if process == "poisson":
            t += rng.expovariate(rate_jobs_per_s)
            accepted = True
        else:
            # Thinning: candidate arrivals at the peak rate, accepted
            # with probability lambda(t) / peak.
            t += rng.expovariate(peak_rate)
            lam = rate_jobs_per_s * (
                1.0 + diurnal_amplitude * math.sin(2.0 * math.pi * t / period)
            )
            accepted = rng.random() * peak_rate <= lam
        if t >= duration_s:
            break
        if not accepted:
            continue
        tenant = rng.choices(range(tenants), weights=tenant_weights)[0]
        workload = rng.choice(mix)
        jobs.append(
            JobSpec(
                job_id=len(jobs),
                arrival_s=t,
                tenant=tenant,
                workload=workload,
                scale=tenant_scale(tenant, base_scale),
                iterations=(
                    None
                    if workload in NON_ITERATIVE_WORKLOADS
                    else iterations
                ),
            )
        )
        if max_jobs is not None and len(jobs) >= max_jobs:
            break
    return TrafficPlan(
        jobs=tuple(jobs),
        seed=seed,
        process=process,
        rate_jobs_per_s=rate_jobs_per_s,
        duration_s=duration_s,
        tenants=tenants,
        base_scale=base_scale,
    )
