"""One cluster executor: a persistent simulated node running jobs.

An :class:`Executor` owns a full single-node stack — its own
:class:`~repro.memory.machine.Machine` (devices + clock + energy), its
own hybrid DRAM/NVM :class:`~repro.heap.managed_heap.ManagedHeap` and
collector — built once and reused across jobs, so the simulated clock
accumulates and queueing delay emerges naturally: a job that arrives
while the executor is busy waits.

Each job runs through exactly the same execution path as
:func:`~repro.harness.experiment.run_experiment` (the shared
:func:`~repro.harness.experiment.execute_spec` seam), with two per-job
attachments:

* a :class:`~repro.faults.injector.FaultInjector` carrying an *empty*
  plan — byte-neutral on its own, but the recovery machinery cluster
  kills need is then already wired;
* a :class:`ClusterBinding` installed as ``ctx.cluster`` — the
  scheduler consults it at stage/action boundaries (executor kills
  fire there) and at shuffle fetches (remote-owned partitions pay the
  network hop).

With one executor and no kills both attachments are no-ops on the
machine and the trace bus, which is what makes a 1-executor cluster job
byte-identical to ``run_experiment`` — the oracle test pins that.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.config import DeviceKind, SystemConfig
from repro.faults import FaultInjector, FaultPlan, action_checksums
from repro.gc.gclog import render_log
from repro.gc.stats import GCStats
from repro.harness.experiment import execute_spec
from repro.harness.export import bandwidth_csv_from_machine
from repro.spark.context import SparkContext
from repro.spark.costmodel import MutatorCosts
from repro.trace import TraceSession
from repro.trace.events import TraceEvent
from repro.workloads.registry import build_workload

from repro.cluster.faults import ExecutorKill
from repro.cluster.service import ShuffleService
from repro.cluster.traffic import JobSpec


class ClusterBinding:
    """Per-job cluster hooks, installed as ``ctx.cluster``.

    Lives for exactly one job.  Tracks the job's shuffles, counts stage
    boundaries with the same convention as the fault injector (completed
    shuffle map stages + action starts, 1-based), fires the executor
    kills armed for this job, and routes every shuffle fetch through the
    shared service's ownership function.
    """

    def __init__(
        self,
        executor: "Executor",
        injector: FaultInjector,
        kills: Sequence[ExecutorKill],
    ) -> None:
        self.executor = executor
        self.injector = injector
        self.boundaries_seen = 0
        self.kills_fired = 0
        self.kills_noop = 0
        self.partitions_lost = 0
        self.blocks_lost = 0
        self.local_fetches = 0
        self.remote_fetches = 0
        self.remote_bytes = 0.0
        self.net_ns = 0.0
        self._unfired: List[ExecutorKill] = list(kills)
        #: (shuffle_id, n_partitions) of this job's shuffles, in
        #: first-write order.
        self._shuffles: List[Tuple[int, int]] = []
        self._shuffle_ids: Set[int] = set()

    # -- boundaries and kills -------------------------------------------

    def stage_boundary(self, dep) -> None:
        """A shuffle map stage completed: register its output with the
        service overlay, then cross the boundary."""
        sid = dep.shuffle_id
        if sid not in self._shuffle_ids:
            self._shuffle_ids.add(sid)
            self._shuffles.append((sid, dep.partitioner.num_partitions))
        self._cross_boundary()

    def action_boundary(self, rdd) -> None:
        """An action is about to run its final stage."""
        self._cross_boundary()

    def _cross_boundary(self) -> None:
        self.boundaries_seen += 1
        here = self.boundaries_seen
        due = [k for k in self._unfired if k.at_boundary == here]
        for kill in due:
            self._unfired.remove(kill)
            self._fire(kill)

    def _fire(self, kill: ExecutorKill) -> None:
        """Kill one executor: every service-owned reduce partition and
        every block replica it hosted die; lineage recovery on this
        (surviving) executor recomputes them on demand through the
        injector's measured path."""
        service = self.executor.service
        victim = kill.executor % service.n_executors
        shuffles = self.executor.ctx.shuffles
        lost = 0
        for sid, n_parts in self._shuffles:
            if not shuffles.has(sid):
                continue
            ordinal = shuffles.ordinal(sid)
            for pidx in range(n_parts):
                if service.owner_of(ordinal, pidx) != victim:
                    continue
                if shuffles.is_lost(sid, pidx):
                    continue
                shuffles.invalidate(sid, pidx)
                lost += 1
        blocks = 0
        manager = self.executor.ctx.block_manager
        for block in sorted(manager.blocks(), key=lambda b: b.rdd_id):
            if block.on_disk:
                continue
            if block.rdd_id % service.n_executors != victim:
                continue
            if self.injector.external_block_kill(block.rdd_id):
                blocks += 1
        self.partitions_lost += lost
        self.blocks_lost += blocks
        if lost or blocks:
            self.kills_fired += 1
        else:
            self.kills_noop += 1

    # -- shuffle fetches ------------------------------------------------

    def shuffle_fetch(self, dep, pidx: int) -> None:
        """Route one reduce-partition fetch through the service: remote
        owners cost a network hop on this (fetching) machine."""
        ctx = self.executor.ctx
        service = self.executor.service
        ordinal = ctx.shuffles.ordinal(dep.shuffle_id)
        if service.owner_of(ordinal, pidx) == self.executor.index:
            self.local_fetches += 1
            service.record_local()
            return
        ser_bytes = ctx.shuffles.serialized_bytes(dep.shuffle_id, pidx)
        hop_ns = service.hop_ns(ser_bytes)
        # A zero-traffic row: the clock advances by the wire time but no
        # device counters or bandwidth windows are touched (the local
        # disk read that follows stands in for the remote service read).
        ctx.machine.run_rows(
            ((DeviceKind.DRAM, 0.0, 0.0, 0, 0, hop_ns),),
            threads=ctx.config.mutator_threads,
        )
        self.remote_fetches += 1
        self.remote_bytes += ser_bytes
        self.net_ns += hop_ns
        service.record_remote(ser_bytes, hop_ns)


@dataclass
class JobRecord:
    """Everything one cluster job produced, as per-job deltas.

    All scalar metrics are deltas over the executor's counters between
    job start (after idle-advancing to the arrival time) and job end,
    so they sum cleanly across jobs and tenants.
    """

    job_id: int
    tenant: int
    workload: str
    scale: float
    executor: int
    arrival_s: float
    start_s: float
    finish_s: float
    wait_s: float
    exec_s: float
    latency_s: float
    boundaries: int
    actions: int
    gc_s: float
    minor_gcs: int
    major_gcs: int
    energy_j: float
    dram_bytes: float
    nvm_bytes: float
    local_fetches: int
    remote_fetches: int
    remote_bytes: float
    net_s: float
    kills_fired: int
    partitions_lost: int
    blocks_lost: int
    partitions_recomputed: int
    recompute_s: float
    spilled_blocks: int
    dropped_blocks: int
    dram_used_frac: float
    nvm_used_frac: float
    checksums: Dict[str, str] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe representation (all fields, stable keys)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, row: Dict[str, Any]) -> "JobRecord":
        """Inverse of :meth:`to_dict`."""
        return cls(**row)


@dataclass
class JobArtifacts:
    """The oracle-grade artifacts of one job (serial runs only ask for
    these): the per-job GC log, the recorded trace stream, the
    executor-lifetime bandwidth series and the action checksums."""

    gclog: List[str]
    trace_events: List[TraceEvent]
    bandwidth_csv: str
    checksums: Dict[str, str]


class _Counters:
    """Snapshot of every per-job-delta source on one executor."""

    def __init__(self, executor: "Executor") -> None:
        ctx = executor.ctx
        stats = ctx.collector.stats
        machine = ctx.machine
        self.clock_ns = machine.clock.now_ns
        self.pauses = len(stats.pauses)
        self.minor_count = stats.minor_count
        self.major_count = stats.major_count
        self.minor_ns = stats.minor_ns
        self.major_ns = stats.major_ns
        self.energy_j = machine.energy_j()
        self.device_bytes = {
            kind: device.counters.read_bytes + device.counters.write_bytes
            for kind, device in machine.devices.items()
        }
        self.spilled = ctx.block_manager.spilled_count
        self.dropped = ctx.block_manager.dropped_count
        self.block_ids = {b.rdd_id for b in ctx.block_manager.blocks()}


class Executor:
    """One persistent simulated node of the cluster."""

    def __init__(
        self,
        index: int,
        service: ShuffleService,
        config: SystemConfig,
        costs: Optional[MutatorCosts] = None,
        bandwidth_window_ns: float = 1e9,
    ) -> None:
        self.index = index
        self.service = service
        self.config = config
        self.ctx = SparkContext.create(
            config, costs=costs, bandwidth_window_ns=bandwidth_window_ns
        )
        self.jobs_run = 0
        self.busy_ns = 0.0

    # -- job execution --------------------------------------------------

    def run_job(
        self,
        job: JobSpec,
        kills: Sequence[ExecutorKill] = (),
        max_recovery_attempts: int = 3,
        keep_artifacts: bool = False,
    ) -> Tuple[JobRecord, Optional[JobArtifacts]]:
        """Run one job to completion on this executor.

        The executor idles forward to the job's arrival time if it is
        free earlier; otherwise the job queues and its wait time is the
        difference.  Returns the per-job record and, when
        ``keep_artifacts`` is set, the oracle artifacts.
        """
        ctx = self.ctx
        clock = ctx.machine.clock
        arrival_ns = job.arrival_s * 1e9
        if arrival_ns > clock.now_ns:
            clock.advance(arrival_ns - clock.now_ns)
        start_ns = clock.now_ns
        spec = build_workload(
            job.workload, scale=job.scale, **job.workload_kwargs()
        )
        before = _Counters(self)
        # Attachment order matches run_experiment: the trace session
        # first, then the injector (empty plan: byte-neutral), then the
        # cluster binding.
        session = TraceSession.attach_to_context(ctx) if keep_artifacts else None
        injector = FaultInjector.attach(
            FaultPlan(max_recovery_attempts=max_recovery_attempts), ctx
        )
        binding = ClusterBinding(self, injector, kills)
        ctx.cluster = binding
        try:
            action_results, _ = execute_spec(spec, ctx)
        finally:
            ctx.cluster = None
            ctx.faults = None
            if session is not None:
                session.detach()
        record = self._collect(job, before, binding, injector, action_results)
        artifacts: Optional[JobArtifacts] = None
        if keep_artifacts:
            artifacts = JobArtifacts(
                gclog=self._job_gclog(before, record.exec_s),
                trace_events=session.events if session is not None else [],
                bandwidth_csv=bandwidth_csv_from_machine(ctx.machine),
                checksums=dict(record.checksums),
            )
        self._release_job_blocks(before)
        self.jobs_run += 1
        self.busy_ns += clock.now_ns - start_ns
        return record, artifacts

    def _collect(
        self,
        job: JobSpec,
        before: _Counters,
        binding: ClusterBinding,
        injector: FaultInjector,
        action_results: Dict[str, Any],
    ) -> JobRecord:
        ctx = self.ctx
        stats = ctx.collector.stats
        machine = ctx.machine
        start_s = before.clock_ns / 1e9
        finish_s = machine.clock.now_ns / 1e9
        devices = machine.devices
        occupancy = self.heap_occupancy()
        return JobRecord(
            job_id=job.job_id,
            tenant=job.tenant,
            workload=job.workload,
            scale=job.scale,
            executor=self.index,
            arrival_s=job.arrival_s,
            start_s=start_s,
            finish_s=finish_s,
            # Clamped: idle-advancing to the arrival rounds through
            # integer-ish nanoseconds, which can land one ulp early.
            wait_s=max(0.0, start_s - job.arrival_s),
            exec_s=finish_s - start_s,
            latency_s=finish_s - job.arrival_s,
            boundaries=binding.boundaries_seen,
            actions=len(action_results),
            gc_s=(
                (stats.minor_ns - before.minor_ns)
                + (stats.major_ns - before.major_ns)
            )
            / 1e9,
            minor_gcs=stats.minor_count - before.minor_count,
            major_gcs=stats.major_count - before.major_count,
            energy_j=machine.energy_j() - before.energy_j,
            dram_bytes=(
                devices[DeviceKind.DRAM].counters.read_bytes
                + devices[DeviceKind.DRAM].counters.write_bytes
                - before.device_bytes[DeviceKind.DRAM]
            ),
            nvm_bytes=(
                devices[DeviceKind.NVM].counters.read_bytes
                + devices[DeviceKind.NVM].counters.write_bytes
                - before.device_bytes[DeviceKind.NVM]
            ),
            local_fetches=binding.local_fetches,
            remote_fetches=binding.remote_fetches,
            remote_bytes=binding.remote_bytes,
            net_s=binding.net_ns / 1e9,
            kills_fired=binding.kills_fired,
            partitions_lost=binding.partitions_lost,
            blocks_lost=binding.blocks_lost,
            partitions_recomputed=injector.partitions_recomputed,
            recompute_s=injector.recompute_ns / 1e9,
            spilled_blocks=ctx.block_manager.spilled_count - before.spilled,
            dropped_blocks=ctx.block_manager.dropped_count - before.dropped,
            dram_used_frac=occupancy[0],
            nvm_used_frac=occupancy[1],
            checksums=action_checksums(action_results),
        )

    def _job_gclog(self, before: _Counters, exec_s: float) -> List[str]:
        """This job's GC log: its own pauses plus a summary over the
        job's execution window.  Rendered through the same code path as
        ``repro run --gclog`` via a delta :class:`GCStats`, so a first
        job on a fresh executor is byte-identical to the single-node
        log."""
        stats = self.ctx.collector.stats
        delta = GCStats(
            minor_count=stats.minor_count - before.minor_count,
            major_count=stats.major_count - before.major_count,
            minor_ns=stats.minor_ns - before.minor_ns,
            major_ns=stats.major_ns - before.major_ns,
            pauses=list(stats.pauses[before.pauses:]),
        )
        return render_log(delta, exec_s)

    def _release_job_blocks(self, before: _Counters) -> None:
        """Unpersist the blocks this job created (Spark drops an
        application's caches when it ends), bounding heap growth across
        a long traffic plan.  Deterministic: sorted RDD-id order."""
        manager = self.ctx.block_manager
        new_ids = {
            b.rdd_id for b in manager.blocks()
        } - before.block_ids
        for rdd_id in sorted(new_ids):
            manager.unpersist(rdd_id)

    # -- metrics --------------------------------------------------------

    def heap_occupancy(self) -> Tuple[float, float]:
        """Live-byte occupancy of DRAM and NVM as a fraction of each
        device's capacity (sampled over every heap space, plus the
        serialized off-heap tier's packed batches on the native
        device)."""
        heap = self.ctx.heap
        used: Dict[DeviceKind, int] = {}
        for space in heap.young_spaces + heap.old_spaces:
            for device, nbytes in space.device_histogram().items():
                used[device] = used.get(device, 0) + nbytes
        tier_bytes = int(self.ctx.block_manager.serialized_tier_bytes())
        if tier_bytes:
            used[heap.native.device] = (
                used.get(heap.native.device, 0) + tier_bytes
            )
        dram = self.config.dram_bytes
        nvm = self.config.nvm_bytes
        return (
            used.get(DeviceKind.DRAM, 0) / dram if dram else 0.0,
            used.get(DeviceKind.NVM, 0) / nvm if nvm else 0.0,
        )

    def summary(self) -> Dict[str, Any]:
        """Executor-lifetime summary for the cluster report."""
        ctx = self.ctx
        stats = ctx.collector.stats
        machine = ctx.machine
        final_s = machine.clock.now_s
        busy_s = self.busy_ns / 1e9
        occupancy = self.heap_occupancy()
        return {
            "executor": self.index,
            "jobs": self.jobs_run,
            "final_clock_s": final_s,
            "busy_s": busy_s,
            "utilisation": busy_s / final_s if final_s > 0 else 0.0,
            "gc_s": stats.total_gc_s,
            "minor_gcs": stats.minor_count,
            "major_gcs": stats.major_count,
            "energy_j": machine.energy_j(),
            "dram_bytes": (
                machine.devices[DeviceKind.DRAM].counters.read_bytes
                + machine.devices[DeviceKind.DRAM].counters.write_bytes
            ),
            "nvm_bytes": (
                machine.devices[DeviceKind.NVM].counters.read_bytes
                + machine.devices[DeviceKind.NVM].counters.write_bytes
            ),
            "dram_used_frac": occupancy[0],
            "nvm_used_frac": occupancy[1],
            "service": self.service.stats(),
        }
