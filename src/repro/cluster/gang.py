"""Gang-scheduled cluster runs: the simulator behind the projection.

:func:`~repro.cluster.projection.project_pauses` estimates how a
synchronised (gang-scheduled) cluster amplifies GC pauses by scattering
one measured pause profile over synthetic stage windows.  This module
computes the same quantity *from real simulated nodes*: K full
single-node simulations (one per cluster node, with per-node dataset
seed jitter), their pause streams laid into synchronisation windows,
and the gang time summed as max-over-nodes per window — the
simulation-backed answer the analytical projection approximates.

Two placement modes:

* ``"scattered"`` — each node's *real* pauses are scattered over
  windows with the projection's RNG discipline.  This isolates the one
  assumption the cross-check wants to validate (window-max composition
  over K independent nodes) from pause *timing*, and is what the
  pinned cross-check test uses.
* ``"measured"`` — each pause lands in the window its own node's
  mutator progress had reached when the pause started.  This keeps the
  simulated timing correlation the projection throws away; comparing
  the two modes measures exactly how much that assumption costs (see
  docs/CLUSTER.md, "Residual").
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.config import SystemConfig
from repro.errors import ReproError
from repro.harness.experiment import run_experiment

#: Seed jitter base for per-node dataset variation: node *i* builds its
#: dataset with ``seed_base + i``, so the gang's nodes are statistically
#: identical but not clones.
DEFAULT_SEED_BASE = 101


@dataclass(frozen=True)
class GangResult:
    """One gang-scheduled cluster run.

    Attributes:
        nodes: cluster size.
        sync_windows: synchronisation windows per run.
        placement: ``"measured"`` or ``"scattered"``.
        single_node_s: mean single-node run time across the gang.
        cluster_s: gang time (sum over windows of per-window maxima).
        slowdown: ``cluster_s / single_node_s``.
        gc_amplification: gang GC wait over the mean per-node GC time.
        node_elapsed_s: each node's own run time.
        node_gc_s: each node's own GC pause time.
    """

    nodes: int
    sync_windows: int
    placement: str
    single_node_s: float
    cluster_s: float
    slowdown: float
    gc_amplification: float
    node_elapsed_s: List[float] = field(default_factory=list)
    node_gc_s: List[float] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe representation."""
        return {
            "nodes": self.nodes,
            "sync_windows": self.sync_windows,
            "placement": self.placement,
            "single_node_s": self.single_node_s,
            "cluster_s": self.cluster_s,
            "slowdown": self.slowdown,
            "gc_amplification": self.gc_amplification,
            "node_elapsed_s": self.node_elapsed_s,
            "node_gc_s": self.node_gc_s,
        }


def gang_run(
    workload: str,
    nodes: int,
    config: SystemConfig,
    scale: float = 1.0,
    sync_windows: int = 20,
    seed_base: int = DEFAULT_SEED_BASE,
    placement: str = "scattered",
    scatter_seed: int = 1234,
    workload_kwargs: Optional[Dict[str, Any]] = None,
) -> GangResult:
    """Run one workload gang-scheduled across K simulated nodes.

    Each node is a full single-node simulation of the same workload
    with dataset seed ``seed_base + node``.  The gang time composes the
    nodes' pause profiles over ``sync_windows`` barriers:

    * mutator work per window is the gang-mean mutator time divided by
      the window count (all nodes do the same work per stage);
    * each window's pause cost is the max over nodes of the pauses that
      window absorbed, under the chosen ``placement``.

    Args:
        workload: Table 4 abbreviation.
        nodes: cluster size (>= 1).
        config: per-node configuration (same on every node).
        scale: data-scale factor.
        sync_windows: stage barriers per run.
        seed_base: per-node dataset seed jitter base.
        placement: ``"measured"`` (pauses land where their node's
            mutator progress put them) or ``"scattered"`` (the
            projection's RNG discipline over real pause sets).
        scatter_seed: RNG seed for ``"scattered"`` placement.
        workload_kwargs: extra builder arguments (merged with the
            per-node seed).
    """
    if nodes < 1:
        raise ReproError("a gang needs at least one node")
    if sync_windows < 1:
        raise ReproError("need at least one synchronisation window")
    if placement not in ("measured", "scattered"):
        raise ReproError(f"unknown placement {placement!r}")
    node_pauses: List[List[tuple]] = []
    node_elapsed: List[float] = []
    node_gc: List[float] = []
    node_mutator: List[float] = []
    for node in range(nodes):
        kwargs = dict(workload_kwargs or {})
        kwargs["seed"] = seed_base + node
        result = run_experiment(
            workload,
            config,
            scale=scale,
            workload_kwargs=kwargs,
            keep_context=True,
        )
        node_pauses.append(list(result.context.collector.stats.pauses))
        node_elapsed.append(result.elapsed_s)
        node_gc.append(result.gc_s)
        node_mutator.append(result.mutator_s)
    mean_mutator = sum(node_mutator) / nodes
    mean_gc = sum(node_gc) / nodes
    mean_single = sum(node_elapsed) / nodes
    per_node_windows = _window_layout(
        node_pauses,
        node_elapsed,
        node_gc,
        sync_windows,
        placement,
        scatter_seed,
    )
    work_per_window = mean_mutator / sync_windows
    cluster_total = 0.0
    gc_wait = 0.0
    for w in range(sync_windows):
        worst = max(per_node_windows[n][w] for n in range(nodes))
        cluster_total += work_per_window + worst
        gc_wait += worst
    return GangResult(
        nodes=nodes,
        sync_windows=sync_windows,
        placement=placement,
        single_node_s=mean_single,
        cluster_s=cluster_total,
        slowdown=cluster_total / mean_single if mean_single else 1.0,
        gc_amplification=gc_wait / mean_gc if mean_gc else 1.0,
        node_elapsed_s=node_elapsed,
        node_gc_s=node_gc,
    )


def _window_layout(
    node_pauses: List[List[tuple]],
    node_elapsed: List[float],
    node_gc: List[float],
    sync_windows: int,
    placement: str,
    scatter_seed: int,
) -> List[List[float]]:
    """Per-node pause mass per window under the chosen placement."""
    layouts: List[List[float]] = []
    if placement == "scattered":
        # One shared RNG consumed node by node — the exact discipline
        # of project_pauses, over each node's own real pause set.
        rng = random.Random(scatter_seed)
        for pauses in node_pauses:
            windows = [0.0] * sync_windows
            for _, _, duration_ns in pauses:
                windows[rng.randrange(sync_windows)] += duration_ns / 1e9
            layouts.append(windows)
        return layouts
    for node, pauses in enumerate(node_pauses):
        # Window = how far through its own mutator work the node was
        # when the pause started (elapsed-minus-GC-so-far over the
        # node's total mutator time).
        windows = [0.0] * sync_windows
        mutator_total = max(node_elapsed[node] - node_gc[node], 1e-12)
        gc_so_far = 0.0
        for _, start_ns, duration_ns in pauses:
            progress = (start_ns / 1e9 - gc_so_far) / mutator_total
            idx = min(int(progress * sync_windows), sync_windows - 1)
            windows[max(idx, 0)] += duration_ns / 1e9
            gc_so_far += duration_ns / 1e9
        layouts.append(windows)
    return layouts
