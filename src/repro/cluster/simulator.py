"""The multi-executor cluster: lanes, traffic replay, and the report.

A :class:`Cluster` is N persistent :class:`~repro.cluster.executor.
Executor` nodes plus a driver that replays a :class:`~repro.cluster.
traffic.TrafficPlan` against them.  Placement is decided at plan time —
job *i* runs on executor ``i % N`` — so each executor's job sequence is
a pure function of the plan, and the lanes are fully independent: lane
*k* can replay on its own simulated clock with no cross-lane
synchronisation.  Cross-executor shuffle traffic is modelled by the
deterministic ownership overlay in :mod:`repro.cluster.service`, which
needs only the cluster size, not the other lanes' state.

That independence is what makes ``--jobs N`` trivial *and* byte-exact:
the parallel path pickles each lane's payload to a worker process, runs
the identical :func:`_run_lane_worker`, and reassembles the records —
same function, same inputs, same bytes as the serial loop.
"""

from __future__ import annotations

import json
import math
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.config import PolicyName, SystemConfig
from repro.errors import ReproError
from repro.harness.configs import paper_config
from repro.spark.costmodel import MutatorCosts

from repro.cluster.executor import Executor, JobArtifacts, JobRecord
from repro.cluster.faults import ClusterFaultPlan
from repro.cluster.service import (
    DEFAULT_NET_GBPS,
    DEFAULT_NET_LATENCY_S,
    ShuffleService,
)
from repro.cluster.traffic import TENANT_SCALE_CYCLE, TrafficPlan


def percentile(values: List[float], q: float) -> float:
    """Nearest-rank percentile (the SLO-reporting convention: p99 is an
    actually-observed latency, never an interpolation)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(1, math.ceil(q / 100.0 * len(ordered)))
    return ordered[min(rank, len(ordered)) - 1]


@dataclass
class ClusterReport:
    """What one cluster run measured.

    Attributes:
        executors: cluster size.
        n_jobs: jobs executed.
        makespan_s: first arrival to last completion.
        throughput_jobs_per_s: ``n_jobs / makespan_s``.
        latency_p50_s / latency_p99_s: nearest-rank percentiles of
            job latency (arrival to completion, queueing included).
        wait_mean_s: mean queueing delay.
        gc_s: total GC pause time across the cluster.
        energy_j: total memory energy across the cluster.
        jobs: per-job records in submission order.
        tenants: per-tenant rollup — job count, mean latency, DRAM/NVM
            traffic in GB and as a share of the cluster total.
        executor_summaries: per-executor lifetime summaries.
        service: shared-shuffle-service totals (local/remote fetches,
            remote bytes, wire seconds).
        faults: executor-kill totals (kills fired, partitions and
            blocks lost, partitions recomputed, recompute seconds).
        plan: the traffic plan that was replayed (dict form).
        fault_plan: the cluster fault plan (dict form, None if empty).
    """

    executors: int
    n_jobs: int
    makespan_s: float
    throughput_jobs_per_s: float
    latency_p50_s: float
    latency_p99_s: float
    wait_mean_s: float
    gc_s: float
    energy_j: float
    jobs: List[JobRecord] = field(default_factory=list)
    tenants: Dict[int, Dict[str, float]] = field(default_factory=dict)
    executor_summaries: List[Dict[str, Any]] = field(default_factory=list)
    service: Dict[str, Any] = field(default_factory=dict)
    faults: Dict[str, Any] = field(default_factory=dict)
    plan: Dict[str, Any] = field(default_factory=dict)
    fault_plan: Optional[Dict[str, Any]] = None

    def to_dict(self) -> Dict[str, Any]:
        """Stable JSON-safe representation (the determinism oracle:
        two byte-identical runs serialise to identical JSON)."""
        return {
            "executors": self.executors,
            "n_jobs": self.n_jobs,
            "makespan_s": self.makespan_s,
            "throughput_jobs_per_s": self.throughput_jobs_per_s,
            "latency_p50_s": self.latency_p50_s,
            "latency_p99_s": self.latency_p99_s,
            "wait_mean_s": self.wait_mean_s,
            "gc_s": self.gc_s,
            "energy_j": self.energy_j,
            "jobs": [j.to_dict() for j in self.jobs],
            "tenants": {str(t): row for t, row in sorted(self.tenants.items())},
            "executor_summaries": self.executor_summaries,
            "service": self.service,
            "faults": self.faults,
            "plan": self.plan,
            "fault_plan": self.fault_plan,
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        """Canonical JSON (sorted keys) of :meth:`to_dict`."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def summary_lines(self) -> List[str]:
        """Human-readable report for the CLI."""
        lines = [
            f"cluster: {self.executors} executors, {self.n_jobs} jobs, "
            f"makespan {self.makespan_s:.2f}s",
            f"throughput: {self.throughput_jobs_per_s:.4f} jobs/sim-s",
            f"latency: p50 {self.latency_p50_s:.2f}s  "
            f"p99 {self.latency_p99_s:.2f}s  "
            f"(mean wait {self.wait_mean_s:.2f}s)",
            f"gc: {self.gc_s:.2f}s total   energy: {self.energy_j:.1f} J",
            "shuffle service: "
            f"{self.service.get('local_fetches', 0)} local / "
            f"{self.service.get('remote_fetches', 0)} remote fetches, "
            f"{self.service.get('remote_bytes', 0.0) / (1024**2):.1f} MB "
            f"over the wire ({self.service.get('net_s', 0.0):.3f}s)",
        ]
        if self.faults.get("kills_fired", 0):
            lines.append(
                f"faults: {self.faults['kills_fired']} executor kills, "
                f"{self.faults['partitions_lost']} partitions + "
                f"{self.faults['blocks_lost']} blocks lost, "
                f"{self.faults['partitions_recomputed']} partitions "
                f"recomputed in {self.faults['recompute_s']:.2f}s"
            )
        lines.append("per-tenant utilisation:")
        for tenant, row in sorted(self.tenants.items()):
            lines.append(
                f"  tenant {tenant}: {int(row['jobs'])} jobs, "
                f"mean latency {row['latency_mean_s']:.2f}s, "
                f"DRAM {row['dram_gb']:.2f} GB ({row['dram_share']:.0%}), "
                f"NVM {row['nvm_gb']:.2f} GB ({row['nvm_share']:.0%})"
            )
        lines.append("per-executor utilisation:")
        for summary in self.executor_summaries:
            lines.append(
                f"  executor {summary['executor']}: "
                f"{summary['jobs']} jobs, "
                f"busy {summary['busy_s']:.1f}s "
                f"({summary['utilisation']:.0%}), "
                f"heap DRAM {summary['dram_used_frac']:.0%} / "
                f"NVM {summary['nvm_used_frac']:.0%}"
            )
        return lines


def default_cluster_config(
    plan: TrafficPlan,
    heap_gb: float = 64.0,
    dram_ratio: float = 1.0 / 3.0,
    policy: PolicyName = PolicyName.PANTHERA,
) -> SystemConfig:
    """Per-executor configuration sized for a traffic plan.

    The heap scales with the plan's *largest* job (the biggest tenant
    multiplier), mirroring how :func:`~repro.harness.configs.
    paper_config` couples heap and data scale — every executor must be
    able to run every job the plan can route to it.
    """
    if plan.is_empty:
        heap_scale = plan.base_scale * max(TENANT_SCALE_CYCLE)
    else:
        heap_scale = max(job.scale for job in plan.jobs)
    return paper_config(heap_gb, dram_ratio, policy, scale=heap_scale)


def _run_lane_worker(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Replay one executor's lane of the plan (runs in-process for
    serial clusters and in a worker process under ``--jobs N`` — the
    single code path both modes share)."""
    service = ShuffleService(
        payload["executors"],
        net_latency_s=payload["net_latency_s"],
        net_gbps=payload["net_gbps"],
    )
    executor = Executor(
        payload["index"],
        service,
        payload["config"],
        costs=payload["costs"],
        bandwidth_window_ns=payload["bandwidth_window_ns"],
    )
    fault_plan = ClusterFaultPlan.from_dict(payload["fault_plan"])
    records: List[Dict[str, Any]] = []
    artifacts: List[JobArtifacts] = []
    for row in payload["jobs"]:
        job = _job_from_dict(row)
        record, arts = executor.run_job(
            job,
            kills=fault_plan.kills_for_job(job.job_id),
            max_recovery_attempts=fault_plan.max_recovery_attempts,
            keep_artifacts=payload["keep_artifacts"],
        )
        records.append(record.to_dict())
        if arts is not None:
            artifacts.append(arts)
    return {
        "executor": executor.summary(),
        "jobs": records,
        "artifacts": artifacts,
    }


def _job_from_dict(row: Dict[str, Any]):
    from repro.cluster.traffic import JobSpec

    return JobSpec.from_dict(row)


class Cluster:
    """N executors plus the traffic-replaying driver."""

    def __init__(
        self,
        executors: int,
        config: Optional[SystemConfig] = None,
        heap_gb: float = 64.0,
        dram_ratio: float = 1.0 / 3.0,
        policy: PolicyName = PolicyName.PANTHERA,
        costs: Optional[MutatorCosts] = None,
        bandwidth_window_ns: float = 1e9,
        net_latency_s: float = DEFAULT_NET_LATENCY_S,
        net_gbps: float = DEFAULT_NET_GBPS,
    ) -> None:
        if executors < 1:
            raise ReproError("need at least one executor")
        self.executors = executors
        self.config = config
        self.heap_gb = heap_gb
        self.dram_ratio = dram_ratio
        self.policy = policy
        self.costs = costs
        self.bandwidth_window_ns = bandwidth_window_ns
        self.net_latency_s = net_latency_s
        self.net_gbps = net_gbps

    def lane_jobs(self, plan: TrafficPlan) -> List[List[Dict[str, Any]]]:
        """The plan split into per-executor lanes (round-robin by
        submission index — placement is part of the plan, not a runtime
        decision)."""
        lanes: List[List[Dict[str, Any]]] = [[] for _ in range(self.executors)]
        for job in plan.jobs:
            lanes[job.job_id % self.executors].append(job.to_dict())
        return lanes

    def run(
        self,
        plan: TrafficPlan,
        faults: Optional[ClusterFaultPlan] = None,
        jobs: int = 1,
        keep_artifacts: bool = False,
    ) -> Tuple[ClusterReport, List[JobArtifacts]]:
        """Replay a traffic plan across the cluster.

        Args:
            plan: the seeded traffic plan.
            faults: executor kills to inject (None = fault-free).
            jobs: worker processes for the lane fan-out (1 = serial in
                this process; byte-identical either way).
            keep_artifacts: collect per-job oracle artifacts (GC log,
                trace stream, bandwidth CSV) — heavier, test use only.

        Returns:
            ``(report, artifacts)``; artifacts is empty unless
            ``keep_artifacts`` was set.
        """
        if plan.is_empty:
            raise ReproError("traffic plan has no jobs")
        fault_plan = faults if faults is not None else ClusterFaultPlan()
        config = self.config or default_cluster_config(
            plan, self.heap_gb, self.dram_ratio, self.policy
        )
        payloads = [
            {
                "index": lane,
                "executors": self.executors,
                "config": config,
                "costs": self.costs,
                "bandwidth_window_ns": self.bandwidth_window_ns,
                "net_latency_s": self.net_latency_s,
                "net_gbps": self.net_gbps,
                "fault_plan": fault_plan.to_dict(),
                "jobs": lane_jobs,
                "keep_artifacts": keep_artifacts,
            }
            for lane, lane_jobs in enumerate(self.lane_jobs(plan))
        ]
        payloads = [p for p in payloads if p["jobs"]]
        if jobs > 1 and len(payloads) > 1:
            with ProcessPoolExecutor(
                max_workers=min(jobs, len(payloads))
            ) as pool:
                lane_results = list(pool.map(_run_lane_worker, payloads))
        else:
            lane_results = [_run_lane_worker(p) for p in payloads]
        return self._assemble(plan, fault_plan, lane_results)

    def _assemble(
        self,
        plan: TrafficPlan,
        fault_plan: ClusterFaultPlan,
        lane_results: List[Dict[str, Any]],
    ) -> Tuple[ClusterReport, List[JobArtifacts]]:
        records = sorted(
            (
                JobRecord.from_dict(row)
                for lane in lane_results
                for row in lane["jobs"]
            ),
            key=lambda r: r.job_id,
        )
        artifacts = [a for lane in lane_results for a in lane["artifacts"]]
        latencies = [r.latency_s for r in records]
        first_arrival = min(r.arrival_s for r in records)
        last_finish = max(r.finish_s for r in records)
        makespan = last_finish - first_arrival
        service = {
            "local_fetches": sum(r.local_fetches for r in records),
            "remote_fetches": sum(r.remote_fetches for r in records),
            "remote_bytes": sum(r.remote_bytes for r in records),
            "net_s": sum(r.net_s for r in records),
        }
        faults = {
            "kills_planned": len(fault_plan.kills),
            "kills_fired": sum(r.kills_fired for r in records),
            "partitions_lost": sum(r.partitions_lost for r in records),
            "blocks_lost": sum(r.blocks_lost for r in records),
            "partitions_recomputed": sum(
                r.partitions_recomputed for r in records
            ),
            "recompute_s": sum(r.recompute_s for r in records),
        }
        report = ClusterReport(
            executors=self.executors,
            n_jobs=len(records),
            makespan_s=makespan,
            throughput_jobs_per_s=(
                len(records) / makespan if makespan > 0 else 0.0
            ),
            latency_p50_s=percentile(latencies, 50.0),
            latency_p99_s=percentile(latencies, 99.0),
            wait_mean_s=sum(r.wait_s for r in records) / len(records),
            gc_s=sum(r.gc_s for r in records),
            energy_j=sum(r.energy_j for r in records),
            jobs=records,
            tenants=self._tenant_rollup(records),
            executor_summaries=[lane["executor"] for lane in lane_results],
            service=service,
            faults=faults,
            plan=plan.to_dict(),
            fault_plan=None if fault_plan.is_empty else fault_plan.to_dict(),
        )
        return report, artifacts

    @staticmethod
    def _tenant_rollup(
        records: List[JobRecord],
    ) -> Dict[int, Dict[str, float]]:
        """Per-tenant job counts, latency, and hybrid-memory usage as a
        share of the cluster's device traffic."""
        total_dram = sum(r.dram_bytes for r in records)
        total_nvm = sum(r.nvm_bytes for r in records)
        rollup: Dict[int, Dict[str, float]] = {}
        for tenant in sorted({r.tenant for r in records}):
            rows = [r for r in records if r.tenant == tenant]
            dram = sum(r.dram_bytes for r in rows)
            nvm = sum(r.nvm_bytes for r in rows)
            rollup[tenant] = {
                "jobs": float(len(rows)),
                "latency_mean_s": sum(r.latency_s for r in rows) / len(rows),
                "wait_mean_s": sum(r.wait_s for r in rows) / len(rows),
                "gc_s": sum(r.gc_s for r in rows),
                "dram_gb": dram / (1024**3),
                "nvm_gb": nvm / (1024**3),
                "dram_share": dram / total_dram if total_dram else 0.0,
                "nvm_share": nvm / total_nvm if total_nvm else 0.0,
            }
        return rollup
