"""The shared shuffle service: who owns which reduce partition.

Real Spark-on-YARN deployments run an external shuffle service per node;
reducers fetch map outputs from whichever node's service holds them
(Sparkle, arxiv 1708.05746, replaces exactly this transfer layer with a
shared-memory one).  The simulator models the service as a deterministic
*ownership overlay* over each executor's
:class:`~repro.spark.shuffle.ShuffleManager`:

* Record storage stays in the home executor's manager (the simulated
  records never move — only costs do).
* Every reduce partition of every shuffle is assigned an owning
  executor by a pure function of the shuffle's dense ordinal and the
  partition index, identical on every lane of a parallel run.
* A fetch whose owner is the fetching executor is local (no extra
  cost — the existing disk-read charge stands in for the service
  read).  A fetch owned by a remote executor pays a network hop —
  latency plus serialized bytes over the interconnect — charged on the
  *fetching* machine through :meth:`~repro.memory.machine.Machine.
  run_rows` as a pure-CPU-shaped row (no device-counter pollution, so
  DRAM/NVM utilisation still measures memory-system work).

With one executor every partition is home-owned and the overlay charges
nothing at all — the byte-identity anchor of the 1-executor oracle.
"""

from __future__ import annotations

from typing import Any, Dict

#: Default interconnect: 10 GbE with a 200 us RPC round trip.
DEFAULT_NET_LATENCY_S = 200e-6
DEFAULT_NET_GBPS = 10.0


class ShuffleService:
    """One lane's view of the cluster-wide shuffle service.

    Ownership is a pure function shared by every lane; the fetch
    counters are lane-local and summed into the cluster report.
    """

    def __init__(
        self,
        n_executors: int,
        net_latency_s: float = DEFAULT_NET_LATENCY_S,
        net_gbps: float = DEFAULT_NET_GBPS,
    ) -> None:
        self.n_executors = n_executors
        self.net_latency_ns = net_latency_s * 1e9
        self.net_bytes_per_ns = net_gbps * (1024.0**3) / 1e9
        self.local_fetches = 0
        self.remote_fetches = 0
        self.remote_bytes = 0.0
        self.net_ns = 0.0

    def owner_of(self, ordinal: int, pidx: int) -> int:
        """The executor owning one reduce partition.

        A pure function of the shuffle's dense first-write ordinal and
        the partition index — round-robin striping, the deterministic
        stand-in for consistent hashing.  With ``n_executors == 1``
        every partition is owned by executor 0.
        """
        return (ordinal + pidx) % self.n_executors

    def hop_ns(self, ser_bytes: float) -> float:
        """Simulated nanoseconds one remote fetch of ``ser_bytes``
        spends on the wire (latency + serialized transfer)."""
        return self.net_latency_ns + ser_bytes / self.net_bytes_per_ns

    def record_local(self) -> None:
        """Account one home-owned fetch."""
        self.local_fetches += 1

    def record_remote(self, ser_bytes: float, hop_ns: float) -> None:
        """Account one cross-executor fetch."""
        self.remote_fetches += 1
        self.remote_bytes += ser_bytes
        self.net_ns += hop_ns

    def stats(self) -> Dict[str, Any]:
        """Lane-local counters (summed across lanes by the report)."""
        return {
            "local_fetches": self.local_fetches,
            "remote_fetches": self.remote_fetches,
            "remote_bytes": self.remote_bytes,
            "net_s": self.net_ns / 1e9,
        }
