"""Cluster-level fault plans: executor kills at stage boundaries.

The single-node :class:`~repro.faults.plan.FaultPlan` kills one reduce
partition or one block; a :class:`ClusterFaultPlan` kills a whole
*executor* — every shuffle reduce partition the shared service assigned
to it and every persisted block replica it hosted die together, and the
surviving executors recompute them through lineage via the PR 3
injector's measured recovery path.

Like every plan in this repo it is declarative, seeded and picklable:
kills fire at deterministic per-job stage-boundary counts, never from
wall-clock time, so cluster runs stay byte-identical across ``--jobs``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.errors import FaultError


@dataclass(frozen=True)
class ExecutorKill:
    """One executor loss, fired mid-job at a stage boundary.

    Attributes:
        executor: victim executor index (taken modulo the cluster
            size at fire time).
        at_boundary: which stage boundary *of the triggering job* the
            kill fires at (1-based; boundaries count completed shuffle
            map stages and action starts, the same convention as
            :class:`~repro.faults.plan.KillSpec`).
        job_id: the job whose execution triggers the kill (None = the
            kill re-fires during every job).
    """

    executor: int
    at_boundary: int
    job_id: Optional[int] = None

    def __post_init__(self) -> None:
        if self.executor < 0:
            raise FaultError("executor index must be >= 0")
        if self.at_boundary < 1:
            raise FaultError("at_boundary is 1-based; must be >= 1")

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe representation (None fields omitted)."""
        row: Dict[str, Any] = {
            "executor": self.executor,
            "at_boundary": self.at_boundary,
        }
        if self.job_id is not None:
            row["job_id"] = self.job_id
        return row

    @classmethod
    def from_dict(cls, row: Dict[str, Any]) -> "ExecutorKill":
        """Inverse of :meth:`to_dict`."""
        return cls(**row)


@dataclass(frozen=True)
class ClusterFaultPlan:
    """Every executor loss one cluster run will suffer, decided up front.

    Attributes:
        kills: executor-kill events.
        max_recovery_attempts: bound on re-running one lost stage,
            forwarded to each job's
            :class:`~repro.faults.injector.FaultInjector`.
        seed: seed this plan was generated from (provenance).
    """

    kills: List[ExecutorKill] = field(default_factory=list)
    max_recovery_attempts: int = 3
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_recovery_attempts < 1:
            raise FaultError("max_recovery_attempts must be >= 1")

    @property
    def is_empty(self) -> bool:
        """True when the plan injects nothing."""
        return not self.kills

    def kills_for_job(self, job_id: int) -> List[ExecutorKill]:
        """The kills that arm while ``job_id`` executes."""
        return [
            k for k in self.kills if k.job_id is None or k.job_id == job_id
        ]

    def to_dict(self) -> Dict[str, Any]:
        """Stable JSON-safe representation."""
        return {
            "kills": [k.to_dict() for k in self.kills],
            "max_recovery_attempts": self.max_recovery_attempts,
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, row: Dict[str, Any]) -> "ClusterFaultPlan":
        """Inverse of :meth:`to_dict`."""
        return cls(
            kills=[ExecutorKill.from_dict(k) for k in row.get("kills", [])],
            max_recovery_attempts=row.get("max_recovery_attempts", 3),
            seed=row.get("seed", 0),
        )

    @classmethod
    def random(
        cls,
        seed: int,
        executors: int,
        max_boundary: int,
        kills: int = 1,
        jobs: Optional[int] = None,
        max_recovery_attempts: int = 3,
    ) -> "ClusterFaultPlan":
        """Build a seeded random plan (chaos testing at cluster scale).

        Args:
            seed: drives a private :class:`random.Random`.
            executors: victim indices are drawn from ``[0, executors)``.
            max_boundary: kill boundaries are drawn from
                ``[1, max_boundary]``.
            kills: how many kill events to generate.
            jobs: when set, each kill is pinned to a random job id in
                ``[0, jobs)``; when None, kills re-fire in every job.
        """
        if executors < 1:
            raise FaultError("need at least one executor")
        if max_boundary < 1:
            raise FaultError("max_boundary must be >= 1")
        rng = random.Random(seed)
        specs = [
            ExecutorKill(
                executor=rng.randrange(executors),
                at_boundary=rng.randint(1, max_boundary),
                job_id=rng.randrange(jobs) if jobs else None,
            )
            for _ in range(kills)
        ]
        return cls(
            kills=specs,
            max_recovery_attempts=max_recovery_attempts,
            seed=seed,
        )
