"""Cluster-scale simulation and projection of GC behaviour.

The paper runs a two-node cluster but argues the stakes grow with scale
(§5.2): "a GC run on a single node can hold up the entire cluster — when
a node requests a data partition from another server that is running GC,
the requesting node cannot do anything until the GC is done ... we
expect Panthera to provide even greater benefit when Spark is executed
on a large NVM cluster."

This package answers that argument two ways:

* A **multi-executor cluster simulator** (:mod:`~repro.cluster.
  simulator`): N persistent executors, each a full hybrid DRAM/NVM node
  on its own simulated clock, replaying a seeded
  :class:`~repro.cluster.traffic.TrafficPlan` with a shared shuffle
  service (:mod:`~repro.cluster.service`) and cluster-level executor
  kills (:mod:`~repro.cluster.faults`) that recover through lineage.
  A 1-executor cluster job is byte-identical to
  :func:`~repro.harness.experiment.run_experiment` — the simulator is a
  strict generalisation of the single-node path.
* An **analytical projection** (:mod:`~repro.cluster.projection`):
  given one node's pause timeline, estimate the synchronised-stage
  slowdown of a K-node gang in microseconds instead of a simulation.
  :mod:`~repro.cluster.gang` runs the simulation-backed version of the
  same quantity and pins the projection against it.
"""

from repro.cluster.executor import Executor, JobArtifacts, JobRecord
from repro.cluster.faults import ClusterFaultPlan, ExecutorKill
from repro.cluster.gang import GangResult, gang_run
from repro.cluster.projection import ClusterProjection, project_cluster, project_pauses
from repro.cluster.service import ShuffleService
from repro.cluster.simulator import Cluster, ClusterReport, default_cluster_config
from repro.cluster.traffic import JobSpec, TrafficPlan, generate_traffic

__all__ = [
    "Cluster",
    "ClusterFaultPlan",
    "ClusterProjection",
    "ClusterReport",
    "Executor",
    "ExecutorKill",
    "GangResult",
    "JobArtifacts",
    "JobRecord",
    "JobSpec",
    "ShuffleService",
    "TrafficPlan",
    "default_cluster_config",
    "gang_run",
    "generate_traffic",
    "project_cluster",
    "project_pauses",
]
