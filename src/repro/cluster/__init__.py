"""Cluster-scale projection of single-node GC behaviour.

The paper runs a two-node cluster but argues the stakes grow with scale
(§5.2): "a GC run on a single node can hold up the entire cluster — when
a node requests a data partition from another server that is running GC,
the requesting node cannot do anything until the GC is done ... we
expect Panthera to provide even greater benefit when Spark is executed
on a large NVM cluster."

This package turns that argument into a model: given one simulated
node's pause timeline, project the synchronised-stage slowdown of a
K-node cluster and show how each policy's GC profile amplifies with K.
"""

from repro.cluster.projection import ClusterProjection, project_cluster

__all__ = ["ClusterProjection", "project_cluster"]
