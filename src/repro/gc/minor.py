"""The minor collection: a Parallel Scavenge-style scavenge with
Panthera's modifications (§4.2.2).

Phases and their costs (all charged as one parallel batch of 16 GC
threads; devices proceed concurrently, so NVM's 10 GB/s is the binding
constraint whenever card scanning touches NVM-resident arrays):

1. *root-task*: trace the young object graph from the roots.  Visiting an
   object costs one latency-bound read plus its header bytes on the
   device it resides on.  Tag bits are propagated parent -> child with
   the DRAM > NVM conflict rule.
2. *old-to-young task* (split by Panthera into DRAM-to-young and
   NVM-to-young): scan objects with dirty cards.  Scanning streams the
   object's full payload from its device.  Objects stuck dirty because
   of shared cards (§4.2.3) are rescanned by *every* minor GC.
3. copy/promote: live young objects are evacuated.  Panthera's *eager
   promotion* sends tagged objects straight to the old space named by
   their MEMORY_BITS; untagged objects age through the survivor spaces
   and are promoted after ``tenuring_threshold`` survivals.

Per-object costs are accumulated through
:class:`~repro.gc.charging.ChargeAccumulator` and deposited once per
device per phase — bit-identical to per-object depositing, several times
faster (see :mod:`repro.gc.charging`).
"""

from __future__ import annotations

from typing import List, Set

from repro.config import DeviceKind
from repro.core.tags import MEMORY_BITS_NONE, MemoryTag, merge_tags
from repro.errors import GCError
from repro.gc.charging import ChargeAccumulator
from repro.heap.object_model import HeapObject
from repro.memory.machine import TrafficSet
from repro.trace.events import PROMOTE, SURVIVOR_COPY


def _propagate_tag(parent: HeapObject, child: HeapObject) -> None:
    """Propagate MEMORY_BITS from parent to child during tracing, merging
    conflicts with DRAM > NVM (§4.2.2)."""
    if parent.memory_bits == MEMORY_BITS_NONE:
        return
    merged = merge_tags(
        MemoryTag.from_bits(parent.memory_bits), MemoryTag.from_bits(child.memory_bits)
    )
    child.set_tag(merged)


def run_minor_gc(collector) -> None:
    """Execute one minor collection on behalf of ``collector``."""
    heap = collector.heap
    machine = collector.machine
    config = collector.config
    policy = collector.policy
    stats = collector.stats

    start_ns = machine.clock.now_ns
    # Scanning (root trace + old-to-young card scan) and evacuation
    # (survivor/promotion copying) are charged as two serialized batches:
    # Parallel Scavenge's threads cannot overlap copy work behind the
    # card scan that discovers it.
    scan_traffic = TrafficSet()
    copy_traffic = TrafficSet()
    visited: Set[HeapObject] = set()
    young_live: List[HeapObject] = []

    # Floor cost: in-flight young data (aggregation buffers, iterator
    # state) that survives this one scavenge and is copied to a survivor
    # space, in every configuration — the young generation is always
    # DRAM-resident.
    eden = heap.eden
    floor_bytes = (eden.top - eden.base) * config.minor_live_fraction
    if floor_bytes > 0:
        copy_traffic.add(
            DeviceKind.DRAM, read_bytes=floor_bytes, write_bytes=floor_bytes
        )

    in_young = heap.in_young
    roots = heap.iter_roots()
    card_table = heap.card_table
    fresh = stuck = None
    if roots or card_table.pending_scan():
        charges = ChargeAccumulator(scan_traffic)
        # The vectorised plane defers visit charges into `pending` and
        # settles each segment with one bulk `visit_all` call; segments
        # end wherever a non-visit charge (a holder's stream_read) comes
        # next, so the charge sequence — and with it the device
        # first-touch order — matches the per-object path exactly.  The
        # scalar plane charges inline, the historical call pattern.
        pending: List[HeapObject] = []
        note = pending.append if charges.vectorised else charges.visit

        def trace_young(entry: HeapObject) -> None:
            """Trace the young subgraph reachable from ``entry``."""
            stack = [entry]
            while stack:
                obj = stack.pop()
                if obj in visited or not in_young(obj):
                    continue
                visited.add(obj)
                young_live.append(obj)
                note(obj)
                for child in obj.refs:
                    if in_young(child):
                        _propagate_tag(obj, child)
                        if child not in visited:
                            stack.append(child)

        # Phase 1: root task.  Old roots are covered by the card table;
        # young roots are traced.  Root objects with MEMORY_BITS set by
        # rdd_alloc are recognised here (§4.2.2's modified root-task).
        for root in roots:
            note(root)
            if in_young(root):
                trace_young(root)
        if pending:
            charges.visit_all(pending)
            pending.clear()

        # Phase 2: old-to-young card scan (deterministic order).
        fresh, stuck = card_table.scan_plan()
        if fresh or stuck:
            for holder in sorted(fresh | stuck, key=lambda o: o.oid):
                charges.stream_read(holder)
                stats.card_scanned_bytes += holder.size
                if holder in stuck:
                    stats.stuck_rescans += 1
                for child in holder.refs:
                    if in_young(child):
                        _propagate_tag(holder, child)
                        trace_young(child)
                if pending:
                    charges.visit_all(pending)
                    pending.clear()
        charges.flush()

    # Phase 3: copy / promote (skipped outright when nothing survived —
    # the common case for pure streaming churn).
    trace = heap.trace
    survivor_to = heap.survivor_to
    threshold = config.tenuring_threshold
    promoted: List[HeapObject] = []
    charges = ChargeAccumulator(copy_traffic) if young_live else None
    for obj in young_live:
        src = obj.space
        src_pieces = src.object_traffic(obj)
        if trace is not None:
            src_space = src.name
            src_device = src.device_of(obj.addr).value
        eager_space = policy.eager_promotion_space(heap, obj)
        if eager_space is not None:
            dest = eager_space
            stats.eager_promoted_objects += 1
        elif obj.age + 1 >= threshold:
            dest = policy.promotion_space(heap, obj)
        else:
            dest = survivor_to
        if dest is survivor_to:
            if survivor_to.end - survivor_to.top >= obj.size and survivor_to.place(obj):
                charges.copy(src_pieces, obj, survivor_to)
                obj.age += 1
                stats.copied_bytes += obj.size
                if trace is not None:
                    trace.move(SURVIVOR_COPY, obj, src_space, src_device)
                continue
            # Survivor overflow: fall through to promotion.
            dest = policy.promotion_space(heap, obj)
        nbytes = charges.copy(src_pieces, obj, dest)
        if not heap._place_in_old(obj, dest):
            raise GCError(
                "promotion failed: the collector must guarantee old-gen "
                "headroom before scavenging"
            )
        obj.age = 0  # age now counts survived major cycles
        stats.promoted_bytes += nbytes
        promoted.append(obj)
        if trace is not None:
            trace.move(PROMOTE, obj, src_space, src_device)
    if charges is not None:
        charges.flush()

    # Phase 4: card hygiene.  Freshly-scanned cards are cleaned unless the
    # object still holds young references (e.g. its tuples are still aging
    # in a survivor space); stuck cards stay dirty until a major GC.
    card_table.after_minor_scan()
    if fresh:
        for holder in sorted(fresh, key=lambda o: o.oid):
            if heap.in_old(holder) and any(in_young(c) for c in holder.refs):
                card_table.mark_dirty(holder)
    for obj in promoted:
        if any(in_young(c) for c in obj.refs):
            if not card_table.is_registered(obj):
                card_table.register(obj)
            card_table.mark_dirty(obj)

    # Phase 5: flip the young generation.  Everything still registered in
    # eden or the from-space is dead (survivors were evacuated above), so
    # the death events are published before the spaces are wiped.
    for space in (heap.eden, heap.survivor_from):
        if trace is not None:
            space_name = space.name
            for obj in sorted(space.objects, key=lambda o: o.oid):
                trace.free(obj, space_name)
        space.reset()
    heap.survivor_from, heap.survivor_to = heap.survivor_to, heap.survivor_from

    machine.clock.advance(config.gc_fixed_pause_ns)
    for batch in (scan_traffic, copy_traffic):
        # An empty batch is a no-op (zero duration, nothing recorded);
        # skipping it avoids the run_batch call on trivial scavenges.
        if batch.per_device:
            machine.run_batch(
                batch.per_device,
                threads=config.gc_threads,
                cpu_ns=_gc_processing_ns(batch, config),
            )
    stats.record_minor(start_ns, machine.clock.now_ns - start_ns)


def _gc_processing_ns(traffic: TrafficSet, config) -> float:
    """Object-work cost of the collection across all GC threads.

    Tracing, copying and card scanning are header checks, forwarding
    updates and reference fix-ups — not pure memcpy — so aggregate GC
    throughput is CPU-capped (~20 GB/s for 16 threads at the default
    0.05 ns/B).  On DRAM this cap binds; on NVM the 10 GB/s device
    bandwidth binds instead, which is §5.3's observation that Parallel
    Scavenge's parallelism is crippled by NVM bandwidth.
    """
    processed = 0.0
    for t in traffic.per_device.values():
        processed += t.read_bytes + t.write_bytes
    return processed * config.gc_ns_per_byte
