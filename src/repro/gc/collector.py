"""The collection driver: triggers, headroom guarantees and entry points.

The driver enforces the invariant the scavenge relies on: before a minor
GC runs, the old generation has enough free room for the worst case
promotion (every survivable young object tenured at once).  When it does
not, a full collection runs first — the same policy HotSpot applies with
its "promotion guarantee".
"""

from __future__ import annotations

from typing import Optional

from repro.core.monitor import AccessMonitor
from repro.gc.major import run_major_gc
from repro.gc.minor import run_minor_gc
from repro.gc.policies import PlacementPolicy
from repro.gc.stats import GCStats
from repro.heap.managed_heap import ManagedHeap
from repro.memory.machine import Machine


class Collector:
    """Owns the GC phases and their statistics for one heap."""

    def __init__(
        self,
        heap: ManagedHeap,
        machine: Machine,
        policy: PlacementPolicy,
        stats: Optional[GCStats] = None,
        monitor: Optional[AccessMonitor] = None,
    ) -> None:
        self.heap = heap
        self.machine = machine
        self.policy = policy
        self.config = heap.config
        self.stats = stats or GCStats()
        self.monitor = monitor
        #: minor GCs since the last full GC — a proxy for how much
        #: mutator time the current monitoring cycle covers.
        self.minors_since_major = 0
        heap.collector = self

    def _promotion_upper_bound(self) -> int:
        """Worst-case bytes a scavenge could promote right now.

        Every survivable young object could tenure at once, and under
        card padding (§4.2.3) each promoted *array* is additionally
        padded so its allocation ends on a card boundary — up to
        ``card_size - 1`` extra bytes per array.  Ignoring that padding
        undercounts the guarantee on a near-full old generation and lets
        a scavenge overflow mid-promotion.

        O(1): the spaces maintain live-byte and array counters
        incrementally.
        """
        eden = self.heap.eden
        survivor = self.heap.survivor_from
        survivable = eden._live_bytes + survivor._live_bytes
        if self.heap.card_padding:
            survivable += (eden._array_count + survivor._array_count) * (
                self.config.card_size - 1
            )
        return survivable

    def old_free_bytes(self) -> int:
        """Free bytes across all old spaces."""
        # Checked before every scavenge; a plain loop over the two or
        # three old spaces beats the genexpr + property indirection.
        total = 0
        for s in self.heap.old_spaces:
            total += s.end - s.top
        return total

    def collect_minor(self) -> None:
        """Run one minor collection, with the promotion guarantee."""
        if self.old_free_bytes() < self._promotion_upper_bound():
            self.collect_major()
        run_minor_gc(self)
        self.minors_since_major += 1

    def collect_major(self) -> None:
        """Run one full-heap collection."""
        run_major_gc(self)
        self.minors_since_major = 0
