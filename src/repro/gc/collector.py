"""The collection driver: triggers, headroom guarantees and entry points.

The driver enforces the invariant the scavenge relies on: before a minor
GC runs, the old generation has enough free room for the worst case
promotion (every survivable young object tenured at once).  When it does
not, a full collection runs first — the same policy HotSpot applies with
its "promotion guarantee".
"""

from __future__ import annotations

from typing import Optional

from repro.core.monitor import AccessMonitor
from repro.gc.major import run_major_gc
from repro.gc.minor import run_minor_gc
from repro.gc.policies import PlacementPolicy
from repro.gc.stats import GCStats
from repro.heap.managed_heap import ManagedHeap
from repro.memory.machine import Machine


class Collector:
    """Owns the GC phases and their statistics for one heap."""

    def __init__(
        self,
        heap: ManagedHeap,
        machine: Machine,
        policy: PlacementPolicy,
        stats: Optional[GCStats] = None,
        monitor: Optional[AccessMonitor] = None,
    ) -> None:
        self.heap = heap
        self.machine = machine
        self.policy = policy
        self.config = heap.config
        self.stats = stats or GCStats()
        self.monitor = monitor
        #: minor GCs since the last full GC — a proxy for how much
        #: mutator time the current monitoring cycle covers.
        self.minors_since_major = 0
        heap.collector = self

    def _promotion_upper_bound(self) -> int:
        """Worst-case bytes a scavenge could promote right now."""
        survivable = sum(o.size for o in self.heap.eden.objects)
        survivable += sum(o.size for o in self.heap.survivor_from.objects)
        return survivable

    def old_free_bytes(self) -> int:
        """Free bytes across all old spaces."""
        return sum(s.free for s in self.heap.old_spaces)

    def collect_minor(self) -> None:
        """Run one minor collection, with the promotion guarantee."""
        if self.old_free_bytes() < self._promotion_upper_bound():
            self.collect_major()
        run_minor_gc(self)
        self.minors_since_major += 1

    def collect_major(self) -> None:
        """Run one full-heap collection."""
        run_major_gc(self)
        self.minors_since_major = 0
