"""JVM-style GC log rendering.

Turns the collector's pause records into the familiar
``-verbose:gc``-flavoured lines, so runs can be eyeballed the way JVM
engineers eyeball real GC logs::

    [0.412s][GC (Allocation Failure) minor pause 12.3ms]
    [3.870s][Full GC (Ergonomics) pause 181.0ms]
    ...
    GC summary: 184 minor (2.31s), 4 major (0.72s), total 3.03s (21.4%)
"""

from __future__ import annotations

from typing import Iterator, List

from repro.gc.stats import GCStats


def format_pause(kind: str, start_ns: float, duration_ns: float) -> str:
    """One log line for one collection."""
    start_s = start_ns / 1e9
    pause_ms = duration_ns / 1e6
    if kind == "minor":
        return f"[{start_s:.3f}s][GC (Allocation Failure) minor pause {pause_ms:.1f}ms]"
    return f"[{start_s:.3f}s][Full GC (Ergonomics) pause {pause_ms:.1f}ms]"


def iter_log_lines(stats: GCStats) -> Iterator[str]:
    """All pause lines, in chronological order."""
    for kind, start_ns, duration_ns in stats.pauses:
        yield format_pause(kind, start_ns, duration_ns)


def summary_line(stats: GCStats, elapsed_s: float) -> str:
    """The closing summary line.

    A non-positive ``elapsed_s`` (empty runs, clock glitches) clamps the
    GC share to 0.0% instead of dividing into a negative or raising.
    """
    share = 100.0 * stats.total_gc_s / elapsed_s if elapsed_s > 0 else 0.0
    return (
        f"GC summary: {stats.minor_count} minor ({stats.minor_ns / 1e9:.2f}s), "
        f"{stats.major_count} major ({stats.major_ns / 1e9:.2f}s), "
        f"total {stats.total_gc_s:.2f}s ({share:.1f}%)"
    )


def render_log(stats: GCStats, elapsed_s: float, tail: int = 0) -> List[str]:
    """The full log (optionally only the last ``tail`` pauses) plus the
    summary line."""
    lines = list(iter_log_lines(stats))
    if tail and len(lines) > tail:
        skipped = len(lines) - tail
        lines = [f"... ({skipped} earlier collections elided)"] + lines[-tail:]
    lines.append(summary_line(stats, elapsed_s))
    return lines
