"""Garbage collection: a Parallel Scavenge-style generational collector
with pluggable hybrid-memory placement policies.

The five policies are the configurations compared in the paper's
evaluation (§5.2): DRAM-only, the unmanaged chunk-interleaved baseline,
Panthera, and the two Write-Rationing GCs (Kingsguard-Nursery and
Kingsguard-Writes).
"""

from repro.gc.collector import Collector
from repro.gc.policies import PlacementPolicy, make_policy
from repro.gc.stats import GCStats

__all__ = ["Collector", "GCStats", "PlacementPolicy", "make_policy"]
