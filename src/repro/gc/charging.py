"""Batched and vectorised GC cost charging.

The GC phases charge per-object costs (trace visits, card-scan streams,
evacuation copies) to a :class:`~repro.memory.machine.TrafficSet`.  Doing
that with one ``TrafficSet.add`` call per object is the single hottest
path of the simulator: each call pays keyword marshalling, a dict
``setdefault`` and four attribute updates for what is arithmetically just
"+= a few integers".

Two layered optimisations remove that overhead, each behind its own A/B
flag so byte-identity can be *proven* rather than assumed:

* :data:`BATCHED_DEPOSITS` (PR 4): :class:`ChargeAccumulator` batches
  increments into plain per-device ``[read_bytes, write_bytes,
  random_reads, random_writes]`` lists and deposits them with *one*
  ``TrafficSet.add`` per device per phase.  Setting the flag to False
  makes the accumulator flush after every charge, reproducing the
  historical per-object call pattern exactly.
* :data:`VECTORISED_COST_PLANE` (this PR): the accumulator stores charges
  as parallel ``(device*4 + kind, amount)`` columns —
  :class:`ChargeColumns`, ``array``-module buffers with a numpy reduction
  when numpy is importable — and the GC phases charge *runs* of objects
  in bulk (:meth:`ChargeAccumulator.visit_all`) instead of one Python
  call per object.  ``flush`` settles the columns into per-device sums
  and deposits them once per device per phase.

Both rewrites are bit-identical to per-object depositing:

* all increments are integers (object sizes, header bytes, access
  counts), so the per-device sums are exact regardless of addition order;
* devices are deposited in first-touch order — the columns preserve row
  order, so the first row naming a device coincides with the legacy
  path's first ``dict`` insertion — and the ``TrafficSet``'s dict
  insertion order, which downstream float reductions iterate in, matches
  the per-object path.

The byte-identity regression tests (``tests/test_perf_overhaul.py`` and
``tests/test_costplane.py``) run traced + faulted experiments under both
settings of each flag and compare trace JSONL, GC logs, bandwidth series
and action checksums byte for byte.
"""

from __future__ import annotations

import os
from array import array
from typing import Dict, List, Optional, Sequence, Tuple

from repro.config import DeviceKind
from repro.errors import GCError
from repro.heap.object_model import HEADER_BYTES, HeapObject
from repro.memory.machine import TrafficSet

try:  # numpy accelerates the column reduction; the array fallback is exact
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via the fallback path
    _np = None

#: When True (the default), charges are deposited once per device per
#: phase; when False, after every charge (the legacy call pattern).
#: Outputs are byte-identical either way — this flag exists so tests can
#: prove that.
BATCHED_DEPOSITS = True

#: When True (the default), accumulators store charges as parallel
#: (device, kind, amount) columns and the GC phases charge object *runs*
#: in bulk; when False, the scalar per-device-list path of the batching
#: overhaul runs instead.  Outputs are byte-identical either way.  The
#: environment variable ``REPRO_VECTORISED_COST_PLANE`` (``0``/``1``)
#: overrides the default at import time, which is how the CI
#: ``cost-plane-identity`` job forces each plane in a fresh process.
VECTORISED_COST_PLANE = os.environ.get(
    "REPRO_VECTORISED_COST_PLANE", "1"
) not in ("0", "false", "off")

#: Charge-kind codes within one device's column block; the order matches
#: the ``[read_bytes, write_bytes, random_reads, random_writes]`` entry
#: lists of the scalar path and the keyword order of ``TrafficSet.add``.
KIND_READ = 0
KIND_WRITE = 1
KIND_RANDOM_READ = 2
KIND_RANDOM_WRITE = 3

#: Device index tables: a column row stores ``device_index * 4 + kind``
#: in a signed byte, so the whole row fits two machine words.
_DEVICE_LIST: Tuple[DeviceKind, ...] = tuple(DeviceKind)
_DEV_BASE: Dict[DeviceKind, int] = {
    device: index * 4 for index, device in enumerate(_DEVICE_LIST)
}

#: Below this many rows the scalar reduction beats numpy's fixed call
#: overhead (measured crossover ~160 rows on CPython 3.11 / numpy 2.4 —
#: ``np.add.at`` plus ``np.unique`` cost ~16 us flat); the cutover only
#: changes wall time (both reductions are exact integer sums), never
#: results.
_NUMPY_MIN_ROWS = 192


class ChargeColumns:
    """Parallel columns of one phase's charges: ``codes[i]`` is
    ``device_index * 4 + kind`` and ``amounts[i]`` the integer amount.

    The zero-dependency representation is a pair of ``array`` buffers
    (``'b'`` codes, ``'q'`` amounts); :meth:`reduce` sums them into
    per-device ``[read, write, random_reads, random_writes]`` totals with
    numpy (``np.add.at`` over an ``int64`` accumulator — exact) when it
    is importable and the column is long enough to amortise the call
    overhead, else with a plain loop.  Row order is preserved, so the
    first row naming a device defines its first-touch position.
    """

    __slots__ = ("codes", "amounts")

    def __init__(self) -> None:
        self.codes = array("b")
        self.amounts = array("q")

    def __len__(self) -> int:
        return len(self.codes)

    def clear(self) -> None:
        """Drop all rows (the phase was settled)."""
        del self.codes[:]
        del self.amounts[:]

    def reduce(self) -> List[Tuple[DeviceKind, List[int]]]:
        """Sum the columns into per-device totals, in first-touch order."""
        codes = self.codes
        n = len(codes)
        if _np is not None and n >= _NUMPY_MIN_ROWS:
            code_arr = _np.frombuffer(codes, dtype=_np.int8)
            amount_arr = _np.frombuffer(self.amounts, dtype=_np.int64)
            acc = _np.zeros(len(_DEVICE_LIST) * 4, dtype=_np.int64)
            _np.add.at(acc, code_arr, amount_arr)
            device_codes = code_arr >> 2
            uniq, first = _np.unique(device_codes, return_index=True)
            out: List[Tuple[DeviceKind, List[int]]] = []
            for dev in uniq[_np.argsort(first)]:
                base = int(dev) * 4
                out.append(
                    (
                        _DEVICE_LIST[int(dev)],
                        [int(v) for v in acc[base : base + 4]],
                    )
                )
            return out
        by_device: Dict[int, List[int]] = {}
        get = by_device.get
        for code, amount in zip(codes, self.amounts):
            dev = code >> 2
            entry = get(dev)
            if entry is None:
                entry = by_device[dev] = [0, 0, 0, 0]
            entry[code & 3] += amount
        return [(_DEVICE_LIST[dev], entry) for dev, entry in by_device.items()]


class ChargeAccumulator:
    """Accumulates one GC phase's per-device traffic, then deposits it
    into the phase's :class:`~repro.memory.machine.TrafficSet`.

    Args:
        traffic: the phase batch to deposit into.
        batched: deposit once per phase (True) or after every charge
            (False).  Defaults to :data:`BATCHED_DEPOSITS`.
        vectorised: store charges as columns and enable the bulk
            primitives (True) or keep the scalar per-device lists
            (False).  Defaults to :data:`VECTORISED_COST_PLANE`.
            Per-charge flushing (``batched=False``) forces the scalar
            path — a column that settles after every row is pure
            overhead, and the legacy plane is the identity oracle.
    """

    __slots__ = (
        "traffic",
        "_by_device",
        "_batched",
        "_vectorised",
        "_cols",
        "_code_append",
        "_amount_append",
    )

    def __init__(
        self,
        traffic: TrafficSet,
        batched: Optional[bool] = None,
        vectorised: Optional[bool] = None,
    ) -> None:
        self.traffic = traffic
        #: device -> [read_bytes, write_bytes, random_reads, random_writes],
        #: in first-touch order (dicts preserve insertion order).
        self._by_device: Dict[DeviceKind, List[int]] = {}
        self._batched = BATCHED_DEPOSITS if batched is None else batched
        self._vectorised = (
            VECTORISED_COST_PLANE if vectorised is None else vectorised
        ) and self._batched
        self._cols: Optional[ChargeColumns] = None
        if self._vectorised:
            cols = self._cols = ChargeColumns()
            # Bound appends: clear() empties the buffers in place, so
            # these stay valid across flushes.
            self._code_append = cols.codes.append
            self._amount_append = cols.amounts.append

    @property
    def vectorised(self) -> bool:
        """Whether this accumulator runs the column (vectorised) plane."""
        return self._vectorised

    def _charge_row(self, code: int, amount: int) -> None:
        """Append one column row, coalescing into either of the last two
        rows when the code matches.

        Merging into an earlier row is identity-safe: per-(device, kind)
        totals are exact integer sums in any order, and the device's
        first-touch position was fixed when that row was first appended.
        The two-row lookback collapses the alternating patterns the GC
        singles produce — copy loops (src-read / dst-write), compaction
        (read / write) and repeated visits (header-read / random-read) —
        so singles cost O(1) rows instead of O(charges), which is what
        keeps the column plane from losing to the scalar dict on
        phases that never charge in bulk.
        """
        cols = self._cols
        codes = cols.codes
        n = len(codes)
        if n:
            if codes[n - 1] == code:
                cols.amounts[n - 1] += amount
                return
            if n > 1 and codes[n - 2] == code:
                cols.amounts[n - 2] += amount
                return
        self._code_append(code)
        self._amount_append(amount)

    def _entry(self, device: DeviceKind) -> List[int]:
        entry = self._by_device.get(device)
        if entry is None:
            entry = self._by_device[device] = [0, 0, 0, 0]
        return entry

    # -- charge primitives ----------------------------------------------

    def visit(self, obj: HeapObject) -> None:
        """Tracing cost of visiting one object: a latency-bound read plus
        its header bytes on the device it resides on."""
        space = obj.space
        if space is None or obj.addr is None:
            raise GCError(f"tracing an unplaced object: {obj!r}")
        device = space.device
        if device is None:
            device = space.chunk_map.device_of(obj.addr)
        if self._vectorised:
            base = _DEV_BASE[device]
            # Fast pair-merge: a previous visit on the same device left
            # [header-read, random-read] as the last two rows.
            cols = self._cols
            codes = cols.codes
            n = len(codes)
            if (
                n > 1
                and codes[n - 2] == base
                and codes[n - 1] == base + KIND_RANDOM_READ
            ):
                amounts = cols.amounts
                amounts[n - 2] += HEADER_BYTES
                amounts[n - 1] += 1
                return
            self._charge_row(base, HEADER_BYTES)  # KIND_READ
            self._charge_row(base + KIND_RANDOM_READ, 1)
            return
        entry = self._entry(device)
        entry[0] += HEADER_BYTES
        entry[2] += 1
        if not self._batched:
            self.flush()

    def visit_all(self, objs: Sequence[HeapObject]) -> None:
        """Tracing cost of a whole visit sequence, charged in bulk.

        The vectorised plane groups consecutive same-device objects into
        one ``(n * HEADER_BYTES, n)`` run — O(runs) rows instead of
        O(objects) dict probes, and O(1) rows for the common case of a
        young-generation trace (eden and the survivors are one DRAM
        run).  The scalar plane replays the historical per-object calls.
        """
        if not self._vectorised or len(objs) < 12:
            # Small segments (card-scan children, mostly 1-3 objects):
            # the coalescing single-row path beats the run-grouping
            # loop's setup.  Identical totals and first-touch order
            # either way, so the cutover is a pure wall-time choice.
            for obj in objs:
                self.visit(obj)
            return
        charge_row = self._charge_row
        run_base = -1
        run_n = 0
        prev_space = None
        prev_device = None
        for obj in objs:
            space = obj.space
            if space is None or obj.addr is None:
                raise GCError(f"tracing an unplaced object: {obj!r}")
            if space is prev_space:
                device = prev_device
            else:
                device = space.device
                if device is None:
                    device = space.chunk_map.device_of(obj.addr)
                    prev_space = None  # chunked: resolve per object
                else:
                    prev_space = space
                prev_device = device
            base = _DEV_BASE[device]
            if base == run_base:
                run_n += 1
                continue
            if run_n:
                charge_row(run_base, run_n * HEADER_BYTES)
                charge_row(run_base + KIND_RANDOM_READ, run_n)
            run_base = base
            run_n = 1
        if run_n:
            charge_row(run_base, run_n * HEADER_BYTES)
            charge_row(run_base + KIND_RANDOM_READ, run_n)

    def stream_read(self, obj: HeapObject) -> None:
        """Streamed read of an object's full payload (card scanning)."""
        if self._vectorised:
            charge_row = self._charge_row
            for device, nbytes in obj.space.object_traffic(obj):
                charge_row(_DEV_BASE[device], nbytes)  # KIND_READ
            return
        for device, nbytes in obj.space.object_traffic(obj):
            self._entry(device)[0] += nbytes
        if not self._batched:
            self.flush()

    def copy(self, src_pieces, obj: HeapObject, dst_space) -> int:
        """Streamed copy of an object into ``dst_space``.

        ``src_pieces`` is the per-device split of the object's *source*
        location, captured before the move; the write lands on the device
        under ``dst_space``'s bump pointer (charged before placement, as
        the copying GC streams into its allocation cursor).
        """
        dst_device = dst_space.device_of(min(dst_space.top, dst_space.end - 1))
        if self._vectorised:
            dst_code = _DEV_BASE[dst_device] + KIND_WRITE
            if len(src_pieces) == 1:
                # Fast pair-merge: a previous same-shaped copy left
                # [src-read, dst-write] as the last two rows.
                src_device, src_bytes = src_pieces[0]
                src_code = _DEV_BASE[src_device]
                cols = self._cols
                codes = cols.codes
                n = len(codes)
                if n > 1 and codes[n - 2] == src_code and codes[n - 1] == dst_code:
                    amounts = cols.amounts
                    amounts[n - 2] += src_bytes
                    amounts[n - 1] += obj.size
                    return obj.size
                self._charge_row(src_code, src_bytes)
                self._charge_row(dst_code, obj.size)
                return obj.size
            charge_row = self._charge_row
            for device, nbytes in src_pieces:
                charge_row(_DEV_BASE[device], nbytes)  # KIND_READ
            charge_row(dst_code, obj.size)
            return obj.size
        for device, nbytes in src_pieces:
            self._entry(device)[0] += nbytes
        self._entry(dst_device)[1] += obj.size
        if not self._batched:
            self.flush()
        return obj.size

    def read(self, device: DeviceKind, nbytes: int) -> None:
        """Streamed read of ``nbytes`` on one device."""
        if self._vectorised:
            self._charge_row(_DEV_BASE[device], nbytes)
            return
        self._entry(device)[0] += nbytes
        if not self._batched:
            self.flush()

    def write(self, device: DeviceKind, nbytes: int) -> None:
        """Streamed write of ``nbytes`` on one device."""
        if self._vectorised:
            self._charge_row(_DEV_BASE[device] + KIND_WRITE, nbytes)
            return
        self._entry(device)[1] += nbytes
        if not self._batched:
            self.flush()

    # -- deposit ---------------------------------------------------------

    def flush(self) -> None:
        """Deposit the accumulated charges into the phase batch (one
        ``TrafficSet.add`` per device, in first-touch order) and clear."""
        add = self.traffic.add
        if self._vectorised:
            cols = self._cols
            if not cols.codes:
                return
            for device, entry in cols.reduce():
                add(device, entry[0], entry[1], entry[2], entry[3])
            cols.clear()
            return
        by_device = self._by_device
        if not by_device:
            return
        for device, entry in by_device.items():
            add(device, entry[0], entry[1], entry[2], entry[3])
        by_device.clear()
