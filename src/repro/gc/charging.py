"""Batched GC cost charging.

The GC phases charge per-object costs (trace visits, card-scan streams,
evacuation copies) to a :class:`~repro.memory.machine.TrafficSet`.  Doing
that with one ``TrafficSet.add`` call per object is the single hottest
path of the simulator: each call pays keyword marshalling, a dict
``setdefault`` and four attribute updates for what is arithmetically just
"+= a few integers".

:class:`ChargeAccumulator` batches those increments into plain per-device
``[read_bytes, write_bytes, random_reads, random_writes]`` lists and
deposits them with *one* ``TrafficSet.add`` per device per phase.  The
result is bit-identical to per-object depositing:

* all increments are integers (object sizes, header bytes, access
  counts), so the per-device sums are exact regardless of addition order;
* devices are deposited in first-touch order, so the ``TrafficSet``'s
  dict insertion order — which downstream float reductions iterate in —
  matches the per-object path.

``BATCHED_DEPOSITS`` is the escape hatch for A/B testing: setting it to
False makes the accumulator flush after every charge, reproducing the
historical per-object call pattern exactly.  The byte-identity regression
test runs one traced + faulted experiment under both settings and
compares trace JSONL, GC logs and action checksums byte for byte.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.config import DeviceKind
from repro.errors import GCError
from repro.heap.object_model import HEADER_BYTES, HeapObject
from repro.memory.machine import TrafficSet

#: When True (the default), charges are deposited once per device per
#: phase; when False, after every charge (the legacy call pattern).
#: Outputs are byte-identical either way — this flag exists so tests can
#: prove that.
BATCHED_DEPOSITS = True


class ChargeAccumulator:
    """Accumulates one GC phase's per-device traffic, then deposits it
    into the phase's :class:`~repro.memory.machine.TrafficSet`.

    Args:
        traffic: the phase batch to deposit into.
        batched: deposit once per phase (True) or after every charge
            (False).  Defaults to :data:`BATCHED_DEPOSITS`.
    """

    __slots__ = ("traffic", "_by_device", "_batched")

    def __init__(self, traffic: TrafficSet, batched: Optional[bool] = None) -> None:
        self.traffic = traffic
        #: device -> [read_bytes, write_bytes, random_reads, random_writes],
        #: in first-touch order (dicts preserve insertion order).
        self._by_device: Dict[DeviceKind, List[int]] = {}
        self._batched = BATCHED_DEPOSITS if batched is None else batched

    def _entry(self, device: DeviceKind) -> List[int]:
        entry = self._by_device.get(device)
        if entry is None:
            entry = self._by_device[device] = [0, 0, 0, 0]
        return entry

    # -- charge primitives ----------------------------------------------

    def visit(self, obj: HeapObject) -> None:
        """Tracing cost of visiting one object: a latency-bound read plus
        its header bytes on the device it resides on."""
        space = obj.space
        if space is None or obj.addr is None:
            raise GCError(f"tracing an unplaced object: {obj!r}")
        device = space.device
        if device is None:
            device = space.chunk_map.device_of(obj.addr)
        entry = self._entry(device)
        entry[0] += HEADER_BYTES
        entry[2] += 1
        if not self._batched:
            self.flush()

    def stream_read(self, obj: HeapObject) -> None:
        """Streamed read of an object's full payload (card scanning)."""
        for device, nbytes in obj.space.object_traffic(obj):
            self._entry(device)[0] += nbytes
        if not self._batched:
            self.flush()

    def copy(self, src_pieces, obj: HeapObject, dst_space) -> int:
        """Streamed copy of an object into ``dst_space``.

        ``src_pieces`` is the per-device split of the object's *source*
        location, captured before the move; the write lands on the device
        under ``dst_space``'s bump pointer (charged before placement, as
        the copying GC streams into its allocation cursor).
        """
        for device, nbytes in src_pieces:
            self._entry(device)[0] += nbytes
        dst_device = dst_space.device_of(min(dst_space.top, dst_space.end - 1))
        self._entry(dst_device)[1] += obj.size
        if not self._batched:
            self.flush()
        return obj.size

    def read(self, device: DeviceKind, nbytes: int) -> None:
        """Streamed read of ``nbytes`` on one device."""
        self._entry(device)[0] += nbytes
        if not self._batched:
            self.flush()

    def write(self, device: DeviceKind, nbytes: int) -> None:
        """Streamed write of ``nbytes`` on one device."""
        self._entry(device)[1] += nbytes
        if not self._batched:
            self.flush()

    # -- deposit ---------------------------------------------------------

    def flush(self) -> None:
        """Deposit the accumulated charges into the phase batch (one
        ``TrafficSet.add`` per device, in first-touch order) and clear."""
        by_device = self._by_device
        if not by_device:
            return
        add = self.traffic.add
        for device, entry in by_device.items():
            add(
                device,
                read_bytes=entry[0],
                write_bytes=entry[1],
                random_reads=entry[2],
                random_writes=entry[3],
            )
        by_device.clear()
