"""The major collection: full-heap mark, sweep, per-space compaction and
Panthera's dynamic migration (§4.2.2).

Compaction never crosses the DRAM/NVM boundary — each old space is
compacted within itself, exactly the guarantee the paper adds to the
Parallel Scavenge full GC.  After compaction, the migration plan produced
by the placement policy is applied: under Panthera, RDD arrays whose
monitored call frequency says they are mis-placed move between the DRAM
and NVM components (together with their reachable data objects); under
Kingsguard-Writes, write-hot objects move into the DRAM region.

Costs are accumulated through
:class:`~repro.gc.charging.ChargeAccumulator` (one deposit per device per
batch, bit-identical to per-object depositing), and the card table is
only refreshed for arrays compaction actually moved — objects in the
dense prefix keep their addresses, so their spans are already correct.
"""

from __future__ import annotations

from typing import Set

from repro.config import DeviceKind
from repro.errors import GCError
from repro.gc.charging import ChargeAccumulator
from repro.heap.object_model import HeapObject
from repro.memory.machine import TrafficSet
from repro.gc.minor import _gc_processing_ns, _propagate_tag
from repro.trace.events import (
    MIGRATE_DRAM_TO_NVM,
    MIGRATE_NVM_TO_DRAM,
    PROMOTE,
)


def run_major_gc(collector) -> None:
    """Execute one full-heap collection on behalf of ``collector``."""
    heap = collector.heap
    machine = collector.machine
    config = collector.config
    policy = collector.policy
    stats = collector.stats
    monitor = collector.monitor

    start_ns = machine.clock.now_ns
    # Marking and moving (compaction / promotion / migration) are charged
    # as two serialized batches: moving starts only after the mark.
    mark_traffic = TrafficSet()
    move_traffic = TrafficSet()

    # Phase 1: mark.  Full trace over both generations.  The mark issues
    # nothing but visit charges, so under the vectorised plane the whole
    # phase is one `visit_all` over the mark order — same sequence, same
    # device first-touch order, one bulk settle.
    charges = ChargeAccumulator(mark_traffic)
    mark_order: list = []
    note = mark_order.append if charges.vectorised else charges.visit
    visited: Set[HeapObject] = set()
    stack = list(heap.iter_roots())
    while stack:
        obj = stack.pop()
        if obj in visited:
            continue
        visited.add(obj)
        note(obj)
        for child in obj.refs:
            _propagate_tag(obj, child)
            if child not in visited:
                stack.append(child)
    if mark_order:
        charges.visit_all(mark_order)
    charges.flush()

    # Phase 2: sweep the old generation.  The dead list is sorted only
    # when tracing, for a deterministic free-event order; the collection
    # itself is order-independent.
    trace = heap.trace
    card_table = heap.card_table
    for space in heap.old_spaces:
        dead = [obj for obj in space.objects if obj not in visited]
        if trace is not None:
            dead.sort(key=lambda o: o.oid)
        for obj in dead:
            space.discard(obj)
            card_table.unregister(obj)
            obj.space = None
            obj.addr = None
            if trace is not None:
                trace.free(obj, space.name)

    # Phase 3: evacuate the young generation.  A full GC tenures every
    # survivor; tagged objects land in the space their MEMORY_BITS name.
    live_young = [
        obj
        for space in heap.young_spaces
        for obj in sorted(space.objects, key=lambda o: o.oid)
        if obj in visited
    ]
    #: where each survivor came from (its space is cleared by the reset
    #: below, before the promotion loop re-places it); trace-only.
    young_src = (
        {obj: obj.space.name for obj in live_young} if trace is not None else {}
    )
    for space in heap.young_spaces:
        if trace is not None:
            space_name = space.name
            for obj in sorted(space.objects, key=lambda o: o.oid):
                if obj not in young_src:
                    trace.free(obj, space_name)
        space.reset()

    # Phase 4: compact each old space in place (never across the
    # DRAM/NVM boundary).  Like PSParallelCompact, a *dense prefix* is
    # left untouched: objects at the bottom of the space with little dead
    # space beneath them are not worth moving, which is what keeps stable
    # persisted RDDs from being rewritten (on NVM!) at every full GC.
    charges = ChargeAccumulator(move_traffic)
    for space in heap.old_spaces:
        live = space.begin_compaction()
        waste_budget = int(space.size * config.dense_prefix_waste)
        sliding = False
        for obj in live:
            old_addr = obj.addr
            assert old_addr is not None
            if not sliding and old_addr - space.top <= waste_budget:
                # Dense prefix: keep the object in place, accept the gap.
                space.top = old_addr + obj.size
                if obj.padded:
                    remainder = space.top % config.card_size
                    if remainder:
                        space.top += config.card_size - remainder
                space.adopt(obj)
                continue
            sliding = True
            old_pieces = space.traffic_split(old_addr, obj.size)
            align = config.card_size if (heap.card_padding and obj.is_array) else None
            if not space.place(obj, align_end_to=align):
                raise GCError(f"compaction overflowed space {space.name}")
            obj.padded = align is not None
            if obj.addr != old_addr:
                for device, nbytes in old_pieces:
                    charges.read(device, nbytes)
                for device, nbytes in space.object_traffic(obj):
                    charges.write(device, nbytes)
                stats.compacted_bytes += obj.size
                if obj.is_array:
                    # The address changed: refresh the card-table span.
                    # Dense-prefix arrays kept theirs, so only movers pay.
                    card_table.register(obj)

    # Now promote the young survivors into the compacted old spaces.
    for obj in live_young:
        dest = policy.promotion_space(heap, obj)
        charges.read(heap.eden.device, obj.size)
        if not heap._place_in_old(obj, dest):
            raise GCError("full GC could not tenure a young survivor")
        for device, nbytes in obj.space.object_traffic(obj):
            charges.write(device, nbytes)
        stats.promoted_bytes += obj.size
        obj.age = 0
        if trace is not None:
            # The whole young generation is DRAM-resident (§4.1).
            trace.move(PROMOTE, obj, young_src[obj], heap.eden.device.value)

    # Phase 5: dynamic migration (§4.2.2).
    moves = policy.plan_migrations(heap, monitor)
    for obj, dst_space in moves:
        if obj not in visited or obj.space is dst_space:
            continue
        src_pieces = obj.space.object_traffic(obj)
        if trace is not None:
            src_space_name = obj.space.name
            src_device = obj.space.device_of(obj.addr)
        card_table.unregister(obj)
        align = config.card_size if (heap.card_padding and obj.is_array) else None
        if not dst_space.place(obj, align_end_to=align):
            continue  # destination filled up; skip the rest of the group
        for device, nbytes in src_pieces:
            charges.read(device, nbytes)
        for device, nbytes in dst_space.object_traffic(obj):
            charges.write(device, nbytes)
        if obj.is_array:
            card_table.register(obj)
            if obj.rdd_id is not None:
                stats.migrated_rdd_ids.add(obj.rdd_id)
        stats.migrated_object_count += 1
        if trace is not None:
            dst_device = dst_space.device_of(obj.addr)
            kind = (
                MIGRATE_NVM_TO_DRAM
                if dst_device is DeviceKind.DRAM
                else MIGRATE_DRAM_TO_NVM
            )
            trace.move(kind, obj, src_space_name, src_device.value)
    charges.flush()

    # Phase 6: housekeeping.  Every card is cleaned; write counters and
    # RDD call frequencies start a new cycle; old objects age one major
    # cycle (dynamic migration only re-assesses full-cycle survivors).
    card_table.clear_all()
    in_young = heap.in_young
    for space in heap.old_spaces:
        for obj in space.objects:
            obj.write_count = 0
            obj.age += 1
            if obj.refs and any(in_young(c) for c in obj.refs):
                raise GCError("old-to-young reference survived a full GC")
    if monitor is not None:
        monitor.reset()

    machine.clock.advance(config.gc_fixed_pause_ns)
    for batch in (mark_traffic, move_traffic):
        if batch.per_device:
            machine.run_batch(
                batch.per_device,
                threads=config.gc_threads,
                cpu_ns=_gc_processing_ns(batch, config),
            )
    stats.record_major(start_ns, machine.clock.now_ns - start_ns)
