"""GC statistics: pause accounting and the counters behind Figure 5 and
Table 5."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Set, Tuple


@dataclass
class GCStats:
    """Cumulative collector statistics for one run.

    Attributes:
        minor_count / major_count: number of collections.
        minor_ns / major_ns: total pause time per kind.
        copied_bytes: bytes evacuated within the young generation.
        promoted_bytes: bytes moved young -> old.
        eager_promoted_objects: objects promoted via Panthera's eager path.
        card_scanned_bytes: bytes read while scanning dirty cards.
        stuck_rescans: objects rescanned because of shared dirty cards.
        compacted_bytes: bytes slid during major-GC compaction.
        migrated_rdd_ids: RDDs moved by dynamic migration (Table 5).
        migrated_object_count: objects moved by dynamic migration.
        pauses: (kind, start_ns, duration_ns) per collection.
        trace: optional :class:`~repro.trace.bus.TraceBus` each recorded
            pause is also published to as a ``gc_pause`` event.
    """

    minor_count: int = 0
    major_count: int = 0
    minor_ns: float = 0.0
    major_ns: float = 0.0
    copied_bytes: int = 0
    promoted_bytes: int = 0
    eager_promoted_objects: int = 0
    card_scanned_bytes: int = 0
    stuck_rescans: int = 0
    compacted_bytes: int = 0
    migrated_rdd_ids: Set[int] = field(default_factory=set)
    migrated_object_count: int = 0
    pauses: List[Tuple[str, float, float]] = field(default_factory=list)
    trace: Optional[object] = field(default=None, repr=False, compare=False)

    def record_minor(self, start_ns: float, duration_ns: float) -> None:
        """Account one minor collection."""
        self.minor_count += 1
        self.minor_ns += duration_ns
        self.pauses.append(("minor", start_ns, duration_ns))
        if self.trace is not None:
            self.trace.gc_pause("minor", start_ns, duration_ns)

    def record_major(self, start_ns: float, duration_ns: float) -> None:
        """Account one major collection."""
        self.major_count += 1
        self.major_ns += duration_ns
        self.pauses.append(("major", start_ns, duration_ns))
        if self.trace is not None:
            self.trace.gc_pause("major", start_ns, duration_ns)

    @property
    def total_gc_ns(self) -> float:
        """Total GC pause time in nanoseconds."""
        return self.minor_ns + self.major_ns

    @property
    def total_gc_s(self) -> float:
        """Total GC pause time in seconds (Figure 5's GC bars)."""
        return self.total_gc_ns / 1e9

    @property
    def migrated_rdd_count(self) -> int:
        """Number of distinct RDDs dynamically migrated (Table 5)."""
        return len(self.migrated_rdd_ids)

    def pause_percentile(self, fraction: float, kind: str = None) -> float:
        """A pause-duration percentile in milliseconds.

        Args:
            fraction: percentile in [0, 1] (0.99 = p99).
            kind: restrict to "minor" or "major" pauses (default: all).
        """
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("percentile fraction must be in [0, 1]")
        durations = sorted(
            duration
            for pause_kind, _, duration in self.pauses
            if kind is None or pause_kind == kind
        )
        if not durations:
            return 0.0
        index = min(len(durations) - 1, int(fraction * len(durations)))
        return durations[index] / 1e6

    def max_pause_ms(self) -> float:
        """The worst pause of the run, in milliseconds."""
        return self.pause_percentile(1.0)

    def mean_pause_ms(self) -> float:
        """Mean pause duration in milliseconds."""
        if not self.pauses:
            return 0.0
        return sum(d for _, _, d in self.pauses) / len(self.pauses) / 1e6
