"""Placement policies: who decides where objects live.

Each policy builds the old-generation layout for its configuration and
answers the three placement questions the collector asks:

* where is an RDD backbone array allocated (Table 1's "Initial Space"),
* where is a surviving young object promoted to, and
* which objects should a major GC migrate between devices.

The five policies mirror §5.2's configurations: the DRAM-only baseline,
the *unmanaged* chunk-interleaved hybrid, Panthera itself, and the two
Write-Rationing GCs (Kingsguard-Nursery and Kingsguard-Writes [7]).
"""

from __future__ import annotations

import abc
from typing import List, Optional, Tuple

from repro.config import DeviceKind, PolicyName, SystemConfig
from repro.core.monitor import AccessMonitor
from repro.core.tags import MEMORY_BITS_DRAM, MEMORY_BITS_NVM, MemoryTag
from repro.errors import ConfigError
from repro.heap.object_model import HeapObject
from repro.heap.spaces import Space
from repro.memory.interleave import ChunkMap

#: Major-GC calls-per-cycle at or above which an NVM-resident RDD is
#: considered hot enough to migrate to DRAM (§4.2.2).  Three calls per
#: cycle distinguishes iteratively re-read RDDs from write-once persisted
#: RDDs, which see exactly two calls (persist + one transformation).
HOT_CALL_THRESHOLD = 3

#: Minimum minor GCs a monitoring cycle must span before "zero calls"
#: counts as evidence of coldness — back-to-back full GCs would otherwise
#: mis-classify every RDD as cold.
MIN_COLD_CYCLE_MINORS = 4


class PlacementPolicy(abc.ABC):
    """Strategy interface for hybrid-memory data placement."""

    name: PolicyName
    #: whether arrays are padded to card boundaries (§4.2.3; Panthera only)
    card_padding = False

    def __init__(self, config: SystemConfig) -> None:
        self.config = config

    @abc.abstractmethod
    def build_old_spaces(self, base: int) -> List[Space]:
        """Construct the old-generation spaces starting at ``base``."""

    @abc.abstractmethod
    def array_allocation_space(
        self, heap, tag: Optional[MemoryTag], size: int
    ) -> Space:
        """Initial space of an RDD backbone array."""

    @abc.abstractmethod
    def promotion_space(self, heap, obj: HeapObject) -> Space:
        """Old space an object is promoted into."""

    def eager_promotion_space(self, heap, obj: HeapObject) -> Optional[Space]:
        """Space for immediate promotion of a tagged object, or None to
        follow the normal aging path.  Only Panthera overrides this."""
        return None

    def plan_migrations(
        self, heap, monitor: Optional[AccessMonitor]
    ) -> List[Tuple[HeapObject, Space]]:
        """Objects a major GC should move between spaces (default: none)."""
        return []

    def mutator_write_barrier_ns(self) -> float:
        """Extra mutator cost per monitored write (KW's barrier; §5.2)."""
        return 0.0


def _single_old_space(
    config: SystemConfig, base: int, device: DeviceKind
) -> List[Space]:
    return [Space("old", base, config.old_gen_bytes, "old", device=device)]


class DramOnlyPolicy(PlacementPolicy):
    """Everything in DRAM — the normalisation baseline of every figure."""

    name = PolicyName.DRAM_ONLY

    def build_old_spaces(self, base: int) -> List[Space]:
        return _single_old_space(self.config, base, DeviceKind.DRAM)

    def array_allocation_space(self, heap, tag, size) -> Space:
        return heap.old_space_named("old")

    def promotion_space(self, heap, obj) -> Space:
        return heap.old_space_named("old")


class UnmanagedPolicy(PlacementPolicy):
    """Old generation interleaved over DRAM/NVM in 1 GB chunks (§5.2).

    Each chunk is DRAM-backed with probability equal to the DRAM share
    *left for the old generation* (the nursery has already claimed its
    DRAM), which conserves physical capacity.
    """

    name = PolicyName.UNMANAGED

    def build_old_spaces(self, base: int) -> List[Space]:
        config = self.config
        if config.old_gen_bytes <= 0:
            raise ConfigError("old generation is empty")
        probability = config.old_dram_bytes / config.old_gen_bytes
        chunk_map = ChunkMap(
            base=base,
            size=config.old_gen_bytes,
            chunk_bytes=config.interleave_chunk_bytes,
            dram_probability=probability,
            seed=config.seed,
        )
        return [Space("old", base, config.old_gen_bytes, "old", chunk_map=chunk_map)]

    def array_allocation_space(self, heap, tag, size) -> Space:
        return heap.old_space_named("old")

    def promotion_space(self, heap, obj) -> Space:
        return heap.old_space_named("old")


class PantheraPolicy(PlacementPolicy):
    """The paper's policy: split old generation, tag-driven placement,
    eager promotion and major-GC dynamic migration."""

    name = PolicyName.PANTHERA

    def __init__(self, config: SystemConfig) -> None:
        super().__init__(config)
        self.card_padding = config.card_padding

    def build_old_spaces(self, base: int) -> List[Space]:
        config = self.config
        spaces = []
        dram_part = config.old_dram_bytes
        if dram_part > 0:
            spaces.append(
                Space("old-dram", base, dram_part, "old", device=DeviceKind.DRAM)
            )
            base += dram_part
        spaces.append(
            Space("old-nvm", base, config.old_nvm_bytes, "old", device=DeviceKind.NVM)
        )
        return spaces

    def _old_dram(self, heap) -> Optional[Space]:
        try:
            return heap.old_space_named("old-dram")
        except Exception:
            return None

    def array_allocation_space(self, heap, tag, size) -> Space:
        """Table 1: DRAM-tagged arrays go to the DRAM component when it has
        room, otherwise NVM; NVM-tagged and untagged arrays go to NVM."""
        old_nvm = heap.old_space_named("old-nvm")
        if tag is MemoryTag.DRAM:
            old_dram = self._old_dram(heap)
            if old_dram is not None and old_dram.free >= size:
                return old_dram
        return old_nvm

    def promotion_space(self, heap, obj) -> Space:
        old_nvm = heap.old_space_named("old-nvm")
        if obj.memory_bits == MEMORY_BITS_DRAM:
            old_dram = self._old_dram(heap)
            if old_dram is not None and old_dram.free >= obj.size:
                return old_dram
        return old_nvm

    def eager_promotion_space(self, heap, obj) -> Optional[Space]:
        """§4.2.2: objects whose MEMORY_BITS were set during tracing are
        moved to the matching old space immediately."""
        if not self.config.eager_promotion:
            return None
        if obj.memory_bits in (MEMORY_BITS_DRAM, MEMORY_BITS_NVM):
            return self.promotion_space(heap, obj)
        return None

    def plan_migrations(self, heap, monitor) -> List[Tuple[HeapObject, Space]]:
        """§4.2.2's reassessment: frequently-called RDDs move NVM -> DRAM,
        unaccessed RDDs move DRAM -> NVM, together with their reachable
        data objects.

        Only arrays that have already survived a previous major GC are
        re-assessed — a freshly materialised RDD has not yet had a full
        monitoring cycle, so its zero/low count says nothing.
        """
        if not self.config.dynamic_migration or monitor is None:
            return []
        old_dram = self._old_dram(heap)
        old_nvm = heap.old_space_named("old-nvm")
        moves: List[Tuple[HeapObject, Space]] = []
        dram_budget = old_dram.free if old_dram is not None else 0
        collector = getattr(heap, "collector", None)
        cycle_minors = getattr(collector, "minors_since_major", MIN_COLD_CYCLE_MINORS)
        cold_evidence = cycle_minors >= MIN_COLD_CYCLE_MINORS
        for space in heap.old_spaces:
            for obj in space.iter_objects_by_addr():
                if not obj.is_array or obj.rdd_id is None or obj.age < 1:
                    continue
                calls = monitor.call_count(obj.rdd_id)
                if space.name == "old-nvm" and calls >= HOT_CALL_THRESHOLD:
                    if old_dram is None:
                        continue
                    group = [obj] + [
                        r for r in obj.refs if heap.in_old(r) and not r.is_array
                    ]
                    group_bytes = sum(g.size for g in group)
                    if group_bytes <= dram_budget:
                        dram_budget -= group_bytes
                        moves.extend((g, old_dram) for g in group)
                elif space.name == "old-dram" and calls == 0 and cold_evidence:
                    group = [obj] + [
                        r for r in obj.refs if heap.in_old(r) and not r.is_array
                    ]
                    moves.extend((g, old_nvm) for g in group)
        return moves


class KingsguardNurseryPolicy(PlacementPolicy):
    """Write Rationing's KN: nursery in DRAM, whole old generation in NVM."""

    name = PolicyName.KINGSGUARD_NURSERY

    def build_old_spaces(self, base: int) -> List[Space]:
        return _single_old_space(self.config, base, DeviceKind.NVM)

    def array_allocation_space(self, heap, tag, size) -> Space:
        return heap.old_space_named("old")

    def promotion_space(self, heap, obj) -> Space:
        return heap.old_space_named("old")


class KingsguardWritesPolicy(PlacementPolicy):
    """Write Rationing's KW: like KN, plus a write barrier that counts
    object writes and a major-GC pass that migrates write-hot objects into
    a DRAM region.  The paper measured ~41 % overhead for Spark because
    persisted RDDs are read-mostly and land in NVM."""

    name = PolicyName.KINGSGUARD_WRITES

    #: Cost of the monitoring write barrier per mutator write.
    WRITE_BARRIER_NS = 6.0

    def build_old_spaces(self, base: int) -> List[Space]:
        config = self.config
        spaces = []
        dram_part = config.old_dram_bytes
        if dram_part > 0:
            spaces.append(
                Space("old-dram", base, dram_part, "old", device=DeviceKind.DRAM)
            )
            base += dram_part
        spaces.append(
            Space(
                "old",
                base,
                config.old_gen_bytes - dram_part,
                "old",
                device=DeviceKind.NVM,
            )
        )
        return spaces

    def array_allocation_space(self, heap, tag, size) -> Space:
        return heap.old_space_named("old")

    def promotion_space(self, heap, obj) -> Space:
        return heap.old_space_named("old")

    def plan_migrations(self, heap, monitor) -> List[Tuple[HeapObject, Space]]:
        """Move write-hot NVM objects into the DRAM region."""
        try:
            old_dram = heap.old_space_named("old-dram")
        except Exception:
            return []
        budget = old_dram.free
        moves: List[Tuple[HeapObject, Space]] = []
        nvm_space = heap.old_space_named("old")
        for obj in nvm_space.iter_objects_by_addr():
            if obj.write_count >= self.config.kw_write_threshold:
                if obj.size <= budget:
                    budget -= obj.size
                    moves.append((obj, old_dram))
        return moves

    def mutator_write_barrier_ns(self) -> float:
        return self.WRITE_BARRIER_NS


class DecaPolicy(PlacementPolicy):
    """Deca's lifetime-based region allocation (arXiv 1602.01959).

    Most heap bytes bypass the generational collector entirely: RDD data
    classified by lifetime lands in bump-pointer arenas managed by
    :class:`~repro.heap.regions.RegionManager` and freed wholesale at
    stage/job boundaries.  The traced old generation shrinks to a small
    reserve (``OLD_RESERVE_FRACTION`` of the nominal old generation) that
    only holds unclassified survivors the minor GC tenures — the arenas
    take the rest of the old-generation budget.
    """

    name = PolicyName.DECA

    #: Fraction of the nominal old generation kept as a traced reserve
    #: for unclassified survivors; the arenas get the remainder.
    OLD_RESERVE_FRACTION = 0.25

    def build_old_spaces(self, base: int) -> List[Space]:
        config = self.config
        reserve = max(1, int(config.old_gen_bytes * self.OLD_RESERVE_FRACTION))
        device = (
            DeviceKind.DRAM
            if config.old_dram_bytes >= reserve
            else DeviceKind.NVM
        )
        return [Space("old", base, reserve, "old", device=device)]

    def array_allocation_space(self, heap, tag, size) -> Space:
        return heap.old_space_named("old")

    def promotion_space(self, heap, obj) -> Space:
        return heap.old_space_named("old")


_POLICIES = {
    PolicyName.DRAM_ONLY: DramOnlyPolicy,
    PolicyName.UNMANAGED: UnmanagedPolicy,
    PolicyName.PANTHERA: PantheraPolicy,
    PolicyName.KINGSGUARD_NURSERY: KingsguardNurseryPolicy,
    PolicyName.KINGSGUARD_WRITES: KingsguardWritesPolicy,
    PolicyName.DECA: DecaPolicy,
}


def make_policy(config: SystemConfig) -> PlacementPolicy:
    """Instantiate the policy named by the configuration."""
    try:
        cls = _POLICIES[config.policy]
    except KeyError:
        raise ConfigError(f"unknown policy {config.policy!r}") from None
    return cls(config)
