"""The paper's system configurations (§5.2).

Two heap sizes (64 GB and 120 GB), three DRAM shares (1/4, 1/3 and
DRAM-only), and the policy set {DRAM-only, unmanaged, Panthera, KN, KW}.
A joint ``scale`` parameter shrinks heaps alongside datasets so the
pressure *ratios* — which is what the figures' shapes depend on — are
preserved at laptop-friendly sizes.
"""

from __future__ import annotations

from typing import Dict

from repro.config import PolicyName, SystemConfig, dram_only_config, hybrid_config

#: The nursery fraction the paper settled on (§5.2).
NURSERY_FRACTION = 1.0 / 6.0


def paper_config(
    heap_gb: float,
    dram_ratio: float,
    policy: PolicyName,
    scale: float = 1.0,
    **kwargs,
) -> SystemConfig:
    """One configuration, scaled.

    ``dram_ratio == 1.0`` (or the DRAM_ONLY policy) yields the DRAM-only
    baseline; anything else splits physical memory ``dram_ratio`` /
    ``1 - dram_ratio`` between DRAM and NVM.
    """
    scaled_heap = heap_gb * scale
    kwargs.setdefault("nursery_fraction", NURSERY_FRACTION)
    kwargs.setdefault(
        "interleave_chunk_bytes", max(1, int(1 * (1024**3) * scale))
    )
    kwargs.setdefault("large_array_threshold", max(1, int((1024**2) * scale)))
    kwargs.setdefault("static_energy_factor", 1.0 / scale)
    if policy is PolicyName.DRAM_ONLY or dram_ratio >= 1.0:
        return dram_only_config(scaled_heap, **kwargs)
    return hybrid_config(scaled_heap, dram_ratio, policy=policy, **kwargs)


def fig4_configs(scale: float = 1.0) -> Dict[str, SystemConfig]:
    """Figure 4/5: 64 GB heap, DRAM ratio 1/3."""
    return {
        "dram-only": paper_config(64, 1.0, PolicyName.DRAM_ONLY, scale),
        "unmanaged": paper_config(64, 1 / 3, PolicyName.UNMANAGED, scale),
        "panthera": paper_config(64, 1 / 3, PolicyName.PANTHERA, scale),
    }


def grid_configs(scale: float = 1.0) -> Dict[str, SystemConfig]:
    """Figures 6/7: two heaps x two DRAM ratios, plus their baselines."""
    configs: Dict[str, SystemConfig] = {}
    for heap_gb in (64, 120):
        configs[f"{heap_gb}gb-dram-only"] = paper_config(
            heap_gb, 1.0, PolicyName.DRAM_ONLY, scale
        )
        for ratio, label in ((1 / 4, "quarter"), (1 / 3, "third")):
            for policy in (PolicyName.UNMANAGED, PolicyName.PANTHERA):
                key = f"{heap_gb}gb-{label}-{policy.value}"
                configs[key] = paper_config(heap_gb, ratio, policy, scale)
    return configs


def fig2c_configs(scale: float = 1.0) -> Dict[str, SystemConfig]:
    """Figure 2(c): PageRank on 32 GB DRAM, 32+88 GB hybrid (unmanaged and
    Panthera), normalised to 120 GB DRAM-only."""
    ratio = 32.0 / 120.0
    return {
        "120gb-dram": paper_config(120, 1.0, PolicyName.DRAM_ONLY, scale),
        "32gb-dram": paper_config(32, 1.0, PolicyName.DRAM_ONLY, scale),
        "hybrid-unmanaged": paper_config(120, ratio, PolicyName.UNMANAGED, scale),
        "hybrid-panthera": paper_config(120, ratio, PolicyName.PANTHERA, scale),
    }


def write_rationing_configs(scale: float = 1.0) -> Dict[str, SystemConfig]:
    """The Write Rationing baselines (§5.2): KN and KW at 64 GB, 1/3."""
    return {
        "dram-only": paper_config(64, 1.0, PolicyName.DRAM_ONLY, scale),
        "kingsguard-nursery": paper_config(
            64, 1 / 3, PolicyName.KINGSGUARD_NURSERY, scale
        ),
        "kingsguard-writes": paper_config(
            64, 1 / 3, PolicyName.KINGSGUARD_WRITES, scale
        ),
        "panthera": paper_config(64, 1 / 3, PolicyName.PANTHERA, scale),
    }
