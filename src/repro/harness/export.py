"""Exporting experiment results for external plotting.

The benchmarks print markdown; downstream users plotting with
matplotlib/gnuplot want machine-readable series. This module flattens
:class:`~repro.harness.experiment.ExperimentResult` objects to plain
dicts, serialises batches of results to JSON or CSV, and dumps the
Figure 8 bandwidth series of a kept context.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Dict, List, Mapping, Optional

from repro.config import DeviceKind
from repro.harness.experiment import ExperimentResult

#: The scalar fields exported for every run, in column order.
SCALAR_FIELDS = [
    "workload",
    "policy",
    "heap_gb",
    "dram_ratio",
    "elapsed_s",
    "mutator_s",
    "gc_s",
    "minor_gcs",
    "major_gcs",
    "energy_j",
    "monitored_calls",
    "migrated_rdds",
    "spilled_blocks",
    "dropped_blocks",
    "card_scanned_gb",
    "stuck_rescans",
]


def result_to_dict(result: ExperimentResult) -> Dict[str, object]:
    """Flatten one result to JSON-safe scalars."""
    row: Dict[str, object] = {}
    for field in SCALAR_FIELDS:
        value = getattr(result, field)
        row[field] = value.value if field == "policy" else value
    for device, parts in result.energy_by_device.items():
        row[f"{device}_static_j"] = parts["static_j"]
        row[f"{device}_dynamic_j"] = parts["dynamic_j"]
    if result.analysis is not None:
        row["tags"] = {
            var: (tag.value if tag else None)
            for var, tag in result.analysis.tags.items()
        }
    return row


def results_to_json(
    results: Mapping[str, ExperimentResult], indent: Optional[int] = 2
) -> str:
    """Serialise a keyed batch of results to JSON."""
    payload = {key: result_to_dict(r) for key, r in results.items()}
    return json.dumps(payload, indent=indent, sort_keys=True)


def results_to_csv(results: Mapping[str, ExperimentResult]) -> str:
    """Serialise a keyed batch of results to CSV (one row per run)."""
    rows = []
    columns = ["key"] + SCALAR_FIELDS
    extra: List[str] = []
    for key, result in results.items():
        row = result_to_dict(result)
        row.pop("tags", None)
        row["key"] = key
        for column in row:
            if column not in columns and column not in extra:
                extra.append(column)
        rows.append(row)
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=columns + sorted(extra))
    writer.writeheader()
    for row in rows:
        writer.writerow(row)
    return buffer.getvalue()


def matrix_to_json(
    matrix: Mapping[str, Mapping[str, ExperimentResult]],
    indent: Optional[int] = 2,
) -> str:
    """Serialise a nested ``{workload: {policy: result}}`` matrix to JSON.

    The shape :func:`~repro.harness.matrix.run_matrix` returns; used by
    ``repro matrix --export-json`` and the CI benchmark artifacts.
    """
    payload = {
        workload: {policy: result_to_dict(r) for policy, r in row.items()}
        for workload, row in matrix.items()
    }
    return json.dumps(payload, indent=indent, sort_keys=True)


def bandwidth_csv_from_machine(machine) -> str:
    """Figure 8's series for one live machine as CSV.

    The shared rendering behind :func:`bandwidth_series_to_csv` and the
    cluster executor's per-job artifacts — one code path, so the
    1-executor oracle compares byte-identical text by construction.
    """
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(["time_s", "device", "direction", "gbps"])
    bw = machine.bandwidth
    for device in (DeviceKind.DRAM, DeviceKind.NVM):
        for is_write, label in ((False, "read"), (True, "write")):
            for sample in bw.series(device, is_write):
                writer.writerow(
                    [f"{sample.time_s:.3f}", device.value, label, f"{sample.gbps:.4f}"]
                )
    return buffer.getvalue()


def bandwidth_series_to_csv(result: ExperimentResult) -> str:
    """Figure 8's series as CSV: time_s, device, direction, gbps.

    Requires a result produced with ``keep_context=True``.
    """
    if result.context is None:
        raise ValueError("bandwidth export needs keep_context=True")
    return bandwidth_csv_from_machine(result.context.machine)


def gc_pauses_to_csv(result: ExperimentResult) -> str:
    """The GC pause timeline as CSV (requires ``keep_context=True``)."""
    if result.context is None:
        raise ValueError("pause export needs keep_context=True")
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(["kind", "start_s", "pause_ms"])
    for kind, start_ns, duration_ns in result.context.collector.stats.pauses:
        writer.writerow([kind, f"{start_ns / 1e9:.4f}", f"{duration_ns / 1e6:.3f}"])
    return buffer.getvalue()
