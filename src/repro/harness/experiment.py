"""Running one (workload, configuration) experiment end to end."""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.config import DeviceKind, PolicyName, SystemConfig
from repro.core.static_analysis import (
    StaticAnalysis,
    analyze_program,
    classify_lifetimes,
)
from repro.faults import FaultInjector, FaultPlan, FaultReport
from repro.memory.machine import Machine
from repro.spark.context import SparkContext
from repro.spark.costmodel import MutatorCosts
from repro.spark.program import execute_program
from repro.trace import TraceSession
from repro.trace.events import TraceEvent
from repro.workloads.registry import build_workload


@dataclass
class ExperimentResult:
    """Everything one run produces.

    Attributes:
        workload: Table 4 abbreviation.
        policy: the placement policy that ran.
        heap_gb: heap size in GB.
        dram_ratio: DRAM share of physical memory.
        elapsed_s: total simulated wall time.
        gc_s: total GC pause time (Figure 5's upper bars).
        mutator_s: elapsed minus GC (Figure 5's computation bars).
        minor_gcs / major_gcs: collection counts.
        energy_j: total memory energy.
        energy_by_device: per-device {"static_j", "dynamic_j"}.
        monitored_calls: Table 5 column 2.
        migrated_rdds: Table 5 column 3.
        spilled_blocks / dropped_blocks: block-manager pressure events.
        card_scanned_gb / stuck_rescans: card-table behaviour (§4.2.3).
        action_results: the workload's actual outputs (for validation).
        analysis: the static analysis result (Panthera runs only).
        context: the live SparkContext when ``keep_context`` was set.
        trace_events: the recorded heap event stream when ``trace`` was
            set (plain picklable dataclasses, preserved across process
            boundaries).
        fault_report: the measured fault outcome when a
            :class:`~repro.faults.plan.FaultPlan` was injected
            (recomputation cost, recovery GC work, fallback bytes,
            throttle time).
    """

    workload: str
    policy: PolicyName
    heap_gb: float
    dram_ratio: float
    elapsed_s: float
    gc_s: float
    mutator_s: float
    minor_gcs: int
    major_gcs: int
    energy_j: float
    energy_by_device: Dict[str, Dict[str, float]]
    monitored_calls: int
    migrated_rdds: int
    spilled_blocks: int
    dropped_blocks: int
    card_scanned_gb: float
    stuck_rescans: int
    action_results: Dict[str, Any] = field(default_factory=dict)
    analysis: Optional[StaticAnalysis] = None
    context: Optional[SparkContext] = None
    trace_events: Optional[List[TraceEvent]] = None
    fault_report: Optional[FaultReport] = None

    def without_runtime_handles(
        self, keep_analysis: bool = True
    ) -> "ExperimentResult":
        """A copy safe to pickle across process boundaries.

        Drops the live :class:`~repro.spark.context.SparkContext` (a web
        of heap objects, open traces and the whole machine) and — when
        ``keep_analysis`` is False — the static-analysis record.  All
        scalar metrics and action results are preserved, so stripped
        results compare equal to serial ones field for field.
        """
        return dataclasses.replace(
            self,
            context=None,
            analysis=self.analysis if keep_analysis else None,
        )


def run_experiment(
    workload: str,
    config: SystemConfig,
    scale: float = 1.0,
    costs: Optional[MutatorCosts] = None,
    workload_kwargs: Optional[Dict[str, Any]] = None,
    bandwidth_window_ns: float = 1e9,
    keep_context: bool = False,
    trace: bool = False,
    faults: Optional[FaultPlan] = None,
) -> ExperimentResult:
    """Run one workload under one configuration.

    Args:
        workload: Table 4 abbreviation (PR, KM, LR, TC, CC, SSSP, BC).
        config: the node configuration (heap, DRAM/NVM split, policy).
        scale: joint data-size scale factor; configurations should be
            built with the same scale so pressure ratios match the paper.
        costs: mutator cost-model overrides.
        workload_kwargs: forwarded to the workload builder.
        bandwidth_window_ns: Figure 8 trace resolution.
        keep_context: retain the full context on the result (heavier, but
            needed for bandwidth traces and heap inspection).
        trace: record the heap event stream (see :mod:`repro.trace`) and
            attach it to the result as ``trace_events``.
        faults: inject this :class:`~repro.faults.plan.FaultPlan` (see
            :mod:`repro.faults`); the measured
            :class:`~repro.faults.report.FaultReport` rides on the
            result as ``fault_report``.
    """
    spec = build_workload(workload, scale=scale, **(workload_kwargs or {}))
    ctx = SparkContext.create(
        config, costs=costs, bandwidth_window_ns=bandwidth_window_ns
    )
    session = TraceSession.attach_to_context(ctx) if trace else None
    # The injector attaches after tracing so balloon allocations and
    # throttle-window announcements reach the event stream.
    injector = (
        FaultInjector.attach(faults, ctx) if faults is not None else None
    )
    action_results, analysis = execute_spec(spec, ctx)
    result = _collect(spec.name, config, ctx, action_results, analysis, keep_context)
    if session is not None:
        result.trace_events = session.events
    if injector is not None:
        result.fault_report = injector.report()
    return result


def execute_spec(spec, ctx: SparkContext):
    """Execute one built workload spec's program on a live context.

    The single execution path shared by :func:`run_experiment` and the
    cluster executor (:mod:`repro.cluster.executor`): Panthera's static
    analysis runs when the policy asks for it, then the program executes
    with its tags.  Keeping this seam shared is what makes a 1-executor
    cluster job byte-identical to ``run_experiment`` — the cluster path
    is a generalisation, not a fork.

    Returns:
        ``(action_results, analysis)`` where ``analysis`` is None for
        non-Panthera policies.
    """
    analysis: Optional[StaticAnalysis] = None
    tags: Dict[str, Any] = {}
    lifetimes: Optional[Dict[str, Any]] = None
    if ctx.panthera_enabled:
        analysis = analyze_program(spec.program)
        tags = analysis.tags
    elif ctx.heap.regions is not None:
        # Deca's rival analysis: classify variable lifetimes instead of
        # deriving memory tags.
        lifetimes = classify_lifetimes(spec.program).classes
    action_results = execute_program(spec.program, ctx, tags, lifetimes=lifetimes)
    if ctx.heap.regions is not None:
        # Job end: release the surviving region-resident blocks (their
        # regions free wholesale) and reset every arena, so the reset
        # costs land on this run's clock before metrics are collected.
        for block in ctx.block_manager.blocks():
            if not block.on_disk and block.region_resident:
                ctx.block_manager.unpersist(block.rdd_id)
        ctx.heap.regions.job_end()
    return action_results, analysis


def _collect(
    name: str,
    config: SystemConfig,
    ctx: SparkContext,
    action_results: Dict[str, Any],
    analysis: Optional[StaticAnalysis],
    keep_context: bool,
) -> ExperimentResult:
    machine: Machine = ctx.machine
    stats = ctx.collector.stats
    elapsed = machine.elapsed_s
    gc_s = stats.total_gc_s
    energy_by_device = {
        kind.value: {"static_j": b.static_j, "dynamic_j": b.dynamic_j}
        for kind, b in machine.energy_breakdown().items()
        if kind is not DeviceKind.DISK
    }
    return ExperimentResult(
        workload=name,
        policy=config.policy,
        heap_gb=config.heap_bytes / (1024**3),
        dram_ratio=config.dram_ratio,
        elapsed_s=elapsed,
        gc_s=gc_s,
        mutator_s=elapsed - gc_s,
        minor_gcs=stats.minor_count,
        major_gcs=stats.major_count,
        energy_j=machine.energy_j(),
        energy_by_device=energy_by_device,
        monitored_calls=ctx.monitor.total_calls if ctx.monitor else 0,
        migrated_rdds=stats.migrated_rdd_count,
        spilled_blocks=ctx.block_manager.spilled_count,
        dropped_blocks=ctx.block_manager.dropped_count,
        card_scanned_gb=stats.card_scanned_bytes / (1024**3),
        stuck_rescans=stats.stuck_rescans,
        action_results=action_results,
        analysis=analysis,
        context=ctx if keep_context else None,
    )
