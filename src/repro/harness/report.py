"""Report helpers: normalised tables in the shape the paper's figures use."""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence

from repro.harness.experiment import ExperimentResult


def normalize_results(
    results: Mapping[str, ExperimentResult], baseline: str
) -> Dict[str, Dict[str, float]]:
    """Normalise elapsed time and energy against a baseline run.

    This is how every figure in the paper reports: "normalised to
    N GB DRAM-only".

    Returns:
        key -> {"time": t, "energy": e} with the baseline at 1.0.
    """
    if baseline not in results:
        raise KeyError(f"baseline {baseline!r} missing from results")
    base = results[baseline]
    if base.elapsed_s <= 0 or base.energy_j <= 0:
        raise ValueError("baseline run has zero time or energy")
    return {
        key: {
            "time": r.elapsed_s / base.elapsed_s,
            "energy": r.energy_j / base.energy_j,
        }
        for key, r in results.items()
    }


def gc_breakdown(results: Mapping[str, ExperimentResult]) -> Dict[str, Dict[str, float]]:
    """Figure 5's computation/GC split, in seconds."""
    return {
        key: {
            "computation_s": r.mutator_s,
            "gc_s": r.gc_s,
            "minor_gcs": float(r.minor_gcs),
            "major_gcs": float(r.major_gcs),
        }
        for key, r in results.items()
    }


def format_markdown_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    """Render a compact GitHub-flavoured markdown table."""
    def fmt(cell: object) -> str:
        if isinstance(cell, float):
            return f"{cell:.3f}"
        return str(cell)

    lines: List[str] = []
    lines.append("| " + " | ".join(headers) + " |")
    lines.append("|" + "|".join("---" for _ in headers) + "|")
    for row in rows:
        lines.append("| " + " | ".join(fmt(c) for c in row) + " |")
    return "\n".join(lines)


def summarize(result: ExperimentResult) -> str:
    """One-line human summary of a run."""
    return (
        f"{result.workload} [{result.policy.value}] "
        f"heap={result.heap_gb:.1f}GB dram={result.dram_ratio:.2f}: "
        f"{result.elapsed_s:.1f}s total ({result.gc_s:.1f}s GC, "
        f"{result.minor_gcs} minor / {result.major_gcs} major), "
        f"{result.energy_j:.0f}J"
    )
