"""Parallel experiment execution with a content-addressed result cache.

Every figure and table of the reproduction is a grid of independent,
deterministic ``(workload, SystemConfig, scale)`` points — exactly the
embarrassingly-parallel shape a process pool eats for breakfast.  This
module provides:

* :class:`ExperimentPoint` — one grid point, picklable, with a stable
  content fingerprint (config + workload + scale + code version).
* :class:`ResultCache` — a content-addressed on-disk cache so repeated
  sweeps and CI re-runs skip completed points entirely.
* :class:`ExperimentEngine` — fans points across
  :class:`~concurrent.futures.ProcessPoolExecutor` workers, consults the
  cache first, and emits structured :class:`EngineEvent` progress events
  for live CLI status.

Parallel output is bit-identical to serial output: the simulation is
fully deterministic (seeded RNGs, no wall-clock reads) and results carry
no process-local state once the live :class:`~repro.spark.context.
SparkContext` handle is dropped (see
:meth:`~repro.harness.experiment.ExperimentResult.without_runtime_handles`).
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import pickle
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Tuple,
)

import repro
from repro.config import SystemConfig
from repro.faults import FaultPlan
from repro.harness.experiment import ExperimentResult, run_experiment

#: Signature of the progress callback: ``fn(event)``.
EventCallback = Callable[["EngineEvent"], None]

_code_version: Optional[str] = None


def code_version() -> str:
    """A digest of every ``repro`` source file, cached per process.

    Cache entries embed this version so any code change — a new cost
    rule, a GC fix — invalidates every cached result automatically.
    """
    global _code_version
    if _code_version is None:
        digest = hashlib.sha256()
        root = pathlib.Path(repro.__file__).resolve().parent
        for path in sorted(root.rglob("*.py")):
            digest.update(path.relative_to(root).as_posix().encode())
            digest.update(b"\0")
            digest.update(path.read_bytes())
            digest.update(b"\0")
        _code_version = digest.hexdigest()
    return _code_version


@dataclass
class ExperimentPoint:
    """One grid point: a workload under a configuration at a scale.

    Attributes:
        workload: Table 4 abbreviation (PR, KM, ...).
        config: the node configuration to run under.
        scale: joint data/heap scale factor.
        workload_kwargs: extra keyword arguments for the workload builder
            (e.g. ``{"iterations": 3}``).
        trace: record the heap event stream (see :mod:`repro.trace`) and
            carry it on the result as ``trace_events``.
        faults: inject this :class:`~repro.faults.plan.FaultPlan` and
            carry the measured report on the result as
            ``fault_report``.  Part of the fingerprint, so faulted and
            fault-free runs never share a cache entry.
    """

    workload: str
    config: SystemConfig
    scale: float = 1.0
    workload_kwargs: Dict[str, Any] = field(default_factory=dict)
    trace: bool = False
    faults: Optional[FaultPlan] = None

    @property
    def label(self) -> str:
        """Human-readable ``PR [panthera]`` style label."""
        return f"{self.workload} [{self.config.policy.value}]"

    def fingerprint(self) -> str:
        """Stable content hash of this point plus the code version.

        Two points share a fingerprint iff they would produce identical
        results: same workload, same configuration (every field), same
        scale, same workload arguments, same simulator source.

        The dataset memo in :mod:`repro.workloads.datasets` needs no
        extra key material here: its cache key (scale, seed) is a pure
        function of ``(workload, scale, workload_kwargs)``, which this
        payload already covers.
        """
        payload = {
            "code": code_version(),
            "config": self.config.to_dict(),
            "faults": self.faults.to_dict() if self.faults is not None else None,
            "scale": self.scale,
            "trace": self.trace,
            "workload": self.workload,
            "workload_kwargs": dict(sorted(self.workload_kwargs.items())),
        }
        canonical = json.dumps(payload, sort_keys=True, default=repr)
        return hashlib.sha256(canonical.encode()).hexdigest()


@dataclass
class EngineEvent:
    """One structured progress event from an engine run.

    Attributes:
        kind: ``"start"`` (point dispatched), ``"done"`` (point executed)
            or ``"cached"`` (point satisfied from the result cache).
        index: position of the point in the submitted sequence.
        point: the point the event describes.
        seconds: wall-clock execution time (``done`` events only).
        completed: points finished (executed or cached) so far.
        total: total points in this run.
    """

    kind: str
    index: int
    point: ExperimentPoint
    seconds: float
    completed: int
    total: int


@dataclass
class EngineStats:
    """Counters for one :meth:`ExperimentEngine.run` call.

    Attributes:
        executed: points actually simulated.
        cached: points satisfied from the result cache.
        wall_s: wall-clock duration of the whole run.
    """

    executed: int = 0
    cached: int = 0
    wall_s: float = 0.0


class ResultCache:
    """Content-addressed on-disk cache of experiment results.

    Results are pickled under ``<root>/<aa>/<fingerprint>.pkl`` (with a
    human-readable JSON sidecar of the scalar metrics) where the
    fingerprint hashes the full configuration, workload, scale and code
    version — so a cache never returns a stale result for changed code
    or a tweaked config.
    """

    def __init__(self, root: os.PathLike) -> None:
        self.root = pathlib.Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0

    def path_for(self, fingerprint: str) -> pathlib.Path:
        """Where a fingerprint's pickle lives (sharded by prefix)."""
        return self.root / fingerprint[:2] / f"{fingerprint}.pkl"

    def get(self, fingerprint: str) -> Optional[ExperimentResult]:
        """The cached result, or None on a miss (or unreadable entry)."""
        path = self.path_for(fingerprint)
        try:
            with open(path, "rb") as fh:
                result = pickle.load(fh)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError):
            self.misses += 1
            return None
        self.hits += 1
        return result

    def put(self, fingerprint: str, result: ExperimentResult) -> None:
        """Store one result atomically (tmp file + rename)."""
        from repro.harness.export import result_to_dict

        path = self.path_for(fingerprint)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        with open(tmp, "wb") as fh:
            pickle.dump(result, fh, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp, path)
        sidecar = path.with_suffix(".json")
        sidecar.write_text(
            json.dumps(result_to_dict(result), indent=2, sort_keys=True) + "\n"
        )


def _execute_point(
    point: ExperimentPoint, keep_analysis: bool
) -> Tuple[ExperimentResult, float]:
    """Worker entry: run one point and time it (also used inline)."""
    started = time.perf_counter()
    result = run_experiment(
        point.workload,
        point.config,
        scale=point.scale,
        workload_kwargs=point.workload_kwargs or None,
        trace=point.trace,
        faults=point.faults,
    )
    stripped = result.without_runtime_handles(keep_analysis=keep_analysis)
    return stripped, time.perf_counter() - started


class ExperimentEngine:
    """Run experiment points across a process pool, cache-first.

    Args:
        jobs: worker processes (1 = run inline in this process; results
            are bit-identical either way).
        cache_dir: directory for the content-addressed result cache
            (None disables caching).
        on_event: optional callback receiving :class:`EngineEvent`
            progress events.
        keep_analysis: retain the (picklable) static-analysis result on
            each :class:`ExperimentResult`; set False to shrink IPC and
            cache payloads.  The live ``SparkContext`` is always dropped.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache_dir: Optional[os.PathLike] = None,
        on_event: Optional[EventCallback] = None,
        keep_analysis: bool = True,
    ) -> None:
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.jobs = jobs
        self.cache = ResultCache(cache_dir) if cache_dir else None
        self.on_event = on_event
        self.keep_analysis = keep_analysis
        self.stats = EngineStats()

    def _emit(self, event: EngineEvent) -> None:
        if self.on_event is not None:
            self.on_event(event)

    def run(self, points: Iterable[ExperimentPoint]) -> List[ExperimentResult]:
        """Run every point, in submission order, cache-first.

        Returns results positionally aligned with the input points.
        Points already in the cache are never executed; fresh results are
        written back so the next run can skip them.
        """
        todo = list(points)
        total = len(todo)
        started = time.perf_counter()
        self.stats = EngineStats()
        results: List[Optional[ExperimentResult]] = [None] * total
        completed = 0

        pending: List[Tuple[int, ExperimentPoint, str]] = []
        for index, point in enumerate(todo):
            fingerprint = point.fingerprint()
            cached = self.cache.get(fingerprint) if self.cache else None
            if cached is not None:
                results[index] = cached
                self.stats.cached += 1
                completed += 1
                self._emit(EngineEvent("cached", index, point, 0.0, completed, total))
            else:
                pending.append((index, point, fingerprint))

        if self.jobs <= 1 or len(pending) <= 1:
            completed = self._run_inline(pending, results, completed, total)
        else:
            completed = self._run_pool(pending, results, completed, total)

        self.stats.wall_s = time.perf_counter() - started
        return [r for r in results if r is not None]

    def _finish(
        self,
        index: int,
        point: ExperimentPoint,
        fingerprint: str,
        result: ExperimentResult,
        seconds: float,
        results: List[Optional[ExperimentResult]],
        completed: int,
        total: int,
    ) -> int:
        """Record one executed result: cache it, count it, announce it."""
        results[index] = result
        if self.cache is not None:
            self.cache.put(fingerprint, result)
        self.stats.executed += 1
        completed += 1
        self._emit(EngineEvent("done", index, point, seconds, completed, total))
        return completed

    def _run_inline(
        self,
        pending: List[Tuple[int, ExperimentPoint, str]],
        results: List[Optional[ExperimentResult]],
        completed: int,
        total: int,
    ) -> int:
        """Serial path: execute pending points in this process."""
        for index, point, fingerprint in pending:
            self._emit(EngineEvent("start", index, point, 0.0, completed, total))
            result, seconds = _execute_point(point, self.keep_analysis)
            completed = self._finish(
                index, point, fingerprint, result, seconds, results, completed, total
            )
        return completed

    def _run_pool(
        self,
        pending: List[Tuple[int, ExperimentPoint, str]],
        results: List[Optional[ExperimentResult]],
        completed: int,
        total: int,
    ) -> int:
        """Parallel path: fan pending points across worker processes."""
        workers = min(self.jobs, len(pending))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = {}
            for index, point, fingerprint in pending:
                self._emit(EngineEvent("start", index, point, 0.0, completed, total))
                future = pool.submit(_execute_point, point, self.keep_analysis)
                futures[future] = (index, point, fingerprint)
            outstanding = set(futures)
            while outstanding:
                finished, outstanding = wait(outstanding, return_when=FIRST_COMPLETED)
                for future in finished:
                    index, point, fingerprint = futures[future]
                    result, seconds = future.result()
                    completed = self._finish(
                        index,
                        point,
                        fingerprint,
                        result,
                        seconds,
                        results,
                        completed,
                        total,
                    )
        return completed


def run_points(
    cells: Mapping[Any, Tuple[str, SystemConfig]],
    scale: float,
    jobs: int = 1,
    cache_dir: Optional[os.PathLike] = None,
    on_event: Optional[EventCallback] = None,
) -> Dict[Any, ExperimentResult]:
    """Run a keyed ``{key: (workload, config)}`` grid through one engine.

    The convenience entry the sweep benchmarks use: one flat engine run
    maximises pool utilisation, and the returned dict is keyed like the
    input (insertion order preserved).
    """
    engine = ExperimentEngine(jobs=jobs, cache_dir=cache_dir, on_event=on_event)
    points = [
        ExperimentPoint(workload, config, scale)
        for workload, config in cells.values()
    ]
    results = engine.run(points)
    return dict(zip(cells.keys(), results))
