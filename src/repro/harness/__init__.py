"""Experiment harness: run a workload under a configuration and collect
the metrics the paper's figures report."""

from repro.harness.configs import (
    fig2c_configs,
    fig4_configs,
    grid_configs,
    paper_config,
)
from repro.harness.engine import (
    EngineEvent,
    EngineStats,
    ExperimentEngine,
    ExperimentPoint,
    ResultCache,
    run_points,
)
from repro.harness.experiment import ExperimentResult, run_experiment
from repro.harness.report import format_markdown_table, normalize_results

__all__ = [
    "EngineEvent",
    "EngineStats",
    "ExperimentEngine",
    "ExperimentPoint",
    "ExperimentResult",
    "ResultCache",
    "fig2c_configs",
    "fig4_configs",
    "format_markdown_table",
    "grid_configs",
    "normalize_results",
    "paper_config",
    "run_experiment",
    "run_points",
]
