"""The full workload x policy matrix in one call.

``run_matrix`` is the "give me everything" entry point: every Table 4
program under every requested policy at one configuration point,
returned as a nested dict and renderable as one markdown report — the
programmatic equivalent of running the whole benchmark suite.  Since
every cell is an independent deterministic simulation, the matrix runs
through :class:`~repro.harness.engine.ExperimentEngine`: ``jobs=N`` fans
cells across a process pool (bit-identical to the serial run) and
``cache_dir`` skips cells already computed by a previous sweep.
"""

from __future__ import annotations

import os
from typing import Dict, Iterable, List, Optional

from repro.config import PolicyName
from repro.harness.configs import paper_config
from repro.harness.engine import (
    EngineEvent,
    EventCallback,
    ExperimentEngine,
    ExperimentPoint,
)
from repro.harness.experiment import ExperimentResult
from repro.harness.report import format_markdown_table
from repro.workloads.registry import WORKLOADS

DEFAULT_POLICIES = (
    PolicyName.DRAM_ONLY,
    PolicyName.UNMANAGED,
    PolicyName.PANTHERA,
)


def run_matrix(
    scale: float = 0.1,
    heap_gb: float = 64,
    dram_ratio: float = 1 / 3,
    workloads: Optional[Iterable[str]] = None,
    policies: Iterable[PolicyName] = DEFAULT_POLICIES,
    progress=None,
    jobs: int = 1,
    cache_dir: Optional[os.PathLike] = None,
    on_event: Optional[EventCallback] = None,
    trace: bool = False,
) -> Dict[str, Dict[str, ExperimentResult]]:
    """Run every (workload, policy) combination.

    Args:
        scale: joint data/heap scale.
        heap_gb / dram_ratio: the configuration point.
        workloads: Table 4 abbreviations (default: all seven).
        policies: placement policies to compare.
        progress: optional callback ``fn(workload, policy)`` invoked once
            per cell as it is dispatched or served from the cache
            (legacy CLI progress reporting).
        jobs: worker processes; ``jobs=1`` runs serially in-process and
            returns bit-identical results to any parallel run.
        cache_dir: content-addressed result cache directory (None
            disables caching).
        on_event: structured :class:`~repro.harness.engine.EngineEvent`
            callback for live status rendering.
        trace: record each cell's heap event stream (attached to the
            results as ``trace_events``; identical for any ``jobs``).

    Returns:
        ``{workload: {policy value: result}}``.
    """
    chosen = list(workloads) if workloads else sorted(WORKLOADS)
    policy_list = list(policies)

    def relay(event: EngineEvent) -> None:
        if progress is not None and event.kind in ("start", "cached"):
            progress(event.point.workload, event.point.config.policy)
        if on_event is not None:
            on_event(event)

    engine = ExperimentEngine(jobs=jobs, cache_dir=cache_dir, on_event=relay)
    points = [
        ExperimentPoint(
            workload,
            paper_config(heap_gb, dram_ratio, policy, scale),
            scale,
            trace=trace,
        )
        for workload in chosen
        for policy in policy_list
    ]
    flat = engine.run(points)

    out: Dict[str, Dict[str, ExperimentResult]] = {}
    cursor = iter(flat)
    for workload in chosen:
        out[workload] = {policy.value: next(cursor) for policy in policy_list}
    return out


def matrix_report(
    matrix: Dict[str, Dict[str, ExperimentResult]],
    baseline: str = PolicyName.DRAM_ONLY.value,
) -> str:
    """Render a matrix as one normalised markdown table."""
    headers = ["program"]
    sample = next(iter(matrix.values()))
    policies = [p for p in sample if p != baseline]
    for policy in policies:
        headers.extend([f"{policy} time", f"{policy} energy", f"{policy} GC"])
    rows: List[List[object]] = []
    for workload, results in matrix.items():
        base = results[baseline]
        row: List[object] = [workload]
        for policy in policies:
            r = results[policy]
            row.append(r.elapsed_s / base.elapsed_s if base.elapsed_s else 0.0)
            row.append(r.energy_j / base.energy_j if base.energy_j else 0.0)
            row.append(r.gc_s / base.gc_s if base.gc_s else 0.0)
        rows.append(row)
    return format_markdown_table(headers, rows)
