"""The full workload x policy matrix in one call.

``run_matrix`` is the "give me everything" entry point: every Table 4
program under every requested policy at one configuration point,
returned as a nested dict and renderable as one markdown report — the
programmatic equivalent of running the whole benchmark suite.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.config import PolicyName, SystemConfig
from repro.harness.configs import paper_config
from repro.harness.experiment import ExperimentResult, run_experiment
from repro.harness.report import format_markdown_table
from repro.workloads.registry import WORKLOADS

DEFAULT_POLICIES = (
    PolicyName.DRAM_ONLY,
    PolicyName.UNMANAGED,
    PolicyName.PANTHERA,
)


def run_matrix(
    scale: float = 0.1,
    heap_gb: float = 64,
    dram_ratio: float = 1 / 3,
    workloads: Optional[Iterable[str]] = None,
    policies: Iterable[PolicyName] = DEFAULT_POLICIES,
    progress=None,
) -> Dict[str, Dict[str, ExperimentResult]]:
    """Run every (workload, policy) combination.

    Args:
        scale: joint data/heap scale.
        heap_gb / dram_ratio: the configuration point.
        workloads: Table 4 abbreviations (default: all seven).
        policies: placement policies to compare.
        progress: optional callback ``fn(workload, policy)`` invoked
            before each run (CLI progress reporting).

    Returns:
        ``{workload: {policy value: result}}``.
    """
    chosen = list(workloads) if workloads else sorted(WORKLOADS)
    out: Dict[str, Dict[str, ExperimentResult]] = {}
    for workload in chosen:
        row: Dict[str, ExperimentResult] = {}
        for policy in policies:
            if progress is not None:
                progress(workload, policy)
            config = paper_config(heap_gb, dram_ratio, policy, scale)
            row[policy.value] = run_experiment(workload, config, scale=scale)
        out[workload] = row
    return out


def matrix_report(
    matrix: Dict[str, Dict[str, ExperimentResult]],
    baseline: str = PolicyName.DRAM_ONLY.value,
) -> str:
    """Render a matrix as one normalised markdown table."""
    headers = ["program"]
    sample = next(iter(matrix.values()))
    policies = [p for p in sample if p != baseline]
    for policy in policies:
        headers.extend([f"{policy} time", f"{policy} energy", f"{policy} GC"])
    rows: List[List[object]] = []
    for workload, results in matrix.items():
        base = results[baseline]
        row: List[object] = [workload]
        for policy in policies:
            r = results[policy]
            row.append(r.elapsed_s / base.elapsed_s)
            row.append(r.energy_j / base.energy_j)
            row.append(r.gc_s / base.gc_s if base.gc_s else 0.0)
        rows.append(row)
    return format_markdown_table(headers, rows)
