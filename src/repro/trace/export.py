"""Trace serialisation: JSONL event streams and JSON residency profiles.

One event per line, in emission order, with None-valued fields omitted —
the memray-style interchange format downstream tools (and the CI trace
artifact) consume.  The format round-trips: a stream written with
:func:`events_to_jsonl` and read back with :func:`events_from_jsonl`
replays to the identical heap state.
"""

from __future__ import annotations

import json
import os
from typing import Iterable, List

from repro.trace.aggregate import TraceAggregator
from repro.trace.events import TraceEvent


def events_to_jsonl(events: Iterable[TraceEvent]) -> str:
    """Serialise an event stream to JSONL (one compact object per line)."""
    lines = [
        json.dumps(event.to_dict(), sort_keys=True, separators=(",", ":"))
        for event in events
    ]
    return "\n".join(lines) + ("\n" if lines else "")


def events_from_jsonl(text: str) -> List[TraceEvent]:
    """Parse a JSONL trace back into events (inverse of
    :func:`events_to_jsonl`)."""
    events: List[TraceEvent] = []
    for line in text.splitlines():
        line = line.strip()
        if line:
            events.append(TraceEvent.from_dict(json.loads(line)))
    return events


def write_events_jsonl(events: Iterable[TraceEvent], path: os.PathLike) -> int:
    """Write a JSONL trace to ``path``; returns the event count."""
    text = events_to_jsonl(list(events))
    with open(path, "w") as fh:
        fh.write(text)
    return text.count("\n")


def profiles_to_json(aggregator: TraceAggregator, indent: int = 2) -> str:
    """Serialise an aggregator's per-RDD residency profiles to JSON."""
    payload = {
        str(rdd_id): {
            "dram_byte_s": profile.dram_byte_s,
            "nvm_byte_s": profile.nvm_byte_s,
            "migrations_to_dram": profile.migrations_to_dram,
            "migrations_to_nvm": profile.migrations_to_nvm,
            "alloc_bytes": profile.alloc_bytes,
            "freed_bytes": profile.freed_bytes,
            "peak_bytes": profile.peak_bytes,
        }
        for rdd_id, profile in sorted(aggregator.profiles.items())
    }
    return json.dumps(payload, indent=indent, sort_keys=True)
