"""The trace event bus: where the allocator, the GCs and the block
manager publish placement events.

The bus is the *only* tracing hook the hot paths see: every emission
site is guarded by ``if trace is not None`` so a run with tracing
disabled pays one pointer comparison per potential event and nothing
else (<2% overhead on the fig4 smoke benchmark).

Object ids are renumbered densely in first-seen order before they reach
subscribers: :class:`~repro.heap.object_model.HeapObject` draws its
``oid`` from a process-global counter, so raw ids depend on how many
experiments the process ran before this one.  Normalised ids make a
trace a pure function of (workload, config, scale) — the property the
``--jobs 1`` vs ``--jobs 4`` byte-identical guarantee rests on.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.trace.events import (
    ALLOC,
    DESERIALIZE,
    FALLBACK,
    FREE,
    GC_PAUSE,
    RECOMPUTE,
    REGION_ALLOC,
    REGION_RESET,
    SERIALIZE,
    TAG_RECOGNIZED,
    THROTTLE,
    TraceEvent,
)

#: Signature of a bus subscriber: ``fn(event)``.
TraceSink = Callable[[TraceEvent], None]


class TraceBus:
    """Clock-stamping publish/subscribe hub for :class:`TraceEvent`.

    Args:
        clock: the simulated clock events are stamped from (anything
            with a ``now_ns`` attribute, i.e.
            :class:`~repro.memory.clock.Clock`).
    """

    def __init__(self, clock) -> None:
        self.clock = clock
        self._sinks: List[TraceSink] = []
        self._oid_map: Dict[int, int] = {}
        self._next_oid = 1

    def subscribe(self, sink: TraceSink) -> None:
        """Register a subscriber invoked for every published event."""
        self._sinks.append(sink)

    def _normalize_oid(self, raw_oid: Optional[int]) -> Optional[int]:
        """Map a process-global object id to a dense trace-local id."""
        if raw_oid is None:
            return None
        local = self._oid_map.get(raw_oid)
        if local is None:
            local = self._next_oid
            self._oid_map[raw_oid] = local
            self._next_oid += 1
        return local

    def publish(self, event: TraceEvent) -> None:
        """Dispatch one already-built event to every subscriber."""
        for sink in self._sinks:
            sink(event)

    # -- emission helpers (one per event family) -------------------------

    def _object_fields(self, obj) -> dict:
        """The shared object-describing fields of an event."""
        space = obj.space
        device = None
        if space is not None and obj.addr is not None:
            device = space.device_of(obj.addr).value
        tag = obj.tag
        return {
            "oid": self._normalize_oid(obj.oid),
            "size": obj.size,
            "space": space.name if space is not None else None,
            "device": device,
            "tag": tag.value if tag is not None else None,
            "rdd_id": obj.rdd_id,
        }

    def alloc(self, obj) -> None:
        """Publish an ALLOC event for a freshly placed object."""
        self.publish(
            TraceEvent(ALLOC, self.clock.now_ns, **self._object_fields(obj))
        )

    def move(self, kind: str, obj, src_space: str, src_device: str) -> None:
        """Publish a move event (copy / promote / migrate) for an object
        that has already been placed at its destination.

        Args:
            kind: one of :data:`~repro.trace.events.MOVE_KINDS`.
            obj: the moved object (``obj.space`` is the destination).
            src_space: name of the space the object came from.
            src_device: backing device at the object's old address.
        """
        fields = self._object_fields(obj)
        fields["src_space"] = src_space
        fields["src_device"] = src_device
        self.publish(TraceEvent(kind, self.clock.now_ns, **fields))

    def free(self, obj, space_name: str) -> None:
        """Publish a FREE event for an object found dead in a space."""
        tag = obj.tag
        self.publish(
            TraceEvent(
                FREE,
                self.clock.now_ns,
                oid=self._normalize_oid(obj.oid),
                size=obj.size,
                space=space_name,
                tag=tag.value if tag is not None else None,
                rdd_id=obj.rdd_id,
            )
        )

    def gc_pause(self, pause_kind: str, start_ns: float, duration_ns: float) -> None:
        """Publish a GC_PAUSE event (stamped with the pause *start*)."""
        self.publish(
            TraceEvent(
                GC_PAUSE,
                start_ns,
                pause_kind=pause_kind,
                duration_ns=duration_ns,
            )
        )

    def block_event(self, kind: str, rdd_id: int, nbytes: float) -> None:
        """Publish an informational block-manager event (spill / drop /
        unpersist)."""
        self.publish(
            TraceEvent(kind, self.clock.now_ns, size=nbytes, rdd_id=rdd_id)
        )

    def fallback(self, obj, intended_space: str) -> None:
        """Publish a FALLBACK event: ``obj`` just landed somewhere other
        than the space the policy intended (``obj.space`` is where it
        actually went)."""
        fields = self._object_fields(obj)
        fields["detail"] = f"intended={intended_space}"
        self.publish(TraceEvent(FALLBACK, self.clock.now_ns, **fields))

    def throttle(self, start_ns: float, duration_ns: float, factor: float) -> None:
        """Publish one scheduled NVM bandwidth-throttle window (stamped
        with the window *start*, like GC pauses)."""
        self.publish(
            TraceEvent(
                THROTTLE,
                start_ns,
                duration_ns=duration_ns,
                detail=f"factor={factor:g}",
            )
        )

    def recompute(self, rdd_id: Optional[int], nbytes: float, detail: str) -> None:
        """Publish a RECOMPUTE event: lost state was rebuilt through
        lineage (``detail`` says what was lost)."""
        self.publish(
            TraceEvent(
                RECOMPUTE,
                self.clock.now_ns,
                size=nbytes,
                rdd_id=rdd_id,
                detail=detail,
            )
        )

    def serialize(self, rdd_id: Optional[int], packed_bytes: float) -> None:
        """Publish a SERIALIZE event: a block was packed into the
        serialized off-heap tier (the native ALLOCs carry placement)."""
        self.publish(
            TraceEvent(
                SERIALIZE, self.clock.now_ns, size=packed_bytes, rdd_id=rdd_id
            )
        )

    def deserialize(self, rdd_id: Optional[int], raw_bytes: float) -> None:
        """Publish a DESERIALIZE event: one serialized-tier partition
        was unpacked on access."""
        self.publish(
            TraceEvent(
                DESERIALIZE, self.clock.now_ns, size=raw_bytes, rdd_id=rdd_id
            )
        )

    def region_alloc(self, obj, lifetime: str) -> None:
        """Publish a REGION_ALLOC event: ``obj`` was bump-allocated into
        a lifetime region arena (informational — region bytes are outside
        the replay oracle's per-space ledger, so no ALLOC is emitted)."""
        fields = self._object_fields(obj)
        fields["detail"] = f"lifetime={lifetime}"
        self.publish(TraceEvent(REGION_ALLOC, self.clock.now_ns, **fields))

    def region_reset(
        self, space_name: str, freed_bytes: float, reason: str
    ) -> None:
        """Publish a REGION_RESET event: a whole arena was freed
        wholesale at a stage/job boundary."""
        self.publish(
            TraceEvent(
                REGION_RESET,
                self.clock.now_ns,
                size=freed_bytes,
                space=space_name,
                detail=reason,
            )
        )

    def tag_recognized(self, tag, size: int) -> None:
        """Publish the §4.2.1 "RDD backbone array recognised" event."""
        self.publish(
            TraceEvent(
                TAG_RECOGNIZED,
                self.clock.now_ns,
                size=size,
                tag=tag.value if tag is not None else None,
            )
        )


class TraceRecorder:
    """A subscriber that appends every event to an in-memory list."""

    def __init__(self) -> None:
        self.events: List[TraceEvent] = []

    def observe(self, event: TraceEvent) -> None:
        """Record one event (the subscriber callback)."""
        self.events.append(event)

    def __len__(self) -> int:
        return len(self.events)
