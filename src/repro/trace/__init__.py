"""``repro.trace``: heap event tracing with per-RDD residency profiles.

The subsystem has four layers:

1. :mod:`~repro.trace.events` / :mod:`~repro.trace.bus` — the event
   vocabulary and the low-overhead publish/subscribe bus the allocator,
   the minor/major GCs and the block manager publish to (disabled runs
   pay one ``is None`` check per potential event).
2. :mod:`~repro.trace.aggregate` — the streaming aggregator producing
   per-space occupancy timelines and per-RDD residency profiles
   (bytes·s in DRAM vs NVM, migration counts).
3. :mod:`~repro.trace.replay` — the trace-replay oracle: replaying a
   stream must reconstruct exactly the live-bytes-per-space the heap
   reports and the pause list :class:`~repro.gc.stats.GCStats` reports.
4. :mod:`~repro.trace.render` / :mod:`~repro.trace.export` — textual
   timelines/tables and the JSONL interchange format.

:class:`TraceSession` is the front door: it wires a bus plus a recorder
into a heap, its collector stats and its tag-wait state, and hands back
the recorded events.
"""

from __future__ import annotations

from typing import List, Optional

from repro.trace.aggregate import (
    ResidencyProfile,
    TraceAggregator,
    aggregate_events,
)
from repro.trace.bus import TraceBus, TraceRecorder
from repro.trace.events import TraceEvent
from repro.trace.export import (
    events_from_jsonl,
    events_to_jsonl,
    profiles_to_json,
    write_events_jsonl,
)
from repro.trace.render import (
    render_residency_table,
    render_timeline,
    render_trace_report,
)
from repro.trace.replay import (
    ReplayError,
    ReplayResult,
    heap_live_bytes,
    oracle_check,
    replay_events,
)


class TraceSession:
    """One tracing hookup over a heap + collector stats pair.

    Attach to a *fresh* stack (before its first allocation) so the
    replay oracle sees the heap's whole lifetime:

        session = TraceSession.attach(heap, collector.stats)
        ... run the workload ...
        problems = session.check()          # the replay oracle
        events = session.events             # the raw stream
    """

    def __init__(self, heap, stats) -> None:
        self.heap = heap
        self.stats = stats
        self.bus = TraceBus(heap.machine.clock)
        self.recorder = TraceRecorder()
        self.bus.subscribe(self.recorder.observe)

    @classmethod
    def attach(cls, heap, stats) -> "TraceSession":
        """Create a session and install its bus on the heap, the GC
        stats and the §4.2.1 tag-wait state."""
        session = cls(heap, stats)
        heap.trace = session.bus
        heap.tag_wait.trace = session.bus
        stats.trace = session.bus
        return session

    @classmethod
    def attach_to_context(cls, ctx) -> "TraceSession":
        """Attach to a full :class:`~repro.spark.context.SparkContext`."""
        return cls.attach(ctx.heap, ctx.collector.stats)

    def detach(self) -> None:
        """Uninstall the bus; already-recorded events are kept."""
        self.heap.trace = None
        self.heap.tag_wait.trace = None
        self.stats.trace = None

    @property
    def events(self) -> List[TraceEvent]:
        """The recorded event stream, in emission order."""
        return self.recorder.events

    def aggregate(self, end_ns: Optional[float] = None) -> TraceAggregator:
        """A finished aggregator over the recorded stream (defaults the
        end-of-run settle time to the machine clock's current time)."""
        final = end_ns if end_ns is not None else self.heap.machine.clock.now_ns
        return aggregate_events(self.events, final)

    def check(self) -> List[str]:
        """Run the replay oracle; returns mismatch descriptions (empty
        means the trace reconstructs the heap and pause list exactly)."""
        return oracle_check(self.heap, self.stats, self.events)


__all__ = [
    "ResidencyProfile",
    "ReplayError",
    "ReplayResult",
    "TraceAggregator",
    "TraceBus",
    "TraceEvent",
    "TraceRecorder",
    "TraceSession",
    "aggregate_events",
    "events_from_jsonl",
    "events_to_jsonl",
    "heap_live_bytes",
    "oracle_check",
    "profiles_to_json",
    "render_residency_table",
    "render_timeline",
    "render_trace_report",
    "replay_events",
    "write_events_jsonl",
]
