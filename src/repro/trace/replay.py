"""The trace-replay oracle: reconstruct heap state from events alone.

A trace is complete when replaying it — applying every alloc / move /
free event to an empty model — reproduces exactly the live-bytes-per-
space the real heap reports and the pause list
:class:`~repro.gc.stats.GCStats` reports.  That closes the loop: the
tracer is not just a reporter, it is a cross-checking correctness tool
for the heap/GC core.  Any drift (a missed free, a promotion recorded
against the wrong source space, a migration that teleports bytes) shows
up as a concrete mismatch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Tuple

from repro.errors import ReproError
from repro.trace.events import (
    ALLOC,
    FREE,
    GC_PAUSE,
    INFORMATIONAL_KINDS,
    MOVE_KINDS,
    TraceEvent,
)


class ReplayError(ReproError):
    """An event stream is internally inconsistent (strict replay only)."""


@dataclass
class ReplayResult:
    """The heap state reconstructed from an event stream.

    Attributes:
        live_bytes: space name -> payload bytes of live objects.
        pauses: (kind, start_ns, duration_ns) per GC, in order.
        object_space: oid -> space name of every live object.
        object_size: oid -> payload size of every live object.
        event_count: events consumed (informational kinds included).
    """

    live_bytes: Dict[str, int] = field(default_factory=dict)
    pauses: List[Tuple[str, float, float]] = field(default_factory=list)
    object_space: Dict[int, str] = field(default_factory=dict)
    object_size: Dict[int, int] = field(default_factory=dict)
    event_count: int = 0

    def total_live_bytes(self) -> int:
        """Live bytes summed over every space."""
        return sum(self.live_bytes.values())


def replay_events(
    events: Iterable[TraceEvent], strict: bool = True
) -> ReplayResult:
    """Replay an event stream into a :class:`ReplayResult`.

    Args:
        events: the stream, in emission order.
        strict: raise :class:`ReplayError` on internal inconsistencies
            (unknown oids, wrong source spaces, double allocation);
            when False such events are skipped — useful for traces that
            started mid-run.
    """
    state = ReplayResult()
    for event in events:
        state.event_count += 1
        kind = event.kind
        if kind == ALLOC:
            _apply_alloc(state, event, strict)
        elif kind in MOVE_KINDS:
            _apply_move(state, event, strict)
        elif kind == FREE:
            _apply_free(state, event, strict)
        elif kind == GC_PAUSE:
            state.pauses.append((event.pause_kind, event.t_ns, event.duration_ns))
        elif kind not in INFORMATIONAL_KINDS and strict:
            raise ReplayError(f"unknown event kind {kind!r}")
    return state


def _apply_alloc(state: ReplayResult, event: TraceEvent, strict: bool) -> None:
    """Apply one ALLOC event."""
    if event.oid in state.object_space:
        if strict:
            raise ReplayError(f"object {event.oid} allocated twice")
        return
    size = int(event.size)
    state.object_space[event.oid] = event.space
    state.object_size[event.oid] = size
    state.live_bytes[event.space] = state.live_bytes.get(event.space, 0) + size


def _apply_move(state: ReplayResult, event: TraceEvent, strict: bool) -> None:
    """Apply one move (copy / promote / migrate) event."""
    current = state.object_space.get(event.oid)
    if current is None:
        if strict:
            raise ReplayError(f"move of unknown object {event.oid}")
        return
    if current != event.src_space:
        if strict:
            raise ReplayError(
                f"object {event.oid} moved from {event.src_space!r} but "
                f"replay places it in {current!r}"
            )
        return
    size = state.object_size[event.oid]
    state.live_bytes[current] -= size
    state.object_space[event.oid] = event.space
    state.live_bytes[event.space] = state.live_bytes.get(event.space, 0) + size


def _apply_free(state: ReplayResult, event: TraceEvent, strict: bool) -> None:
    """Apply one FREE event."""
    current = state.object_space.pop(event.oid, None)
    if current is None:
        if strict:
            raise ReplayError(f"free of unknown object {event.oid}")
        return
    if current != event.space and strict:
        raise ReplayError(
            f"object {event.oid} freed in {event.space!r} but replay "
            f"places it in {current!r}"
        )
    state.live_bytes[current] -= state.object_size.pop(event.oid)


def heap_live_bytes(heap) -> Dict[str, int]:
    """The live-bytes-per-space the heap itself reports, for every space
    (young, old and native) that holds at least one object."""
    snapshot: Dict[str, int] = {}
    for space in heap.young_spaces + heap.old_spaces + [heap.native]:
        nbytes = space.live_bytes()
        if nbytes or space.objects:
            snapshot[space.name] = nbytes
    return snapshot


def oracle_check(heap, stats, events: Iterable[TraceEvent]) -> List[str]:
    """Run the replay oracle against a live heap and its GC stats.

    Args:
        heap: the :class:`~repro.heap.managed_heap.ManagedHeap` whose
            lifetime the trace covers (from its very first allocation).
        stats: the :class:`~repro.gc.stats.GCStats` of the same run.
        events: the recorded trace.

    Returns:
        A list of human-readable mismatch descriptions; empty when the
        replayed state matches the heap and stats exactly.
    """
    problems: List[str] = []
    try:
        replayed = replay_events(events, strict=True)
    except ReplayError as exc:
        return [f"replay failed: {exc}"]
    actual = heap_live_bytes(heap)
    reconstructed = {
        name: nbytes for name, nbytes in replayed.live_bytes.items() if nbytes
    }
    actual_nonzero = {name: nbytes for name, nbytes in actual.items() if nbytes}
    if reconstructed != actual_nonzero:
        for name in sorted(set(reconstructed) | set(actual_nonzero)):
            want = actual_nonzero.get(name, 0)
            got = reconstructed.get(name, 0)
            if want != got:
                problems.append(
                    f"space {name!r}: heap reports {want} live bytes, "
                    f"replay reconstructs {got}"
                )
    if replayed.pauses != list(stats.pauses):
        problems.append(
            f"pause list mismatch: stats has {len(stats.pauses)} pauses, "
            f"replay has {len(replayed.pauses)}"
            if len(replayed.pauses) != len(stats.pauses)
            else "pause list mismatch: same length, different entries"
        )
    return problems
