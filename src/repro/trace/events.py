"""Heap trace events: the vocabulary of the `repro.trace` event bus.

One :class:`TraceEvent` describes one observable change in the simulated
heap's placement state — an allocation, a survivor-space copy, a
promotion, a DRAM/NVM migration, a death, or a GC pause — stamped with
the *simulated* clock, the object's size, its space, its backing device,
its memory tag and the RDD it belongs to.  The event stream is the data
behind Figures 4-7 and Table 5: replaying it reconstructs per-space
occupancy exactly (see :mod:`repro.trace.replay`), and aggregating it
yields per-RDD residency profiles (see :mod:`repro.trace.aggregate`).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any, Dict, Optional

#: Object first placed in a space (eden fast path, direct old-gen RDD
#: array allocation, or off-heap native placement).
ALLOC = "alloc"
#: Live young object evacuated into the to-space during a minor GC.
SURVIVOR_COPY = "survivor_copy"
#: Young object tenured into an old space (aging, eager or full-GC).
PROMOTE = "promote"
#: Dynamic migration moving an object from the DRAM to the NVM component.
MIGRATE_DRAM_TO_NVM = "migrate_dram_to_nvm"
#: Dynamic migration moving an object from the NVM to the DRAM component.
MIGRATE_NVM_TO_DRAM = "migrate_nvm_to_dram"
#: Object found dead (young-gen reset or old-gen sweep).
FREE = "free"
#: One stop-the-world collection (minor or major).
GC_PAUSE = "gc_pause"
#: Block manager serialised a persisted block out to disk.
SPILL = "spill"
#: Block manager dropped a MEMORY_ONLY block under pressure.
DROP = "drop"
#: A persisted block was explicitly released.
UNPERSIST = "unpersist"
#: The §4.2.1 tag-wait state recognised an RDD backbone array.
TAG_RECOGNIZED = "tag_recognized"
#: An old-gen placement landed off its policy-intended space (the
#: NVM→DRAM degradation ladder); ``detail`` names the intended space.
FALLBACK = "fallback"
#: One scheduled NVM bandwidth-throttle window (``t_ns`` is the window
#: start, ``duration_ns`` its length, ``detail`` the slowdown factor).
THROTTLE = "throttle"
#: A killed partition/block was recomputed through lineage; ``detail``
#: says what was lost (``shuffle:<id>:<pidx>`` or ``block``).
RECOMPUTE = "recompute"
#: A persisted block was packed into the serialized off-heap tier
#: (``size`` is the packed byte count; the native ALLOC events carry
#: the placement itself).
SERIALIZE = "serialize"
#: One partition of a serialized-tier block was unpacked on access
#: (``size`` is the deserialised byte count — the CPU paid is charged
#: through the cost plane, this event only annotates it).
DESERIALIZE = "deserialize"
#: An object was bump-allocated into a lifetime region arena (Deca
#: policy).  Region arenas are invisible to the generational collector
#: and to the replay oracle's live-bytes ledger, so this is
#: informational: ``space`` names the arena, ``detail`` the lifetime
#: class.
REGION_ALLOC = "region_alloc"
#: A whole region arena was freed wholesale at a stage/job boundary
#: (``size`` is the byte count released, ``detail`` the reset reason).
REGION_RESET = "region_reset"

#: Event kinds that move a live object between two spaces.
MOVE_KINDS = frozenset(
    {SURVIVOR_COPY, PROMOTE, MIGRATE_DRAM_TO_NVM, MIGRATE_NVM_TO_DRAM}
)
#: Event kinds the replay oracle interprets (placement-state changes).
REPLAYED_KINDS = frozenset({ALLOC, FREE, GC_PAUSE} | MOVE_KINDS)
#: Informational kinds the replay oracle skips.  FALLBACK annotates a
#: placement whose ALLOC/PROMOTE event carries the real byte movement;
#: THROTTLE and RECOMPUTE describe time, not placement.  REGION_ALLOC
#: and REGION_RESET describe arenas the oracle's per-space ledger does
#: not model (region bytes never appear in ALLOC/FREE events).
INFORMATIONAL_KINDS = frozenset(
    {
        SPILL,
        DROP,
        UNPERSIST,
        TAG_RECOGNIZED,
        FALLBACK,
        THROTTLE,
        RECOMPUTE,
        SERIALIZE,
        DESERIALIZE,
        REGION_ALLOC,
        REGION_RESET,
    }
)
#: The dynamic-migration kinds (always cross the DRAM/NVM boundary).
MIGRATE_KINDS = frozenset({MIGRATE_DRAM_TO_NVM, MIGRATE_NVM_TO_DRAM})


@dataclass
class TraceEvent:
    """One heap placement event.

    Attributes:
        kind: event kind (one of the module constants above).
        t_ns: simulated clock time the event happened at (for GC pauses,
            the pause *start*).
        oid: trace-local object id (densely renumbered by the bus so
            traces are independent of process history), or None for
            object-less events (pauses, block events).
        size: payload bytes of the object (or block) the event concerns.
        space: destination / residence space name.
        src_space: source space name for move events.
        device: backing device of ``space`` at the object's address.
        src_device: backing device of ``src_space`` before a move.
        tag: the object's memory tag ("dram"/"nvm") if set.
        rdd_id: owning RDD id, if the object belongs to one.
        pause_kind: "minor" or "major" for GC_PAUSE events.
        duration_ns: pause duration for GC_PAUSE events (also the
            window length for THROTTLE events).
        detail: free-form annotation for fault events (intended space
            for FALLBACK, slowdown factor for THROTTLE, what was lost
            for RECOMPUTE).
    """

    kind: str
    t_ns: float
    oid: Optional[int] = None
    size: float = 0.0
    space: Optional[str] = None
    src_space: Optional[str] = None
    device: Optional[str] = None
    src_device: Optional[str] = None
    tag: Optional[str] = None
    rdd_id: Optional[int] = None
    pause_kind: Optional[str] = None
    duration_ns: float = 0.0
    detail: Optional[str] = None

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-safe dict with None/zero-default fields omitted."""
        row = asdict(self)
        return {
            key: value
            for key, value in row.items()
            if value is not None and not (key == "duration_ns" and value == 0.0)
        }

    @classmethod
    def from_dict(cls, row: Dict[str, Any]) -> "TraceEvent":
        """Rebuild an event from :meth:`to_dict` output (JSONL import)."""
        return cls(**row)
