"""Textual rendering of heap traces: occupancy timelines and top-N
per-RDD residency tables.

Pure-ASCII, deterministic output: the same event stream always renders
to the same bytes, which is what lets the test suite pin ``--jobs 1``
vs ``--jobs 4`` trace output to byte equality.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

from repro.trace.aggregate import TraceAggregator, aggregate_events
from repro.trace.events import TraceEvent

#: Ten occupancy levels, lowest to highest.
LEVELS = " .:-=+*#%@"


def _format_bytes(nbytes: float) -> str:
    """Human-readable byte count (KiB/MiB/GiB)."""
    value = float(nbytes)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if abs(value) < 1024.0 or unit == "GiB":
            return f"{value:.1f} {unit}" if unit != "B" else f"{int(value)} B"
        value /= 1024.0
    return f"{value:.1f} GiB"  # pragma: no cover - unreachable


def _bucketize(
    samples: Sequence[Tuple[float, int]], end_ns: float, width: int
) -> List[int]:
    """Resample a step function of ``(t_ns, value)`` points into
    ``width`` equal time buckets, carrying the last value forward and
    keeping each bucket's maximum."""
    buckets = [0] * width
    if not samples:
        return buckets
    span = max(end_ns, samples[-1][0], 1.0)
    value = 0
    cursor = 0
    for index in range(width):
        hi = span * (index + 1) / width
        peak = value
        while cursor < len(samples) and samples[cursor][0] <= hi:
            value = samples[cursor][1]
            if value > peak:
                peak = value
            cursor += 1
        buckets[index] = peak
    return buckets


def render_timeline(
    aggregator: TraceAggregator, width: int = 64, spaces: Optional[List[str]] = None
) -> str:
    """Render per-space occupancy over time as level-coded rows.

    Each row maps a space's occupancy into ``width`` time buckets, coded
    with the ten :data:`LEVELS` characters normalised to that space's
    peak occupancy (printed at the end of the row).

    Args:
        aggregator: a finished :class:`TraceAggregator`.
        width: number of time buckets per row.
        spaces: subset of space names to render (default: all traced,
            in first-traced order).
    """
    chosen = spaces if spaces is not None else list(aggregator.timelines)
    end_s = aggregator.end_ns / 1e9
    lines = [f"occupancy timeline (0s .. {end_s:.3f}s, {width} buckets)"]
    label_width = max([len(name) for name in chosen] or [0])
    for name in chosen:
        samples = aggregator.timelines.get(name, [])
        buckets = _bucketize(samples, aggregator.end_ns, width)
        peak = max(buckets) if buckets else 0
        if peak <= 0:
            row = LEVELS[0] * width
        else:
            row = "".join(
                LEVELS[min(len(LEVELS) - 1, (value * len(LEVELS)) // (peak + 1))]
                for value in buckets
            )
        lines.append(
            f"{name:<{label_width}} |{row}| peak {_format_bytes(peak)}"
        )
    return "\n".join(lines)


def render_residency_table(aggregator: TraceAggregator, top_n: int = 10) -> str:
    """Render the top-N per-RDD residency profiles as a markdown table.

    Columns: RDD id, DRAM and NVM residency in MiB·s, migration counts
    in each direction, and the RDD's peak live footprint — the measured
    counterpart of the paper's Table 5.
    """
    # Imported lazily: the GC core imports repro.trace, and the harness
    # imports the GC core — a module-level import here would be a cycle.
    from repro.harness.report import format_markdown_table

    mib = 1024.0 * 1024.0
    rows: List[List[object]] = []
    for profile in aggregator.top_profiles(top_n):
        rows.append(
            [
                profile.rdd_id,
                profile.dram_byte_s / mib,
                profile.nvm_byte_s / mib,
                profile.migrations_to_dram,
                profile.migrations_to_nvm,
                _format_bytes(profile.peak_bytes),
            ]
        )
    return format_markdown_table(
        [
            "RDD",
            "DRAM MiB*s",
            "NVM MiB*s",
            "mig->dram",
            "mig->nvm",
            "peak",
        ],
        rows,
    )


def render_trace_report(
    events: Iterable[TraceEvent],
    top_n: int = 10,
    width: int = 64,
    end_ns: Optional[float] = None,
) -> str:
    """Render the full textual trace report from a recorded stream.

    The occupancy timeline, the top-N residency table and a one-line
    summary (event and pause counts) — what ``repro trace`` and the
    ``--trace`` flags print.
    """
    aggregator = aggregate_events(events, end_ns)
    minor = aggregator.pause_counts.get("minor", 0)
    major = aggregator.pause_counts.get("major", 0)
    summary = (
        f"trace: {aggregator.event_count} events, {minor} minor / "
        f"{major} major pauses ({aggregator.pause_ns / 1e9:.2f}s paused)"
    )
    return "\n".join(
        [
            render_timeline(aggregator, width=width),
            "",
            render_residency_table(aggregator, top_n=top_n),
            "",
            summary,
        ]
    )
