"""Streaming aggregation of heap trace events.

The :class:`TraceAggregator` consumes events one at a time (subscribe it
to a live :class:`~repro.trace.bus.TraceBus`, or feed it a recorded
stream — the result is identical) and maintains:

* a per-space occupancy timeline — ``(t_ns, live_bytes)`` samples taken
  whenever a space's occupancy changes (the data behind Fig. 4-7's
  placement story), and
* per-RDD residency profiles — bytes·seconds of residency in DRAM vs
  NVM, migration counts and peak footprint per RDD id (the data behind
  Table 5).

Residency attribution integrates ``live bytes x simulated time`` per
device class, settling each RDD's running integral at every event that
changes its footprint.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.trace.events import (
    ALLOC,
    FREE,
    GC_PAUSE,
    MIGRATE_DRAM_TO_NVM,
    MIGRATE_NVM_TO_DRAM,
    MOVE_KINDS,
    TraceEvent,
)


@dataclass
class ResidencyProfile:
    """Hybrid-memory residency of one RDD over a run.

    Attributes:
        rdd_id: the RDD the profile describes.
        dram_byte_s: integral of DRAM-resident bytes over simulated time.
        nvm_byte_s: integral of NVM-resident bytes over simulated time.
        migrations_to_dram: objects dynamically migrated NVM -> DRAM.
        migrations_to_nvm: objects dynamically migrated DRAM -> NVM.
        alloc_bytes: total bytes ever allocated for this RDD.
        freed_bytes: total bytes of this RDD found dead.
        peak_bytes: largest simultaneous live footprint.
        live_bytes: current live footprint (by device class).
    """

    rdd_id: int
    dram_byte_s: float = 0.0
    nvm_byte_s: float = 0.0
    migrations_to_dram: int = 0
    migrations_to_nvm: int = 0
    alloc_bytes: int = 0
    freed_bytes: int = 0
    peak_bytes: int = 0
    live_bytes: Dict[str, int] = field(default_factory=dict)
    _last_t_ns: float = 0.0

    def total_byte_s(self) -> float:
        """DRAM plus NVM residency (the ranking key for top-N tables)."""
        return self.dram_byte_s + self.nvm_byte_s

    def settle(self, t_ns: float) -> None:
        """Integrate residency up to ``t_ns``."""
        dt_s = (t_ns - self._last_t_ns) / 1e9
        if dt_s > 0:
            self.dram_byte_s += self.live_bytes.get("dram", 0) * dt_s
            self.nvm_byte_s += self.live_bytes.get("nvm", 0) * dt_s
        self._last_t_ns = t_ns

    def adjust(self, device: Optional[str], delta: int) -> None:
        """Change the live footprint on one device class."""
        if device is None:
            return
        self.live_bytes[device] = self.live_bytes.get(device, 0) + delta
        total = sum(self.live_bytes.values())
        if total > self.peak_bytes:
            self.peak_bytes = total


class TraceAggregator:
    """Streaming consumer building occupancy timelines and residency
    profiles from a trace event stream."""

    def __init__(self) -> None:
        #: space name -> [(t_ns, live_bytes), ...] occupancy samples.
        self.timelines: Dict[str, List[Tuple[float, int]]] = {}
        #: rdd id -> residency profile.
        self.profiles: Dict[int, ResidencyProfile] = {}
        #: (pause kind -> count) and total pause nanoseconds.
        self.pause_counts: Dict[str, int] = {}
        self.pause_ns: float = 0.0
        self.event_count = 0
        self.end_ns: float = 0.0
        self._space_bytes: Dict[str, int] = {}
        #: oid -> (size, space, device, rdd_id) of live objects.
        self._objects: Dict[int, Tuple[int, str, Optional[str], Optional[int]]] = {}

    # -- event consumption -----------------------------------------------

    def observe(self, event: TraceEvent) -> None:
        """Consume one event (the bus-subscriber callback)."""
        self.event_count += 1
        if event.t_ns > self.end_ns:
            self.end_ns = event.t_ns
        kind = event.kind
        if kind == ALLOC:
            self._on_alloc(event)
        elif kind in MOVE_KINDS:
            self._on_move(event)
        elif kind == FREE:
            self._on_free(event)
        elif kind == GC_PAUSE:
            self.pause_counts[event.pause_kind] = (
                self.pause_counts.get(event.pause_kind, 0) + 1
            )
            self.pause_ns += event.duration_ns
            pause_end = event.t_ns + event.duration_ns
            if pause_end > self.end_ns:
                self.end_ns = pause_end

    def finish(self, end_ns: Optional[float] = None) -> "TraceAggregator":
        """Settle every profile's residency integral at end-of-run.

        Args:
            end_ns: run end time; defaults to the latest event time seen.

        Returns:
            self, for chaining.
        """
        final = end_ns if end_ns is not None else self.end_ns
        for profile in self.profiles.values():
            profile.settle(final)
        return self

    # -- internals ---------------------------------------------------------

    def _profile(self, rdd_id: int, t_ns: float) -> ResidencyProfile:
        profile = self.profiles.get(rdd_id)
        if profile is None:
            profile = ResidencyProfile(rdd_id)
            profile._last_t_ns = t_ns
            self.profiles[rdd_id] = profile
        return profile

    def _sample(self, space: str, t_ns: float, delta: int) -> None:
        """Record an occupancy change of one space."""
        value = self._space_bytes.get(space, 0) + delta
        self._space_bytes[space] = value
        timeline = self.timelines.setdefault(space, [])
        if timeline and timeline[-1][0] == t_ns:
            timeline[-1] = (t_ns, value)
        else:
            timeline.append((t_ns, value))

    def _on_alloc(self, event: TraceEvent) -> None:
        size = int(event.size)
        self._objects[event.oid] = (size, event.space, event.device, event.rdd_id)
        self._sample(event.space, event.t_ns, size)
        if event.rdd_id is not None:
            profile = self._profile(event.rdd_id, event.t_ns)
            profile.settle(event.t_ns)
            profile.alloc_bytes += size
            profile.adjust(event.device, size)

    def _on_move(self, event: TraceEvent) -> None:
        entry = self._objects.get(event.oid)
        if entry is None:
            return
        size, _, src_device, rdd_id = entry
        self._objects[event.oid] = (size, event.space, event.device, rdd_id)
        self._sample(event.src_space, event.t_ns, -size)
        self._sample(event.space, event.t_ns, size)
        if rdd_id is not None:
            profile = self._profile(rdd_id, event.t_ns)
            profile.settle(event.t_ns)
            profile.adjust(src_device, -size)
            profile.adjust(event.device, size)
            if event.kind == MIGRATE_NVM_TO_DRAM:
                profile.migrations_to_dram += 1
            elif event.kind == MIGRATE_DRAM_TO_NVM:
                profile.migrations_to_nvm += 1

    def _on_free(self, event: TraceEvent) -> None:
        entry = self._objects.pop(event.oid, None)
        if entry is None:
            return
        size, space, device, rdd_id = entry
        self._sample(space, event.t_ns, -size)
        if rdd_id is not None:
            profile = self._profile(rdd_id, event.t_ns)
            profile.settle(event.t_ns)
            profile.freed_bytes += size
            profile.adjust(device, -size)

    # -- results ----------------------------------------------------------

    def top_profiles(self, n: int = 10) -> List[ResidencyProfile]:
        """The ``n`` RDDs with the largest total residency (ties broken
        by RDD id for determinism)."""
        ranked = sorted(
            self.profiles.values(),
            key=lambda p: (-p.total_byte_s(), p.rdd_id),
        )
        return ranked[:n]


def aggregate_events(
    events, end_ns: Optional[float] = None
) -> TraceAggregator:
    """Build a finished aggregator from a recorded event stream."""
    agg = TraceAggregator()
    for event in events:
        agg.observe(event)
    return agg.finish(end_ns)
