"""Memory tags and the MEMORY_BITS object-header encoding (§4.1).

The paper reserves two unused bits in each object header: ``01`` means the
object should live in DRAM, ``10`` in NVM, and ``00`` (the default) means
untagged — such objects follow the ordinary generational life cycle and
are promoted to the NVM part of the old generation if they live long
enough.
"""

from __future__ import annotations

import enum
from typing import Optional

#: Header bit patterns (§4.1).
MEMORY_BITS_NONE = 0b00
MEMORY_BITS_DRAM = 0b01
MEMORY_BITS_NVM = 0b10
#: The fourth (previously unused) pattern: the variable's payload does
#: not live in the object heap at all — it was packed into the
#: serialized off-heap tier.  Never carried by a live heap object
#: (serialized-tier payloads have no per-object headers, that is the
#: point); it exists so the placement vocabulary covers all four states
#: an RDD variable can be in.
MEMORY_BITS_SERIALIZED = 0b11


class MemoryTag(enum.Enum):
    """Placement tag inferred by the static analysis for an RDD variable."""

    DRAM = "dram"
    NVM = "nvm"

    @property
    def bits(self) -> int:
        """The MEMORY_BITS encoding of this tag."""
        return MEMORY_BITS_DRAM if self is MemoryTag.DRAM else MEMORY_BITS_NVM

    @staticmethod
    def from_bits(bits: int) -> Optional["MemoryTag"]:
        """Decode MEMORY_BITS; returns None for the untagged pattern."""
        if bits == MEMORY_BITS_DRAM:
            return MemoryTag.DRAM
        if bits == MEMORY_BITS_NVM:
            return MemoryTag.NVM
        if bits == MEMORY_BITS_NONE:
            return None
        raise ValueError(f"invalid MEMORY_BITS pattern: {bits:#04b}")


class Placement(enum.Enum):
    """The full per-RDD placement decision of the three-way storage
    model: object heap in DRAM, object heap in NVM, or the serialized
    NVM tier (arXiv 2111.10589's axis).  ``UNPLACED`` covers
    ``DISK_ONLY`` and untagged variables.
    """

    DRAM_HEAP = "object-heap-dram"
    NVM_HEAP = "object-heap-nvm"
    SERIALIZED_NVM = "serialized-nvm"
    UNPLACED = "unplaced"

    @property
    def bits(self) -> int:
        """The MEMORY_BITS encoding of this placement."""
        if self is Placement.DRAM_HEAP:
            return MEMORY_BITS_DRAM
        if self is Placement.NVM_HEAP:
            return MEMORY_BITS_NVM
        if self is Placement.SERIALIZED_NVM:
            return MEMORY_BITS_SERIALIZED
        return MEMORY_BITS_NONE

    @property
    def in_object_heap(self) -> bool:
        """Whether this placement keeps the payload GC-traceable."""
        return self in (Placement.DRAM_HEAP, Placement.NVM_HEAP)


def placement_for(
    tag: Optional[MemoryTag], serialized_tier: bool
) -> Placement:
    """Fold a memory tag and the tier decision into one placement."""
    if serialized_tier:
        return Placement.SERIALIZED_NVM
    if tag is MemoryTag.DRAM:
        return Placement.DRAM_HEAP
    if tag is MemoryTag.NVM:
        return Placement.NVM_HEAP
    return Placement.UNPLACED


def merge_tags(a: Optional[MemoryTag], b: Optional[MemoryTag]) -> Optional[MemoryTag]:
    """Resolve a tag conflict with the paper's priority rule DRAM > NVM.

    "As long as the object receives DRAM from any reference, it is a DRAM
    object" (§4.2.2); an untagged side never overrides a tagged one.
    """
    if a is MemoryTag.DRAM or b is MemoryTag.DRAM:
        return MemoryTag.DRAM
    return a or b
