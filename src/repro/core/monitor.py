"""Dynamic access monitoring (§4.2.2, §5.5).

Panthera's static analysis inserts a JNI call at every transformation /
action call site on an RDD object; the native side increments a hash-table
counter keyed by the RDD.  Major GCs consult the counters to re-assess
placement and reset them.  Table 5 reports the lifetime number of
monitored calls per benchmark and the number of RDDs migrated; §5.5 notes
the monitoring overhead stays below 1 %.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Optional

from repro.memory.machine import Machine


class AccessMonitor:
    """Per-RDD call-frequency table with cheap per-call cost accounting."""

    #: Cost of one instrumented JNI call (crossing into the native method
    #: and bumping a hash-table slot).
    JNI_CALL_NS = 500.0

    def __init__(self, machine: Optional[Machine] = None) -> None:
        self._machine = machine
        self._calls_this_cycle: Dict[int, int] = defaultdict(int)
        self._total_calls = 0
        self._overhead_ns = 0.0

    def record_call(self, rdd_id: int) -> None:
        """One transformation/action was invoked on the RDD."""
        self._calls_this_cycle[rdd_id] += 1
        self._total_calls += 1
        self._overhead_ns += self.JNI_CALL_NS
        if self._machine is not None:
            self._machine.clock.advance(self.JNI_CALL_NS)

    def call_count(self, rdd_id: int) -> int:
        """Calls on the RDD since the last major GC."""
        return self._calls_this_cycle.get(rdd_id, 0)

    def reset(self) -> None:
        """Clear the per-cycle counters ("at the end of each major GC, the
        frequency for each RDD is reset")."""
        self._calls_this_cycle.clear()

    @property
    def total_calls(self) -> int:
        """Lifetime number of monitored calls (Table 5, column 2)."""
        return self._total_calls

    @property
    def overhead_ns(self) -> float:
        """Total monitoring overhead charged so far."""
        return self._overhead_ns

    def snapshot(self) -> Dict[int, int]:
        """Copy of the current per-cycle counters (for tests/reports)."""
        return dict(self._calls_this_cycle)
