"""Static inference of memory tags (§3).

The analysis assigns each persisted (or actioned) RDD variable a DRAM or
NVM tag from its def/use behaviour relative to the program's loops:

* A variable *defined* in each iteration of a loop leaves its old
  instances cached-but-unused (RDDs are immutable), so it is tagged NVM.
* A variable that is *used-only* (never defined) in some loop that
  follows or contains its materialisation point is tagged DRAM.
* Only loops at or after the materialisation point count — behaviour
  before an RDD exists is irrelevant (``ranks`` in PageRank).
* ``OFF_HEAP`` persist levels translate directly to NVM; ``DISK_ONLY``
  carries no memory tag.
* A program with no loops tags everything NVM; and if *all* persisted
  variables end up NVM, every tag is flipped to DRAM so DRAM is not left
  idle ("first place RDDs in DRAM; once DRAM is exhausted the rest go to
  NVM").
* ``unpersist`` is ignored — the paper's analysis has no support for it,
  which is precisely why the GraphX programs rely on dynamic migration
  (§5.5 / Table 5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.core.tags import MemoryTag, Placement, placement_for
from repro.spark.program import (
    ActionStmt,
    AssignStmt,
    Expr,
    LoopStmt,
    Program,
    Stmt,
    UnpersistStmt,
    VarRef,
)
from repro.spark.storage import StorageLevel


@dataclass
class LoopInfo:
    """One loop's position span and the variables it defines/uses."""

    start: int
    end: int
    defs: Set[str] = field(default_factory=set)
    uses: Set[str] = field(default_factory=set)


@dataclass
class MaterializationPoint:
    """One persist call or action on a variable."""

    var: str
    position: int
    level: Optional[StorageLevel]  # None for actions


@dataclass
class StaticAnalysis:
    """The analysis result.

    Attributes:
        tags: variable -> inferred tag (None for DISK_ONLY).
        rationale: human-readable explanation per variable.
        flipped: whether the all-NVM -> all-DRAM rule fired.
        loops: the loop structure the analysis saw.
        placements: variable -> the three-way storage decision
            (object-heap-DRAM / object-heap-NVM / serialized-NVM),
            folding the tag inference with the live ``SERIALIZED_TIER``
            routing of the variable's persist level.
        ser_candidates: variables the analysis marks
            serialization-friendly — persisted, taggable and
            defined-per-iteration (the cold write-once-read-once shape
            where dropping GC tracing beats paying deserialisation,
            arXiv 2111.10589).  Advisory: the decision stays with the
            developer-written storage level.
        tier_inactive: variables whose persist level *would* route to
            the serialized tier, reported with their legacy object-heap
            placement because ``SERIALIZED_TIER`` is off.
    """

    tags: Dict[str, Optional[MemoryTag]]
    rationale: Dict[str, str]
    flipped: bool
    loops: List[LoopInfo]
    placements: Dict[str, Placement] = field(default_factory=dict)
    ser_candidates: Set[str] = field(default_factory=set)
    tier_inactive: Set[str] = field(default_factory=set)

    def tag_of(self, var: str) -> Optional[MemoryTag]:
        """Tag for one variable (None if untagged/unknown)."""
        return self.tags.get(var)

    def placement_of(self, var: str) -> Placement:
        """Placement for one variable (UNPLACED if unknown)."""
        return self.placements.get(var, Placement.UNPLACED)


def _expr_uses(expr: Expr) -> Set[str]:
    """Variable names referenced anywhere inside an expression."""
    return {node.name for node in expr.walk() if isinstance(node, VarRef)}


def _expr_persist_levels(expr: Expr) -> List[StorageLevel]:
    """Persist levels attached anywhere inside an expression."""
    return [
        node.persist_level for node in expr.walk() if node.persist_level is not None
    ]


def _collect(
    stmts: List[Stmt],
    position: List[int],
    loops: List[LoopInfo],
    points: List[MaterializationPoint],
    defs: Dict[str, List[int]],
    uses: Dict[str, List[int]],
) -> None:
    """Pre-order walk assigning positions, recording loop spans, def/use
    sites and materialisation points."""
    for stmt in stmts:
        position[0] += 1
        here = position[0]
        if isinstance(stmt, AssignStmt):
            defs.setdefault(stmt.var, []).append(here)
            for name in _expr_uses(stmt.expr):
                uses.setdefault(name, []).append(here)
            for level in _expr_persist_levels(stmt.expr):
                points.append(MaterializationPoint(stmt.var, here, level))
        elif isinstance(stmt, ActionStmt):
            for name in _expr_uses(stmt.expr):
                uses.setdefault(name, []).append(here)
            if isinstance(stmt.expr, VarRef):
                points.append(MaterializationPoint(stmt.expr.name, here, None))
        elif isinstance(stmt, UnpersistStmt):
            pass  # deliberately ignored (§5.5)
        elif isinstance(stmt, LoopStmt):
            loop = LoopInfo(start=here, end=here)
            loops.append(loop)
            _collect(stmt.body, position, loops, points, defs, uses)
            loop.end = position[0]
    # defs/uses inside nested loops are attributed by position; spans of
    # enclosing loops cover them by construction.


def analyze_program(program: Program) -> StaticAnalysis:
    """Run §3's inference over a program IR."""
    loops: List[LoopInfo] = []
    points: List[MaterializationPoint] = []
    defs: Dict[str, List[int]] = {}
    uses: Dict[str, List[int]] = {}
    _collect(program.statements(), [0], loops, points, defs, uses)

    for loop in loops:
        for var, positions in defs.items():
            if any(loop.start < p <= loop.end for p in positions):
                loop.defs.add(var)
        for var, positions in uses.items():
            if any(loop.start < p <= loop.end for p in positions):
                loop.uses.add(var)

    tags: Dict[str, Optional[MemoryTag]] = {}
    rationale: Dict[str, str] = {}
    persisted_taggable: List[str] = []
    fixed: Set[str] = set()
    ser_candidates: Set[str] = set()

    for point in points:
        var = point.var
        if point.level is StorageLevel.OFF_HEAP:
            tags[var] = MemoryTag.NVM
            rationale[var] = "OFF_HEAP translates directly to OFF_HEAP_NVM"
            fixed.add(var)
            continue
        if point.level is not None and not point.level.taggable:
            tags[var] = None
            rationale[var] = "DISK_ONLY carries no memory tag"
            fixed.add(var)
            continue
        inferred, why = _infer_for_point(var, point.position, loops)
        previous = tags.get(var)
        if previous is MemoryTag.DRAM:
            inferred = MemoryTag.DRAM  # any DRAM evidence wins for the var
        if var not in fixed:
            tags[var] = inferred
            rationale[var] = why
        if point.level is not None:
            if var not in persisted_taggable:
                persisted_taggable.append(var)
            if inferred is MemoryTag.NVM:
                # Defined-per-iteration and persisted: the cold shape
                # where the serialized tier's no-tracing win outweighs
                # its per-access deserialisation cost.
                ser_candidates.add(var)

    # Variables pinned by OFF_HEAP/DISK_ONLY do not participate in the
    # flip decision: only genuinely taggable persisted RDDs can "all be
    # NVM".
    persisted_taggable = [v for v in persisted_taggable if v not in fixed]
    flipped = False
    if persisted_taggable and all(
        tags.get(v) is MemoryTag.NVM for v in persisted_taggable
    ):
        flipped = True
        for var in list(tags):
            if var in fixed:
                continue
            tags[var] = MemoryTag.DRAM
            rationale[var] += "; flipped to DRAM (all persisted RDDs were NVM)"

    # Genuine DRAM evidence (used-only in a loop) disqualifies a
    # serialization candidate — hot data should stay object form.  The
    # all-NVM flip does not: a flipped variable is still the cold
    # defined-per-iteration shape.
    if not flipped:
        ser_candidates = {
            v for v in ser_candidates if tags.get(v) is not MemoryTag.DRAM
        }

    # The three-way placement: the developer-written level decides the
    # serialized tier (per the live SERIALIZED_TIER routing); the tag
    # inference decides DRAM-heap vs NVM-heap for everything else.
    from repro.spark.storage import (
        routes_to_serialized_tier,
        serialized_tier_active,
    )

    tier_routed = {
        p.var
        for p in points
        if p.level is not None and serialized_tier_active(p.level)
    }
    # Levels that *would* route to the tier but hit an inactive flag are
    # reported with their legacy object-heap placement, flagged so the
    # report does not silently look like a tier placement decision.
    tier_inactive = {
        p.var
        for p in points
        if p.level is not None and routes_to_serialized_tier(p.level)
    } - tier_routed
    placements = {
        var: placement_for(tag, var in tier_routed)
        for var, tag in tags.items()
    }
    for var in tier_routed:
        rationale[var] += (
            "; placed in the serialized tier (level routes off-heap)"
        )
    for var in tier_inactive:
        rationale[var] += (
            "; level routes to the serialized tier, but SERIALIZED_TIER "
            "is off: legacy object-heap placement"
        )

    return StaticAnalysis(
        tags=tags,
        rationale=rationale,
        flipped=flipped,
        loops=loops,
        placements=placements,
        ser_candidates=ser_candidates,
        tier_inactive=tier_inactive,
    )


@dataclass
class LifetimeAnalysis:
    """The Deca lifetime classification of one program (arXiv 1602.01959).

    Attributes:
        classes: variable -> :class:`~repro.heap.regions.LifetimeClass`
            for every variable the program defines.
        rationale: human-readable explanation per variable.
    """

    classes: Dict[str, "LifetimeClass"]
    rationale: Dict[str, str]

    def class_of(self, var: str):
        """Lifetime class for one variable (None if unknown)."""
        return self.classes.get(var)


def classify_lifetimes(program: Program) -> LifetimeAnalysis:
    """Bucket a program's variables into Deca's lifetime classes.

    The classification runs over the same pre-order walk as the tag
    inference:

    * a variable materialised with a persist level is *job-long* — its
      blocks are cached across stages and (absent unpersist support,
      §5.5) the analysis can only prove death at job end;
    * a variable materialised by actions only is *stage-local* — its
      blocks exist to feed one action's final stage;
    * a variable never materialised is *UDF-ephemeral* — it only ever
      flows through operators as streaming tuples.
    """
    from repro.heap.regions import LifetimeClass

    loops: List[LoopInfo] = []
    points: List[MaterializationPoint] = []
    defs: Dict[str, List[int]] = {}
    uses: Dict[str, List[int]] = {}
    _collect(program.statements(), [0], loops, points, defs, uses)

    persisted = {p.var for p in points if p.level is not None}
    actioned = {p.var for p in points if p.level is None}
    per_iteration = set()
    for loop in loops:
        for var, positions in defs.items():
            if any(loop.start < p <= loop.end for p in positions):
                per_iteration.add(var)

    classes: Dict[str, LifetimeClass] = {}
    rationale: Dict[str, str] = {}
    for var in defs:
        if var in persisted:
            classes[var] = LifetimeClass.JOB
            why = "persisted: blocks outlive their stage, freed at job end"
            if var in per_iteration:
                why += (
                    "; redefined per iteration — superseded regions are "
                    "reclaimed by region-grained eviction under pressure"
                )
        elif var in actioned:
            classes[var] = LifetimeClass.STAGE
            why = (
                "materialised by an action only: blocks die with the "
                "action's final stage"
            )
        else:
            classes[var] = LifetimeClass.EPHEMERAL
            why = (
                "never materialised: flows through operators as "
                "streaming tuples"
            )
        rationale[var] = why
    return LifetimeAnalysis(classes=classes, rationale=rationale)


def _infer_for_point(
    var: str, position: int, loops: List[LoopInfo]
) -> Tuple[MemoryTag, str]:
    """Infer a tag for one materialisation point of one variable."""
    considered = [loop for loop in loops if position <= loop.end]
    if not loops:
        return MemoryTag.NVM, "no loop exists; nothing is repeatedly accessed"
    if not considered:
        return (
            MemoryTag.NVM,
            "no loop follows or contains the materialisation point",
        )
    for loop in considered:
        if var in loop.uses and var not in loop.defs:
            return (
                MemoryTag.DRAM,
                f"used-only in the loop spanning [{loop.start}, {loop.end}]",
            )
    return (
        MemoryTag.NVM,
        "defined in every considered loop (old instances are left unused)",
    )
