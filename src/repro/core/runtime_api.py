"""The Panthera runtime API (§4.2.1 and §4.3).

Three entry points:

* :meth:`PantheraRuntime.rdd_alloc` — the instrumented native call the
  static analysis inserts before every materialisation point: stamps the
  top object's MEMORY_BITS and arms the allocator's tag-wait state so the
  next large array is pretenured into the tagged space.
* :meth:`PantheraRuntime.place_array` — §4.3's first public API: place a
  (non-Spark) data structure's backbone array by tag, for systems like
  Hadoop, Flink or Cassandra whose backbone is a key-value array.
* :meth:`PantheraRuntime.track` / :meth:`record_call` — §4.3's second
  API: register a data structure for dynamic call-frequency monitoring so
  the major GC can migrate it if its access pattern defies static
  prediction.
"""

from __future__ import annotations

from typing import Optional

from repro.core.monitor import AccessMonitor
from repro.core.tags import MemoryTag
from repro.heap.object_model import HeapObject


class PantheraRuntime:
    """The bridge between semantic tags and the heap/GC."""

    def __init__(self, heap, monitor: Optional[AccessMonitor] = None) -> None:
        """Create the runtime.

        Args:
            heap: the :class:`~repro.heap.managed_heap.ManagedHeap`.
            monitor: the access monitor consulted by major GCs (optional;
                without it the dynamic-migration API is a no-op).
        """
        self.heap = heap
        self.monitor = monitor
        self._tracked: set = set()

    # -- §4.2.1: instrumented tag passing ----------------------------------

    def rdd_alloc(self, top: HeapObject, tag: Optional[MemoryTag]) -> None:
        """The native method inserted before each materialisation point.

        Sets the top object's MEMORY_BITS from ``tag`` (so the GC will
        move it to the right space regardless of where it currently is)
        and puts the thread into the wait state for the RDD array.
        """
        if tag is not None:
            top.set_tag(tag)
        self.heap.tag_wait.arm(tag)

    # -- §4.3 API 1: pre-tenuring by tag -----------------------------------

    def place_array(
        self,
        size: int,
        tag: Optional[MemoryTag],
        owner_id: Optional[int] = None,
    ) -> HeapObject:
        """Allocate a backbone array directly into the space ``tag`` names.

        The tag can come from developer annotations or from a framework-
        specific static analysis (the Hadoop HashJoin example of §4.3).
        """
        self.heap.tag_wait.arm(tag)
        return self.heap.allocate_rdd_array(size, owner_id)

    # -- §4.3 API 2: dynamic monitoring -------------------------------------

    def track(self, owner_id: int) -> None:
        """Register a data structure for call-frequency monitoring.

        Tracked structures are *not* pretenured; they are subject to
        dynamic migration by the major GC based on the call counts fed in
        through :meth:`record_call`.
        """
        self._tracked.add(owner_id)

    def is_tracked(self, owner_id: int) -> bool:
        """Whether a data structure is registered for monitoring."""
        return owner_id in self._tracked

    def record_call(self, owner_id: int) -> None:
        """Count one method call on a monitored data structure."""
        if self.monitor is not None:
            self.monitor.record_call(owner_id)
