"""Panthera's core contribution: static tag inference, lineage-based tag
propagation, the runtime tag-passing API and the dynamic access monitor.

The GC-side half of Panthera (eager promotion, split old generation,
card padding) lives in :mod:`repro.gc` as the ``PANTHERA`` placement
policy; this package holds everything that *produces* the semantic
information the GC consumes.

Only leaf modules are re-exported here; import
:mod:`repro.core.static_analysis` and
:mod:`repro.core.lineage_propagation` directly (they depend on the
Spark IR).
"""

from repro.core.monitor import AccessMonitor
from repro.core.tags import (
    MEMORY_BITS_DRAM,
    MEMORY_BITS_NONE,
    MEMORY_BITS_NVM,
    MemoryTag,
    merge_tags,
)

__all__ = [
    "AccessMonitor",
    "MemoryTag",
    "MEMORY_BITS_DRAM",
    "MEMORY_BITS_NONE",
    "MEMORY_BITS_NVM",
    "merge_tags",
]
