"""Backward tag propagation over the lineage graph (§3, "Dealing with
ShuffledRDD").

ShuffledRDDs are materialised stage inputs that never appear in the user
program, so the static analysis cannot tag them.  At the beginning of
each stage, Panthera scans the lineage graph backward from the lowest
materialised RDD that received a tag and propagates that tag to the
untagged RDDs of the same stage — in particular to the stage's
ShuffledRDD inputs, so the objects they share with their descendants are
never placed inconsistently.  Conflicts resolve as DRAM > NVM.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.tags import MemoryTag, merge_tags
from repro.spark.rdd import RDD, NarrowDependency, ShuffledRDD


def propagate_tags(
    terminal: RDD,
    tag: MemoryTag,
    assignments: Dict[int, Optional[MemoryTag]],
) -> Dict[int, Optional[MemoryTag]]:
    """Propagate ``tag`` backward from ``terminal`` through its stage.

    The walk follows narrow dependencies upward, stops at persisted RDDs
    (they carry their own statically-inferred tag) and at ShuffledRDD
    stage inputs (which receive the tag but are not crossed — the RDDs
    behind a shuffle belong to a previous stage).

    Args:
        terminal: the materialised RDD whose tag seeds the propagation.
        tag: the seed tag.
        assignments: the runtime rdd-id -> tag map, updated in place with
            DRAM > NVM conflict resolution.

    Returns:
        The updated ``assignments`` map.
    """
    assignments[terminal.id] = merge_tags(assignments.get(terminal.id), tag)
    stack = [terminal]
    seen = {terminal.id}
    while stack:
        node = stack.pop()
        for dep in node.deps:
            parent = dep.parent
            if not isinstance(dep, NarrowDependency):
                continue  # never cross a shuffle into the previous stage
            if parent.id in seen:
                continue
            seen.add(parent.id)
            if parent.persist_level is not None and parent is not terminal:
                continue  # persisted RDDs keep their own static tag
            assignments[parent.id] = merge_tags(assignments.get(parent.id), tag)
            if isinstance(parent, ShuffledRDD):
                continue  # the stage input: tag it, stop walking
            stack.append(parent)
    return assignments
