"""``repro bench``: the simulator's wall-clock benchmark harness.

The pytest-benchmark suite under ``benchmarks/`` is great for interactive
work but awkward as a regression gate: its output is a terminal table and
its statistics vary with plugin versions.  This module runs the same
stack programmatically and writes one machine-readable JSON document —
``BENCH_<date>.json`` — with, per benchmark, the best-round wall time and,
per experiment, wall seconds, simulated seconds and the
simulated-seconds-per-wall-second throughput.  Peak RSS for the whole run
rides along.  ``scripts/bench_compare.py`` diffs two such documents and
fails on regressions beyond a tolerance.

Timing protocol: each microbenchmark runs ``rounds`` rounds of ``inner``
back-to-back calls and reports the *best* round (minimum is the standard
estimator for "how fast can this go" under scheduler noise).  The working
stack is rebuilt per round so GC state cannot accumulate across rounds.
"""

from __future__ import annotations

import datetime as _dt
import json
import platform
import resource
import sys
import time
from typing import Any, Callable, Dict, List, Optional

from repro.config import MiB, PolicyName, SystemConfig
from repro.core.monitor import AccessMonitor
from repro.core.static_analysis import analyze_program
from repro.gc.collector import Collector
from repro.gc.policies import make_policy
from repro.harness.configs import paper_config
from repro.harness.experiment import run_experiment
from repro.heap.layout import HEAP_BASE, young_span_bytes
from repro.heap.managed_heap import ManagedHeap
from repro.heap.object_model import ObjKind
from repro.memory.machine import Machine
from repro.workloads.pagerank import build_pagerank

SCHEMA_VERSION = 1


class BenchStack:
    """A minimal machine + heap + collector bundle for microbenchmarks.

    Shared with ``benchmarks/test_simulator_perf.py`` so the pytest suite
    and ``repro bench`` measure exactly the same setup.
    """

    def __init__(self, policy: PolicyName) -> None:
        heap = 48 * MiB
        dram = heap if policy is PolicyName.DRAM_ONLY else heap // 3
        config = SystemConfig(
            heap_bytes=heap,
            dram_bytes=dram,
            nvm_bytes=heap - dram,
            policy=policy,
            interleave_chunk_bytes=MiB,
            large_array_threshold=64 * 1024,
        )
        self.machine = Machine(config)
        self.policy = make_policy(config)
        old = self.policy.build_old_spaces(HEAP_BASE + young_span_bytes(config))
        self.heap = ManagedHeap(
            config, self.machine, old, card_padding=self.policy.card_padding
        )
        self.collector = Collector(
            self.heap, self.machine, self.policy, monitor=AccessMonitor()
        )


def make_stack(policy: PolicyName) -> BenchStack:
    """Build one microbenchmark stack (pytest suite entry point)."""
    return BenchStack(policy)


# -- microbenchmark bodies -------------------------------------------------
#
# Each setup returns a zero-argument callable; one call is one iteration.


def setup_ephemeral_churn() -> Callable[[], None]:
    """64 x 256 KiB short-lived allocations (drives minor-GC frequency)."""
    stack = make_stack(PolicyName.PANTHERA)

    def churn() -> None:
        for _ in range(64):
            stack.heap.allocate_ephemeral(256 * 1024)

    return churn


def setup_minor_gc() -> Callable[[], None]:
    """One scavenge over 32 rooted 64 KiB objects plus 1 MiB of churn."""
    stack = make_stack(PolicyName.PANTHERA)
    for _ in range(32):
        obj = stack.heap.new_object(ObjKind.DATA, 64 * 1024)
        stack.heap.add_root(obj)

    def collect() -> None:
        stack.heap.allocate_ephemeral(MiB)
        stack.collector.collect_minor()

    return collect


def setup_major_gc() -> Callable[[], None]:
    """One full GC over 16 x 256 KiB RDD arrays (half rooted)."""
    stack = make_stack(PolicyName.PANTHERA)
    for i in range(16):
        array = stack.heap.allocate_rdd_array(256 * 1024, rdd_id=i)
        if i % 2 == 0:
            stack.heap.add_root(array)

    return stack.collector.collect_major


def setup_static_analysis() -> Callable[[], None]:
    """The §3 static analysis over a small PageRank program."""
    spec = build_pagerank(scale=0.02, iterations=10)

    def analyze() -> None:
        analyze_program(spec.program)

    return analyze


#: name -> (setup, inner iterations per round)
MICRO_BENCHES: Dict[str, Any] = {
    "micro.ephemeral_churn": (setup_ephemeral_churn, 20),
    "micro.minor_gc": (setup_minor_gc, 20),
    "micro.major_gc": (setup_major_gc, 50),
    "micro.static_analysis": (setup_static_analysis, 20),
}

#: (workload, policy) cells measured as end-to-end experiments.
EXPERIMENT_CELLS = [
    ("PR", PolicyName.PANTHERA),
    ("PR", PolicyName.DRAM_ONLY),
    ("CC", PolicyName.PANTHERA),
]
QUICK_EXPERIMENT_CELLS = [("PR", PolicyName.PANTHERA)]
EXPERIMENT_SCALE = 0.02
EXPERIMENT_ITERATIONS = 3


def run_micro_bench(
    name: str,
    setup: Callable[[], Callable[[], None]],
    inner: int,
    rounds: int,
) -> Dict[str, Any]:
    """Measure one microbenchmark; returns its result record."""
    best_s = None
    total_s = 0.0
    for _ in range(rounds):
        fn = setup()
        t0 = time.perf_counter()
        for _ in range(inner):
            fn()
        round_s = time.perf_counter() - t0
        total_s += round_s
        if best_s is None or round_s < best_s:
            best_s = round_s
    return {
        "name": name,
        "kind": "micro",
        "rounds": rounds,
        "inner": inner,
        "best_round_s": best_s,
        "total_s": total_s,
        "per_iter_us": best_s / inner * 1e6,
    }


def run_experiment_bench(workload: str, policy: PolicyName) -> Dict[str, Any]:
    """Measure one end-to-end experiment cell; returns its record."""
    config = paper_config(64, 1 / 3, policy, EXPERIMENT_SCALE)
    t0 = time.perf_counter()
    result = run_experiment(
        workload,
        config,
        scale=EXPERIMENT_SCALE,
        workload_kwargs={"iterations": EXPERIMENT_ITERATIONS},
    )
    wall_s = time.perf_counter() - t0
    return {
        "name": f"experiment.{workload}.{policy.value}",
        "kind": "experiment",
        "wall_s": wall_s,
        "sim_s": result.elapsed_s,
        "sim_per_wall": result.elapsed_s / wall_s if wall_s > 0 else 0.0,
        "minor_gcs": result.minor_gcs,
        "major_gcs": result.major_gcs,
    }


def peak_rss_kb() -> int:
    """Peak resident set size of this process, in KiB."""
    return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)


def run_bench_suite(
    quick: bool = False,
    rounds: Optional[int] = None,
    log: Optional[Callable[[str], None]] = None,
) -> Dict[str, Any]:
    """Run the full benchmark suite; returns the JSON-ready document."""
    emit = log or (lambda _line: None)
    rounds = rounds or (3 if quick else 5)
    records: List[Dict[str, Any]] = []
    for name, (setup, inner) in MICRO_BENCHES.items():
        record = run_micro_bench(name, setup, inner, rounds)
        records.append(record)
        emit(
            f"  {record['name']:28s} {record['per_iter_us']:9.1f} us/iter "
            f"({rounds} rounds x {inner})"
        )
    cells = QUICK_EXPERIMENT_CELLS if quick else EXPERIMENT_CELLS
    for workload, policy in cells:
        record = run_experiment_bench(workload, policy)
        records.append(record)
        emit(
            f"  {record['name']:28s} {record['wall_s']:9.2f} s wall, "
            f"{record['sim_s']:.2f} s simulated "
            f"({record['sim_per_wall']:.2f} sim-s/wall-s)"
        )
    return {
        "schema": SCHEMA_VERSION,
        "created": _dt.datetime.now(_dt.timezone.utc).isoformat(),
        "quick": quick,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "peak_rss_kb": peak_rss_kb(),
        "benchmarks": records,
    }


def default_output_path() -> str:
    """``BENCH_<date>.json`` in the current directory."""
    return f"BENCH_{_dt.date.today().isoformat()}.json"


def write_bench_report(document: Dict[str, Any], path: str) -> None:
    """Write one suite document as stable, diff-friendly JSON."""
    with open(path, "w") as fh:
        json.dump(document, fh, indent=2, sort_keys=True)
        fh.write("\n")


# -- baseline comparison ---------------------------------------------------

#: metric compared per benchmark kind (lower is better for both).
_COMPARE_METRIC = {"micro": "per_iter_us", "experiment": "wall_s"}


class CompareReport:
    """Outcome of diffing two benchmark documents."""

    __slots__ = ("lines", "regressions", "improvements")

    def __init__(self) -> None:
        self.lines: List[str] = []
        self.regressions: List[str] = []
        self.improvements: List[str] = []


def compare_documents(
    baseline: Dict[str, Any],
    current: Dict[str, Any],
    tolerance: float = 0.20,
) -> CompareReport:
    """Diff two suite documents benchmark-by-benchmark.

    A benchmark regresses when its metric (per-iteration time for micros,
    wall time for experiments) exceeds the baseline by more than
    ``tolerance``.  Wall-clock baselines are machine-specific, so gate
    hard only against a baseline produced on comparable hardware; CI
    uses ``--advisory`` on pull requests for exactly that reason.
    """
    report = CompareReport()
    base_by_name = {b["name"]: b for b in baseline.get("benchmarks", [])}
    for record in current.get("benchmarks", []):
        name = record["name"]
        metric = _COMPARE_METRIC.get(record.get("kind", ""), None)
        base = base_by_name.pop(name, None)
        if metric is None or base is None or metric not in base:
            report.lines.append(f"{name}: no baseline (skipped)")
            continue
        old = float(base[metric])
        new = float(record[metric])
        if old <= 0:
            report.lines.append(f"{name}: unusable baseline (skipped)")
            continue
        ratio = new / old
        delta = (ratio - 1.0) * 100.0
        verdict = "ok"
        if ratio > 1.0 + tolerance:
            verdict = "REGRESSION"
            report.regressions.append(name)
        elif ratio < 1.0 - tolerance:
            verdict = "improved"
            report.improvements.append(name)
        report.lines.append(
            f"{name}: {old:.4g} -> {new:.4g} {metric} "
            f"({delta:+.1f}%) {verdict}"
        )
    for name in base_by_name:
        report.lines.append(f"{name}: missing from current run")
    if report.regressions:
        report.lines.append(
            f"{len(report.regressions)} regression(s) beyond "
            f"{tolerance:.0%}: {', '.join(report.regressions)}"
        )
    else:
        report.lines.append(f"no regressions beyond {tolerance:.0%}")
    return report


def main(argv: Optional[List[str]] = None) -> int:  # pragma: no cover
    """Standalone entry point (``python -m repro.bench``)."""
    from repro.cli import main as cli_main

    return cli_main(["bench"] + list(argv or sys.argv[1:]))


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
