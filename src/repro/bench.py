"""``repro bench``: the simulator's wall-clock benchmark harness.

The pytest-benchmark suite under ``benchmarks/`` is great for interactive
work but awkward as a regression gate: its output is a terminal table and
its statistics vary with plugin versions.  This module runs the same
stack programmatically and writes one machine-readable JSON document —
``BENCH_<date>.json`` — with, per benchmark, the best-round wall time and,
per experiment, wall seconds, simulated seconds and the
simulated-seconds-per-wall-second throughput.  Peak RSS for the whole run
rides along.  ``scripts/bench_compare.py`` diffs two such documents and
fails on regressions beyond a tolerance.

Timing protocol: each microbenchmark runs ``rounds`` rounds of ``inner``
back-to-back calls and reports the *best* round (minimum is the standard
estimator for "how fast can this go" under scheduler noise).  The working
stack is rebuilt per round so GC state cannot accumulate across rounds.
"""

from __future__ import annotations

import datetime as _dt
import gc as _gc
import json
import platform
import resource
import sys
import time
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.config import DeviceKind, MiB, PolicyName, SystemConfig
from repro.core.monitor import AccessMonitor
from repro.core.static_analysis import analyze_program
from repro.gc.charging import ChargeAccumulator
from repro.gc.collector import Collector
from repro.gc.policies import make_policy
from repro.harness.configs import paper_config
from repro.harness.experiment import run_experiment
from repro.heap.layout import HEAP_BASE, young_span_bytes
from repro.heap.managed_heap import ManagedHeap
from repro.heap.object_model import ObjKind
from repro.memory.machine import Machine, TrafficSet
from repro.workloads.pagerank import build_pagerank

SCHEMA_VERSION = 1


class BenchStack:
    """A minimal machine + heap + collector bundle for microbenchmarks.

    Shared with ``benchmarks/test_simulator_perf.py`` so the pytest suite
    and ``repro bench`` measure exactly the same setup.
    """

    def __init__(self, policy: PolicyName) -> None:
        heap = 48 * MiB
        dram = heap if policy is PolicyName.DRAM_ONLY else heap // 3
        config = SystemConfig(
            heap_bytes=heap,
            dram_bytes=dram,
            nvm_bytes=heap - dram,
            policy=policy,
            interleave_chunk_bytes=MiB,
            large_array_threshold=64 * 1024,
        )
        self.machine = Machine(config)
        self.policy = make_policy(config)
        old = self.policy.build_old_spaces(HEAP_BASE + young_span_bytes(config))
        self.heap = ManagedHeap(
            config, self.machine, old, card_padding=self.policy.card_padding
        )
        self.collector = Collector(
            self.heap, self.machine, self.policy, monitor=AccessMonitor()
        )


def make_stack(policy: PolicyName) -> BenchStack:
    """Build one microbenchmark stack (pytest suite entry point)."""
    return BenchStack(policy)


# -- microbenchmark bodies -------------------------------------------------
#
# Each setup returns a zero-argument callable; one call is one iteration.


def setup_ephemeral_churn() -> Callable[[], None]:
    """64 x 256 KiB short-lived allocations (drives minor-GC frequency)."""
    stack = make_stack(PolicyName.PANTHERA)

    def churn() -> None:
        for _ in range(64):
            stack.heap.allocate_ephemeral(256 * 1024)

    return churn


def setup_minor_gc() -> Callable[[], None]:
    """One scavenge over 32 rooted 64 KiB objects plus 1 MiB of churn."""
    stack = make_stack(PolicyName.PANTHERA)
    for _ in range(32):
        obj = stack.heap.new_object(ObjKind.DATA, 64 * 1024)
        stack.heap.add_root(obj)

    def collect() -> None:
        stack.heap.allocate_ephemeral(MiB)
        stack.collector.collect_minor()

    return collect


def setup_major_gc() -> Callable[[], None]:
    """One full GC over 16 x 256 KiB RDD arrays (half rooted)."""
    stack = make_stack(PolicyName.PANTHERA)
    for i in range(16):
        array = stack.heap.allocate_rdd_array(256 * 1024, rdd_id=i)
        if i % 2 == 0:
            stack.heap.add_root(array)

    return stack.collector.collect_major


def setup_charge_trace() -> Callable[[], None]:
    """Bulk visit charging over 4 096 eden objects plus 64 old-gen RDD
    arrays — the mark/trace shape of the cost plane.  Measures whichever
    plane ``VECTORISED_COST_PLANE`` selects, so an off/on pair of runs
    is the A/B speedup measurement (see docs/PERF.md)."""
    stack = make_stack(PolicyName.PANTHERA)
    objs = [stack.heap.new_object(ObjKind.DATA, 256) for _ in range(4096)]
    objs.extend(
        stack.heap.allocate_rdd_array(128 * 1024, rdd_id=i) for i in range(64)
    )

    def charge() -> None:
        charges = ChargeAccumulator(TrafficSet())
        charges.visit_all(objs)
        charges.flush()

    return charge


def setup_charge_rows() -> Callable[[], None]:
    """Wave settling of 256 single-device accesses — the shuffle-wave
    shape of the cost plane.  The vectorised plane settles them through
    ``Machine.run_rows``; the scalar plane replays one ``access()`` call
    per row (the two are byte-identical; this measures the difference in
    wall time)."""
    from repro.gc import charging as _charging

    stack = make_stack(PolicyName.PANTHERA)
    machine = stack.machine
    rows = [
        (DeviceKind.DISK, 64 * 1024.0, 0.0, 0, 0, 500.0),
        (DeviceKind.DRAM, 0.0, 48 * 1024.0, 0, 0, 0.0),
        (DeviceKind.DRAM, 0.0, 0.0, 24, 0, 300.0),
        (DeviceKind.NVM, 16 * 1024.0, 8 * 1024.0, 0, 4, 200.0),
    ] * 64

    def settle() -> None:
        if _charging.VECTORISED_COST_PLANE:
            machine.run_rows(rows, threads=8)
            return
        access = machine.access
        for device, rb, wb, rr, rw, cpu in rows:
            access(
                device,
                read_bytes=rb,
                write_bytes=wb,
                random_reads=rr,
                random_writes=rw,
                threads=8,
                cpu_ns=cpu,
            )

    return settle


def setup_static_analysis() -> Callable[[], None]:
    """The §3 static analysis over a small PageRank program."""
    spec = build_pagerank(scale=0.02, iterations=10)

    def analyze() -> None:
        analyze_program(spec.program)

    return analyze


def setup_ser_roundtrip() -> Callable[[], None]:
    """Pack + unpack one 4096-record numeric partition through the
    serialized tier's column-batch data plane (the columnar fast path;
    see :mod:`repro.spark.serialized`)."""
    from repro.spark.serialized import SerializedColumnBatch

    records = [(i, float(i) * 0.5) for i in range(4096)]

    def roundtrip() -> None:
        SerializedColumnBatch.pack(records).unpack()

    return roundtrip


def setup_columnar_kernel() -> Callable[[], None]:
    """The columnar plane's hot path over one 4096-record numeric
    partition: pack into a :class:`~repro.spark.columnar.ColumnBatch`,
    run the grouped vector+count fold kernel (the KM/LR/NB aggregation
    shape) and split the fold across shuffle buckets."""
    from repro.spark import columnar as _columnar
    from repro.spark.partition import HashPartitioner

    records = [
        (i % 64, ((0.5 * i, -0.25 * i, 1.0 + i), 1)) for i in range(4096)
    ]
    part = HashPartitioner(8)
    kernel = _columnar.make_vec_count_merge_kernel()

    def run() -> None:
        batch = _columnar.ColumnBatch.from_records(records)
        folded = kernel(batch)
        _columnar.split_batch(folded, part)

    return run


#: name -> (setup, inner iterations per round)
MICRO_BENCHES: Dict[str, Any] = {
    "micro.ephemeral_churn": (setup_ephemeral_churn, 20),
    "micro.minor_gc": (setup_minor_gc, 20),
    "micro.major_gc": (setup_major_gc, 50),
    "micro.charge_trace": (setup_charge_trace, 50),
    "micro.charge_rows": (setup_charge_rows, 20),
    "micro.static_analysis": (setup_static_analysis, 20),
    "micro.ser_roundtrip": (setup_ser_roundtrip, 50),
    "micro.columnar_kernel": (setup_columnar_kernel, 50),
}

#: (workload, policy) cells measured as end-to-end experiments.  The
#: ``deca`` cells are newer than some committed baselines — the compare
#: gate reports them as advisory "new key" entries until the baseline
#: is refreshed.
EXPERIMENT_CELLS = [
    ("PR", PolicyName.PANTHERA),
    ("PR", PolicyName.DRAM_ONLY),
    ("CC", PolicyName.PANTHERA),
    ("PR", PolicyName.DECA),
    ("KM", PolicyName.DECA),
]
QUICK_EXPERIMENT_CELLS = [("PR", PolicyName.PANTHERA)]
#: The serialized-tier A/B pair: the same KM cell persisted in the
#: object heap vs the serialized off-heap tier.  ``micro.ser_roundtrip``
#: times the pack/unpack data plane; these time the full cost path
#: (serialize-on-persist and deserialize-on-access charging included).
SERTIER_CELLS = [
    ("sertier.KM.object", "MEMORY_ONLY"),
    ("sertier.KM.serialized", "MEMORY_ONLY_SER"),
]
#: The columnar-plane A/B pair: the same KM cell executed with
#: whole-batch kernels (``COLUMNAR_DATA_PLANE`` on) vs per-record UDF
#: calls (flag off).  Simulated results are byte-identical by the house
#: rule; the wall-time gap is the speedup the plane buys.
COLUMNAR_CELLS = [
    ("experiment.KM.columnar", True),
    ("experiment.KM.record", False),
]
#: Experiment cells run at paper scale 1.0 (up from 0.02 before the
#: data-plane overhaul) so the gate actually measures per-record costs.
EXPERIMENT_SCALE = 1.0
EXPERIMENT_ITERATIONS = 3
#: Experiment cells report the best of this many back-to-back runs —
#: the same estimator the micros use.  Cells run 40-90 ms, where single
#: shots carry 10-20% scheduler noise; best-of-3 is stable to ~2%.
#: Rounds after the first also see the process-level dataset memo warm,
#: which is representative of how cells run inside a suite.
EXPERIMENT_ROUNDS = 3

#: Cluster suite: (name suffix, executors, max jobs) cells replaying the
#: same seeded mixed-workload traffic plan at two cluster sizes.  The
#: wall time gates the whole lane path — executor reuse, the shared
#: shuffle service overlay and the per-job delta accounting — the way
#: the experiment cells gate ``run_experiment``.
CLUSTER_CELLS = [("e2", 2, 6), ("e4", 4, 6)]
#: Quick mode runs a subset of the same cells (identical plans, so the
#: records stay comparable against the committed full-suite baseline).
QUICK_CLUSTER_CELLS = [("e2", 2, 6)]
CLUSTER_SEED = 7
CLUSTER_BASE_SCALE = 0.02
CLUSTER_DURATION_S = 30.0
CLUSTER_RATE = 0.3
#: Best-of rounds per cluster cell (each cell is a multi-second replay;
#: same estimator as the experiment cells).
CLUSTER_ROUNDS = 2

#: ``--scale-sweep``: cells and scales probing that wall time grows
#: near-linearly with input size (the scale-10 evidence the ROADMAP's
#: full Table-4 matrix rests on).
SWEEP_CELLS = [("PR", PolicyName.PANTHERA), ("CC", PolicyName.PANTHERA)]
SWEEP_SCALES = (0.02, 0.1, 0.5, 1.0, 5.0, 10.0, 100.0)
QUICK_SWEEP_SCALES = (0.02, 0.1, 1.0, 5.0)
#: Best-of rounds per sweep point.  Sweep cells are single experiments
#: (40 ms - 1 s); the linearity verdict divides two of them, so both
#: ends need the best-of treatment or scheduler noise alone can push
#: the ratio over the bound.
SWEEP_ROUNDS = 2
#: Allowed growth of per-record wall cost between scale 1 and the
#: sweep's top scale before the sweep is declared non-linear.
SWEEP_LINEARITY_BOUND = 1.5
#: The bound applied when the sweep tops out beyond scale 10.  At scale
#: 100 the working set (~800 MiB) falls out of the host's last-level
#: cache, and profiles show a *uniform* per-operation inflation (~2-2.6x
#: on dict probes and list appends, with call counts growing exactly
#: 10x) rather than any super-linear call growth.  A 3.0x allowance
#: absorbs that memory-hierarchy factor while still catching algorithmic
#: regressions, which at 100x input dwarf it.
SWEEP_LINEARITY_BOUND_XL = 3.0
#: Sweeps topping out beyond this scale use the XL bound.
SWEEP_XL_SCALE = 10.0


def run_micro_bench(
    name: str,
    setup: Callable[[], Callable[[], None]],
    inner: int,
    rounds: int,
) -> Dict[str, Any]:
    """Measure one microbenchmark; returns its result record."""
    best_s = None
    total_s = 0.0
    for _ in range(rounds):
        fn = setup()
        t0 = time.perf_counter()
        for _ in range(inner):
            fn()
        round_s = time.perf_counter() - t0
        total_s += round_s
        if best_s is None or round_s < best_s:
            best_s = round_s
    return {
        "name": name,
        "kind": "micro",
        "rounds": rounds,
        "inner": inner,
        "best_round_s": best_s,
        "total_s": total_s,
        "per_iter_us": best_s / inner * 1e6,
    }


def _timed_best_of(fn: Callable[[], Any], rounds: int):
    """Best-of-``rounds`` wall time of ``fn`` with CPython's cyclic GC
    paused during each timed region (the ``timeit`` convention: cycle
    collection triggered by the simulator's garbage is scheduler noise
    here, not workload cost).  Returns ``(best_wall_s, best_result)``."""
    best_wall = None
    best_result = None
    for _ in range(max(1, rounds)):
        was_enabled = _gc.isenabled()
        _gc.disable()
        try:
            t0 = time.perf_counter()
            result = fn()
            wall = time.perf_counter() - t0
        finally:
            if was_enabled:
                _gc.enable()
        if best_wall is None or wall < best_wall:
            best_wall = wall
            best_result = result
    return best_wall, best_result


def run_experiment_bench(
    workload: str, policy: PolicyName, rounds: int = EXPERIMENT_ROUNDS
) -> Dict[str, Any]:
    """Measure one end-to-end experiment cell; returns its record.

    Runs the cell ``rounds`` times and reports the best round, matching
    the micro protocol (simulated results are identical every round, so
    only the timing varies).
    """
    config = paper_config(64, 1 / 3, policy, EXPERIMENT_SCALE)
    best_wall, result = _timed_best_of(
        lambda: run_experiment(
            workload,
            config,
            scale=EXPERIMENT_SCALE,
            workload_kwargs={"iterations": EXPERIMENT_ITERATIONS},
        ),
        rounds,
    )
    return {
        "name": f"experiment.{workload}.{policy.value}",
        "kind": "experiment",
        "rounds": max(1, rounds),
        "wall_s": best_wall,
        "sim_s": result.elapsed_s,
        "sim_per_wall": result.elapsed_s / best_wall if best_wall > 0 else 0.0,
        "minor_gcs": result.minor_gcs,
        "major_gcs": result.major_gcs,
    }


def run_sertier_bench(
    name: str, level_name: str, rounds: int = EXPERIMENT_ROUNDS
) -> Dict[str, Any]:
    """Measure one serialized-tier A/B cell (KM with an explicit persist
    level); returns its record.  Same protocol as the experiment cells."""
    from repro.spark.storage import StorageLevel

    config = paper_config(64, 1 / 3, PolicyName.PANTHERA, EXPERIMENT_SCALE)
    best_wall, result = _timed_best_of(
        lambda: run_experiment(
            "KM",
            config,
            scale=EXPERIMENT_SCALE,
            workload_kwargs={
                "iterations": EXPERIMENT_ITERATIONS,
                "persist_level": StorageLevel(level_name),
            },
        ),
        rounds,
    )
    return {
        "name": name,
        "kind": "experiment",
        "rounds": max(1, rounds),
        "wall_s": best_wall,
        "sim_s": result.elapsed_s,
        "sim_per_wall": result.elapsed_s / best_wall if best_wall > 0 else 0.0,
        "minor_gcs": result.minor_gcs,
        "major_gcs": result.major_gcs,
    }


def run_columnar_bench(
    name: str, enabled: bool, rounds: int = EXPERIMENT_ROUNDS
) -> Dict[str, Any]:
    """Measure one columnar-plane A/B cell (KM with the flag forced);
    returns its record.  Same protocol as the experiment cells."""
    from repro.spark import columnar as _columnar

    config = paper_config(64, 1 / 3, PolicyName.PANTHERA, EXPERIMENT_SCALE)

    def cell():
        saved = _columnar.COLUMNAR_DATA_PLANE
        _columnar.COLUMNAR_DATA_PLANE = enabled
        try:
            return run_experiment(
                "KM",
                config,
                scale=EXPERIMENT_SCALE,
                workload_kwargs={"iterations": EXPERIMENT_ITERATIONS},
            )
        finally:
            _columnar.COLUMNAR_DATA_PLANE = saved

    best_wall, result = _timed_best_of(cell, rounds)
    return {
        "name": name,
        "kind": "experiment",
        "rounds": max(1, rounds),
        "wall_s": best_wall,
        "sim_s": result.elapsed_s,
        "sim_per_wall": result.elapsed_s / best_wall if best_wall > 0 else 0.0,
        "minor_gcs": result.minor_gcs,
        "major_gcs": result.major_gcs,
    }


def run_cluster_bench(
    suffix: str, executors: int, max_jobs: int, rounds: int = CLUSTER_ROUNDS
) -> Dict[str, Any]:
    """Measure one cluster-traffic replay cell; returns its record."""
    from repro.cluster import Cluster, generate_traffic

    plan = generate_traffic(
        seed=CLUSTER_SEED,
        duration_s=CLUSTER_DURATION_S,
        rate_jobs_per_s=CLUSTER_RATE,
        base_scale=CLUSTER_BASE_SCALE,
        max_jobs=max_jobs,
    )
    cluster = Cluster(executors)
    wall_s, report = _timed_best_of(lambda: cluster.run(plan)[0], rounds)
    return {
        "name": f"cluster.mix.{suffix}",
        "kind": "cluster",
        "rounds": max(1, rounds),
        "executors": executors,
        "n_jobs": report.n_jobs,
        "wall_s": wall_s,
        "sim_s": report.makespan_s,
        "sim_per_wall": report.makespan_s / wall_s if wall_s > 0 else 0.0,
        "throughput_jobs_per_s": report.throughput_jobs_per_s,
        "latency_p99_s": report.latency_p99_s,
    }


def _scale_tag(scale: float) -> str:
    """Compact scale label for benchmark names (``0.02``, ``1``, ``10``)."""
    return f"{scale:g}"


def run_sweep_cell(
    workload: str, policy: PolicyName, scale: float
) -> Dict[str, Any]:
    """Measure one scale-sweep point; returns its result record.

    Building the workload up front both yields the record count and
    warms the dataset memo, so every sweep point times the experiment
    itself rather than one cold input generation.
    """
    from repro.workloads.registry import build_workload

    n_records = len(
        build_workload(
            workload, scale=scale, iterations=EXPERIMENT_ITERATIONS
        ).dataset.records
    )
    config = paper_config(64, 1 / 3, policy, scale)
    wall_s, result = _timed_best_of(
        lambda: run_experiment(
            workload,
            config,
            scale=scale,
            workload_kwargs={"iterations": EXPERIMENT_ITERATIONS},
        ),
        SWEEP_ROUNDS,
    )
    return {
        "name": f"sweep.{workload}.{policy.value}.s{_scale_tag(scale)}",
        "kind": "sweep",
        "scale": scale,
        "rounds": SWEEP_ROUNDS,
        "wall_s": wall_s,
        "sim_s": result.elapsed_s,
        "sim_per_wall": result.elapsed_s / wall_s if wall_s > 0 else 0.0,
        "n_records": n_records,
        "wall_us_per_record": wall_s / max(1, n_records) * 1e6,
    }


def run_scale_sweep(
    quick: bool = False,
    log: Optional[Callable[[str], None]] = None,
    scales: Optional[Sequence[float]] = None,
    cells: Optional[Sequence[Any]] = None,
) -> List[Dict[str, Any]]:
    """Run the scale sweep; returns per-scale records plus, per cell, a
    ``sweep_summary`` record asserting near-linear growth.

    Near-linearity compares per-record wall cost at the sweep's top
    scale against the scale closest to 1.0 (for the committed sweep:
    scale 10 vs scale 1); a ratio beyond ``SWEEP_LINEARITY_BOUND`` marks
    the summary ``linear: false``, which ``repro bench --scale-sweep``
    turns into a non-zero exit unless ``--advisory``.
    """
    emit = log or (lambda _line: None)
    scales = tuple(scales if scales is not None else
                   (QUICK_SWEEP_SCALES if quick else SWEEP_SCALES))
    cells = list(cells if cells is not None else SWEEP_CELLS)
    records: List[Dict[str, Any]] = []
    for workload, policy in cells:
        per_scale: List[Dict[str, Any]] = []
        for scale in scales:
            record = run_sweep_cell(workload, policy, scale)
            per_scale.append(record)
            records.append(record)
            emit(
                f"  {record['name']:28s} {record['wall_s']:9.2f} s wall, "
                f"{record['wall_us_per_record']:8.1f} us/record "
                f"({record['sim_per_wall']:.2f} sim-s/wall-s)"
            )
        base = min(per_scale, key=lambda r: abs(r["scale"] - 1.0))
        top = max(per_scale, key=lambda r: r["scale"])
        ratio = (
            top["wall_us_per_record"] / base["wall_us_per_record"]
            if base["wall_us_per_record"] > 0
            else 0.0
        )
        bound = (
            SWEEP_LINEARITY_BOUND_XL
            if top["scale"] > SWEEP_XL_SCALE
            else SWEEP_LINEARITY_BOUND
        )
        summary = {
            "name": f"sweep.{workload}.{policy.value}.linearity",
            "kind": "sweep_summary",
            "base_scale": base["scale"],
            "top_scale": top["scale"],
            "per_record_ratio": ratio,
            "bound": bound,
            "linear": ratio <= bound,
        }
        records.append(summary)
        verdict = "near-linear" if summary["linear"] else "NON-LINEAR"
        emit(
            f"  {summary['name']:28s} per-record cost x{ratio:.2f} from "
            f"scale {_scale_tag(base['scale'])} to "
            f"{_scale_tag(top['scale'])} "
            f"(bound x{bound:.1f}): {verdict}"
        )
    return records


def peak_rss_kb() -> int:
    """Peak resident set size of this process, in KiB."""
    return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)


def _profiled(fn: Callable[[], Any], top: int = 20):
    """Run ``fn`` under :mod:`cProfile`; returns ``(result, report)``
    where ``report`` is the top-``top`` functions by ``tottime``."""
    import cProfile
    import io
    import pstats

    prof = cProfile.Profile()
    prof.enable()
    try:
        result = fn()
    finally:
        prof.disable()
    buf = io.StringIO()
    pstats.Stats(prof, stream=buf).sort_stats("tottime").print_stats(top)
    return result, buf.getvalue()


def run_bench_suite(
    quick: bool = False,
    rounds: Optional[int] = None,
    log: Optional[Callable[[str], None]] = None,
    scale_sweep: bool = False,
    profile: bool = False,
) -> Dict[str, Any]:
    """Run the full benchmark suite; returns the JSON-ready document.

    With ``scale_sweep`` the sweep records (see :func:`run_scale_sweep`)
    are appended to the document after the micro and experiment suites.
    With ``profile`` each suite runs under :mod:`cProfile` and the
    document carries a ``profiles`` map (suite name -> top-20 ``tottime``
    report) so "what's the bottleneck now" is answerable from any run.
    Profiling inflates the timings — never compare a profiled document
    against an unprofiled baseline.
    """
    emit = log or (lambda _line: None)
    rounds = rounds or (3 if quick else 5)
    records: List[Dict[str, Any]] = []
    profiles: Dict[str, str] = {}

    def run_suite(suite_name: str, suite: Callable[[], None]) -> None:
        if profile:
            _, profiles[suite_name] = _profiled(suite)
        else:
            suite()

    def micro_suite() -> None:
        for name, (setup, inner) in MICRO_BENCHES.items():
            record = run_micro_bench(name, setup, inner, rounds)
            records.append(record)
            emit(
                f"  {record['name']:28s} {record['per_iter_us']:9.1f} us/iter "
                f"({rounds} rounds x {inner})"
            )

    def _emit_experiment(record: Dict[str, Any]) -> None:
        emit(
            f"  {record['name']:28s} {record['wall_s']:9.2f} s wall, "
            f"{record['sim_s']:.2f} s simulated "
            f"({record['sim_per_wall']:.2f} sim-s/wall-s)"
        )

    def experiment_suite() -> None:
        cells = QUICK_EXPERIMENT_CELLS if quick else EXPERIMENT_CELLS
        for workload, policy in cells:
            record = run_experiment_bench(workload, policy)
            records.append(record)
            _emit_experiment(record)

    def sertier_suite() -> None:
        for name, level_name in SERTIER_CELLS:
            record = run_sertier_bench(name, level_name)
            records.append(record)
            _emit_experiment(record)

    def columnar_suite() -> None:
        for name, enabled in COLUMNAR_CELLS:
            record = run_columnar_bench(name, enabled)
            records.append(record)
            _emit_experiment(record)

    def cluster_suite() -> None:
        cluster_cells = QUICK_CLUSTER_CELLS if quick else CLUSTER_CELLS
        for suffix, executors, max_jobs in cluster_cells:
            record = run_cluster_bench(suffix, executors, max_jobs)
            records.append(record)
            emit(
                f"  {record['name']:28s} {record['wall_s']:9.2f} s wall, "
                f"{record['n_jobs']} jobs on {executors} executors "
                f"({record['sim_per_wall']:.2f} sim-s/wall-s)"
            )

    run_suite("micro", micro_suite)
    run_suite("experiment", experiment_suite)
    run_suite("sertier", sertier_suite)
    run_suite("columnar", columnar_suite)
    run_suite("cluster", cluster_suite)
    if scale_sweep:
        run_suite(
            "sweep",
            lambda: records.extend(run_scale_sweep(quick=quick, log=log)),
        )
    document = {
        "schema": SCHEMA_VERSION,
        "created": _dt.datetime.now(_dt.timezone.utc).isoformat(),
        "quick": quick,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "peak_rss_kb": peak_rss_kb(),
        "benchmarks": records,
    }
    if profile:
        document["profiles"] = profiles
    return document


def default_output_path() -> str:
    """``BENCH_<date>.json`` in the current directory."""
    return f"BENCH_{_dt.date.today().isoformat()}.json"


def write_bench_report(document: Dict[str, Any], path: str) -> None:
    """Write one suite document as stable, diff-friendly JSON."""
    with open(path, "w") as fh:
        json.dump(document, fh, indent=2, sort_keys=True)
        fh.write("\n")


# -- baseline comparison ---------------------------------------------------

#: metric compared per benchmark kind (lower is better for all).  Sweep
#: points compare wall time like experiments; sweep summaries compare
#: the (machine-independent) per-record growth ratio, so a scaling
#: regression is caught even across different hardware.
_COMPARE_METRIC = {
    "micro": "per_iter_us",
    "experiment": "wall_s",
    "cluster": "wall_s",
    "sweep": "wall_s",
    "sweep_summary": "per_record_ratio",
}


class CompareReport:
    """Outcome of diffing two benchmark documents.

    ``new_keys`` lists benchmarks present in the current run but absent
    from the baseline (e.g. freshly added ``deca.*`` cells before the
    committed baseline is refreshed).  They are advisory: never counted
    as regressions, so a candidate adding suites cannot hard-fail the
    gate against an older baseline.
    """

    __slots__ = ("lines", "regressions", "improvements", "new_keys")

    def __init__(self) -> None:
        self.lines: List[str] = []
        self.regressions: List[str] = []
        self.improvements: List[str] = []
        self.new_keys: List[str] = []


def compare_documents(
    baseline: Dict[str, Any],
    current: Dict[str, Any],
    tolerance: float = 0.20,
) -> CompareReport:
    """Diff two suite documents benchmark-by-benchmark.

    A benchmark regresses when its metric (per-iteration time for micros,
    wall time for experiments) exceeds the baseline by more than
    ``tolerance``.  Wall-clock baselines are machine-specific, so gate
    hard only against a baseline produced on comparable hardware; CI
    uses ``--advisory`` on pull requests for exactly that reason.
    """
    report = CompareReport()
    base_by_name = {b["name"]: b for b in baseline.get("benchmarks", [])}
    for record in current.get("benchmarks", []):
        name = record["name"]
        metric = _COMPARE_METRIC.get(record.get("kind", ""), None)
        base = base_by_name.pop(name, None)
        if base is None:
            report.new_keys.append(name)
            report.lines.append(
                f"{name}: new key, no baseline (advisory, skipped)"
            )
            continue
        if metric is None or metric not in base or metric not in record:
            report.lines.append(f"{name}: no baseline metric (skipped)")
            continue
        old = float(base[metric])
        new = float(record[metric])
        if old <= 0:
            report.lines.append(f"{name}: unusable baseline (skipped)")
            continue
        ratio = new / old
        delta = (ratio - 1.0) * 100.0
        verdict = "ok"
        if ratio > 1.0 + tolerance:
            verdict = "REGRESSION"
            report.regressions.append(name)
        elif ratio < 1.0 - tolerance:
            verdict = "improved"
            report.improvements.append(name)
        report.lines.append(
            f"{name}: {old:.4g} -> {new:.4g} {metric} "
            f"({delta:+.1f}%) {verdict}"
        )
    for name in base_by_name:
        report.lines.append(f"{name}: missing from current run")
    if report.regressions:
        report.lines.append(
            f"{len(report.regressions)} regression(s) beyond "
            f"{tolerance:.0%}: {', '.join(report.regressions)}"
        )
    else:
        report.lines.append(f"no regressions beyond {tolerance:.0%}")
    return report


def main(argv: Optional[List[str]] = None) -> int:  # pragma: no cover
    """Standalone entry point (``python -m repro.bench``)."""
    from repro.cli import main as cli_main

    return cli_main(["bench"] + list(argv or sys.argv[1:]))


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
