"""Command-line interface: run experiments without writing Python.

Examples::

    python -m repro run PR --policy panthera --heap 64 --ratio 0.333 --scale 0.1
    python -m repro compare KM --scale 0.1
    python -m repro analyze PR
    python -m repro list
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.config import PolicyName
from repro.core.static_analysis import analyze_program
from repro.harness.configs import paper_config
from repro.harness.experiment import run_experiment
from repro.harness.report import format_markdown_table, normalize_results, summarize
from repro.spark.storage import StorageLevel
from repro.workloads.registry import WORKLOADS, build_workload

_POLICY_CHOICES = {p.value: p for p in PolicyName}


def _positive_int(text: str) -> int:
    """argparse type for --jobs: an integer >= 1."""
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError("must be >= 1")
    return value


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("workload", help="PR, KM, LR, TC, CC, SSSP or BC")
    parser.add_argument("--heap", type=float, default=64.0, help="heap size in GB")
    parser.add_argument(
        "--ratio", type=float, default=1 / 3, help="DRAM share of physical memory"
    )
    parser.add_argument(
        "--scale", type=float, default=0.1, help="joint data/heap scale factor"
    )
    parser.add_argument(
        "--iterations", type=int, default=None, help="override workload iterations"
    )
    parser.add_argument(
        "--persist",
        choices=sorted(level.value for level in StorageLevel),
        default=None,
        metavar="LEVEL",
        help="override the workload's main persist level (PR and KM; "
        "e.g. MEMORY_ONLY_SER routes to the serialized off-heap tier)",
    )


def _workload_kwargs(args) -> dict:
    kwargs = {}
    if args.iterations:
        kwargs["iterations"] = args.iterations
    if getattr(args, "persist", None):
        kwargs["persist_level"] = StorageLevel(args.persist)
    return kwargs


def _print_trace_report(result, top_n: int = 10, indent: str = "") -> None:
    """Render one result's recorded trace (timeline + residency table)."""
    from repro.trace import render_trace_report

    report = render_trace_report(
        result.trace_events or [], top_n=top_n, end_ns=result.elapsed_s * 1e9
    )
    for line in report.splitlines():
        print(indent + line if line else line)


def cmd_run(args) -> int:
    """``repro run``: one workload under one configuration."""
    policy = _POLICY_CHOICES[args.policy]
    config = paper_config(args.heap, args.ratio, policy, args.scale)
    keep = bool(args.gclog or args.export_bandwidth or args.verify)
    result = run_experiment(
        args.workload,
        config,
        scale=args.scale,
        workload_kwargs=_workload_kwargs(args),
        keep_context=keep,
    )
    print(summarize(result))
    print(f"  mutator: {result.mutator_s:.1f}s  GC: {result.gc_s:.1f}s "
          f"({result.minor_gcs} minor / {result.major_gcs} major)")
    for device, parts in result.energy_by_device.items():
        print(f"  {device} energy: static {parts['static_j']:.1f} J, "
              f"dynamic {parts['dynamic_j']:.1f} J")
    if result.analysis is not None:
        print("  static tags: " + ", ".join(
            f"{var}={tag.value if tag else 'untagged'}"
            for var, tag in result.analysis.tags.items()
        ))
    print(f"  migrated RDDs: {result.migrated_rdds}, "
          f"monitored calls: {result.monitored_calls}")
    if args.gclog:
        from repro.gc.gclog import render_log

        for line in render_log(
            result.context.collector.stats, result.elapsed_s, tail=args.gclog
        ):
            print("  " + line)
    if args.export_json:
        from repro.harness.export import results_to_json

        with open(args.export_json, "w") as fh:
            fh.write(results_to_json({args.workload: result}))
        print(f"  wrote {args.export_json}")
    if args.export_bandwidth:
        from repro.harness.export import bandwidth_series_to_csv

        with open(args.export_bandwidth, "w") as fh:
            fh.write(bandwidth_series_to_csv(result))
        print(f"  wrote {args.export_bandwidth}")
    if args.verify:
        from repro.heap.verify import verify_heap

        problems = verify_heap(result.context.heap)
        print(
            "  heap verification: "
            + ("consistent" if not problems else "; ".join(problems))
        )
        return 1 if problems else 0
    return 0


def cmd_compare(args) -> int:
    """``repro compare``: selected policies side by side."""
    from repro.harness.engine import ExperimentEngine, ExperimentPoint

    names = getattr(args, "policies", None) or [
        "dram-only",
        "unmanaged",
        "panthera",
    ]
    policies = {name: _POLICY_CHOICES[name] for name in names}
    baseline = names[0]
    engine = ExperimentEngine(jobs=getattr(args, "jobs", 1))
    points = [
        ExperimentPoint(
            args.workload,
            paper_config(args.heap, args.ratio, policy, args.scale),
            args.scale,
            workload_kwargs=_workload_kwargs(args),
            trace=bool(getattr(args, "trace", False)),
        )
        for policy in policies.values()
    ]
    results = dict(zip(policies.keys(), engine.run(points)))
    for result in results.values():
        print(summarize(result))
    normalized = normalize_results(results, baseline)
    rows = [
        [name, values["time"], values["energy"]]
        for name, values in normalized.items()
    ]
    print()
    print(
        format_markdown_table(
            ["configuration", "time (norm.)", "energy (norm.)"], rows
        )
    )
    if getattr(args, "trace", False):
        for name, result in results.items():
            print()
            print(f"### trace: {args.workload} [{name}]")
            _print_trace_report(result)
    return 0


def cmd_trace(args) -> int:
    """``repro trace``: record, check and render one run's heap trace."""
    from repro.trace import oracle_check, write_events_jsonl

    policy = _POLICY_CHOICES[args.policy]
    config = paper_config(args.heap, args.ratio, policy, args.scale)
    result = run_experiment(
        args.workload,
        config,
        scale=args.scale,
        workload_kwargs=_workload_kwargs(args),
        keep_context=True,
        trace=True,
    )
    events = result.trace_events or []
    print(summarize(result))
    print()
    _print_trace_report(result, top_n=args.top)
    if args.export_jsonl:
        write_events_jsonl(events, args.export_jsonl)
        print(f"  wrote {args.export_jsonl} ({len(events)} events)")
    if args.check:
        problems = oracle_check(
            result.context.heap, result.context.collector.stats, events
        )
        print(
            "  replay oracle: "
            + ("consistent" if not problems else "; ".join(problems))
        )
        return 1 if problems else 0
    return 0


def _parse_kill(text: str):
    """argparse type for --kill: ``KIND:BOUNDARY[:PARTITION]``."""
    from repro.errors import FaultError
    from repro.faults import KILL_KINDS, KillSpec

    parts = text.split(":")
    if len(parts) not in (2, 3) or parts[0] not in KILL_KINDS:
        raise argparse.ArgumentTypeError(
            f"expected KIND:BOUNDARY[:PARTITION] with KIND in {KILL_KINDS}"
        )
    try:
        boundary = int(parts[1])
        partition = int(parts[2]) if len(parts) == 3 else 0
        return KillSpec(parts[0], boundary, partition)
    except (ValueError, FaultError) as exc:
        raise argparse.ArgumentTypeError(str(exc)) from exc


def _parse_throttle(text: str):
    """argparse type for --throttle: ``START_S:DURATION_S:FACTOR``."""
    from repro.errors import FaultError
    from repro.faults import ThrottleSpec

    parts = text.split(":")
    if len(parts) != 3:
        raise argparse.ArgumentTypeError("expected START_S:DURATION_S:FACTOR")
    try:
        start_s, duration_s, factor = (float(p) for p in parts)
        return ThrottleSpec(start_s * 1e9, duration_s * 1e9, factor)
    except (ValueError, FaultError) as exc:
        raise argparse.ArgumentTypeError(str(exc)) from exc


def _parse_executor_kill(text: str):
    """argparse type for --kill-executor: ``EXECUTOR:BOUNDARY[:JOB]``."""
    from repro.cluster import ExecutorKill
    from repro.errors import FaultError

    parts = text.split(":")
    if len(parts) not in (2, 3):
        raise argparse.ArgumentTypeError("expected EXECUTOR:BOUNDARY[:JOB]")
    try:
        return ExecutorKill(
            executor=int(parts[0]),
            at_boundary=int(parts[1]),
            job_id=int(parts[2]) if len(parts) == 3 else None,
        )
    except (ValueError, FaultError) as exc:
        raise argparse.ArgumentTypeError(str(exc)) from exc


def cmd_cluster(args) -> int:
    """``repro cluster``: replay seeded traffic on a simulated cluster.

    Generates a traffic plan from the seed and knobs, replays it across
    N executors (optionally under a cluster fault plan), and prints the
    throughput / latency / per-tenant utilisation report.
    """
    import json as _json

    from repro.cluster import Cluster, ClusterFaultPlan, generate_traffic

    policy = _POLICY_CHOICES[args.policy]
    plan = generate_traffic(
        seed=args.seed,
        duration_s=args.duration,
        rate_jobs_per_s=args.rate,
        workloads=args.workloads,
        process=args.process,
        tenants=args.tenants,
        base_scale=args.scale,
        diurnal_period_s=args.diurnal_period,
        diurnal_amplitude=args.diurnal_amplitude,
        iterations=args.iterations,
        max_jobs=args.max_jobs,
    )
    if plan.is_empty:
        print("traffic plan is empty; raise --rate or --duration")
        return 2
    print(f"traffic: {plan.describe()}")
    if args.random_kills:
        faults = ClusterFaultPlan.random(
            args.seed,
            executors=args.executors,
            max_boundary=args.max_kill_boundary,
            kills=args.random_kills,
            jobs=len(plan.jobs),
            max_recovery_attempts=args.attempts,
        )
    else:
        faults = ClusterFaultPlan(
            kills=list(args.kill_executor or []),
            max_recovery_attempts=args.attempts,
            seed=args.seed,
        )
    for kill in faults.kills:
        scope = f"job {kill.job_id}" if kill.job_id is not None else "every job"
        print(f"  plan: kill executor {kill.executor} at boundary "
              f"{kill.at_boundary} ({scope})")
    cluster = Cluster(
        args.executors,
        heap_gb=args.heap,
        dram_ratio=args.ratio,
        policy=policy,
    )
    report, _ = cluster.run(plan, faults=faults, jobs=args.jobs)
    for line in report.summary_lines():
        print(line)
    if args.export_json:
        with open(args.export_json, "w") as fh:
            fh.write(report.to_json(indent=2))
            fh.write("\n")
        print(f"  wrote {args.export_json}")
    return 0


def cmd_faults(args) -> int:
    """``repro faults``: inject a fault plan and check convergence.

    Runs the workload twice through one engine — once fault-free, once
    under the plan — and verifies the faulted run's action checksums
    match the clean run's (lineage recovery converged).  Prints the
    measured :class:`~repro.faults.report.FaultReport`.
    """
    import dataclasses
    import json as _json

    from repro.faults import FaultPlan, action_checksums
    from repro.harness.engine import ExperimentEngine, ExperimentPoint

    policy = _POLICY_CHOICES[args.policy]
    config = paper_config(args.heap, args.ratio, policy, args.scale)
    engine = ExperimentEngine(jobs=args.jobs, cache_dir=args.cache_dir)

    def point(plan):
        return ExperimentPoint(
            args.workload,
            config,
            args.scale,
            workload_kwargs=_workload_kwargs(args),
            trace=bool(args.trace),
            faults=plan,
        )

    # Fault-free reference run.  It carries an *empty* plan so the
    # injector counts stage boundaries for us (needed to place random
    # kills) without perturbing anything.
    baseline = engine.run([point(FaultPlan(seed=args.seed))])[0]
    boundaries = baseline.fault_report.boundaries_seen
    print(f"baseline: {summarize(baseline)}")
    print(f"  stage boundaries: {boundaries}")

    if args.random:
        plan = FaultPlan.random(
            args.seed,
            max_boundary=boundaries,
            kills=args.random,
            max_recovery_attempts=args.attempts,
        )
        plan = dataclasses.replace(
            plan,
            throttles=list(args.throttle or []),
            nvm_balloon_fraction=args.balloon,
        )
    else:
        plan = FaultPlan(
            kills=list(args.kill or []),
            throttles=list(args.throttle or []),
            nvm_balloon_fraction=args.balloon,
            max_recovery_attempts=args.attempts,
            seed=args.seed,
        )
    if plan.is_empty:
        print("fault plan is empty; nothing to inject "
              "(use --kill / --throttle / --balloon / --random)")
        return 2
    for kill in plan.kills:
        print(f"  plan: kill {kill.kind} at boundary {kill.at_boundary} "
              f"(partition {kill.partition})")
    for window in plan.throttles:
        print(f"  plan: throttle NVM x{window.factor:g} from "
              f"{window.start_ns / 1e9:.2f}s for "
              f"{window.duration_ns / 1e9:.2f}s")
    if plan.nvm_balloon_fraction:
        print(f"  plan: balloon {plan.nvm_balloon_fraction:.0%} of free NVM")

    faulted = engine.run([point(plan)])[0]
    print(f"faulted:  {summarize(faulted)}")
    report = faulted.fault_report
    for line in report.summary_lines():
        print("  " + line)

    clean_sums = action_checksums(baseline.action_results)
    fault_sums = action_checksums(faulted.action_results)
    diverged = sorted(
        name
        for name in set(clean_sums) | set(fault_sums)
        if clean_sums.get(name) != fault_sums.get(name)
    )
    if diverged:
        print(f"  DIVERGED actions: {', '.join(diverged)}")
    else:
        print(f"  converged: all {len(clean_sums)} action checksums match "
              "the fault-free run")
    if args.trace:
        print()
        _print_trace_report(faulted)
    if args.export_report:
        payload = {
            "workload": args.workload,
            "policy": args.policy,
            "scale": args.scale,
            "plan": plan.to_dict(),
            "report": report.to_dict(),
            "converged": not diverged,
            "diverged_actions": diverged,
            "checksums": fault_sums,
        }
        with open(args.export_report, "w") as fh:
            _json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"  wrote {args.export_report}")
    return 1 if diverged else 0


def cmd_analyze(args) -> int:
    """``repro analyze``: show the §3 static analysis for a workload."""
    spec = build_workload(args.workload, scale=args.scale, **_workload_kwargs(args))
    analysis = analyze_program(spec.program)
    print(f"{spec.name}: {spec.description}")
    for var, tag in analysis.tags.items():
        label = tag.value.upper() if tag else "untagged"
        placement = analysis.placement_of(var).value
        print(
            f"  {var:12s} -> {label:8s} [{placement}] "
            f"{analysis.rationale[var]}"
        )
    if analysis.flipped:
        print("  (all persisted RDDs were NVM: every tag flipped to DRAM)")
    if analysis.ser_candidates:
        names = ", ".join(sorted(analysis.ser_candidates))
        print(f"  serialization candidates (NVM-tagged persists): {names}")
    if analysis.tier_inactive:
        names = ", ".join(sorted(analysis.tier_inactive))
        print(
            "  note: SERIALIZED_TIER is off — serialized-level persists "
            f"stay on the object heap: {names}"
        )
    if getattr(args, "lifetimes", False):
        from repro.core.static_analysis import classify_lifetimes

        lifetime = classify_lifetimes(spec.program)
        print("  Deca lifetime classes:")
        for var, cls in lifetime.classes.items():
            print(
                f"  {var:12s} -> {cls.value:13s} {lifetime.rationale[var]}"
            )
    return 0


def cmd_matrix(args) -> int:
    """``repro matrix``: the full workload x policy matrix."""
    from repro.harness.matrix import matrix_report, run_matrix

    def on_event(event):
        tick = f"[{event.completed}/{event.total}]"
        if event.kind == "start":
            print(f"  {tick} running {event.point.label} ...", flush=True)
        elif event.kind == "cached":
            print(f"  {tick} cached  {event.point.label}", flush=True)
        else:
            print(
                f"  {tick} done    {event.point.label} "
                f"({event.seconds:.1f}s)",
                flush=True,
            )

    from repro.harness.matrix import DEFAULT_POLICIES

    policies = (
        tuple(_POLICY_CHOICES[name] for name in args.policies)
        if getattr(args, "policies", None)
        else DEFAULT_POLICIES
    )
    matrix = run_matrix(
        scale=args.scale,
        heap_gb=args.heap,
        dram_ratio=args.ratio,
        workloads=args.workloads,
        policies=policies,
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        on_event=on_event,
        trace=args.trace,
    )
    print()
    print(matrix_report(matrix, baseline=policies[0].value))
    if args.trace:
        for workload, results in matrix.items():
            for policy, result in results.items():
                print()
                print(f"### trace: {workload} [{policy}]")
                _print_trace_report(result)
    if args.export_json:
        from repro.harness.export import matrix_to_json

        with open(args.export_json, "w") as fh:
            fh.write(matrix_to_json(matrix))
        print(f"  wrote {args.export_json}")
    return 0


def cmd_bench(args) -> int:
    """``repro bench``: run the benchmark suite, write ``BENCH_<date>.json``."""
    from repro import bench

    mode = "quick" if args.quick else "full"
    if args.scale_sweep:
        mode += " + scale-sweep"
    if args.profile:
        mode += " + profile"
    print(f"running the {mode} benchmark suite ...")
    document = bench.run_bench_suite(
        quick=args.quick,
        rounds=args.rounds,
        log=print,
        scale_sweep=args.scale_sweep,
        profile=args.profile,
    )
    path = args.out or bench.default_output_path()
    bench.write_bench_report(document, path)
    print(f"  peak RSS: {document['peak_rss_kb']} KiB")
    print(f"  wrote {path}")
    if args.profile:
        import os as _os

        profile_dir = args.profile_dir
        _os.makedirs(profile_dir, exist_ok=True)
        for suite, report in document.get("profiles", {}).items():
            profile_path = _os.path.join(profile_dir, f"{suite}.txt")
            with open(profile_path, "w") as fh:
                fh.write(report)
            print(f"  wrote {profile_path}")
    failed = False
    non_linear = [
        r["name"]
        for r in document["benchmarks"]
        if r.get("kind") == "sweep_summary" and not r.get("linear", True)
    ]
    if non_linear:
        print(f"  NON-LINEAR scale sweep: {', '.join(non_linear)}")
        failed = not args.advisory
    if args.compare:
        import json as _json

        with open(args.compare) as fh:
            baseline = _json.load(fh)
        report = bench.compare_documents(
            baseline, document, tolerance=args.tolerance
        )
        for line in report.lines:
            print("  " + line)
        if report.regressions and not args.advisory:
            failed = True
    return 1 if failed else 0


def cmd_list(_args) -> int:
    """``repro list``: the Table 4 workloads."""
    for name in sorted(WORKLOADS):
        spec = build_workload(name, scale=0.02)
        print(f"  {name:5s} {spec.description}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for tests/docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Panthera (PLDI 2019) reproduction: run simulated "
        "hybrid-memory experiments.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_parser = sub.add_parser("run", help="run one workload/configuration")
    _add_common(run_parser)
    run_parser.add_argument(
        "--policy",
        choices=sorted(_POLICY_CHOICES),
        default="panthera",
        help="placement policy",
    )
    run_parser.add_argument(
        "--gclog",
        type=int,
        default=0,
        metavar="N",
        help="print the last N GC log lines",
    )
    run_parser.add_argument(
        "--export-json", metavar="PATH", help="write the result as JSON"
    )
    run_parser.add_argument(
        "--export-bandwidth",
        metavar="PATH",
        help="write the Figure 8 bandwidth series as CSV",
    )
    run_parser.add_argument(
        "--verify",
        action="store_true",
        help="verify heap invariants after the run",
    )
    run_parser.set_defaults(fn=cmd_run)

    compare_parser = sub.add_parser(
        "compare", help="run DRAM-only / unmanaged / Panthera side by side"
    )
    _add_common(compare_parser)
    compare_parser.add_argument(
        "--policies",
        nargs="+",
        choices=sorted(_POLICY_CHOICES),
        default=None,
        metavar="POLICY",
        help="policies to compare, first is the normalisation baseline "
        "(default: dram-only unmanaged panthera; e.g. "
        "--policies panthera deca for the rival-policy ablation)",
    )
    compare_parser.add_argument(
        "--jobs",
        type=_positive_int,
        default=1,
        metavar="N",
        help="worker processes (results identical to serial)",
    )
    compare_parser.add_argument(
        "--trace",
        action="store_true",
        help="record heap traces and print a report per policy",
    )
    compare_parser.set_defaults(fn=cmd_compare)

    trace_parser = sub.add_parser(
        "trace", help="record and render one run's heap event trace"
    )
    _add_common(trace_parser)
    trace_parser.add_argument(
        "--policy",
        choices=sorted(_POLICY_CHOICES),
        default="panthera",
        help="placement policy",
    )
    trace_parser.add_argument(
        "--top",
        type=_positive_int,
        default=10,
        metavar="N",
        help="RDD rows in the residency table",
    )
    trace_parser.add_argument(
        "--export-jsonl",
        metavar="PATH",
        help="write the raw event stream as JSON lines",
    )
    trace_parser.add_argument(
        "--check",
        action="store_true",
        help="run the trace-replay oracle against the final heap state",
    )
    trace_parser.set_defaults(fn=cmd_trace)

    faults_parser = sub.add_parser(
        "faults",
        help="inject faults, check lineage recovery converges, "
        "report the cost",
    )
    _add_common(faults_parser)
    faults_parser.add_argument(
        "--policy",
        choices=sorted(_POLICY_CHOICES),
        default="panthera",
        help="placement policy",
    )
    faults_parser.add_argument(
        "--kill",
        type=_parse_kill,
        action="append",
        metavar="KIND:BOUNDARY[:PARTITION]",
        help="kill at a stage boundary (KIND: shuffle or block); repeatable",
    )
    faults_parser.add_argument(
        "--throttle",
        type=_parse_throttle,
        action="append",
        metavar="START_S:DURATION_S:FACTOR",
        help="NVM bandwidth-throttle window on the simulated clock; "
        "repeatable",
    )
    faults_parser.add_argument(
        "--balloon",
        type=float,
        default=0.0,
        metavar="FRACTION",
        help="pre-fill this fraction of free NVM old space (degradation "
        "ladder: NVM->DRAM fallback, spill, abort)",
    )
    faults_parser.add_argument(
        "--random",
        type=_positive_int,
        default=0,
        metavar="N",
        help="generate N seeded random kills instead of --kill specs",
    )
    faults_parser.add_argument(
        "--seed", type=int, default=0, help="seed for --random plans"
    )
    faults_parser.add_argument(
        "--attempts",
        type=_positive_int,
        default=3,
        metavar="N",
        help="bounded recovery attempts per lost partition",
    )
    faults_parser.add_argument(
        "--jobs",
        type=_positive_int,
        default=1,
        metavar="N",
        help="worker processes (results identical to serial)",
    )
    faults_parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=None,
        help="content-addressed result cache",
    )
    faults_parser.add_argument(
        "--trace",
        action="store_true",
        help="record the faulted run's heap trace and print a report",
    )
    faults_parser.add_argument(
        "--export-report",
        metavar="PATH",
        help="write plan + FaultReport + checksums as JSON",
    )
    faults_parser.set_defaults(fn=cmd_faults)

    cluster_parser = sub.add_parser(
        "cluster",
        help="replay seeded traffic on a multi-executor cluster simulator",
    )
    cluster_parser.add_argument(
        "--executors",
        type=_positive_int,
        default=4,
        metavar="N",
        help="cluster size (each executor is a full hybrid-memory node)",
    )
    cluster_parser.add_argument(
        "--seed", type=int, default=0, help="traffic (and fault) plan seed"
    )
    cluster_parser.add_argument(
        "--duration",
        type=float,
        default=60.0,
        metavar="S",
        help="arrival horizon in simulated seconds",
    )
    cluster_parser.add_argument(
        "--rate",
        type=float,
        default=0.2,
        metavar="JOBS_PER_S",
        help="mean arrival rate",
    )
    cluster_parser.add_argument(
        "--process",
        choices=("poisson", "diurnal"),
        default="poisson",
        help="arrival process",
    )
    cluster_parser.add_argument(
        "--diurnal-period",
        type=float,
        default=None,
        metavar="S",
        help="diurnal sinusoid period (default: the horizon)",
    )
    cluster_parser.add_argument(
        "--diurnal-amplitude",
        type=float,
        default=0.8,
        metavar="FRAC",
        help="relative swing of the diurnal rate, in [0, 1)",
    )
    cluster_parser.add_argument(
        "--tenants",
        type=_positive_int,
        default=4,
        metavar="N",
        help="tenant count (skewed submission shares and data scales)",
    )
    cluster_parser.add_argument(
        "--workloads",
        nargs="*",
        default=None,
        help="workload mix (default: all of PR KM LR TC CC SSSP BC)",
    )
    cluster_parser.add_argument(
        "--scale",
        type=float,
        default=0.02,
        metavar="FRAC",
        help="base data scale before per-tenant multipliers",
    )
    cluster_parser.add_argument(
        "--iterations", type=int, default=None, help="override workload iterations"
    )
    cluster_parser.add_argument(
        "--max-jobs",
        type=_positive_int,
        default=None,
        metavar="N",
        help="cap on generated jobs",
    )
    cluster_parser.add_argument(
        "--heap", type=float, default=64.0, help="per-executor heap GB"
    )
    cluster_parser.add_argument(
        "--ratio", type=float, default=1 / 3, help="DRAM share of physical memory"
    )
    cluster_parser.add_argument(
        "--policy",
        choices=sorted(_POLICY_CHOICES),
        default="panthera",
        help="placement policy",
    )
    cluster_parser.add_argument(
        "--kill-executor",
        type=_parse_executor_kill,
        action="append",
        metavar="EXECUTOR:BOUNDARY[:JOB]",
        help="kill an executor at a per-job stage boundary; repeatable",
    )
    cluster_parser.add_argument(
        "--random-kills",
        type=_positive_int,
        default=0,
        metavar="N",
        help="generate N seeded random executor kills instead",
    )
    cluster_parser.add_argument(
        "--max-kill-boundary",
        type=_positive_int,
        default=6,
        metavar="N",
        help="random kills fire at boundaries in [1, N]",
    )
    cluster_parser.add_argument(
        "--attempts",
        type=_positive_int,
        default=3,
        metavar="N",
        help="bounded recovery attempts per lost partition",
    )
    cluster_parser.add_argument(
        "--jobs",
        type=_positive_int,
        default=1,
        metavar="N",
        help="worker processes for the lane fan-out "
        "(report identical to serial)",
    )
    cluster_parser.add_argument(
        "--export-json", metavar="PATH", help="write the full report as JSON"
    )
    cluster_parser.set_defaults(fn=cmd_cluster)

    analyze_parser = sub.add_parser(
        "analyze", help="show the §3 static analysis for a workload"
    )
    _add_common(analyze_parser)
    analyze_parser.add_argument(
        "--lifetimes",
        action="store_true",
        help="also show the Deca lifetime classification (arXiv 1602.01959)",
    )
    analyze_parser.set_defaults(fn=cmd_analyze)

    bench_parser = sub.add_parser(
        "bench",
        help="run the simulator benchmark suite, write BENCH_<date>.json",
    )
    bench_parser.add_argument(
        "--quick",
        action="store_true",
        help="fewer rounds and experiment cells (CI smoke mode)",
    )
    bench_parser.add_argument(
        "--scale-sweep",
        action="store_true",
        help="also run PR and CC cells across scales (0.02..100, or "
        "0.02..5 with --quick) and assert near-linear wall-time growth",
    )
    bench_parser.add_argument(
        "--rounds",
        type=_positive_int,
        default=None,
        metavar="N",
        help="rounds per microbenchmark (default: 5, or 3 with --quick)",
    )
    bench_parser.add_argument(
        "--out", metavar="PATH", help="output path (default: BENCH_<date>.json)"
    )
    bench_parser.add_argument(
        "--compare",
        metavar="BASELINE",
        help="diff against a baseline BENCH_*.json after the run",
    )
    bench_parser.add_argument(
        "--tolerance",
        type=float,
        default=0.20,
        metavar="FRAC",
        help="allowed slowdown before --compare fails (default 0.20)",
    )
    bench_parser.add_argument(
        "--advisory",
        action="store_true",
        help="report --compare regressions without failing",
    )
    bench_parser.add_argument(
        "--profile",
        action="store_true",
        help="run each suite under cProfile and write the top-20 tottime "
        "report per suite (timings inflate; do not --compare a profiled "
        "run against an unprofiled baseline)",
    )
    bench_parser.add_argument(
        "--profile-dir",
        metavar="DIR",
        default="bench_profiles",
        help="directory for --profile reports (default: bench_profiles/)",
    )
    bench_parser.set_defaults(fn=cmd_bench)

    list_parser = sub.add_parser("list", help="list the Table 4 workloads")
    list_parser.set_defaults(fn=cmd_list)

    matrix_parser = sub.add_parser(
        "matrix", help="run the full workload x policy matrix"
    )
    matrix_parser.add_argument("--heap", type=float, default=64.0)
    matrix_parser.add_argument("--ratio", type=float, default=1 / 3)
    matrix_parser.add_argument("--scale", type=float, default=0.1)
    matrix_parser.add_argument(
        "--workloads",
        nargs="*",
        default=None,
        help="subset of PR KM LR TC CC SSSP BC (default: all)",
    )
    matrix_parser.add_argument(
        "--policies",
        nargs="+",
        choices=sorted(_POLICY_CHOICES),
        default=None,
        metavar="POLICY",
        help="policies to run, first is the normalisation baseline "
        "(default: dram-only unmanaged panthera)",
    )
    matrix_parser.add_argument(
        "--jobs",
        type=_positive_int,
        default=1,
        metavar="N",
        help="worker processes (results identical to serial)",
    )
    matrix_parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=None,
        help="content-addressed result cache (re-runs skip finished cells)",
    )
    matrix_parser.add_argument(
        "--export-json", metavar="PATH", help="write the matrix as JSON"
    )
    matrix_parser.add_argument(
        "--trace",
        action="store_true",
        help="record heap traces and print a report per cell",
    )
    matrix_parser.set_defaults(fn=cmd_matrix)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
