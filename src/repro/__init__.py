"""Panthera (PLDI 2019) reproduction: holistic memory management for Big
Data processing over hybrid DRAM/NVM memories, as a discrete-cost
simulation.

Quickstart::

    from repro import PolicyName, paper_config, run_experiment

    config = paper_config(64, 1/3, PolicyName.PANTHERA, scale=0.2)
    result = run_experiment("PR", config, scale=0.2)
    print(result.elapsed_s, result.energy_j)

The package layers are:

* :mod:`repro.memory` — the hybrid-memory machine (devices, clock,
  energy, bandwidth traces).
* :mod:`repro.heap` / :mod:`repro.gc` — the generational heap and the
  Parallel Scavenge-style collector with pluggable placement policies.
* :mod:`repro.core` — Panthera proper: static tag inference, lineage tag
  propagation, the runtime API, the access monitor.
* :mod:`repro.spark` — the mini-Spark (RDDs, stages, shuffles, blocks).
* :mod:`repro.workloads` — the seven Table 4 benchmarks.
* :mod:`repro.harness` — experiment runner and paper configurations.
"""

from repro.config import (
    DeviceKind,
    GiB,
    MiB,
    PolicyName,
    SystemConfig,
    dram_only_config,
    hybrid_config,
)
from repro.core.static_analysis import StaticAnalysis, analyze_program
from repro.core.tags import MemoryTag
from repro.faults import (
    FaultInjector,
    FaultPlan,
    FaultReport,
    KillSpec,
    ThrottleSpec,
    action_checksums,
)
from repro.harness.configs import (
    fig2c_configs,
    fig4_configs,
    grid_configs,
    paper_config,
    write_rationing_configs,
)
from repro.harness.engine import (
    ExperimentEngine,
    ExperimentPoint,
    run_points,
)
from repro.harness.experiment import ExperimentResult, run_experiment
from repro.harness.report import (
    format_markdown_table,
    gc_breakdown,
    normalize_results,
    summarize,
)
from repro.gc.gclog import render_log
from repro.harness.export import (
    bandwidth_series_to_csv,
    gc_pauses_to_csv,
    results_to_csv,
    results_to_json,
)
from repro.heap.verify import verify_heap
from repro.spark.context import SparkContext
from repro.spark.costmodel import MutatorCosts
from repro.spark.lineage import build_stages, lineage_string, stage_summary
from repro.spark.program import Program, execute_program
from repro.spark.storage import StorageLevel
from repro.workloads.registry import WORKLOADS, build_workload

__version__ = "1.0.0"

__all__ = [
    "DeviceKind",
    "ExperimentEngine",
    "ExperimentPoint",
    "ExperimentResult",
    "FaultInjector",
    "FaultPlan",
    "FaultReport",
    "GiB",
    "KillSpec",
    "ThrottleSpec",
    "action_checksums",
    "MemoryTag",
    "MiB",
    "MutatorCosts",
    "PolicyName",
    "Program",
    "SparkContext",
    "StaticAnalysis",
    "StorageLevel",
    "SystemConfig",
    "WORKLOADS",
    "analyze_program",
    "bandwidth_series_to_csv",
    "build_stages",
    "build_workload",
    "dram_only_config",
    "execute_program",
    "gc_pauses_to_csv",
    "lineage_string",
    "render_log",
    "results_to_csv",
    "results_to_json",
    "stage_summary",
    "verify_heap",
    "fig2c_configs",
    "fig4_configs",
    "format_markdown_table",
    "gc_breakdown",
    "grid_configs",
    "hybrid_config",
    "normalize_results",
    "paper_config",
    "run_experiment",
    "run_points",
    "summarize",
    "write_rationing_configs",
]
