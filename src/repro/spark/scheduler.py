"""The DAG scheduler and task-side cost charging.

Execution follows Spark's model (§2): an action walks the lineage, runs
every not-yet-written shuffle map stage bottom-up, then computes the
final pipeline.  Wide dependencies are memoised as shuffle files for the
application's lifetime (stage skipping), which keeps iterative jobs
linear.  ShuffledRDDs — the materialised stage inputs the paper's tag
propagation targets — are materialised into the heap when first fetched
and released when their consuming scope ends.

This module is also the mutator cost model: every transformation charges
CPU time, young-generation writes and ephemeral allocation; every data
*source* (persisted block, shuffle file, input file) charges its read at
the device it actually lives on.  That single rule is what makes the
unmanaged baseline pay for NVM-resident hot RDDs while Panthera does not.
"""

from __future__ import annotations

from itertools import chain as _chain
from typing import Dict, List, Optional, Set

from repro.config import DeviceKind
from repro.core.lineage_propagation import propagate_tags
from repro.core.tags import MemoryTag
from repro.errors import OutOfMemoryError, SparkError
from repro.gc import charging as _charging
from repro.heap.object_model import ObjKind
from repro.heap.regions import LifetimeClass
from repro.spark.materialize import MaterializedBlock
from repro.spark import columnar as _columnar
from repro.spark import partition as _partition
from repro.spark.partition import _MISSING, Record
from repro.spark.rdd import (
    RDD,
    ShuffleDependency,
    ShuffledRDD,
)
from repro.spark.serialized import pack_partitions
from repro.spark.storage import (
    expand_level,
    routes_to_serialized_tier,
    serialized_tier_active,
    warn_legacy_serialized_fallthrough,
)


class Scheduler:
    """Runs actions over the logical RDD graph, charging the machine."""

    def __init__(self, ctx) -> None:
        self.ctx = ctx
        #: rdd_id -> runtime-propagated tag (ShuffledRDD inputs, §3)
        self.runtime_tags: Dict[int, Optional[MemoryTag]] = {}
        #: rdd_id -> transient ShuffledRDD block for the active scopes
        self._transients: Dict[int, MaterializedBlock] = {}
        self._scopes: List[List[MaterializedBlock]] = []
        self.transient_materializations = 0

    # ------------------------------------------------------------------
    # scopes: transient ShuffledRDD lifetime ("die when the stage ends")
    # ------------------------------------------------------------------

    def _push_scope(self) -> None:
        self._scopes.append([])

    def _pop_scope(self) -> None:
        for block in self._scopes.pop():
            self.ctx.materializer.release(block)
            # The stage is over: its buffers are garbage, and the stage's
            # final safepoint stops treating their card regions as
            # scannable (otherwise dead shuffle buffers would be
            # phantom-rescanned until the next full GC).
            for array in block.arrays:
                if self.ctx.heap.card_table.is_registered(array):
                    self.ctx.heap.card_table.unregister(array)
            self._transients.pop(block.rdd_id, None)
            if self.ctx.heap.regions is not None:
                # Transient stage blocks free their region the moment
                # their scope closes (job-arena overflow extents come
                # back here; stage-arena bytes at the reset below).
                self.ctx.heap.regions.free_block(block)
        if not self._scopes and self.ctx.heap.regions is not None:
            # The outermost scope closing is a stage/action boundary:
            # Deca frees the whole stage arena (and the ephemeral arena)
            # in one wholesale reset — no tracing, no per-object work.
            # Nested scopes share the arena, so only the outermost close
            # resets it.
            self.ctx.heap.regions.stage_boundary()

    # ------------------------------------------------------------------
    # actions
    # ------------------------------------------------------------------

    def run_action(self, rdd: RDD, action: str):
        """Execute an action, driving all upstream stages."""
        self._ensure_upstream_shuffles(rdd)
        if self.ctx.faults is not None:
            self.ctx.faults.action_boundary(rdd)
        if self.ctx.cluster is not None:
            self.ctx.cluster.action_boundary(rdd)
        self._push_scope()
        try:
            if self.ctx.panthera_enabled and rdd.memory_tag is not None:
                propagate_tags(rdd, rdd.memory_tag, self.runtime_tags)
            parts = [
                self.get_records(rdd, p) for p in range(rdd.num_partitions)
            ]
            if (
                self.ctx.panthera_enabled
                and rdd.memory_tag is not None
                and rdd.persist_level is None
                and not self.ctx.block_manager.contains(rdd.id)
            ):
                # The action is a materialisation point (§3): build the
                # transient structure so the tag machinery is exercised,
                # released when the action's scope closes.
                block = self.ctx.materializer.materialize(
                    rdd, parts, rdd.memory_tag
                )
                self._scopes[-1].append(block)
        finally:
            self._pop_scope()
        records: List[Record] = list(_chain.from_iterable(parts))
        if action == "count":
            return len(records)
        if action == "collect":
            return records
        if action == "sum":
            return sum(v for _, v in records)
        raise SparkError(f"unknown action {action!r}")

    def run_take(self, rdd: RDD, n: int) -> List[Record]:
        """Compute partitions in order until ``n`` records are available
        (Spark's incremental ``take``)."""
        self._ensure_upstream_shuffles(rdd)
        if self.ctx.faults is not None:
            self.ctx.faults.action_boundary(rdd)
        if self.ctx.cluster is not None:
            self.ctx.cluster.action_boundary(rdd)
        self._push_scope()
        taken: List[Record] = []
        try:
            for pidx in range(rdd.num_partitions):
                if len(taken) >= n:
                    break
                taken.extend(self.get_records(rdd, pidx))
        finally:
            self._pop_scope()
        return taken[:n]

    # ------------------------------------------------------------------
    # stage orchestration
    # ------------------------------------------------------------------

    def _ensure_upstream_shuffles(self, rdd: RDD) -> None:
        """Run every missing shuffle map stage below ``rdd``, parents
        first (iterative postorder, so deep lineages never overflow the
        Python stack)."""
        order: List[ShuffleDependency] = []
        seen: Set[int] = set()
        stack = [(rdd, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                for dep in node.deps:
                    if isinstance(dep, ShuffleDependency):
                        if not self.ctx.shuffles.has(dep.shuffle_id):
                            order.append(dep)
                continue
            if node.id in seen:
                continue
            seen.add(node.id)
            if self.ctx.block_manager.contains(node.id):
                continue  # cached: its upstream stages are skipped
            stack.append((node, True))
            for dep in node.deps:
                stack.append((dep.parent, False))
        for dep in order:
            self._run_shuffle_map(dep)

    def _run_shuffle_map(self, dep: ShuffleDependency, force: bool = False) -> None:
        """Execute one shuffle map stage and write its files.

        Args:
            force: re-run the stage even though its output exists and
                overwrite it — the lineage-recovery path after an
                injected executor kill destroyed a reduce partition.
        """
        if self.ctx.shuffles.has(dep.shuffle_id) and not force:
            return
        self._ensure_upstream_shuffles(dep.parent)
        costs = self.ctx.costs
        threads = self.ctx.config.mutator_threads
        n_out = dep.partitioner.num_partitions
        buckets: List[List[Record]] = [[] for _ in range(n_out)]
        # Under the columnar plane each bucket accumulates *ordered
        # segments* (sub-batches or record lists, one or more per map
        # partition) fused after the loop — the concatenation yields the
        # same per-bucket record sequence the per-record bucket_into
        # appends produce, because both preserve map-partition order and
        # within-partition record order.
        use_columnar = _columnar.columnar_active()
        segments: List[list] = [[] for _ in range(n_out)]
        # Under the vectorised cost plane each partition's machine
        # charges (the combine probe and the spill write) settle as one
        # run_rows wave; the rows replay access()'s arithmetic row by
        # row, and nothing between them touches the machine, so clocks,
        # counters and bandwidth windows stay byte-identical.
        vectorised = _charging.VECTORISED_COST_PLANE
        self._push_scope()
        try:
            for pidx in range(dep.parent.num_partitions):
                records = self.get_records(dep.parent, pidx)
                in_bytes = len(records) * dep.parent.bytes_per_record
                n_records = len(records)
                rows = []
                if dep.map_side_combine is not None or dep.map_side_aggregate is not None:
                    if dep.map_side_aggregate is not None:
                        records = dep.map_side_aggregate(records)
                        n_records = len(records)
                    else:
                        fn = dep.map_side_combine
                        folded = None
                        if use_columnar:
                            folded = self._columnar_combine(fn, records)
                        if folded is not None:
                            # The kernel's grouped fold: same groups in
                            # the same first-occurrence order, each
                            # accumulated in record order — the dict
                            # fold below, vectorised.
                            records = folded
                            n_records = len(folded)
                        elif _partition.LEGACY_DATA_PLANE:
                            combined = {}
                            for k, v in records:
                                combined[k] = (
                                    fn(combined[k], v) if k in combined else v
                                )
                            records = combined.items()
                            n_records = len(combined)
                        else:
                            # Single dict probe per record; fn sees the
                            # same (accumulator, value) order as before.
                            # Streaming combined.items() straight into
                            # the buckets skips the intermediate list
                            # the legacy plane built (identical tuples).
                            combined = {}
                            get = combined.get
                            for k, v in records:
                                prev = get(k, _MISSING)
                                combined[k] = (
                                    v if prev is _MISSING else fn(prev, v)
                                )
                            records = combined.items()
                            n_records = len(combined)
                    if vectorised:
                        rows.append(
                            (
                                DeviceKind.DRAM,
                                0.0,
                                0.0,
                                costs.hash_probes_for(in_bytes),
                                0,
                                in_bytes * costs.cpu_ns_per_byte / threads,
                            )
                        )
                    else:
                        self.ctx.machine.access(
                            DeviceKind.DRAM,
                            random_reads=costs.hash_probes_for(in_bytes),
                            threads=threads,
                            cpu_ns=in_bytes * costs.cpu_ns_per_byte / threads,
                        )
                if use_columnar:
                    _columnar.bucket_into_segments(
                        dep.partitioner, records, segments
                    )
                else:
                    dep.partitioner.bucket_into(records, buckets)
                out_bytes = (
                    n_records * dep.parent.bytes_per_record * dep.combine_factor
                )
                ser_bytes = out_bytes * costs.ser_factor
                if vectorised:
                    rows.append(
                        (
                            DeviceKind.DISK,
                            0.0,
                            ser_bytes,
                            0,
                            0,
                            out_bytes * costs.cpu_ns_per_byte / threads,
                        )
                    )
                    self.ctx.machine.run_rows(rows, threads=threads)
                else:
                    self.ctx.machine.access(
                        DeviceKind.DISK,
                        write_bytes=ser_bytes,
                        threads=threads,
                        cpu_ns=out_bytes * costs.cpu_ns_per_byte / threads,
                    )
        finally:
            self._pop_scope()
        if use_columnar:
            buckets = [_columnar.concat_segments(segs) for segs in segments]
        bpr = dep.parent.bytes_per_record * dep.combine_factor
        sizes = [len(b) * bpr * costs.ser_factor for b in buckets]
        self.ctx.shuffles.write(dep.shuffle_id, buckets, sizes, overwrite=force)
        if self.ctx.faults is not None:
            # A completed map stage is a stage boundary: pending kills
            # scheduled for it fire now (possibly re-losing the output
            # this very stage just wrote — recovery is bounded).
            self.ctx.faults.stage_boundary(dep)
        if self.ctx.cluster is not None:
            # The cluster binding registers the shuffle with the shared
            # service (reduce partitions get owners across executors)
            # and fires executor kills due at this boundary.
            self.ctx.cluster.stage_boundary(dep)

    def _columnar_combine(self, fn, records):
        """Map-side combine through ``fn``'s registered grouped-fold
        kernel, for data already in batch form.  Plain record lists
        (e.g. PageRank's contribs, flat_map output) stay on the dict
        fold: the O(N) Python pack loop costs more than the vectorised
        fold saves, measured 0.84x on the PR cell when we packed here."""
        if _columnar.reduce_kernel_for(fn) is None:
            return None
        if not _columnar.is_batch(records):
            return None
        return _columnar.apply_reduce_kernel(fn, records)

    # ------------------------------------------------------------------
    # record access (the task-side data plane)
    # ------------------------------------------------------------------

    def get_records(self, rdd: RDD, pidx: int) -> List[Record]:
        """One partition of ``rdd``, from cache, shuffle or recomputation."""
        block = self.ctx.block_manager.get(rdd.id)
        if block is not None:
            return self._read_block(rdd, block, pidx)
        transient = self._transients.get(rdd.id)
        if transient is not None:
            return self._read_block(rdd, transient, pidx)
        if rdd.persist_level is not None:
            if self.ctx.faults is not None:
                self.ctx.faults.materialize_persisted(self, rdd)
            else:
                self._materialize_persisted(rdd)
            block = self.ctx.block_manager.get(rdd.id)
            if block is None:
                raise SparkError(f"persist of {rdd!r} produced no block")
            return self._read_block(rdd, block, pidx)
        if isinstance(rdd, ShuffledRDD):
            block = self._materialize_shuffled(rdd)
            return self._read_block(rdd, block, pidx)
        return rdd.compute_partition(pidx, self)

    def _read_block(
        self, rdd: RDD, block: MaterializedBlock, pidx: int
    ) -> List[Record]:
        """Serve one partition from a block, charging its read wherever
        the block's objects currently live."""
        threads = self.ctx.config.mutator_threads
        if block.in_serialized_tier:
            return self._read_serialized_partition(rdd, block, pidx)
        records = block.records[pidx]
        if block.on_disk:
            part_bytes = len(records) * rdd.bytes_per_record
            self.ctx.machine.access(
                DeviceKind.DISK,
                read_bytes=part_bytes * self.ctx.costs.ser_factor,
                threads=threads,
                cpu_ns=part_bytes * self.ctx.costs.cpu_ns_per_byte / threads,
            )
        else:
            traffic: Dict[DeviceKind, float] = {}
            for device, nbytes in block.partition_traffic(pidx):
                traffic[device] = traffic.get(device, 0.0) + nbytes
            from repro.memory.machine import Traffic

            # Serialised blocks pay deserialisation CPU on every read.
            deser_cpu = 0.0
            if block.serialized:
                part_bytes = len(records) * rdd.bytes_per_record
                deser_cpu = (
                    part_bytes * self.ctx.costs.cpu_ns_per_byte / threads
                )
            self.ctx.machine.run_batch(
                {d: Traffic(read_bytes=b) for d, b in traffic.items()},
                threads=threads,
                cpu_ns=deser_cpu,
            )
            # Consuming a cached partition leaves reference writes (task
            # iterators, buffer handles) in its card region, so the next
            # minor GC re-scans the array — on whatever device it lives.
            if pidx < len(block.arrays):
                array = block.arrays[pidx]
                heap = self.ctx.heap
                if heap.in_old(array) and heap.card_table.is_registered(array):
                    heap.card_table.mark_dirty(array)
        # Runtime consumption counts towards the RDD's call frequency —
        # this is what keeps iteratively re-read RDDs "hot" across major
        # GCs (§4.2.2).
        self.ctx.on_rdd_call(rdd)
        # Served partitions are shared, not copied: consumers never
        # mutate record lists (the legacy data plane copies anyway).
        return list(records) if _partition.LEGACY_DATA_PLANE else records

    def _read_serialized_partition(
        self, rdd: RDD, block: MaterializedBlock, pidx: int
    ) -> List[Record]:
        """Serve one partition of a serialized-tier block.

        Deserialize-on-access: stream the packed batch off the native
        device, pay the unpack CPU, land the deserialised records in
        DRAM.  No cards are dirtied and nothing is re-scanned — the
        tier has no object-heap structure for the GC to see.
        """
        costs = self.ctx.costs
        threads = self.ctx.config.mutator_threads
        batch = block.ser_batches[pidx]
        part_bytes = batch.count * rdd.bytes_per_record
        packed_bytes = part_bytes * costs.ser_factor
        deser_cpu = part_bytes * costs.cpu_ns_per_byte / threads
        device = self.ctx.heap.native.device
        if _charging.VECTORISED_COST_PLANE:
            self.ctx.machine.run_rows(
                (
                    (device, packed_bytes, 0.0, 0, 0, deser_cpu),
                    (DeviceKind.DRAM, 0.0, part_bytes, 0, 0, 0.0),
                ),
                threads=threads,
            )
        else:
            self.ctx.machine.access(
                device,
                read_bytes=packed_bytes,
                threads=threads,
                cpu_ns=deser_cpu,
            )
            self.ctx.machine.access(
                DeviceKind.DRAM, write_bytes=part_bytes, threads=threads
            )
        if self.ctx.heap.trace is not None:
            self.ctx.heap.trace.deserialize(rdd.id, part_bytes)
        self.ctx.on_rdd_call(rdd)
        return batch.unpack()

    # ------------------------------------------------------------------
    # materialisation paths
    # ------------------------------------------------------------------

    def _materialize_persisted(self, rdd: RDD) -> None:
        """First computation of a persisted RDD: compute, then cache."""
        level = rdd.persist_level
        assert level is not None
        tag = rdd.memory_tag if self.ctx.panthera_enabled else None
        if self.ctx.panthera_enabled and tag is not None:
            propagate_tags(rdd, tag, self.runtime_tags)
        self._push_scope()
        try:
            parts = [
                rdd.compute_partition(p, self) for p in range(rdd.num_partitions)
            ]
        finally:
            self._pop_scope()
        total_bytes = sum(len(p) for p in parts) * rdd.bytes_per_record
        costs = self.ctx.costs
        threads = self.ctx.config.mutator_threads
        if serialized_tier_active(level):
            block = self._materialize_serialized_tier(rdd, parts)
        elif level.off_heap:
            warn_legacy_serialized_fallthrough(level)
            block = self._materialize_off_heap(rdd, parts)
        elif level.use_memory:
            if routes_to_serialized_tier(level):
                # MEMORY_ONLY_SER with the tier off: the pre-tier
                # object-heap serialised buffer, bit-for-bit — but no
                # longer silently.
                warn_legacy_serialized_fallthrough(level)
            in_heap_bytes = (
                total_bytes * costs.ser_factor if level.serialized else total_bytes
            )
            regions = self.ctx.heap.regions
            if regions is not None:
                # Deca: persisted data goes to a job-arena region, not
                # the traced old generation — pressure is relieved by
                # region-grained eviction, never by a full GC.
                regions.note_rdd(rdd.id, rdd.lifetime or LifetimeClass.JOB)
                regions.ensure_job_capacity(
                    in_heap_bytes, self.ctx.block_manager
                )
            else:
                self.ctx.block_manager.ensure_capacity(
                    in_heap_bytes,
                    self.ctx.collector,
                    extra_live=self._active_transient_bytes(),
                )
            block = self.ctx.materializer.materialize(
                rdd, parts, tag, serialized=level.serialized
            )
            block.serialized = level.serialized
        else:  # DISK_ONLY
            top = self.ctx.heap.new_object(ObjKind.CONTROL, 64, rdd.id)
            block = MaterializedBlock(
                rdd_id=rdd.id,
                top=top,
                arrays=[],
                slabs=[[] for _ in parts],
                records=(
                    [list(p) for p in parts]
                    if _partition.LEGACY_DATA_PLANE
                    else parts
                ),
                data_bytes=total_bytes,
                on_disk=True,
            )
            self.ctx.machine.access(
                DeviceKind.DISK,
                write_bytes=total_bytes * costs.ser_factor,
                threads=threads,
                cpu_ns=total_bytes * costs.cpu_ns_per_byte / threads,
            )
        expanded = expand_level(level, tag)
        self.ctx.block_manager.put(block, expanded)

    def _materialize_serialized_tier(
        self, rdd: RDD, parts: List[List[Record]]
    ) -> MaterializedBlock:
        """Serialized-tier persistence: pack each partition into a
        column batch in the native region (§4.1's off-heap NVM), charge
        serialize-on-persist rows, and leave *nothing* for the GC to
        trace — the tier's whole trade (arXiv 2111.10589) is paying
        deserialisation on every access instead of tracing cost on
        every collection.
        """
        heap = self.ctx.heap
        costs = self.ctx.costs
        threads = self.ctx.config.mutator_threads
        top = heap.new_object(ObjKind.CONTROL, 64, rdd.id)
        arrays = []
        total_packed = 0.0
        vectorised = _charging.VECTORISED_COST_PLANE
        for records in parts:
            part_bytes = len(records) * rdd.bytes_per_record
            packed_bytes = part_bytes * costs.ser_factor
            total_packed += packed_bytes
            try:
                native_obj = heap.allocate_native(packed_bytes, rdd.id)
            except OutOfMemoryError as exc:
                raise SparkError(str(exc)) from exc
            arrays.append(native_obj)
            # Row 1: stream the freshly computed records out of DRAM,
            # paying the serialisation CPU.  Row 2: land the packed
            # batch on the native device.
            ser_cpu = part_bytes * costs.cpu_ns_per_byte / threads
            if vectorised:
                self.ctx.machine.run_rows(
                    (
                        (DeviceKind.DRAM, part_bytes, 0.0, 0, 0, ser_cpu),
                        (heap.native.device, 0.0, packed_bytes, 0, 0, 0.0),
                    ),
                    threads=threads,
                )
            else:
                self.ctx.machine.access(
                    DeviceKind.DRAM,
                    read_bytes=part_bytes,
                    threads=threads,
                    cpu_ns=ser_cpu,
                )
                self.ctx.machine.access(
                    heap.native.device,
                    write_bytes=packed_bytes,
                    threads=threads,
                )
        if heap.trace is not None:
            heap.trace.serialize(rdd.id, total_packed)
        return MaterializedBlock(
            rdd_id=rdd.id,
            top=top,
            arrays=arrays,
            slabs=[[] for _ in parts],
            records=[[] for _ in parts],
            data_bytes=total_packed,
            serialized=True,
            ser_batches=pack_partitions(parts),
        )

    def _materialize_off_heap(self, rdd: RDD, parts: List[List[Record]]):
        """OFF_HEAP persistence: native NVM memory, outside the GC (§4.1)."""
        heap = self.ctx.heap

        top = heap.new_object(ObjKind.CONTROL, 64, rdd.id)
        arrays = []
        threads = self.ctx.config.mutator_threads
        total = 0.0
        for records in parts:
            part_bytes = len(records) * rdd.bytes_per_record
            total += part_bytes
            try:
                native_obj = heap.allocate_native(part_bytes, rdd.id)
            except OutOfMemoryError as exc:
                raise SparkError(str(exc)) from exc
            self.ctx.machine.access(
                heap.native.device,
                write_bytes=part_bytes,
                threads=threads,
                cpu_ns=part_bytes * self.ctx.costs.cpu_ns_per_byte / threads,
            )
            arrays.append(native_obj)
        return MaterializedBlock(
            rdd_id=rdd.id,
            top=top,
            arrays=arrays,
            slabs=[[] for _ in parts],
            records=(
                [list(p) for p in parts]
                if _partition.LEGACY_DATA_PLANE
                else parts
            ),
            data_bytes=total,
        )

    def _active_transient_bytes(self) -> float:
        """Live bytes held by in-flight transient blocks (invisible to the
        block manager's registry)."""
        return sum(b.data_bytes for b in self._transients.values())

    def _materialize_shuffled(self, rdd: ShuffledRDD) -> MaterializedBlock:
        """Materialise a ShuffledRDD stage input (always materialised, §2)
        with its runtime-propagated tag; it dies when the scope ends."""
        if not self._scopes:
            self._push_scope()  # defensive: an implicit outermost scope
        dep = rdd.shuffle_dep
        regions = self.ctx.heap.regions
        if regions is not None:
            # Stage inputs are the canonical stage-local class: freed by
            # the wholesale arena reset when the consuming scope closes.
            regions.note_rdd(rdd.id, LifetimeClass.STAGE)
        if self.ctx.shuffles.has(dep.shuffle_id):
            estimate = sum(
                self.ctx.shuffles.serialized_bytes(dep.shuffle_id, p)
                for p in range(rdd.num_partitions)
            ) / max(self.ctx.costs.ser_factor, 1e-9)
            if regions is not None:
                # Only the part the stage arena cannot take will fall
                # over into job-arena extents.
                overflow = estimate - regions.stage.free
                if overflow > 0:
                    regions.ensure_job_capacity(
                        overflow, self.ctx.block_manager
                    )
            else:
                self.ctx.block_manager.ensure_capacity(
                    estimate,
                    self.ctx.collector,
                    extra_live=self._active_transient_bytes(),
                )
        parts = [
            rdd.compute_partition(p, self) for p in range(rdd.num_partitions)
        ]
        tag = (
            self.runtime_tags.get(rdd.id)
            if self.ctx.panthera_enabled
            else None
        )
        block = self.ctx.materializer.materialize(rdd, parts, tag)
        self._transients[rdd.id] = block
        self._scopes[-1].append(block)
        self.transient_materializations += 1
        return block

    # ------------------------------------------------------------------
    # shuffle fetch + per-op cost charging (called from rdd.compute_partition)
    # ------------------------------------------------------------------

    def fetch_shuffle(self, dep: ShuffleDependency, pidx: int) -> List[Record]:
        """Read one reduce partition from shuffle files on disk."""
        if not self.ctx.shuffles.has(dep.shuffle_id):
            self._run_shuffle_map(dep)
        if self.ctx.faults is not None:
            self.ctx.faults.ensure_shuffle_partition(self, dep, pidx)
        if self.ctx.cluster is not None:
            # Partitions owned by a remote executor pay the network hop
            # (charged through Machine.run_rows on this machine) before
            # the local disk read below models the landing.
            self.ctx.cluster.shuffle_fetch(dep, pidx)
        records = self.ctx.shuffles.read(dep.shuffle_id, pidx)
        costs = self.ctx.costs
        threads = self.ctx.config.mutator_threads
        ser_bytes = self.ctx.shuffles.serialized_bytes(dep.shuffle_id, pidx)
        raw_bytes = ser_bytes / costs.ser_factor if costs.ser_factor else ser_bytes
        self._ephemeral(raw_bytes)
        if _charging.VECTORISED_COST_PLANE:
            # Disk read + DRAM landing settle as one two-row wave — the
            # rows are back-to-back accesses with nothing between them.
            self.ctx.machine.run_rows(
                (
                    (
                        DeviceKind.DISK,
                        ser_bytes,
                        0.0,
                        0,
                        0,
                        raw_bytes * costs.cpu_ns_per_byte / threads,
                    ),
                    (DeviceKind.DRAM, 0.0, raw_bytes, 0, 0, 0.0),
                ),
                threads=threads,
            )
            return records
        self.ctx.machine.access(
            DeviceKind.DISK,
            read_bytes=ser_bytes,
            threads=threads,
            cpu_ns=raw_bytes * costs.cpu_ns_per_byte / threads,
        )
        self.ctx.machine.access(
            DeviceKind.DRAM, write_bytes=raw_bytes, threads=threads
        )
        return records

    def _ephemeral(self, nbytes: float) -> None:
        """Allocate streaming bytes in eden, chunked below eden's size.

        The allocation-pressure factor models the JVM's temp-object churn
        (boxing, iterator wrappers): eden fills several times faster than
        the useful output volume.
        """
        remaining = int(nbytes * self.ctx.costs.alloc_factor)
        chunk = max(1, self.ctx.heap.eden.size // 4)
        while remaining > 0:
            take = min(remaining, chunk)
            self.ctx.heap.allocate_ephemeral(take)
            remaining -= take

    def _write_overhead_ns(self, nbytes: float) -> float:
        """Kingsguard-Writes' monitoring barrier cost for ``nbytes`` of
        mutator writes."""
        per_write = self.ctx.policy.mutator_write_barrier_ns()
        if per_write <= 0:
            return 0.0
        return per_write * (nbytes / 64.0)

    def _charge_op(
        self,
        in_bytes: float,
        out_bytes: float,
        n_in: int,
        n_out: int,
        probe_bytes: float = 0.0,
    ) -> None:
        """Common charging for one partition-level operator."""
        costs = self.ctx.costs
        threads = self.ctx.config.mutator_threads
        cpu = (
            in_bytes * costs.cpu_ns_per_byte
            + (n_in + n_out) * costs.cpu_ns_per_record
            + self._write_overhead_ns(out_bytes)
        ) / threads
        self._ephemeral(out_bytes)
        self.ctx.machine.access(
            DeviceKind.DRAM,
            write_bytes=out_bytes,
            random_reads=costs.hash_probes_for(probe_bytes),
            threads=threads,
            cpu_ns=cpu,
        )

    def charge_narrow_op(
        self, rdd: RDD, parent: RDD, in_records: List[Record], out_records: List[Record]
    ) -> None:
        """Cost of a pipelined narrow transformation."""
        self._charge_op(
            in_bytes=len(in_records) * parent.bytes_per_record,
            out_bytes=len(out_records) * rdd.bytes_per_record,
            n_in=len(in_records),
            n_out=len(out_records),
        )

    def charge_aggregation(
        self, rdd: ShuffledRDD, raw: List[Record], out: List[Record]
    ) -> None:
        """Cost of a reduce-side aggregation (hash build over raw input)."""
        in_bytes = len(raw) * rdd.deps[0].parent.bytes_per_record
        self._charge_op(
            in_bytes=in_bytes,
            out_bytes=len(out) * rdd.bytes_per_record,
            n_in=len(raw),
            n_out=len(out),
            probe_bytes=in_bytes,
        )

    def charge_cogroup(
        self, rdd: RDD, sides: List[List[Record]], out: List[Record]
    ) -> None:
        """Cost of a hash cogroup over all input sides."""
        in_bytes = sum(
            len(side) * dep.parent.bytes_per_record
            for side, dep in zip(sides, rdd.deps)
        )
        self._charge_op(
            in_bytes=in_bytes,
            out_bytes=len(out) * rdd.bytes_per_record,
            n_in=sum(len(s) for s in sides),
            n_out=len(out),
            probe_bytes=in_bytes,
        )

    def charge_source_read(self, rdd: RDD, records: List[Record]) -> None:
        """Cost of reading and parsing one input partition from disk."""
        costs = self.ctx.costs
        threads = self.ctx.config.mutator_threads
        nbytes = len(records) * rdd.bytes_per_record
        self._ephemeral(nbytes)
        if _charging.VECTORISED_COST_PLANE:
            self.ctx.machine.run_rows(
                (
                    (
                        DeviceKind.DISK,
                        nbytes,
                        0.0,
                        0,
                        0,
                        nbytes * costs.source_cpu_ns_per_byte / threads,
                    ),
                    (DeviceKind.DRAM, 0.0, nbytes, 0, 0, 0.0),
                ),
                threads=threads,
            )
            return
        self.ctx.machine.access(
            DeviceKind.DISK,
            read_bytes=nbytes,
            threads=threads,
            cpu_ns=nbytes * costs.source_cpu_ns_per_byte / threads,
        )
        self.ctx.machine.access(
            DeviceKind.DRAM, write_bytes=nbytes, threads=threads
        )
