"""Columnar whole-stage execution for the numeric workloads.

This module is the home of the data plane's fifth A/B switch,
:data:`COLUMNAR_DATA_PLANE` (env ``REPRO_COLUMNAR_DATA_PLANE``, the
same family as ``BATCHED_DEPOSITS`` / ``LEGACY_DATA_PLANE`` /
``VECTORISED_COST_PLANE`` / ``SERIALIZED_TIER``).  With the flag on, a
partition of numeric records flows through the miniature Spark as one
:class:`ColumnBatch` — packed numpy columns extending the serialized
tier's representation (:mod:`repro.spark.serialized`) — and workload
UDFs with a registered kernel transform whole batches at once: the
K-Means assign step becomes one distance matrix + ``argmin``, the LR
gradient becomes matrix–vector products, and ``reduce_by_key`` becomes
a stable key grouping with per-segment ordered folds.  Shuffle
bucketing over int-key columns is one vectorised ``& 0x7FFFFFFF`` /
``% n`` pass instead of a per-record loop.

The house rule is byte-identity: simulated time, GC logs, trace
streams, bandwidth CSVs, fault checksums *and computed workload
answers* are identical under both flag settings.  Three disciplines
make the float kernels reproduce the record plane exactly:

* **Sequential fold order.**  Every reduction replays the record
  plane's left fold: per-dimension ``acc += term`` loops and
  ``np.add.at`` (unbuffered, applied in index order) — never
  ``np.sum`` / ``ufunc.reduce``, whose pairwise summation reorders
  float additions.
* **First-value initialisation.**  Grouped folds seed each key's
  accumulator with the key's *first* value (the dict fold's
  ``acc[k] = v``), not zeros — ``0.0 + v`` is not always ``v``
  (``-0.0``), and the dict fold never adds a leading zero.
* **Scalar transcendentals.**  ``numpy``'s ``exp`` is not bit-identical
  to ``math.exp``; kernels that need it (LR) call ``math.exp`` per
  element and vectorise everything around it.

Unpacking is exact by the same argument as the serialized tier:
``tolist()`` on int64/float64 columns rebuilds the original Python
ints/floats bit-for-bit.  Records and UDFs with no registered kernel
fall back to the per-record path, so the plane is a pure optimisation.
"""

from __future__ import annotations

import os
import weakref
from typing import Any, Callable, List, Optional, Sequence

from repro.spark import partition as _partition
from repro.spark.serialized import _INT64_MAX, _INT64_MIN

try:  # numpy is optional, never required
    import numpy as _np
except ImportError:  # pragma: no cover - exercised on numpy-less installs
    _np = None

#: A/B switch for the columnar execution plane.  The default (True,
#: overridable per process with ``REPRO_COLUMNAR_DATA_PLANE=0``) packs
#: numeric partitions into column batches and runs registered kernels
#: over them; False restores the per-record data plane.  Results are
#: byte-identical either way — only wall-clock time differs.
COLUMNAR_DATA_PLANE = os.environ.get(
    "REPRO_COLUMNAR_DATA_PLANE", "1"
) not in ("0", "false", "off")

_MASK = 0x7FFFFFFF


def columnar_active() -> bool:
    """Whether batches should be built: flag on, numpy importable, and
    the legacy per-record plane not forced (the columnar plane is an
    optimisation *of* the optimised plane; under ``LEGACY_DATA_PLANE``
    it stands down entirely so the legacy oracle stays pristine)."""
    return (
        COLUMNAR_DATA_PLANE
        and _np is not None
        and not _partition.LEGACY_DATA_PLANE
    )


# ---------------------------------------------------------------------------
# columns
# ---------------------------------------------------------------------------


class ScalarColumn:
    """One numeric column: an int64 or float64 numpy array.

    ``tolist()`` rebuilds the exact Python ints/floats that were packed
    (the serialized tier's bit-exactness argument).
    """

    __slots__ = ("arr",)

    def __init__(self, arr) -> None:
        self.arr = arr

    def __len__(self) -> int:
        return len(self.arr)

    def tolist(self) -> list:
        """The exact Python ints/floats this column packs."""
        return self.arr.tolist()

    def select(self, idx) -> "ScalarColumn":
        """Row subset by fancy index (order-preserving)."""
        return ScalarColumn(self.arr[idx])

    @property
    def is_int(self) -> bool:
        return self.arr.dtype.kind == "i"


class ConstColumn:
    """A column whose every row is the same object (LR's ``"grad"`` key)."""

    __slots__ = ("value", "n")

    def __init__(self, value: Any, n: int) -> None:
        self.value = value
        self.n = n

    def __len__(self) -> int:
        return self.n

    def tolist(self) -> list:
        """The repeated value, one per row."""
        return [self.value] * self.n

    def select(self, idx) -> "ConstColumn":
        """Row subset: the same constant, fewer rows."""
        return ConstColumn(self.value, len(idx))


class VecColumn:
    """A tuple-of-floats column as one ``(N, D)`` float64 matrix."""

    __slots__ = ("mat",)

    def __init__(self, mat) -> None:
        self.mat = mat

    def __len__(self) -> int:
        return self.mat.shape[0]

    def tolist(self) -> list:
        """The exact float tuples this column packs."""
        return [tuple(row) for row in self.mat.tolist()]

    def select(self, idx) -> "VecColumn":
        """Row subset by fancy index (order-preserving)."""
        return VecColumn(self.mat[idx])


class PairColumn:
    """A 2-tuple value column built from two inner columns (the
    ``(vec_sum, count)`` shape of the ML aggregations)."""

    __slots__ = ("first", "second")

    def __init__(self, first, second) -> None:
        self.first = first
        self.second = second

    def __len__(self) -> int:
        return len(self.first)

    def tolist(self) -> list:
        """The exact 2-tuple values this column packs."""
        return list(zip(self.first.tolist(), self.second.tolist()))

    def select(self, idx) -> "PairColumn":
        """Row subset by fancy index (order-preserving)."""
        return PairColumn(self.first.select(idx), self.second.select(idx))


def _concat_columns(cols: Sequence[Any]) -> Optional[Any]:
    """Concatenate compatible columns, or None when shapes/kinds mix."""
    head = cols[0]
    t = type(head)
    if any(type(c) is not t for c in cols):
        return None
    if t is ScalarColumn:
        if any(c.arr.dtype != head.arr.dtype for c in cols):
            return None
        return ScalarColumn(_np.concatenate([c.arr for c in cols]))
    if t is ConstColumn:
        if any(c.value != head.value for c in cols):
            return None
        return ConstColumn(head.value, sum(c.n for c in cols))
    if t is VecColumn:
        if any(c.mat.shape[1] != head.mat.shape[1] for c in cols):
            return None
        return VecColumn(_np.concatenate([c.mat for c in cols]))
    if t is PairColumn:
        first = _concat_columns([c.first for c in cols])
        second = _concat_columns([c.second for c in cols])
        if first is None or second is None:
            return None
        return PairColumn(first, second)
    return None


# ---------------------------------------------------------------------------
# batches
# ---------------------------------------------------------------------------


class ColumnBatch:
    """One partition of ``(key, value)`` records in columnar form.

    Sequence-like on purpose: ``len``, iteration and indexing all work,
    so every per-record consumer (aggregation fallbacks, cogroup loops,
    actions) treats a batch exactly like the record list it unpacks to
    — the unpacked list is built lazily and cached.
    """

    __slots__ = ("keys", "values", "_records")

    def __init__(self, keys, values) -> None:
        self.keys = keys
        self.values = values
        self._records: Optional[list] = None

    def __len__(self) -> int:
        return len(self.keys)

    def __iter__(self):
        return iter(self.to_records())

    def __getitem__(self, idx):
        return self.to_records()[idx]

    def to_records(self) -> list:
        """The exact record list this batch packs (cached)."""
        if self._records is None:
            self._records = list(
                zip(self.keys.tolist(), self.values.tolist())
            )
        return self._records

    def select(self, idx) -> "ColumnBatch":
        """Row subset (order-preserving fancy index)."""
        return ColumnBatch(self.keys.select(idx), self.values.select(idx))

    # -- packing -----------------------------------------------------------

    @classmethod
    def from_records(cls, records) -> Optional["ColumnBatch"]:
        """Pack a record list, or None when the shape is not columnar.

        Supported shapes (everything the numeric workloads shuffle):
        int64 keys with int / float / tuple-of-float / ``(tuple, int)``
        values.  Exact-type checks (``type(v) is int``, excluding
        ``bool``) guarantee ``unpack`` rebuilds the original objects.
        """
        if _np is None or isinstance(records, ColumnBatch):
            return records if isinstance(records, ColumnBatch) else None
        records = records if isinstance(records, list) else list(records)
        if not records:
            return None
        for r in records:
            if type(r) is not tuple or len(r) != 2:
                return None
        keys = _pack_int_column([r[0] for r in records])
        if keys is None:
            return None
        values = _pack_value_column([r[1] for r in records])
        if values is None:
            return None
        batch = cls(keys, values)
        # The pack's exact-type checks guarantee tolist() rebuilds these
        # records bit-for-bit, so the input list *is* the unpack cache —
        # per-record fallbacks iterate it for free, never double-storing
        # a reconstruction (record lists are never mutated, repo-wide).
        batch._records = records
        return batch

    @staticmethod
    def concat(batches: Sequence["ColumnBatch"]) -> Optional["ColumnBatch"]:
        """Concatenate batches with compatible schemas, or None."""
        keys = _concat_columns([b.keys for b in batches])
        if keys is None:
            return None
        values = _concat_columns([b.values for b in batches])
        if values is None:
            return None
        return ColumnBatch(keys, values)


def is_batch(records: Any) -> bool:
    """Whether a partition payload is a column batch."""
    return type(records) is ColumnBatch


def _pack_int_column(values: list) -> Optional[ScalarColumn]:
    for v in values:
        if type(v) is not int or not (_INT64_MIN <= v <= _INT64_MAX):
            return None
    return ScalarColumn(_np.asarray(values, dtype=_np.int64))


def _pack_float_matrix(rows: list) -> Optional[VecColumn]:
    head = rows[0]
    if type(head) is not tuple:
        return None
    dim = len(head)
    if dim == 0:
        return None
    for row in rows:
        if type(row) is not tuple or len(row) != dim:
            return None
        for x in row:
            if type(x) is not float:
                return None
    return VecColumn(_np.asarray(rows, dtype=_np.float64))


def _pack_value_column(values: list):
    head = values[0]
    th = type(head)
    if th is int:
        return _pack_int_column(values)
    if th is float:
        for v in values:
            if type(v) is not float:
                return None
        return ScalarColumn(_np.asarray(values, dtype=_np.float64))
    if th is tuple and len(head) == 2 and type(head[0]) is tuple:
        # the (vec_sum, count) aggregation shape
        for v in values:
            if type(v) is not tuple or len(v) != 2:
                return None
        vecs = _pack_float_matrix([v[0] for v in values])
        if vecs is None:
            return None
        counts = _pack_int_column([v[1] for v in values])
        if counts is None:
            return None
        return PairColumn(vecs, counts)
    if th is tuple:
        return _pack_float_matrix(values)
    return None


# ---------------------------------------------------------------------------
# kernel registry
# ---------------------------------------------------------------------------

#: UDF -> batch kernel.  Weak keys: kernels registered on per-program
#: closures die with their program.  A kernel takes a ColumnBatch and
#: returns a ColumnBatch (or None to decline, falling back per-record).
_MAP_KERNELS: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()
_MAP_VALUES_KERNELS: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()
_REDUCE_KERNELS: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


def register_map_kernel(fn: Callable, kernel: Callable) -> Callable:
    """Register a whole-batch kernel for a ``map`` UDF."""
    _MAP_KERNELS[fn] = kernel
    return fn


def register_map_values_kernel(fn: Callable, kernel: Callable) -> Callable:
    """Register a whole-batch kernel for a ``map_values`` UDF."""
    _MAP_VALUES_KERNELS[fn] = kernel
    return fn


def register_reduce_kernel(fn: Callable, kernel: Callable) -> Callable:
    """Register a grouped-fold kernel for a ``reduce_by_key`` combiner
    (used both map-side and reduce-side)."""
    _REDUCE_KERNELS[fn] = kernel
    return fn


def map_kernel_for(fn: Callable) -> Optional[Callable]:
    """The batch kernel registered for a ``map`` UDF, or None."""
    return _MAP_KERNELS.get(fn)


def map_values_kernel_for(fn: Callable) -> Optional[Callable]:
    """The batch kernel registered for a ``map_values`` UDF, or None."""
    return _MAP_VALUES_KERNELS.get(fn)


def reduce_kernel_for(fn: Callable) -> Optional[Callable]:
    """The grouped-fold kernel registered for a combiner, or None."""
    return _REDUCE_KERNELS.get(fn)


def identity_kernel(batch: ColumnBatch) -> ColumnBatch:
    """Kernel for identity maps (``lambda r: r``): the batch unchanged.

    Valid because the record plane's output tuples are *equal* to its
    input tuples, and no consumer relies on tuple identity.
    """
    return batch


def apply_map_batch(fn: Callable, records: Any):
    """Run a registered map kernel over a batch, or None to fall back."""
    kern = _MAP_KERNELS.get(fn)
    if kern is None:
        return None
    return kern(records)


# ---------------------------------------------------------------------------
# grouped ordered folds (the reduce_by_key engine)
# ---------------------------------------------------------------------------


def _group_structure(keys):
    """First-occurrence-ordered grouping of a key column.

    Returns ``(out_keys, seg, first_pos)`` where ``out_keys`` is the key
    column of the folded output (dict insertion order — first
    occurrence), ``seg[i]`` is the output row of input record ``i``, and
    ``first_pos`` are the input indices of each group's first record.
    None when the key column cannot group vectorised.
    """
    if type(keys) is ConstColumn:
        n = len(keys)
        return (
            ConstColumn(keys.value, 1),
            _np.zeros(n, dtype=_np.intp),
            _np.zeros(1, dtype=_np.intp),
        )
    if type(keys) is ScalarColumn and keys.is_int:
        arr = keys.arr
        _uniq, first_idx, inv = _np.unique(
            arr, return_index=True, return_inverse=True
        )
        order = _np.argsort(first_idx, kind="stable")
        rank = _np.empty(len(order), dtype=_np.intp)
        rank[order] = _np.arange(len(order), dtype=_np.intp)
        first_pos = first_idx[order]
        return ScalarColumn(arr[first_pos]), rank[inv.ravel()], first_pos
    return None


def _ordered_grouped_sum(arr, seg, first_pos):
    """Per-group left-fold sum of ``arr`` rows in record order.

    Seeds each group with its first row (the dict fold's ``acc[k] = v``)
    and adds the remaining rows via ``np.add.at`` — unbuffered,
    applied in index order, so each accumulator sees its rows in exactly
    the record order the per-record fold used.
    """
    out = arr[first_pos].copy()
    mask = _np.ones(arr.shape[0], dtype=bool)
    mask[first_pos] = False
    if mask.any():
        _np.add.at(out, seg[mask], arr[mask])
    return out


def make_scalar_add_reduce_kernel() -> Callable:
    """Grouped-fold kernel for ``fn(a, b) = a + b`` over scalar values
    (PageRank's rank summation)."""

    def kernel(batch: ColumnBatch) -> Optional[ColumnBatch]:
        if type(batch.values) is not ScalarColumn:
            return None
        if batch.values.is_int:
            # int64 sums can wrap where Python ints cannot — decline.
            return None
        grouping = _group_structure(batch.keys)
        if grouping is None:
            return None
        out_keys, seg, first_pos = grouping
        summed = _ordered_grouped_sum(batch.values.arr, seg, first_pos)
        return ColumnBatch(out_keys, ScalarColumn(summed))

    return kernel


def make_vec_count_merge_kernel() -> Callable:
    """Grouped-fold kernel for the ML merge shape
    ``fn((va, ca), (vb, cb)) = (va + vb elementwise, ca + cb)``
    (K-Means / LR / Naive Bayes aggregation)."""

    def kernel(batch: ColumnBatch) -> Optional[ColumnBatch]:
        values = batch.values
        if (
            type(values) is not PairColumn
            or type(values.first) is not VecColumn
            or type(values.second) is not ScalarColumn
        ):
            return None
        grouping = _group_structure(batch.keys)
        if grouping is None:
            return None
        out_keys, seg, first_pos = grouping
        vec_sums = _ordered_grouped_sum(values.first.mat, seg, first_pos)
        counts = _ordered_grouped_sum(values.second.arr, seg, first_pos)
        return ColumnBatch(
            out_keys, PairColumn(VecColumn(vec_sums), ScalarColumn(counts))
        )

    return kernel


def apply_reduce_kernel(fn: Callable, records: Any):
    """Grouped fold of a batch through ``fn``'s registered kernel.

    Returns the folded ColumnBatch, or None to fall back per-record
    (no kernel, not a batch, or the kernel declined the schema).
    """
    if type(records) is not ColumnBatch:
        return None
    kern = _REDUCE_KERNELS.get(fn)
    if kern is None:
        return None
    return kern(records)


# ---------------------------------------------------------------------------
# vectorised shuffle bucketing
# ---------------------------------------------------------------------------


def split_batch(batch: ColumnBatch, partitioner) -> Optional[list]:
    """Partition a batch into ``(bucket_index, sub_batch)`` pieces.

    Int-key columns bucket in one vectorised pass — bulk
    ``& 0x7FFFFFFF`` then ``% n``, exactly the inline int path of
    ``HashPartitioner.bucket_into`` (identical for every int64 key:
    numpy's two's-complement ``&`` matches Python's) — with
    order-preserving row selection per bucket.  Constant keys hash
    once through ``partition_of``.  None when the key column needs the
    per-record path (non-int scalars).
    """
    keys = batch.keys
    n = partitioner.num_partitions
    if type(keys) is ConstColumn:
        return [(partitioner.partition_of(keys.value), batch)]
    if type(keys) is ScalarColumn and keys.is_int:
        if n == 1:
            return [(0, batch)]
        bucket_of = (keys.arr & _MASK) % n
        pieces = []
        for bidx in _np.unique(bucket_of):
            idx = _np.flatnonzero(bucket_of == bidx)
            pieces.append((int(bidx), batch.select(idx)))
        return pieces
    return None


def bucket_into_segments(partitioner, records, segments: List[list]) -> None:
    """Bucket one map partition's output, batch-aware.

    ``segments[b]`` collects ordered per-partition pieces (sub-batches
    or record lists) for bucket ``b``; :func:`concat_segments` fuses
    them after the map stage.  The resulting per-bucket record sequence
    is identical to ``bucket_into`` over the unpacked records.
    """
    if type(records) is ColumnBatch:
        pieces = split_batch(records, partitioner)
        if pieces is not None:
            for bidx, sub in pieces:
                segments[bidx].append(sub)
            return
        records = records.to_records()
    # Per-record path: append into each bucket's trailing plain-list
    # segment, creating one only where a sub-batch (or nothing) is last.
    # When no batch ever lands in a bucket this degenerates to the
    # single shared bucket list bucket_into always used — no extra
    # copies, same peak memory.
    tails: List[list] = []
    for seg in segments:
        if seg and type(seg[-1]) is list:
            tails.append(seg[-1])
        else:
            tail: list = []
            seg.append(tail)
            tails.append(tail)
    partitioner.bucket_into(records, tails)


def concat_segments(segments: list):
    """Fuse one bucket's ordered pieces into its reduce partition:
    one concatenated batch when every piece is schema-compatible,
    else the flattened record list (identical contents either way).
    Empty trailing lists (tails no record landed in) drop out first."""
    segments = [p for p in segments if type(p) is ColumnBatch or p]
    if not segments:
        return []
    if len(segments) == 1:
        return segments[0]
    if all(type(p) is ColumnBatch for p in segments):
        merged = ColumnBatch.concat(segments)
        if merged is not None:
            return merged
    flat: list = []
    for piece in segments:
        flat.extend(
            piece.to_records() if type(piece) is ColumnBatch else piece
        )
    return flat


# ---------------------------------------------------------------------------
# workload kernel helpers
# ---------------------------------------------------------------------------


def kernels_available() -> bool:
    """Whether kernels can ever run (numpy importable).  Registration
    is harmless without numpy — batches simply never exist — but
    workloads use this to skip building kernel closures."""
    return _np is not None


def vec_matrix(column) -> Optional[Any]:
    """The ``(N, D)`` float64 matrix of a VecColumn, else None."""
    return column.mat if type(column) is VecColumn else None


def int_array(column) -> Optional[Any]:
    """The int64 array of an integer ScalarColumn, else None."""
    if type(column) is ScalarColumn and column.is_int:
        return column.arr
    return None


def float_array(column) -> Optional[Any]:
    """The float64 array of a float ScalarColumn, else None."""
    if type(column) is ScalarColumn and not column.is_int:
        return column.arr
    return None


def int_column(arr) -> ScalarColumn:
    """Wrap an int64 array as a key/value column."""
    return ScalarColumn(arr)


def float_column(arr) -> ScalarColumn:
    """Wrap a float64 array as a value column."""
    return ScalarColumn(arr)


def vec_count_column(mat, counts) -> PairColumn:
    """Build the ``(vec, count)`` value column of the ML aggregations."""
    return PairColumn(VecColumn(mat), ScalarColumn(counts))


def ones_int(n: int):
    """An int64 column of ones (the ``count = 1`` seed)."""
    return ScalarColumn(_np.ones(n, dtype=_np.int64))
