"""Storage levels and their Panthera sub-level expansion (§3).

Spark's ten storage levels are modelled with three orthogonal flags
(memory / disk / serialised).  Panthera expands every level except
``OFF_HEAP`` and ``DISK_ONLY`` into ``_DRAM`` and ``_NVM`` sub-levels;
``OFF_HEAP`` translates directly into ``OFF_HEAP_NVM`` (native memory
lives in NVM) and ``DISK_ONLY`` carries no memory tag.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.core.tags import MemoryTag


class StorageLevel(enum.Enum):
    """The Spark storage levels used by the paper's workloads."""

    MEMORY_ONLY = "MEMORY_ONLY"
    MEMORY_ONLY_SER = "MEMORY_ONLY_SER"
    MEMORY_ONLY_2 = "MEMORY_ONLY_2"
    MEMORY_AND_DISK = "MEMORY_AND_DISK"
    MEMORY_AND_DISK_SER = "MEMORY_AND_DISK_SER"
    MEMORY_AND_DISK_2 = "MEMORY_AND_DISK_2"
    MEMORY_AND_DISK_SER_2 = "MEMORY_AND_DISK_SER_2"
    DISK_ONLY = "DISK_ONLY"
    DISK_ONLY_2 = "DISK_ONLY_2"
    OFF_HEAP = "OFF_HEAP"

    @property
    def use_memory(self) -> bool:
        """Whether the level keeps data in the managed heap."""
        return self.name.startswith("MEMORY")

    @property
    def use_disk(self) -> bool:
        """Whether the level may fall back to disk."""
        return "DISK" in self.name

    @property
    def serialized(self) -> bool:
        """Whether the in-memory form is serialised."""
        return "SER" in self.name

    @property
    def off_heap(self) -> bool:
        """Whether the level stores data in native memory."""
        return self is StorageLevel.OFF_HEAP

    @property
    def taggable(self) -> bool:
        """Whether Panthera expands this level into _DRAM/_NVM sub-levels.

        OFF_HEAP is forced to NVM and DISK_ONLY carries no tag (§3).
        """
        return not (self.off_heap or self in (
            StorageLevel.DISK_ONLY,
            StorageLevel.DISK_ONLY_2,
        ))


@dataclass(frozen=True)
class TaggedStorageLevel:
    """A storage level expanded with Panthera's memory tag sub-level."""

    level: StorageLevel
    tag: Optional[MemoryTag]

    @property
    def name(self) -> str:
        """The expanded sub-level name, e.g. ``MEMORY_ONLY_DRAM``."""
        if self.tag is None:
            return self.level.value
        return f"{self.level.value}_{self.tag.value.upper()}"


def expand_level(
    level: StorageLevel, inferred: Optional[MemoryTag]
) -> TaggedStorageLevel:
    """Apply §3's expansion rules to one persist call.

    Args:
        level: the developer-written storage level.
        inferred: the tag the static analysis inferred for the variable.

    Returns:
        The tagged sub-level: OFF_HEAP always becomes NVM, DISK_ONLY never
        carries a tag, everything else takes the inferred tag.
    """
    if level.off_heap:
        return TaggedStorageLevel(level, MemoryTag.NVM)
    if not level.taggable:
        return TaggedStorageLevel(level, None)
    return TaggedStorageLevel(level, inferred)
