"""Storage levels and their Panthera sub-level expansion (§3).

Spark's ten storage levels are modelled with three orthogonal flags
(memory / disk / serialised).  Panthera expands every level except
``OFF_HEAP`` and ``DISK_ONLY`` into ``_DRAM`` and ``_NVM`` sub-levels;
``OFF_HEAP`` translates directly into ``OFF_HEAP_NVM`` (native memory
lives in NVM) and ``DISK_ONLY`` carries no memory tag.

This module also owns the ``SERIALIZED_TIER`` flag: with it on (the
default), the purely-in-memory serialised levels (``MEMORY_ONLY_SER``
and ``OFF_HEAP``) are stored as packed column batches in the native
off-heap region (see :mod:`repro.spark.serialized`) instead of as
object-heap structures — no per-object GC tracing cost, but every
access pays deserialisation.  That is the third placement target of
"Garbage Collection or Serialization? Between a Rock and a Hard
Place!" (arXiv 2111.10589), next to the paper's DRAM and NVM object
heaps.
"""

from __future__ import annotations

import enum
import os
import warnings
from dataclasses import dataclass
from typing import Optional

from repro.core.tags import MemoryTag
from repro.errors import ConfigError

#: A/B flag for the serialized off-heap tier, in the BATCHED_DEPOSITS /
#: LEGACY_DATA_PLANE / VECTORISED_COST_PLANE family.  On (the default),
#: ``MEMORY_ONLY_SER`` and ``OFF_HEAP`` persists are stored as packed
#: column batches in native memory, invisible to minor/major GC tracing.
#: Off, every level takes the legacy object-heap path and all outputs
#: (gclogs, traces, bandwidth CSVs, fault checksums) are byte-identical
#: to the pre-tier system.  The environment override is read at import
#: so CI can force either side in a fresh process:
#: ``REPRO_SERIALIZED_TIER=0 pytest ...``.
SERIALIZED_TIER = os.environ.get("REPRO_SERIALIZED_TIER", "1") not in (
    "0",
    "false",
    "off",
)


class StorageLevel(enum.Enum):
    """The Spark storage levels used by the paper's workloads."""

    MEMORY_ONLY = "MEMORY_ONLY"
    MEMORY_ONLY_SER = "MEMORY_ONLY_SER"
    MEMORY_ONLY_2 = "MEMORY_ONLY_2"
    MEMORY_AND_DISK = "MEMORY_AND_DISK"
    MEMORY_AND_DISK_SER = "MEMORY_AND_DISK_SER"
    MEMORY_AND_DISK_2 = "MEMORY_AND_DISK_2"
    MEMORY_AND_DISK_SER_2 = "MEMORY_AND_DISK_SER_2"
    DISK_ONLY = "DISK_ONLY"
    DISK_ONLY_2 = "DISK_ONLY_2"
    OFF_HEAP = "OFF_HEAP"

    @property
    def use_memory(self) -> bool:
        """Whether the level keeps data in the managed heap."""
        return self.name.startswith("MEMORY")

    @property
    def use_disk(self) -> bool:
        """Whether the level may fall back to disk."""
        return "DISK" in self.name

    @property
    def serialized(self) -> bool:
        """Whether the in-memory form is serialised."""
        return "SER" in self.name

    @property
    def off_heap(self) -> bool:
        """Whether the level stores data in native memory."""
        return self is StorageLevel.OFF_HEAP

    @property
    def taggable(self) -> bool:
        """Whether Panthera expands this level into _DRAM/_NVM sub-levels.

        OFF_HEAP is forced to NVM and DISK_ONLY carries no tag (§3).
        """
        return not (self.off_heap or self in (
            StorageLevel.DISK_ONLY,
            StorageLevel.DISK_ONLY_2,
        ))


class StorageTier(enum.Enum):
    """Where a persisted block's payload physically lives.

    ``OBJECT_HEAP`` is the paper's placement: top + backbone arrays +
    tuple slabs in the DRAM/NVM object heaps, traced by every GC.
    ``SERIALIZED`` is the packed-column-batch native region (no GC
    tracing, (de)serialisation on access).  ``NATIVE`` is the legacy
    unserialised off-heap placement ``OFF_HEAP`` takes when the
    ``SERIALIZED_TIER`` flag is off.  ``DISK`` is ``DISK_ONLY``.
    """

    OBJECT_HEAP = "object-heap"
    SERIALIZED = "serialized"
    NATIVE = "native"
    DISK = "disk"


def routes_to_serialized_tier(level: StorageLevel) -> bool:
    """Whether a level belongs to the serialized tier *when it is on*.

    The purely-in-memory serialised level and the off-heap level route;
    the ``MEMORY_AND_DISK_SER*`` levels keep the legacy object-heap
    serialised-buffer form (their disk component needs the block
    manager's spill path).
    """
    if level is StorageLevel.OFF_HEAP:
        return True
    return level.serialized and not level.use_disk


def serialized_tier_active(level: StorageLevel) -> bool:
    """Whether this persist actually lands in the serialized tier now
    (the level routes there *and* the ``SERIALIZED_TIER`` flag is on)."""
    return SERIALIZED_TIER and routes_to_serialized_tier(level)


def require_serialized_tier() -> None:
    """Raise :class:`~repro.errors.ConfigError` unless the tier is on.

    The explicit-opt-in surface (``persist_serialized``) fails loudly
    when the flag is off; the enum levels instead degrade to the legacy
    object-heap placement with a :class:`UserWarning` so that
    ``SERIALIZED_TIER=0`` stays byte-identical to the pre-tier system.
    """
    if not SERIALIZED_TIER:
        raise ConfigError(
            "persist_serialized() requires the serialized off-heap tier; "
            "it is disabled (SERIALIZED_TIER is off — unset "
            "REPRO_SERIALIZED_TIER or set it to 1)"
        )


def warn_legacy_serialized_fallthrough(level: StorageLevel) -> None:
    """Warn that a tier-routed level is degrading to object-heap form.

    Before the serialized tier existed, ``MEMORY_ONLY_SER`` and
    ``OFF_HEAP`` silently fell through to object-heap/native placement.
    With the flag off that behaviour is preserved bit-for-bit, but it
    is no longer silent.
    """
    warnings.warn(
        f"StorageLevel.{level.value} requested but SERIALIZED_TIER is "
        "off: falling back to the legacy object-heap placement "
        "(identical to the pre-tier system)",
        UserWarning,
        stacklevel=3,
    )


@dataclass(frozen=True)
class TaggedStorageLevel:
    """A storage level expanded with Panthera's memory tag sub-level."""

    level: StorageLevel
    tag: Optional[MemoryTag]

    @property
    def name(self) -> str:
        """The expanded sub-level name, e.g. ``MEMORY_ONLY_DRAM``."""
        if self.tag is None:
            return self.level.value
        return f"{self.level.value}_{self.tag.value.upper()}"

    @property
    def is_off_heap(self) -> bool:
        """Whether the underlying level stores data in native memory."""
        return self.level.off_heap

    @property
    def replicated(self) -> bool:
        """Whether the level is a ``_2`` (two-replica) variant."""
        return self.level.value.endswith("_2")

    @property
    def serialized(self) -> bool:
        """Whether the in-memory form is serialised."""
        return self.level.serialized

    @property
    def tier(self) -> StorageTier:
        """The physical tier this expanded level lands in *right now*
        (reads the live ``SERIALIZED_TIER`` flag)."""
        if serialized_tier_active(self.level):
            return StorageTier.SERIALIZED
        if self.level.off_heap:
            return StorageTier.NATIVE
        if self.level.use_memory:
            return StorageTier.OBJECT_HEAP
        return StorageTier.DISK


def expand_level(
    level: StorageLevel, inferred: Optional[MemoryTag]
) -> TaggedStorageLevel:
    """Apply §3's expansion rules to one persist call.

    Args:
        level: the developer-written storage level.
        inferred: the tag the static analysis inferred for the variable.

    Returns:
        The tagged sub-level: OFF_HEAP always becomes NVM, DISK_ONLY never
        carries a tag, everything else takes the inferred tag.  Levels
        landing in the serialized tier are forced NVM like OFF_HEAP —
        native memory is the NVM component (§4.1), which is exactly why
        this tier is the paper axis "serialized-NVM".
    """
    if level.off_heap or serialized_tier_active(level):
        return TaggedStorageLevel(level, MemoryTag.NVM)
    if not level.taggable:
        return TaggedStorageLevel(level, None)
    return TaggedStorageLevel(level, inferred)
